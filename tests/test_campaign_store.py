"""Campaign store + cell-hash contract tests.

The sqlite store is the campaign plane's resume source of truth, so its
contract is pinned hard: summaries round-trip exactly, cell hashes are
*stable across releases* (golden pins — an accidental change to the
hash identity would orphan every existing store), every spec axis is
part of the identity (changing any one changes the hash), writes with
unknown or duplicate keys fail loudly, and a corrupted store file
surfaces a clear :class:`~repro.util.errors.CampaignError` instead of
an opaque sqlite traceback.
"""

from dataclasses import replace

import pytest

from repro.analysis.metrics import ScheduleSummary
from repro.campaign import (
    CampaignCell,
    CampaignSpec,
    ResultStore,
    cell_hash,
    load_spec,
)
from repro.util.errors import CampaignError

BASE_CELL = CampaignCell(
    mesh="tetonly", target_cells=200, mesh_seed=0, k=4,
    algorithm="random_delay_priority", block_size=1, m=8, seed=0,
)

SPEC = CampaignSpec(
    name="store-test",
    grids=(
        {
            "mesh": ["square2d"], "target_cells": 120, "mesh_seed": 0,
            "k": [2], "algorithms": ["fifo"], "block_sizes": [1],
            "m": [4], "seeds": [0, 1],
        },
    ),
)

SUMMARY = ScheduleSummary(
    algorithm="fifo", mesh="unit_square_tri_k2", n_cells=110, k=2, m=4,
    makespan=82, lower_bound=55, ratio=82 / 55, c1=240,
    c1_fraction=240 / 322, c2=120, idle_fraction=0.315042,
)


class TestCellHashGoldens:
    """Golden pins: these digests are a compatibility promise.

    If one of these fails, either the hash identity changed by accident
    (fix the code) or it changed deliberately — then ``SPEC_VERSION``
    must be bumped and the pins regenerated, because every existing
    store on disk just became stale.
    """

    GOLDENS = {
        ("auto", True): "d59c134f0d201f36ed83d6b00e453bc6",
        ("heap", True): "4eecab14e540dba098ce9c44c621431c",
        ("auto", False): "7a284565dae048e44eb4ebd1bde44ab3",
    }

    @pytest.mark.parametrize("key", sorted(GOLDENS))
    def test_pinned_digests(self, key):
        engine, with_comm = key
        assert cell_hash(BASE_CELL, engine, with_comm) == self.GOLDENS[key]

    def test_seed_and_m_pins(self):
        assert (
            cell_hash(replace(BASE_CELL, seed=1), "auto", True)
            == "c7a64cb99ec941ba91dd772a496e6563"
        )
        assert (
            cell_hash(replace(BASE_CELL, m=16), "auto", True)
            == "51032dd0a320ca3f0419e916ee48ac12"
        )


class TestHashSensitivity:
    @pytest.mark.parametrize(
        "change",
        [
            {"mesh": "long"},
            {"target_cells": 201},
            {"mesh_seed": 1},
            {"k": 8},
            {"algorithm": "fifo"},
            {"block_size": 8},
            {"m": 16},
            {"seed": 3},
        ],
    )
    def test_any_axis_change_changes_hash(self, change):
        base = cell_hash(BASE_CELL, "auto", True)
        assert cell_hash(replace(BASE_CELL, **change), "auto", True) != base

    def test_engine_and_with_comm_are_code_relevant(self):
        base = cell_hash(BASE_CELL, "auto", True)
        assert cell_hash(BASE_CELL, "vector", True) != base
        assert cell_hash(BASE_CELL, "auto", False) != base

    def test_hash_is_stable_across_calls(self):
        assert cell_hash(BASE_CELL, "auto", True) == cell_hash(
            BASE_CELL, "auto", True
        )


class TestStoreRoundTrip:
    def test_summary_round_trips_exactly(self, tmp_path):
        with ResultStore.open(tmp_path / "c.sqlite", SPEC) as store:
            digest = next(iter(SPEC.universe_hashes()))
            store.record_result(digest, SUMMARY, elapsed_s=0.5, worker="t:1")
            assert store.result_for(digest) == SUMMARY

    def test_round_trip_survives_reopen(self, tmp_path):
        path = tmp_path / "c.sqlite"
        digest = next(iter(SPEC.universe_hashes()))
        with ResultStore.open(path, SPEC) as store:
            store.record_result(digest, SUMMARY)
        with ResultStore.open(path, SPEC) as store:
            assert store.result_for(digest) == SUMMARY
            assert store.done_hashes() == {digest}

    def test_counts_and_pending_plan(self, tmp_path):
        universe = SPEC.universe_hashes()
        with ResultStore.open(tmp_path / "c.sqlite", SPEC) as store:
            first, second = list(universe)
            assert [d for d, _ in store.pending_cells(SPEC)] == [first, second]
            store.record_result(first, SUMMARY)
            assert [d for d, _ in store.pending_cells(SPEC)] == [second]
            counts = store.counts(universe)
            assert counts == {
                "universe": 2, "done": 1, "pending": 1, "stale_rows": 0,
            }

    def test_provenance_recorded(self, tmp_path):
        with ResultStore.open(tmp_path / "c.sqlite", SPEC) as store:
            digest = next(iter(SPEC.universe_hashes()))
            store.record_result(digest, SUMMARY, elapsed_s=1.5, worker="w:9")
            rows = list(store.provenance())
            assert rows[0][0] == digest
            assert rows[0][1] == "w:9"
            assert rows[0][2] == 1.5
            assert rows[0][3]  # a timestamp was stamped

    def test_meta_records_spec_identity(self, tmp_path):
        with ResultStore.open(tmp_path / "c.sqlite", SPEC) as store:
            meta = store.meta()
            assert meta["campaign"] == "store-test"
            assert meta["spec_hash"] == SPEC.spec_hash()
            assert meta["spec_version"] == "1"


class TestFailLoudWrites:
    def test_unknown_cell_write_fails(self, tmp_path):
        with ResultStore.open(tmp_path / "c.sqlite", SPEC) as store:
            with pytest.raises(CampaignError, match="unknown cell hash"):
                store.record_result("0" * 32, SUMMARY)

    def test_duplicate_write_fails(self, tmp_path):
        with ResultStore.open(tmp_path / "c.sqlite", SPEC) as store:
            digest = next(iter(SPEC.universe_hashes()))
            store.record_result(digest, SUMMARY)
            with pytest.raises(CampaignError, match="duplicate result"):
                store.record_result(digest, SUMMARY)

    def test_result_for_pending_cell_fails(self, tmp_path):
        with ResultStore.open(tmp_path / "c.sqlite", SPEC) as store:
            digest = next(iter(SPEC.universe_hashes()))
            with pytest.raises(CampaignError, match="no result yet"):
                store.result_for(digest)


class TestSpecEvolution:
    def test_spec_change_keeps_old_rows_as_stale(self, tmp_path):
        path = tmp_path / "c.sqlite"
        with ResultStore.open(path, SPEC) as store:
            digest = next(iter(SPEC.universe_hashes()))
            store.record_result(digest, SUMMARY)
        # The grid grows a seed: old hashes stay done, new cells pend.
        grown = replace(
            SPEC,
            grids=(
                {**SPEC.grids[0], "seeds": [0, 1, 2]},
            ),
        )
        with ResultStore.open(path, grown) as store:
            counts = store.counts(grown.universe_hashes())
            assert counts["universe"] == 3
            assert counts["done"] == 1
            assert counts["pending"] == 2
            assert counts["stale_rows"] == 0

    def test_engine_change_makes_results_stale(self, tmp_path):
        path = tmp_path / "c.sqlite"
        with ResultStore.open(path, SPEC) as store:
            digest = next(iter(SPEC.universe_hashes()))
            store.record_result(digest, SUMMARY)
        heap_spec = replace(SPEC, engine="heap")
        with ResultStore.open(path, heap_spec) as store:
            counts = store.counts(heap_spec.universe_hashes())
            # All hashes changed: nothing done, old row is stale.
            assert counts["done"] == 0
            assert counts["pending"] == 2
            assert counts["stale_rows"] == 2


class TestCorruptionDetection:
    def test_garbage_file_raises_clear_error(self, tmp_path):
        path = tmp_path / "c.sqlite"
        path.write_bytes(b"this is not a sqlite database at all \x00\xff" * 40)
        with pytest.raises(CampaignError, match="corrupted campaign store"):
            ResultStore.open(path, SPEC)

    def test_truncated_store_raises_clear_error(self, tmp_path):
        path = tmp_path / "c.sqlite"
        with ResultStore.open(path, SPEC) as store:
            store.record_result(next(iter(SPEC.universe_hashes())), SUMMARY)
        data = path.read_bytes()
        # Corrupt the middle of the file, keeping the sqlite header.
        path.write_bytes(data[:100] + b"\xde\xad\xbe\xef" * 64 + data[356:])
        with pytest.raises(CampaignError, match="corrupted campaign store"):
            ResultStore.open(path, SPEC)


class TestSpecLoading:
    def test_toml_and_json_specs_compile_identically(self, tmp_path):
        toml_path = tmp_path / "c.toml"
        toml_path.write_text(
            'name = "x"\n'
            "[[grid]]\n"
            'mesh = ["square2d"]\ntarget_cells = 120\nmesh_seed = 0\n'
            'k = [2]\nalgorithms = ["fifo"]\nblock_sizes = [1]\n'
            "m = [4]\nseeds = [0, 1]\n"
        )
        json_path = tmp_path / "c.json"
        json_path.write_text(
            '{"name": "x", "grid": [{"mesh": ["square2d"],'
            '"target_cells": 120, "mesh_seed": 0, "k": [2],'
            '"algorithms": ["fifo"], "block_sizes": [1],'
            '"m": [4], "seeds": [0, 1]}]}'
        )
        assert load_spec(toml_path).compile() == load_spec(json_path).compile()
        assert load_spec(toml_path).spec_hash() == load_spec(json_path).spec_hash()

    @pytest.mark.parametrize(
        "snippet, match",
        [
            ('[[grid]]\nmesh = ["no_such_mesh"]\ntarget_cells = 10\n'
             'mesh_seed = 0\nk = [2]\nalgorithms = ["fifo"]\n'
             "block_sizes = [1]\nm = [4]\nseeds = [0]\n", "unknown mesh"),
            ('[[grid]]\nmesh = ["square2d"]\ntarget_cells = 10\n'
             'mesh_seed = 0\nk = [2]\nalgorithms = ["nope"]\n'
             "block_sizes = [1]\nm = [4]\nseeds = [0]\n", "unknown algorithm"),
            ('[[grid]]\nmesh = ["square2d"]\ntarget_cells = 10\n'
             "mesh_seed = 0\nk = [2]\n"
             "block_sizes = [1]\nm = [4]\nseeds = [0]\n", "missing grid axis"),
            ('[[grid]]\nmesh = ["square2d"]\ntarget_cells = 10\n'
             'mesh_seed = 0\nk = [2]\nalgorithms = ["fifo"]\n'
             "block_sizes = [1]\nm = [4]\nseeds = [0]\nbogus = 1\n",
             "unknown grid axis"),
            ("", "no \\[\\[grid\\]\\] blocks"),
        ],
    )
    def test_malformed_specs_fail_loudly(self, tmp_path, snippet, match):
        path = tmp_path / "bad.toml"
        path.write_text(snippet)
        with pytest.raises(CampaignError, match=match):
            load_spec(path).compile()

    def test_unknown_engine_rejected(self, tmp_path):
        path = tmp_path / "bad.toml"
        path.write_text(
            'engine = "warp"\n[[cells]]\nmesh = "square2d"\n'
            "target_cells = 10\nmesh_seed = 0\nk = 2\n"
            'algorithm = "fifo"\nblock_size = 1\nm = 4\nseed = 0\n'
        )
        with pytest.raises(CampaignError, match="unknown engine"):
            load_spec(path)
