"""Tests for sweep direction sets."""

import numpy as np
import pytest

from repro.sweeps import (
    circle_directions,
    directions_for_mesh,
    fibonacci_sphere,
    level_symmetric,
    num_level_symmetric_directions,
    random_directions,
)
from repro.util.errors import ReproError


class TestLevelSymmetric:
    @pytest.mark.parametrize(
        "order,count", [(2, 8), (4, 24), (6, 48), (8, 80), (12, 168)]
    )
    def test_direction_counts(self, order, count):
        dirs = level_symmetric(order)
        assert dirs.shape == (count, 3)
        assert num_level_symmetric_directions(order) == count

    @pytest.mark.parametrize("order", [2, 4, 6, 8, 12, 16])
    def test_unit_vectors(self, order):
        dirs = level_symmetric(order)
        assert np.allclose(np.linalg.norm(dirs, axis=1), 1.0, atol=1e-6)

    def test_octant_symmetry(self):
        """The set is closed under sign flips of any axis."""
        dirs = level_symmetric(4)
        as_set = {tuple(np.round(d, 6)) for d in dirs}
        for d in dirs:
            assert tuple(np.round(d * [-1, 1, 1], 6)) in as_set
            assert tuple(np.round(d * [1, -1, 1], 6)) in as_set
            assert tuple(np.round(d * [1, 1, -1], 6)) in as_set

    def test_no_duplicate_directions(self):
        dirs = level_symmetric(6)
        uniq = np.unique(np.round(dirs, 9), axis=0)
        assert uniq.shape[0] == dirs.shape[0]

    @pytest.mark.parametrize("order", [0, 1, 3, -2])
    def test_invalid_order_rejected(self, order):
        with pytest.raises(ReproError, match="even"):
            level_symmetric(order)


class TestGenericSets:
    def test_fibonacci_unit_and_spread(self):
        dirs = fibonacci_sphere(100)
        assert np.allclose(np.linalg.norm(dirs, axis=1), 1.0)
        # Mean direction of an even spread is near zero.
        assert np.linalg.norm(dirs.mean(axis=0)) < 0.05

    def test_circle_unit_and_even(self):
        dirs = circle_directions(8)
        assert dirs.shape == (8, 2)
        assert np.allclose(np.linalg.norm(dirs, axis=1), 1.0)
        # Evenly spaced: consecutive dot products all equal.
        dots = [np.dot(dirs[i], dirs[(i + 1) % 8]) for i in range(8)]
        assert np.allclose(dots, dots[0])

    def test_random_directions_unit(self):
        dirs = random_directions(50, dim=3, seed=0)
        assert np.allclose(np.linalg.norm(dirs, axis=1), 1.0)

    def test_random_directions_2d(self):
        dirs = random_directions(10, dim=2, seed=0)
        assert dirs.shape == (10, 2)

    @pytest.mark.parametrize("fn", [fibonacci_sphere, circle_directions])
    def test_zero_directions_rejected(self, fn):
        with pytest.raises(ReproError, match="at least one"):
            fn(0)

    def test_random_bad_dim_rejected(self):
        with pytest.raises(ReproError, match="dim"):
            random_directions(5, dim=4)


class TestDirectionsForMesh:
    def test_2d_gets_fan(self):
        dirs = directions_for_mesh(2, 6)
        assert dirs.shape == (6, 2)

    def test_3d_sn_count_gets_level_symmetric(self):
        dirs = directions_for_mesh(3, 24)
        assert np.array_equal(dirs, level_symmetric(4))

    def test_3d_other_count_gets_fibonacci(self):
        dirs = directions_for_mesh(3, 10)
        assert dirs.shape == (10, 3)
