"""Tests for the dependency-free ASCII chart renderer."""

import pytest

from repro.experiments import ascii_chart
from repro.util.errors import ReproError

ROWS = [
    {"m": 2, "algo": "a", "ratio": 1.0},
    {"m": 8, "algo": "a", "ratio": 2.0},
    {"m": 32, "algo": "a", "ratio": 4.0},
    {"m": 2, "algo": "b", "ratio": 1.0},
    {"m": 8, "algo": "b", "ratio": 1.2},
    {"m": 32, "algo": "b", "ratio": 1.5},
]


class TestChart:
    def test_basic_structure(self):
        text = ascii_chart(ROWS, x="m", y="ratio", group_by="algo", title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert any("o = a" in l for l in lines)
        assert any("x = b" in l for l in lines)
        assert any("---" in l for l in lines)  # x axis

    def test_y_range_labels(self):
        text = ascii_chart(ROWS, x="m", y="ratio", group_by="algo")
        assert "4" in text.splitlines()[0]  # max at the top
        assert "1" in text  # min at the bottom

    def test_extremes_plotted_at_extremes(self):
        text = ascii_chart(ROWS, x="m", y="ratio", group_by="algo", height=8)
        lines = text.splitlines()
        # max value (4.0, series a='o') sits on the top row.
        assert "o" in lines[0]
        # min values share the bottom grid row; collision shows as '!'.
        bottom = lines[7]
        assert "o" in bottom or "!" in bottom

    def test_collision_marker(self):
        rows = [
            {"m": 1, "algo": "a", "ratio": 1.0},
            {"m": 1, "algo": "b", "ratio": 1.0},
            {"m": 2, "algo": "a", "ratio": 2.0},
            {"m": 2, "algo": "b", "ratio": 1.5},
        ]
        text = ascii_chart(rows, x="m", y="ratio", group_by="algo")
        assert "!" in text

    def test_x_tick_labels_present_and_untruncated(self):
        text = ascii_chart(ROWS, x="m", y="ratio", group_by="algo")
        tick_line = text.splitlines()[-2]
        assert "2" in tick_line and "32" in tick_line

    def test_flat_series_does_not_crash(self):
        rows = [{"m": v, "algo": "a", "ratio": 1.0} for v in (1, 2, 3)]
        text = ascii_chart(rows, x="m", y="ratio", group_by="algo")
        assert "o" in text

    def test_empty_cells_skipped(self):
        rows = ROWS + [{"m": 64, "algo": "a", "ratio": ""}]
        text = ascii_chart(rows, x="m", y="ratio", group_by="algo")
        assert "64" not in text.splitlines()[-2]

    def test_errors(self):
        with pytest.raises(ReproError, match="no rows"):
            ascii_chart([], x="m", y="ratio", group_by="algo")
        with pytest.raises(ReproError, match="width"):
            ascii_chart(ROWS, x="m", y="ratio", group_by="algo", width=5)
        many = [
            {"m": 1, "algo": f"s{i}", "ratio": float(i)} for i in range(12)
        ]
        with pytest.raises(ReproError, match="series"):
            ascii_chart(many, x="m", y="ratio", group_by="algo")
