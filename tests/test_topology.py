"""Tests for torus topology and locality-aware processor mapping."""

import numpy as np
import pytest

from repro.comm import TorusTopology, hop_weighted_c1, locality_mapping
from repro.comm.cost import interprocessor_edges
from repro.core import block_assignment
from repro.mesh import tetonly_like
from repro.partition import partition_mesh_blocks
from repro.sweeps import build_instance, level_symmetric
from repro.util.errors import ReproError


class TestTorus:
    def test_coords_and_size(self):
        t = TorusTopology((2, 3))
        assert t.m == 6
        assert t.coords.shape == (6, 2)

    def test_hop_distance_wraps(self):
        t = TorusTopology((4,))
        # 0 and 3 are adjacent around the ring.
        assert t.hops(0, 3) == 1
        assert t.hops(0, 2) == 2

    def test_hops_vectorised_and_symmetric(self):
        t = TorusTopology((3, 3))
        a = np.arange(9)
        b = (a + 4) % 9
        assert np.array_equal(t.hops(a, b), t.hops(b, a))

    def test_diameter(self):
        assert TorusTopology((4, 6)).diameter == 2 + 3

    def test_rejects_bad_dims(self):
        with pytest.raises(ReproError):
            TorusTopology((0, 2))


class TestHopWeightedC1:
    @pytest.fixture(scope="class")
    def setup(self):
        mesh = tetonly_like(600, seed=0)
        inst = build_instance(mesh, level_symmetric(2))
        blocks = partition_mesh_blocks(mesh.n_cells, mesh.adjacency, 16, seed=0)
        return mesh, inst, blocks

    def test_at_least_plain_c1(self, setup):
        _mesh, inst, blocks = setup
        topo = TorusTopology((4, 4))
        assignment = block_assignment(blocks, topo.m, seed=0)
        hop = hop_weighted_c1(inst, assignment, topo)
        plain = interprocessor_edges(inst, assignment)
        assert plain <= hop <= plain * topo.diameter

    def test_zero_on_one_proc(self, setup):
        _mesh, inst, _blocks = setup
        topo = TorusTopology((1, 1))
        assignment = np.zeros(inst.n_cells, dtype=np.int64)
        assert hop_weighted_c1(inst, assignment, topo) == 0

    def test_rejects_out_of_torus_assignment(self, setup):
        _mesh, inst, _blocks = setup
        topo = TorusTopology((2, 2))
        assignment = np.full(inst.n_cells, 7)
        with pytest.raises(ReproError, match="outside the torus"):
            hop_weighted_c1(inst, assignment, topo)

    def test_locality_mapping_beats_random(self, setup):
        """RCB block->torus mapping must cut hop-weighted C1 vs a random
        block->processor draw (same blocks, same torus)."""
        mesh, inst, blocks = setup
        topo = TorusTopology((4, 4))
        nb = int(blocks.max()) + 1
        centers = np.zeros((nb, 3))
        np.add.at(centers, blocks, mesh.centroids)
        centers /= np.maximum(np.bincount(blocks, minlength=nb), 1)[:, None]

        block_to_proc = locality_mapping(centers, topo)
        smart = block_to_proc[blocks]
        rand = block_assignment(blocks, topo.m, seed=3)
        assert (
            hop_weighted_c1(inst, smart, topo)
            < hop_weighted_c1(inst, rand, topo)
        )

    def test_locality_mapping_needs_enough_blocks(self):
        topo = TorusTopology((4, 4))
        with pytest.raises(ReproError, match="at least one block"):
            locality_mapping(np.zeros((3, 2)), topo)
