"""Tests for diffusion synthetic acceleration."""

import numpy as np
import pytest
from scipy.sparse.linalg import eigsh

from repro.core import random_delay_priority_schedule
from repro.mesh import Mesh, tetonly_like
from repro.sweeps import build_instance
from repro.transport import (
    Quadrature,
    TransportProblem,
    assemble_diffusion_matrix,
    solve_dsa_with_schedule,
    solve_with_schedule,
)
from repro.util.errors import ReproError


@pytest.fixture(scope="module")
def setup():
    mesh = Mesh.structured_grid((5, 5, 4))
    quad = Quadrature.sn(2)
    inst = build_instance(mesh, quad.directions)
    sched = random_delay_priority_schedule(inst, 4, seed=0)
    return mesh, quad, sched


class TestDiffusionMatrix:
    def test_symmetric(self, setup):
        mesh, quad, _ = setup
        p = TransportProblem(mesh, quad, 1.0, 0.5, 1.0)
        mat = assemble_diffusion_matrix(p)
        assert (mat - mat.T).nnz == 0 or abs(mat - mat.T).max() < 1e-14

    def test_positive_definite(self, setup):
        mesh, quad, _ = setup
        p = TransportProblem(mesh, quad, 1.0, 0.5, 1.0)
        mat = assemble_diffusion_matrix(p)
        smallest = eigsh(mat, k=1, which="SA", return_eigenvectors=False)
        assert smallest[0] > 0

    def test_row_sums_positive_with_boundary(self, setup):
        """Interior couplings cancel in row sums; what remains is
        absorption + boundary sinks — all positive."""
        mesh, quad, _ = setup
        p = TransportProblem(mesh, quad, 1.0, 0.5, 1.0)
        mat = assemble_diffusion_matrix(p)
        sums = np.asarray(mat.sum(axis=1)).ravel()
        assert np.all(sums > 0)

    def test_works_on_unstructured(self):
        mesh = tetonly_like(250, seed=0)
        quad = Quadrature.sn(2)
        p = TransportProblem(mesh, quad, 1.0, 0.5, 1.0)
        mat = assemble_diffusion_matrix(p)
        assert mat.shape == (mesh.n_cells, mesh.n_cells)


class TestDsaSolve:
    def test_matches_source_iteration(self, setup):
        mesh, quad, sched = setup
        p = TransportProblem(mesh, quad, 1.0, 0.8, 1.0, boundary="vacuum")
        si = solve_with_schedule(p, sched, tol=1e-10)
        dsa = solve_dsa_with_schedule(p, sched, tol=1e-10)
        assert dsa.converged
        assert np.allclose(dsa.phi, si.phi, atol=1e-7)

    def test_accelerates_high_scattering(self, setup):
        mesh, quad, sched = setup
        p = TransportProblem(mesh, quad, 1.0, 0.95, 1.0, boundary="vacuum")
        si = solve_with_schedule(p, sched, tol=1e-9)
        dsa = solve_dsa_with_schedule(p, sched, tol=1e-9)
        assert dsa.iterations < si.iterations / 2

    def test_iteration_count_flat_in_c(self, setup):
        """DSA's defining property: iterations ~independent of the
        scattering ratio."""
        mesh, quad, sched = setup
        iters = []
        for c in (0.5, 0.9, 0.98):
            p = TransportProblem(mesh, quad, 1.0, c, 1.0, boundary="vacuum")
            iters.append(solve_dsa_with_schedule(p, sched, tol=1e-9).iterations)
        assert max(iters) <= 2 * min(iters)

    def test_rejects_white_boundary(self, setup):
        mesh, quad, sched = setup
        p = TransportProblem(mesh, quad, 1.0, 0.5, 1.0, boundary="white")
        with pytest.raises(ReproError, match="vacuum"):
            solve_dsa_with_schedule(p, sched)

    def test_rejects_bad_args(self, setup):
        mesh, quad, sched = setup
        p = TransportProblem(mesh, quad, 1.0, 0.5, 1.0)
        with pytest.raises(ReproError, match="positive"):
            solve_dsa_with_schedule(p, sched, tol=0)

    def test_unstructured_mesh(self):
        mesh = tetonly_like(250, seed=0)
        quad = Quadrature.sn(2)
        inst = build_instance(mesh, quad.directions)
        sched = random_delay_priority_schedule(inst, 4, seed=0)
        p = TransportProblem(mesh, quad, 1.0, 0.9, 1.0, boundary="vacuum")
        si = solve_with_schedule(p, sched, tol=1e-9)
        dsa = solve_dsa_with_schedule(p, sched, tol=1e-9)
        assert dsa.converged
        assert np.allclose(dsa.phi, si.phi, atol=1e-6)
        assert dsa.iterations < si.iterations
