"""Tests for schedule metrics and theory-validation measurements."""

import numpy as np
import pytest

from repro.analysis import (
    approx_ratio,
    efficiency,
    lemma2_max_copies_per_layer,
    lemma3_max_tasks_per_proc_layer,
    speedup,
    summarize_schedule,
)
from repro.core import (
    average_load_lb,
    random_cell_assignment,
    random_delay_priority_schedule,
)
from repro.core.random_delay import draw_delays
from repro.util.rng import as_rng


@pytest.fixture(scope="module")
def sched(tet_instance):
    return random_delay_priority_schedule(tet_instance, 8, seed=0)


class TestRatios:
    def test_avg_load_ratio(self, sched, tet_instance):
        expected = sched.makespan / average_load_lb(tet_instance, 8)
        assert approx_ratio(sched) == pytest.approx(expected)

    def test_combined_ratio_at_most_avg_load_ratio(self, sched):
        assert approx_ratio(sched, bound="combined") <= approx_ratio(sched)

    def test_unknown_bound_rejected(self, sched):
        with pytest.raises(ValueError, match="unknown bound"):
            approx_ratio(sched, bound="nope")

    def test_speedup_and_efficiency(self, sched, tet_instance):
        assert speedup(sched) == pytest.approx(tet_instance.n_tasks / sched.makespan)
        assert efficiency(sched) == pytest.approx(speedup(sched) / 8)
        assert 0 < efficiency(sched) <= 1.0


class TestSummary:
    def test_fields_populated(self, sched, tet_instance):
        s = summarize_schedule(sched)
        assert s.algorithm == "random_delay_priority"
        assert s.n_cells == tet_instance.n_cells
        assert s.k == tet_instance.k
        assert s.m == 8
        assert s.makespan == sched.makespan
        assert s.ratio == pytest.approx(approx_ratio(sched))
        assert 0 <= s.c1_fraction <= 1
        assert s.c2 <= s.c1

    def test_without_comm(self, sched):
        s = summarize_schedule(sched, with_comm=False)
        assert s.c1 == 0 and s.c2 == 0

    def test_as_dict(self, sched):
        d = summarize_schedule(sched).as_dict()
        assert d["m"] == 8


class TestLemmaMeasurements:
    def test_lemma2_upper_bounded_by_k(self, tet_instance, rng):
        delays = draw_delays(tet_instance.k, rng)
        copies = lemma2_max_copies_per_layer(tet_instance, delays)
        assert 1 <= copies <= tet_instance.k

    def test_lemma2_zero_delays_put_all_copies_nowhere_special(self, chain_instance):
        """With zero delays, cell 0 has level 0 in dir 0 and level 3 in
        dir 1 -> max copies per layer is 1 on the chain."""
        copies = lemma2_max_copies_per_layer(chain_instance, np.array([0, 0]))
        assert copies == 1

    def test_lemma3_at_least_lemma2_ceiling(self, tet_instance, rng):
        m = 4
        delays = draw_delays(tet_instance.k, rng)
        assignment = random_cell_assignment(tet_instance.n_cells, m, rng)
        per_proc = lemma3_max_tasks_per_proc_layer(
            tet_instance, delays, assignment, m
        )
        assert per_proc >= 1

    def test_lemma3_single_proc_equals_layer_size(self, chain_instance):
        delays = np.array([0, 0])
        per_proc = lemma3_max_tasks_per_proc_layer(
            chain_instance, delays, np.zeros(4, dtype=int), 1
        )
        # Layers each hold 2 tasks (one from each chain direction).
        assert per_proc == 2
