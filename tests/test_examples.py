"""Every example script must run clean end to end (the README promise)."""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)


def load_example(path: Path):
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


@pytest.mark.slow
@pytest.mark.parametrize("path", EXAMPLES, ids=[p.stem for p in EXAMPLES])
def test_example_runs(path, capsys):
    module = load_example(path)
    assert hasattr(module, "main"), f"{path.name} must expose main()"
    module.main()
    out = capsys.readouterr().out
    assert len(out) > 50  # produced a real report, not silence


def test_at_least_four_examples_exist():
    assert len(EXAMPLES) >= 4
