"""Tests for the experiment harness (configs, runner, report, drivers)."""

import pytest

from repro.experiments import (
    ExperimentConfig,
    clear_caches,
    format_series,
    format_table,
    get_blocks,
    get_instance,
    pick,
    run_cell,
    run_grid,
    scaled,
)
from repro.experiments import paper

FAST = dict(
    mesh="square2d",
    target_cells=150,
    k=4,
    m_values=(2, 4),
    block_sizes=(1,),
    algorithms=("random_delay_priority",),
    seeds=(0,),
)


class TestConfig:
    def test_defaults(self):
        c = ExperimentConfig()
        assert c.mesh == "tetonly"
        assert 128 in c.m_values

    def test_scaled(self):
        c = scaled(ExperimentConfig(target_cells=2000), 0.5)
        assert c.target_cells == 1000

    def test_scaled_floor(self):
        c = scaled(ExperimentConfig(target_cells=100), 0.01)
        assert c.target_cells == 64

    def test_frozen(self):
        with pytest.raises(Exception):
            ExperimentConfig().mesh = "x"


class TestRunner:
    def test_instance_memoised(self):
        clear_caches()
        c = ExperimentConfig(**FAST)
        assert get_instance(c) is get_instance(c)

    def test_blocks_memoised(self):
        c = ExperimentConfig(**FAST)
        assert get_blocks(c, 8) is get_blocks(c, 8)

    def test_run_cell_summary(self):
        c = ExperimentConfig(**FAST)
        s = run_cell(c, "random_delay_priority", 4, 1, seed=0)
        assert s.m == 4
        assert s.makespan >= s.lower_bound

    def test_run_cell_with_blocks(self):
        c = ExperimentConfig(**FAST)
        s = run_cell(c, "random_delay_priority", 2, 8, seed=0)
        assert s.m == 2

    def test_run_grid_shape(self):
        c = ExperimentConfig(**FAST)
        rows = run_grid(c)
        assert len(rows) == 2  # 1 algo x 1 block size x 2 m values
        assert {r["m"] for r in rows} == {2, 4}
        for r in rows:
            assert r["ratio"] >= 1.0
            assert r["seeds"] == 1

    def test_grid_aggregates_seeds(self):
        c = ExperimentConfig(**{**FAST, "seeds": (0, 1, 2)})
        rows = run_grid(c, with_comm=False)
        assert rows[0]["seeds"] == 3
        assert rows[0]["ratio_max"] >= rows[0]["ratio"]


class TestRowKey:
    """Regression: every grid row carries a stable, parameter-derived key.

    Cell indices are positional (an artifact of one enumeration); the
    ``row_key`` is the shared identity the parallel dispatcher's keyed
    aggregation and the campaign result store join on.  Pinned so a
    change to the key format is a deliberate act — campaign reports and
    run_grid rows must keep agreeing on it.
    """

    def test_rows_carry_stable_row_key(self):
        from repro.experiments.runner import row_key

        c = ExperimentConfig(
            **{**FAST, "m_values": (2, 4), "block_sizes": (1, 8),
               "algorithms": ("random_delay_priority", "fifo")}
        )
        rows = run_grid(c, with_comm=False)
        assert len(rows) == 8
        for r in rows:
            assert r["row_key"] == row_key(
                r["algorithm"], r["m"], r["block_size"]
            )
        # Keys are unique per row and independent of enumeration order.
        assert len({r["row_key"] for r in rows}) == len(rows)

    def test_row_key_format_pinned(self):
        from repro.experiments.runner import row_key

        assert row_key("fifo", 8, 1) == "fifo/b1/m8"

    def test_row_key_identical_across_serial_and_parallel(self):
        c = ExperimentConfig(
            **{**FAST, "seeds": (0, 1), "m_values": (2, 4)}
        )
        serial = run_grid(c, with_comm=False, workers=1)
        parallel = run_grid(c, with_comm=False, workers=2)
        assert [r["row_key"] for r in serial] == [
            r["row_key"] for r in parallel
        ]


class TestReport:
    def test_format_table_aligned(self):
        rows = [{"a": 1, "b": 2.5}, {"a": 10, "b": 0.125}]
        text = format_table(rows, ["a", "b"], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "b" in lines[1]
        assert len(lines) == 5

    def test_format_series_pivots(self):
        rows = [
            {"m": 2, "algo": "x", "y": 1.0},
            {"m": 2, "algo": "z", "y": 2.0},
            {"m": 4, "algo": "x", "y": 3.0},
        ]
        text = format_series(rows, x="m", y="y", group_by="algo")
        assert "x" in text and "z" in text
        # Missing (m=4, z) cell renders empty without crashing.
        assert text.count("3") >= 1

    def test_pick(self):
        rows = [{"m": 2, "k": 8}, {"m": 4, "k": 8}]
        assert pick(rows, m=2) == [{"m": 2, "k": 8}]
        assert pick(rows, m=2, k=9) == []


@pytest.mark.slow
class TestPaperDrivers:
    """Smoke-run every figure driver at miniature scale."""

    def test_fig2a(self):
        rows, text = paper.fig2a(target_cells=250, m_values=(2, 4),
                                 block_sizes=(1, 8), seeds=(0,))
        assert "Fig 2(a)" in text
        assert len(rows) == 4

    def test_fig2b(self):
        rows, text = paper.fig2b(target_cells=250, m_values=(2, 4),
                                 block_sizes=(1, 8), seeds=(0,))
        assert "C1" in text and "C2" in text
        # Block partitioning cuts C1 at every m.
        for m in (2, 4):
            cell = pick(rows, m=m, block_size=1)[0]
            block = pick(rows, m=m, block_size=8)[0]
            assert block["c1"] < cell["c1"]

    def test_fig2c(self):
        rows, text = paper.fig2c(target_cells=250, m_values=(4, 16),
                                 k_values=(4,), seeds=(0,))
        assert "Fig 2(c)" in text
        # Priorities never lose to plain random delay at any m.
        for m in (4, 16):
            plain = pick(rows, m=m, algorithm="random_delay")[0]
            prio = pick(rows, m=m, algorithm="random_delay_priority")[0]
            assert prio["ratio"] <= plain["ratio"]

    def test_fig3a(self):
        rows, text = paper.fig3a(target_cells=250, m_values=(2, 4),
                                 k_values=(4,), seeds=(0,), block_size=8)
        assert len(rows) == 4

    def test_fig3b(self):
        rows, _ = paper.fig3b(target_cells=250, m_values=(2,),
                              k_values=(4,), seeds=(0,), block_size=8)
        assert {r["algorithm"] for r in rows} == {
            "random_delay_priority", "descendant", "descendant_delays"
        }

    def test_fig3c(self):
        rows, _ = paper.fig3c(target_cells=250, m_values=(2,),
                              k_values=(4,), seeds=(0,), block_size=8)
        assert {r["algorithm"] for r in rows} == {
            "random_delay_priority", "dfds", "dfds_delays"
        }

    def test_headline(self):
        rows, text = paper.headline_bounds(
            target_cells=250, meshes=("tetonly",), m_values=(4,),
            k_values=(8,), seeds=(0,),
        )
        assert "within_3x" in text


class TestParallelGrid:
    def test_parallel_matches_serial(self):
        c = ExperimentConfig(**{**FAST, "seeds": (0, 1)})
        serial = run_grid(c, with_comm=False)
        parallel = run_grid(c, with_comm=False, workers=2)
        assert serial == parallel

    def test_workers_one_is_serial_path(self):
        c = ExperimentConfig(**FAST)
        assert run_grid(c, with_comm=False, workers=1) == run_grid(
            c, with_comm=False
        )
