"""Failure injection: the validator must catch every class of corruption.

Each mutation takes a known-good schedule, breaks exactly one
feasibility property, and asserts :func:`validate_schedule` rejects it.
This is the guard against the classic reproduction failure mode — a
checker that silently agrees with the code it is supposed to check.

``TestMutationKill`` goes further: it enumerates every ``raise`` branch
in :func:`validate_schedule` by its message pattern, and for each one
crafts a corruption that *semantically* violates only that property —
then asserts the raised message matches the targeted branch and none of
the others.  Together with the branch-count census this proves no
validator branch is dead and no corruption class is shadowed by an
earlier check.

The one infeasibility the validator cannot see — a cell whose copies run
on *different* processors — is structurally impossible in the
``Schedule`` representation (tasks inherit their cell's processor); the
``same_processor`` oracle in :mod:`repro.fuzz.oracles` covers that class
for hypothetical alternative representations, and
``tests/test_fuzz.py::TestOraclePack::test_same_processor_split_caught``
pins it.
"""

import inspect
import re

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import random_delay_priority_schedule, validate_schedule
from repro.util.errors import InvalidScheduleError

from .strategies import sweep_instances


@pytest.fixture()
def good(tet_instance):
    return random_delay_priority_schedule(tet_instance, 4, seed=0)


def clone(s):
    from copy import copy

    out = copy(s)
    out.start = s.start.copy()
    out.assignment = s.assignment.copy()
    return out


class TestMutations:
    def test_reversing_an_edge_start_pair_caught(self, good):
        union = good.instance.union_dag()
        u, v = union.edges[0]
        bad = clone(good)
        bad.start[u], bad.start[v] = bad.start[v], bad.start[u]
        with pytest.raises(InvalidScheduleError):
            validate_schedule(bad)

    def test_slot_collision_caught(self, good):
        proc = good.task_proc()
        same_proc = np.flatnonzero(proc == proc[0])
        a, b = same_proc[0], same_proc[1]
        bad = clone(good)
        bad.start[b] = bad.start[a]
        with pytest.raises(InvalidScheduleError):
            validate_schedule(bad)

    def test_unscheduled_task_caught(self, good):
        bad = clone(good)
        bad.start[3] = -1
        with pytest.raises(InvalidScheduleError):
            validate_schedule(bad)

    def test_proc_out_of_range_caught(self, good):
        bad = clone(good)
        bad.assignment[0] = bad.m
        with pytest.raises(InvalidScheduleError):
            validate_schedule(bad)

    def test_truncated_start_caught(self, good):
        bad = clone(good)
        bad.start = bad.start[:-1]
        with pytest.raises(InvalidScheduleError):
            validate_schedule(bad)

    def test_reassigning_one_cell_collides_or_passes_feasibly(self, good):
        """Moving one cell to another processor keeps the same-processor
        constraint (it moves all its copies) — so the result is invalid
        only if it creates a slot collision; the validator must agree
        with a direct slot check."""
        bad = clone(good)
        bad.assignment[0] = (bad.assignment[0] + 1) % bad.m
        proc = bad.task_proc()
        slots = proc * (int(bad.start.max()) + 1) + bad.start
        has_collision = np.unique(slots).size != slots.size
        if has_collision:
            with pytest.raises(InvalidScheduleError):
                validate_schedule(bad)
        else:
            validate_schedule(bad)


#: Every raise branch of validate_schedule, by unique message pattern.
VALIDATOR_BRANCHES = {
    "start_shape": r"start has shape",
    "assignment_shape": r"assignment has shape",
    "nonpositive_m": r"processor count must be positive",
    "negative_start": r"tasks have no start time",
    "assignment_range": r"assignment values must lie in",
    "slot_collision": r"processor-step slot",
    "precedence": r"violated: start",
}


class TestMutationKill:
    """One corruption per validator branch; each must fire its own branch
    and no other."""

    def _assert_only_branch(self, bad, branch: str):
        with pytest.raises(InvalidScheduleError) as exc_info:
            validate_schedule(bad)
        message = str(exc_info.value)
        assert re.search(VALIDATOR_BRANCHES[branch], message), (
            f"corruption targeting {branch!r} raised a different branch: "
            f"{message}"
        )
        for other, pattern in VALIDATOR_BRANCHES.items():
            if other != branch:
                assert not re.search(pattern, message), (
                    f"branch {other!r} also matched message {message!r}"
                )

    def test_branch_census_is_complete(self):
        """No dead branches: the pattern table covers every raise in the
        validator, so each entry below exercises a distinct live branch."""
        source = inspect.getsource(validate_schedule)
        n_raises = source.count("raise InvalidScheduleError")
        assert n_raises == len(VALIDATOR_BRANCHES), (
            f"validate_schedule has {n_raises} raise branches but the "
            f"mutation-kill table lists {len(VALIDATOR_BRANCHES)} — "
            f"update VALIDATOR_BRANCHES and add a targeted corruption"
        )

    def test_wrong_shape_start(self, good):
        bad = clone(good)
        bad.start = bad.start[:-1]
        self._assert_only_branch(bad, "start_shape")

    def test_wrong_shape_assignment(self, good):
        bad = clone(good)
        bad.assignment = np.concatenate([bad.assignment, [0]])
        self._assert_only_branch(bad, "assignment_shape")

    def test_nonpositive_processor_count(self, good):
        bad = clone(good)
        bad.m = 0
        self._assert_only_branch(bad, "nonpositive_m")

    def test_negative_start(self, good):
        # Corrupt a task with no predecessors so that, semantically, only
        # the "has a start time" property is broken.
        union = good.instance.union_dag()
        indeg = union.indegree()
        tid = int(np.flatnonzero(indeg == 0)[0])
        bad = clone(good)
        bad.start[tid] = -1
        self._assert_only_branch(bad, "negative_start")

    def test_out_of_range_assignment(self, good):
        bad = clone(good)
        bad.assignment[0] = bad.m
        self._assert_only_branch(bad, "assignment_range")
        bad.assignment[0] = -1
        self._assert_only_branch(bad, "assignment_range")

    def test_slot_collision_without_precedence_break(self, good):
        # Move a source task (no predecessors) *earlier* onto an occupied
        # slot of its own processor: successors only get later relative
        # starts, so precedence stays intact and only capacity breaks.
        union = good.instance.union_dag()
        indeg = union.indegree()
        proc = good.task_proc()
        sources = np.flatnonzero(indeg == 0)
        for b in sources:
            same = np.flatnonzero(
                (proc == proc[b]) & (good.start < good.start[b])
            )
            if same.size:
                a = int(same[0])
                bad = clone(good)
                bad.start[int(b)] = bad.start[a]
                self._assert_only_branch(bad, "slot_collision")
                return
        pytest.fail("fixture has no source task with an earlier same-proc task")

    def test_precedence_break_without_collision(self, good):
        # Push an edge source beyond the makespan: its slot is fresh (no
        # collision possible) but it now finishes after its successor.
        union = good.instance.union_dag()
        u = int(union.edges[0, 0])
        bad = clone(good)
        bad.start[u] = bad.start.max() + 5
        self._assert_only_branch(bad, "precedence")


class TestRandomisedMutations:
    @given(sweep_instances(max_n=10, max_k=3), st.integers(0, 10**6))
    @settings(max_examples=30, deadline=None)
    def test_random_start_shuffle_never_validates_wrongly(self, inst, seed):
        """Shuffling all start times yields either a still-feasible
        schedule (possible for instances with no edges) or a validator
        error — never a crash, and never acceptance of a precedence
        violation."""
        s = random_delay_priority_schedule(inst, 2, seed=0)
        rng = np.random.default_rng(seed)
        bad = clone(s)
        rng.shuffle(bad.start)
        union = inst.union_dag()
        breaks_precedence = bool(
            union.num_edges
            and np.any(
                bad.start[union.edges[:, 0]] >= bad.start[union.edges[:, 1]]
            )
        )
        proc = bad.task_proc()
        slots = proc * (int(bad.start.max()) + 1) + bad.start
        collides = np.unique(slots).size != slots.size
        if breaks_precedence or collides:
            with pytest.raises(InvalidScheduleError):
                validate_schedule(bad)
        else:
            validate_schedule(bad)
