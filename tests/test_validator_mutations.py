"""Failure injection: the validator must catch every class of corruption.

Each mutation takes a known-good schedule, breaks exactly one
feasibility property, and asserts :func:`validate_schedule` rejects it.
This is the guard against the classic reproduction failure mode — a
checker that silently agrees with the code it is supposed to check.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import random_delay_priority_schedule, validate_schedule
from repro.util.errors import InvalidScheduleError

from .strategies import sweep_instances


@pytest.fixture()
def good(tet_instance):
    return random_delay_priority_schedule(tet_instance, 4, seed=0)


def clone(s):
    from copy import copy

    out = copy(s)
    out.start = s.start.copy()
    out.assignment = s.assignment.copy()
    return out


class TestMutations:
    def test_reversing_an_edge_start_pair_caught(self, good):
        union = good.instance.union_dag()
        u, v = union.edges[0]
        bad = clone(good)
        bad.start[u], bad.start[v] = bad.start[v], bad.start[u]
        with pytest.raises(InvalidScheduleError):
            validate_schedule(bad)

    def test_slot_collision_caught(self, good):
        proc = good.task_proc()
        same_proc = np.flatnonzero(proc == proc[0])
        a, b = same_proc[0], same_proc[1]
        bad = clone(good)
        bad.start[b] = bad.start[a]
        with pytest.raises(InvalidScheduleError):
            validate_schedule(bad)

    def test_unscheduled_task_caught(self, good):
        bad = clone(good)
        bad.start[3] = -1
        with pytest.raises(InvalidScheduleError):
            validate_schedule(bad)

    def test_proc_out_of_range_caught(self, good):
        bad = clone(good)
        bad.assignment[0] = bad.m
        with pytest.raises(InvalidScheduleError):
            validate_schedule(bad)

    def test_truncated_start_caught(self, good):
        bad = clone(good)
        bad.start = bad.start[:-1]
        with pytest.raises(InvalidScheduleError):
            validate_schedule(bad)

    def test_reassigning_one_cell_collides_or_passes_feasibly(self, good):
        """Moving one cell to another processor keeps the same-processor
        constraint (it moves all its copies) — so the result is invalid
        only if it creates a slot collision; the validator must agree
        with a direct slot check."""
        bad = clone(good)
        bad.assignment[0] = (bad.assignment[0] + 1) % bad.m
        proc = bad.task_proc()
        slots = proc * (int(bad.start.max()) + 1) + bad.start
        has_collision = np.unique(slots).size != slots.size
        if has_collision:
            with pytest.raises(InvalidScheduleError):
                validate_schedule(bad)
        else:
            validate_schedule(bad)


class TestRandomisedMutations:
    @given(sweep_instances(max_n=10, max_k=3), st.integers(0, 10**6))
    @settings(max_examples=30, deadline=None)
    def test_random_start_shuffle_never_validates_wrongly(self, inst, seed):
        """Shuffling all start times yields either a still-feasible
        schedule (possible for instances with no edges) or a validator
        error — never a crash, and never acceptance of a precedence
        violation."""
        s = random_delay_priority_schedule(inst, 2, seed=0)
        rng = np.random.default_rng(seed)
        bad = clone(s)
        rng.shuffle(bad.start)
        union = inst.union_dag()
        breaks_precedence = bool(
            union.num_edges
            and np.any(
                bad.start[union.edges[:, 0]] >= bad.start[union.edges[:, 1]]
            )
        )
        proc = bad.task_proc()
        slots = proc * (int(bad.start.max()) + 1) + bad.start
        collides = np.unique(slots).size != slots.size
        if breaks_precedence or collides:
            with pytest.raises(InvalidScheduleError):
                validate_schedule(bad)
        else:
            validate_schedule(bad)
