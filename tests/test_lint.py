"""Tests for the AST invariant linter (``repro.lint``).

Four layers of coverage:

* **clean-tree gate** — ``repro lint src/repro`` must be clean; this is
  the test that makes every rule a repo-wide invariant;
* **fixture pairs** — each ``tests/lint_fixtures/RPL00X_bad.py`` must
  trigger exactly rule RPL00X (with the expected finding count and real
  line numbers), each ``RPL00X_ok.py`` must be silent;
* **mutation self-tests** — neuter each rule's checker and assert the
  bad fixture goes quiet, proving the fixture actually exercises that
  checker (a rule whose ``check`` silently broke would fail here);
* **engine mechanics** — pragmas (suppression, required justification,
  JSON accounting), fixture path directives, syntax-error handling, and
  the CLI surface (exit codes, output formats).
"""

from __future__ import annotations

import json
import os

import pytest

from repro.cli import main
from repro.lint import (
    LintReport,
    all_rules,
    get_rule,
    lint_file,
    lint_paths,
    lint_source,
    package_relpath,
)

FIXTURE_DIR = os.path.join(os.path.dirname(__file__), "lint_fixtures")
SRC_REPRO = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src", "repro"
)

#: Rule code → number of findings its known-bad fixture must produce.
#: Exact counts (not ``> 0``) so a checker that half-breaks — stops
#: seeing one of the banned forms — still fails the suite.
EXPECTED_BAD = {
    "RPL001": 6,
    "RPL002": 3,
    "RPL003": 2,
    "RPL004": 4,
    "RPL005": 3,
    "RPL006": 4,
    "RPL007": 6,
}


def _fixture(code: str, kind: str) -> str:
    return os.path.join(FIXTURE_DIR, f"{code}_{kind}.py")


# ---------------------------------------------------------------------------
# Clean-tree gate
# ---------------------------------------------------------------------------


class TestCleanTree:
    def test_src_repro_is_lint_clean(self):
        report = lint_paths([SRC_REPRO])
        assert report.files_checked > 50
        assert report.ok, "\n" + report.format_text()

    def test_every_pragma_in_tree_is_justified(self):
        report = lint_paths([SRC_REPRO])
        for pragma in report.pragmas:
            assert pragma.justification, f"{pragma.path}:{pragma.line}"

    def test_registry_has_the_shipped_rules(self):
        codes = [r.code for r in all_rules()]
        assert codes == sorted(codes)
        assert set(EXPECTED_BAD) <= set(codes)


# ---------------------------------------------------------------------------
# Fixture pairs
# ---------------------------------------------------------------------------


class TestFixturePairs:
    @pytest.mark.parametrize("code", sorted(EXPECTED_BAD))
    def test_bad_fixture_triggers_only_its_rule(self, code):
        report = lint_file(_fixture(code, "bad"))
        assert len(report.diagnostics) == EXPECTED_BAD[code], (
            "\n" + report.format_text()
        )
        assert {d.rule for d in report.diagnostics} == {code}
        for diag in report.diagnostics:
            assert diag.line > 0
            assert diag.path.endswith(f"{code}_bad.py")
            # file:line:col prefix is what editors and CI jump on.
            assert diag.format().startswith(f"{diag.path}:{diag.line}:")

    @pytest.mark.parametrize("code", sorted(EXPECTED_BAD))
    def test_ok_fixture_is_silent(self, code):
        report = lint_file(_fixture(code, "ok"))
        assert report.ok, "\n" + report.format_text()

    def test_bad_fixtures_flag_distinct_lines(self):
        # Findings must carry real positions, not all point at line 1.
        for code in sorted(EXPECTED_BAD):
            report = lint_file(_fixture(code, "bad"))
            lines = {d.line for d in report.diagnostics}
            assert len(lines) > 1, code


# ---------------------------------------------------------------------------
# Mutation self-tests: break each checker, the fixtures must notice
# ---------------------------------------------------------------------------


class TestMutation:
    @pytest.mark.parametrize("code", sorted(EXPECTED_BAD))
    def test_neutered_checker_fails_the_fixture_expectation(
        self, code, monkeypatch
    ):
        """If RPL00X's ``check`` stopped reporting, its bad fixture would
        lint clean — exactly the condition
        ``test_bad_fixture_triggers_only_its_rule`` asserts against."""
        rule = get_rule(code)
        before = lint_file(_fixture(code, "bad"))
        assert len(before.diagnostics) == EXPECTED_BAD[code]

        monkeypatch.setattr(rule, "check", lambda ctx: [])
        after = lint_file(_fixture(code, "bad"))
        assert len(after.diagnostics) == 0
        assert len(after.diagnostics) != EXPECTED_BAD[code]

    @pytest.mark.parametrize("code", sorted(EXPECTED_BAD))
    def test_descoped_rule_fails_the_fixture_expectation(
        self, code, monkeypatch
    ):
        """A rule whose ``applies`` predicate broke (never in scope) is as
        dead as one whose checker broke; the fixtures catch that too."""
        rule = get_rule(code)
        monkeypatch.setattr(rule, "applies", lambda relpath: False)
        after = lint_file(_fixture(code, "bad"))
        assert after.ok


# ---------------------------------------------------------------------------
# Pragmas
# ---------------------------------------------------------------------------

_BAD_CALL = "import random\n\n\ndef f():\n    return random.random()\n"


class TestPragmas:
    def test_justified_pragma_suppresses_on_its_line(self):
        source = (
            "import random\n\n\ndef f():\n"
            "    return random.random()  "
            "# repro-lint: disable=RPL001 -- fixture exercising suppression\n"
        )
        report = lint_source(source, path="src/repro/core/x.py")
        # The import finding survives; only the call's line is covered.
        assert [d.line for d in report.diagnostics] == [1]
        assert report.suppressed == 1
        assert len(report.pragmas) == 1
        assert report.pragmas[0].rules == ("RPL001",)
        assert "suppression" in report.pragmas[0].justification

    def test_pragma_without_justification_is_itself_a_finding(self):
        source = "x = 1  # repro-lint: disable=RPL001\n"
        report = lint_source(source, path="src/repro/core/x.py")
        assert [d.rule for d in report.diagnostics] == ["RPL000"]
        assert "justification" in report.diagnostics[0].message
        assert report.pragmas == []

    def test_unjustified_pragma_does_not_suppress(self):
        source = _BAD_CALL.replace(
            "return random.random()",
            "return random.random()  # repro-lint: disable=RPL001",
        )
        report = lint_source(source, path="src/repro/core/x.py")
        codes = sorted(d.rule for d in report.diagnostics)
        assert "RPL000" in codes and "RPL001" in codes
        assert report.suppressed == 0

    def test_pragma_only_silences_listed_rules(self):
        source = _BAD_CALL.replace(
            "return random.random()",
            "return random.random()  "
            "# repro-lint: disable=RPL005 -- wrong rule on purpose",
        )
        report = lint_source(source, path="src/repro/core/x.py")
        assert {d.rule for d in report.diagnostics} == {"RPL001"}
        assert report.suppressed == 0

    def test_multi_rule_pragma(self):
        source = (
            "import random  "
            "# repro-lint: disable=RPL001,RPL005 -- multi-code pragma\n"
        )
        report = lint_source(source, path="src/repro/core/x.py")
        assert report.ok
        assert report.pragmas[0].rules == ("RPL001", "RPL005")

    def test_pragma_inside_string_literal_is_ignored(self):
        source = 's = "# repro-lint: disable=RPL001"\n'
        report = lint_source(source, path="src/repro/core/x.py")
        assert report.ok
        assert report.pragmas == []

    def test_pragmas_counted_in_json(self):
        source = (
            "import numpy as np\n"
            "g = np.random.default_rng(0)  "
            "# repro-lint: disable=RPL001 -- json accounting test\n"
        )
        report = lint_source(source, path="src/repro/core/x.py")
        payload = json.loads(report.format_json())
        assert payload["ok"] is True
        assert payload["pragma_count"] == 1
        assert payload["suppressed"] == 1
        assert payload["pragmas"][0]["rules"] == ["RPL001"]
        assert payload["pragmas"][0]["justification"] == "json accounting test"


# ---------------------------------------------------------------------------
# Engine mechanics
# ---------------------------------------------------------------------------


class TestEngine:
    def test_package_relpath(self):
        assert package_relpath("src/repro/core/dag.py") == "core/dag.py"
        assert package_relpath("/a/b/repro/util/rng.py") == "util/rng.py"
        assert package_relpath("tests/test_lint.py") is None
        assert package_relpath("src/repro") is None

    def test_fixture_directive_sets_virtual_path(self):
        # RPL005 only applies to hot-path files; the directive opts a
        # fixture in from anywhere on disk.
        body = "import numpy as np\n\n\ndef f(pool, tid):\n    return np.append(pool, tid)\n"
        silent = lint_source(body, path="tests/x.py")
        assert silent.ok
        opted_in = lint_source(
            "# repro-lint-fixture: path=core/fast_scheduler.py\n" + body,
            path="tests/x.py",
        )
        assert [d.rule for d in opted_in.diagnostics] == ["RPL005"]

    def test_syntax_error_is_reported_not_raised(self):
        report = lint_source("def broken(:\n", path="src/repro/core/x.py")
        assert not report.ok
        assert report.diagnostics[0].rule == "RPL000"
        assert "syntax error" in report.diagnostics[0].message

    def test_rule_subset_restricts_checking(self):
        report = lint_file(
            _fixture("RPL001", "bad"), rules=[get_rule("RPL005")]
        )
        assert report.ok

    def test_report_extend_and_sort(self):
        total = LintReport()
        for code in sorted(EXPECTED_BAD):
            total.extend(lint_file(_fixture(code, "bad")))
        total.sort()
        assert len(total.diagnostics) == sum(EXPECTED_BAD.values())
        assert total.files_checked == len(EXPECTED_BAD)
        keys = [(d.path, d.line, d.col) for d in total.diagnostics]
        assert keys == sorted(keys)

    def test_lint_paths_walks_directories(self):
        report = lint_paths([FIXTURE_DIR])
        # The walk recurses into the deep/ fixture packages too, so the
        # file count exceeds the flat pairs; the exact-count contract
        # applies to the flat fixtures (deep packages have their own
        # suite, tests/test_lint_deep.py).
        assert report.files_checked > 2 * len(EXPECTED_BAD)
        counts: dict[str, int] = {}
        for diag in report.diagnostics:
            if os.path.dirname(diag.path) == FIXTURE_DIR:
                counts[diag.rule] = counts.get(diag.rule, 0) + 1
        assert counts == EXPECTED_BAD


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------


class TestCli:
    def test_clean_path_exits_zero(self, capsys):
        assert main(["lint", _fixture("RPL001", "ok")]) == 0
        out = capsys.readouterr().out
        assert "0 findings" in out

    def test_bad_fixture_exits_nonzero_with_locations(self, capsys):
        assert main(["lint", _fixture("RPL003", "bad")]) == 1
        out = capsys.readouterr().out
        assert "RPL003" in out
        # file:line:col diagnostics, one per finding.
        assert out.count("RPL003_bad.py:") == EXPECTED_BAD["RPL003"]

    @pytest.mark.parametrize("code", sorted(EXPECTED_BAD))
    def test_every_bad_fixture_fails_from_the_cli(self, code, capsys):
        assert main(["lint", _fixture(code, "bad")]) == 1
        capsys.readouterr()

    def test_json_format(self, capsys):
        assert main(
            ["lint", "--format=json", _fixture("RPL004", "bad")]
        ) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert len(payload["findings"]) == EXPECTED_BAD["RPL004"]
        assert all(f["rule"] == "RPL004" for f in payload["findings"])

    def test_github_format(self, capsys):
        assert main(
            ["lint", "--format=github", _fixture("RPL005", "bad")]
        ) == 1
        out = capsys.readouterr().out
        assert out.count("::error file=") == EXPECTED_BAD["RPL005"]
        assert "title=RPL005" in out

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in EXPECTED_BAD:
            assert code in out

    def test_rule_filter(self, capsys):
        assert main(
            ["lint", "--rule", "RPL005", _fixture("RPL001", "bad")]
        ) == 0
        capsys.readouterr()

    def test_unknown_rule_exits_two(self, capsys):
        assert main(["lint", "--rule", "RPL999", FIXTURE_DIR]) == 2
        assert "RPL999" in capsys.readouterr().err

    def test_missing_path_exits_two(self, capsys):
        assert main(["lint", "does/not/exist.py"]) == 2
        assert "no such path" in capsys.readouterr().err
