"""Tests for Algorithm 2 (Random Delays with Priorities)."""

import numpy as np
from hypothesis import given, settings

from repro.core import (
    random_delay_priority_schedule,
    random_delay_schedule,
)

from .strategies import sweep_instances


class TestAlgorithm2:
    def test_feasible(self, tet_instance):
        s = random_delay_priority_schedule(tet_instance, 8, seed=0)
        s.validate()

    def test_deterministic(self, tet_instance):
        a = random_delay_priority_schedule(tet_instance, 8, seed=3)
        b = random_delay_priority_schedule(tet_instance, 8, seed=3)
        assert np.array_equal(a.start, b.start)

    def test_meta(self, chain_instance):
        s = random_delay_priority_schedule(chain_instance, 2, seed=0)
        assert s.meta["algorithm"] == "random_delay_priority"

    def test_compaction_never_loses_to_algorithm1(self, tet_instance):
        """With identical randomness (same delays, same assignment), the
        prioritized list schedule compacts Algorithm 1's layer schedule:
        it should never be worse on real meshes."""
        rng = np.random.default_rng(0)
        delays = rng.integers(0, tet_instance.k, size=tet_instance.k)
        assignment = rng.integers(0, 8, size=tet_instance.n_cells)
        a1 = random_delay_schedule(
            tet_instance, 8, delays=delays, assignment=assignment
        )
        a2 = random_delay_priority_schedule(
            tet_instance, 8, delays=delays, assignment=assignment
        )
        assert a2.makespan <= a1.makespan

    def test_improvement_grows_with_m(self, tet_instance):
        """Paper Fig. 2(c): the gap between Alg 1 and Alg 2 widens as m
        grows (up to ~4x there).  Check the ratio is at least monotone
        non-trivially at the two extremes we can afford."""
        gaps = []
        for m in (4, 32):
            rng = np.random.default_rng(1)
            delays = rng.integers(0, tet_instance.k, size=tet_instance.k)
            assignment = rng.integers(0, m, size=tet_instance.n_cells)
            a1 = random_delay_schedule(
                tet_instance, m, delays=delays, assignment=assignment
            )
            a2 = random_delay_priority_schedule(
                tet_instance, m, delays=delays, assignment=assignment
            )
            gaps.append(a1.makespan / a2.makespan)
        assert gaps[1] > gaps[0]

    @given(sweep_instances())
    @settings(max_examples=25, deadline=None)
    def test_always_feasible(self, inst):
        s = random_delay_priority_schedule(inst, 3, seed=0)
        s.validate()

    @given(sweep_instances(max_n=12, max_k=3))
    @settings(max_examples=20, deadline=None)
    def test_compaction_property_randomised(self, inst):
        rng = np.random.default_rng(0)
        delays = rng.integers(0, inst.k, size=inst.k)
        assignment = rng.integers(0, 2, size=inst.n_cells)
        a1 = random_delay_schedule(inst, 2, delays=delays, assignment=assignment)
        a2 = random_delay_priority_schedule(
            inst, 2, delays=delays, assignment=assignment
        )
        assert a2.makespan <= a1.makespan
