"""Tests for sweep-DAG induction from meshes."""

import numpy as np
import pytest

from repro.core.dag import Dag
from repro.mesh import Mesh
from repro.sweeps import build_instance, circle_directions, sweep_dag, sweep_edges
from repro.util.errors import MeshError


class TestStructuredGridSweeps:
    def test_plus_x_direction_chains_rows(self):
        mesh = Mesh.structured_grid((3, 1))
        edges = sweep_edges(mesh, np.array([1.0, 0.0]))
        assert sorted(map(tuple, edges.tolist())) == [(0, 1), (1, 2)]

    def test_minus_x_reverses(self):
        mesh = Mesh.structured_grid((3, 1))
        edges = sweep_edges(mesh, np.array([-1.0, 0.0]))
        assert sorted(map(tuple, edges.tolist())) == [(1, 0), (2, 1)]

    def test_perpendicular_faces_unconstrained(self):
        """Sweeping along +x imposes nothing across y-faces."""
        mesh = Mesh.structured_grid((2, 2))
        edges = sweep_edges(mesh, np.array([1.0, 0.0]))
        # Only the two x-adjacencies appear.
        assert edges.shape[0] == 2

    def test_diagonal_direction_orders_both_axes(self):
        mesh = Mesh.structured_grid((2, 2))
        w = np.array([1.0, 1.0]) / np.sqrt(2)
        g = sweep_dag(mesh, w)
        # Cell (0,0)=id0 must precede (1,1)=id3 via both (0,1) and (1,0).
        lev = g.level_of()
        assert lev[0] == 0 and lev[3] == 2

    def test_grid_sweep_level_count(self):
        mesh = Mesh.structured_grid((4, 4))
        w = np.array([1.0, 1.0]) / np.sqrt(2)
        g = sweep_dag(mesh, w)
        # Diagonal wavefronts: 4 + 4 - 1 levels.
        assert g.num_levels() == 7

    def test_rejects_wrong_direction_shape(self):
        mesh = Mesh.structured_grid((2, 2))
        with pytest.raises(MeshError, match="direction"):
            sweep_edges(mesh, np.array([1.0, 0.0, 0.0]))


class TestDelaunaySweeps:
    def test_all_directions_acyclic(self, tri_mesh):
        for w in circle_directions(8):
            g = sweep_dag(tri_mesh, w, allow_cycle_breaking=False)
            assert isinstance(g, Dag)  # constructor validates acyclicity

    def test_opposite_directions_reverse_edges(self, tri_mesh):
        w = np.array([1.0, 0.0])
        fwd = set(map(tuple, sweep_edges(tri_mesh, w).tolist()))
        bwd = set(map(tuple, sweep_edges(tri_mesh, -w).tolist()))
        assert fwd == {(v, u) for (u, v) in bwd}

    def test_every_interior_face_constrains_generic_direction(self, tri_mesh):
        """For a generic direction no face is exactly parallel, so every
        adjacency pair induces exactly one edge."""
        w = np.array([0.8716, 0.4902])
        w = w / np.linalg.norm(w)
        edges = sweep_edges(tri_mesh, w)
        assert edges.shape[0] == tri_mesh.n_faces

    def test_3d_instance_depth_reasonable(self, tet_instance, tet_mesh):
        # Depth cannot exceed the cell count and must be at least a few
        # layers for any real mesh.
        assert 3 <= tet_instance.depth() <= tet_mesh.n_cells


class TestBuildInstance:
    def test_instance_shape(self, tri_mesh):
        inst = build_instance(tri_mesh, circle_directions(4))
        assert inst.k == 4
        assert inst.n_cells == tri_mesh.n_cells
        assert inst.name.endswith("_k4")

    def test_cell_graph_edges_are_mesh_adjacency(self, tri_mesh):
        inst = build_instance(tri_mesh, circle_directions(4))
        assert np.array_equal(inst.cell_graph_edges, tri_mesh.adjacency)

    def test_rejects_wrong_direction_dim(self, tri_mesh):
        with pytest.raises(MeshError, match="directions"):
            build_instance(tri_mesh, np.ones((4, 3)))

    def test_custom_name(self, tri_mesh):
        inst = build_instance(tri_mesh, circle_directions(2), name="custom")
        assert inst.name == "custom"
