"""Tests for sweep-DAG induction from meshes."""

import zlib

import numpy as np
import pytest

from repro.core.dag import Dag
from repro.mesh import Mesh
from repro.mesh.generators import make_mesh, mesh_dim
from repro.sweeps import (
    build_instance,
    circle_directions,
    directions_for_mesh,
    sweep_dag,
    sweep_edges,
)
from repro.sweeps.dag_builder import DEFAULT_TOL
from repro.util.errors import MeshError


class TestStructuredGridSweeps:
    def test_plus_x_direction_chains_rows(self):
        mesh = Mesh.structured_grid((3, 1))
        edges = sweep_edges(mesh, np.array([1.0, 0.0]))
        assert sorted(map(tuple, edges.tolist())) == [(0, 1), (1, 2)]

    def test_minus_x_reverses(self):
        mesh = Mesh.structured_grid((3, 1))
        edges = sweep_edges(mesh, np.array([-1.0, 0.0]))
        assert sorted(map(tuple, edges.tolist())) == [(1, 0), (2, 1)]

    def test_perpendicular_faces_unconstrained(self):
        """Sweeping along +x imposes nothing across y-faces."""
        mesh = Mesh.structured_grid((2, 2))
        edges = sweep_edges(mesh, np.array([1.0, 0.0]))
        # Only the two x-adjacencies appear.
        assert edges.shape[0] == 2

    def test_diagonal_direction_orders_both_axes(self):
        mesh = Mesh.structured_grid((2, 2))
        w = np.array([1.0, 1.0]) / np.sqrt(2)
        g = sweep_dag(mesh, w)
        # Cell (0,0)=id0 must precede (1,1)=id3 via both (0,1) and (1,0).
        lev = g.level_of()
        assert lev[0] == 0 and lev[3] == 2

    def test_grid_sweep_level_count(self):
        mesh = Mesh.structured_grid((4, 4))
        w = np.array([1.0, 1.0]) / np.sqrt(2)
        g = sweep_dag(mesh, w)
        # Diagonal wavefronts: 4 + 4 - 1 levels.
        assert g.num_levels() == 7

    def test_rejects_wrong_direction_shape(self):
        mesh = Mesh.structured_grid((2, 2))
        with pytest.raises(MeshError, match="direction"):
            sweep_edges(mesh, np.array([1.0, 0.0, 0.0]))


class TestDelaunaySweeps:
    def test_all_directions_acyclic(self, tri_mesh):
        for w in circle_directions(8):
            g = sweep_dag(tri_mesh, w, allow_cycle_breaking=False)
            assert isinstance(g, Dag)  # constructor validates acyclicity

    def test_opposite_directions_reverse_edges(self, tri_mesh):
        w = np.array([1.0, 0.0])
        fwd = set(map(tuple, sweep_edges(tri_mesh, w).tolist()))
        bwd = set(map(tuple, sweep_edges(tri_mesh, -w).tolist()))
        assert fwd == {(v, u) for (u, v) in bwd}

    def test_every_interior_face_constrains_generic_direction(self, tri_mesh):
        """For a generic direction no face is exactly parallel, so every
        adjacency pair induces exactly one edge."""
        w = np.array([0.8716, 0.4902])
        w = w / np.linalg.norm(w)
        edges = sweep_edges(tri_mesh, w)
        assert edges.shape[0] == tri_mesh.n_faces

    def test_3d_instance_depth_reasonable(self, tet_instance, tet_mesh):
        # Depth cannot exceed the cell count and must be at least a few
        # layers for any real mesh.
        assert 3 <= tet_instance.depth() <= tet_mesh.n_cells


class TestBuildInstance:
    def test_instance_shape(self, tri_mesh):
        inst = build_instance(tri_mesh, circle_directions(4))
        assert inst.k == 4
        assert inst.n_cells == tri_mesh.n_cells
        assert inst.name.endswith("_k4")

    def test_cell_graph_edges_are_mesh_adjacency(self, tri_mesh):
        inst = build_instance(tri_mesh, circle_directions(4))
        assert np.array_equal(inst.cell_graph_edges, tri_mesh.adjacency)

    def test_rejects_wrong_direction_dim(self, tri_mesh):
        with pytest.raises(MeshError, match="directions"):
            build_instance(tri_mesh, np.ones((4, 3)))

    def test_custom_name(self, tri_mesh):
        inst = build_instance(tri_mesh, circle_directions(2), name="custom")
        assert inst.name == "custom"


def _chain_mesh(normals: np.ndarray) -> Mesh:
    """A path of ``len(normals)+1`` cells, one hand-set face normal each."""
    n_faces = normals.shape[0]
    adjacency = np.stack(
        [np.arange(n_faces), np.arange(1, n_faces + 1)], axis=1
    ).astype(np.int64)
    mesh = Mesh(
        points=np.empty((0, 2)),
        cells=None,
        adjacency=adjacency,
        face_normals=np.asarray(normals, dtype=np.float64),
        centroids=np.stack(
            [np.arange(n_faces + 1, dtype=np.float64), np.zeros(n_faces + 1)],
            axis=1,
        ),
        name="chain_faces",
    )
    mesh.validate()
    return mesh


class TestToleranceBoundary:
    """The upwind test is a *strict* inequality at ``tol`` (both signs)."""

    def test_dot_exactly_tol_dropped_both_signs(self):
        mesh = _chain_mesh(np.array([[1.0, 0.0]]))
        # |n . w| == tol exactly: parallel-within-tolerance, no edge.
        for w in ([DEFAULT_TOL, 0.0], [-DEFAULT_TOL, 0.0]):
            assert sweep_edges(mesh, np.array(w)).shape == (0, 2)

    def test_dot_one_ulp_past_tol_kept(self):
        mesh = _chain_mesh(np.array([[1.0, 0.0]]))
        past = np.nextafter(DEFAULT_TOL, np.inf)
        fwd = sweep_edges(mesh, np.array([past, 0.0]))
        assert fwd.tolist() == [[0, 1]]
        bwd = sweep_edges(mesh, np.array([-past, 0.0]))
        assert bwd.tolist() == [[1, 0]]

    def test_custom_tol_widens_the_dead_band(self):
        mesh = _chain_mesh(np.array([[1.0, 0.0]]))
        w = np.array([1e-6, 1.0])
        assert sweep_edges(mesh, w).shape[0] == 1
        assert sweep_edges(mesh, w, tol=1e-3).shape == (0, 2)

    def test_duplicated_normals_keep_face_order(self):
        """Identical normals tie on the upwind test; the edge array must
        keep the mesh's face order (the layout both builders share)."""
        mesh = _chain_mesh(np.array([[1.0, 0.0]] * 4))
        fwd = sweep_edges(mesh, np.array([1.0, 0.0]))
        assert np.array_equal(fwd, mesh.adjacency)
        bwd = sweep_edges(mesh, np.array([-1.0, 0.0]))
        assert np.array_equal(bwd, mesh.adjacency[:, ::-1])

    def test_mixed_signs_forward_block_precedes_backward(self):
        """sweep_edges layout: all forward faces (mesh order), then all
        backward faces (mesh order, reversed pairs)."""
        mesh = _chain_mesh(
            np.array([[1.0, 0.0], [-1.0, 0.0], [0.0, 1.0], [1.0, 0.0]])
        )
        edges = sweep_edges(mesh, np.array([1.0, 0.0]))
        assert edges.tolist() == [[0, 1], [3, 4], [2, 1]]


class TestGoldenEdgeChecksums:
    """Frozen crc32 of the first-direction edge array per mesh family
    (200 target cells, seed 0, the k=8 direction set) — any drift in
    edge induction, face ordering, or mesh generation trips this."""

    _EDGE_GOLD = {
        "graded": 707835598,
        "long": 3091646696,
        "prismtet": 2210975301,
        "square2d": 3690006505,
        "tetonly": 3738758997,
        "well_logging": 3024256154,
    }

    @pytest.mark.parametrize("family", sorted(_EDGE_GOLD))
    def test_edge_array_checksum(self, family):
        mesh = make_mesh(family, target_cells=200, seed=0)
        dirs = directions_for_mesh(mesh_dim(family), 8)
        edges = sweep_edges(mesh, dirs[0])
        assert zlib.crc32(edges.tobytes()) == self._EDGE_GOLD[family]
