"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def run(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr()
    return code, out.out, out.err


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_algorithm(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["schedule", "--algorithm", "bogus"])

    def test_rejects_unknown_mesh(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["mesh", "--mesh", "bogus"])


class TestScheduleCommand:
    def test_basic_run(self, capsys):
        code, out, _ = run(
            capsys, "schedule", "--cells", "300", "-k", "4", "-m", "4",
            "--mesh", "square2d",
        )
        assert code == 0
        assert "makespan:" in out
        assert "ratio" in out

    def test_with_blocks_and_gantt(self, capsys):
        code, out, _ = run(
            capsys, "schedule", "--cells", "300", "-k", "4", "-m", "2",
            "--mesh", "square2d", "--block-size", "16", "--gantt",
        )
        assert code == 0
        assert "P0" in out

    def test_wall_clock_estimate(self, capsys):
        code, out, _ = run(
            capsys, "schedule", "--cells", "200", "-k", "4", "-m", "2",
            "--mesh", "square2d", "--comm-cost", "0.2",
        )
        assert code == 0
        assert "wall-clock estimate" in out

    def test_deterministic(self, capsys):
        _, a, _ = run(capsys, "schedule", "--cells", "200", "--mesh", "square2d",
                      "-k", "4", "-m", "2", "--seed", "7")
        _, b, _ = run(capsys, "schedule", "--cells", "200", "--mesh", "square2d",
                      "-k", "4", "-m", "2", "--seed", "7")
        assert a == b


class TestOtherCommands:
    def test_mesh_report_and_save(self, capsys, tmp_path):
        out_path = tmp_path / "m.npz"
        code, out, _ = run(
            capsys, "mesh", "--cells", "200", "--mesh", "square2d",
            "--out", str(out_path),
        )
        assert code == 0
        assert out_path.exists()
        assert "cells" in out

    def test_partition(self, capsys):
        code, out, _ = run(
            capsys, "partition", "--cells", "300", "--mesh", "square2d",
            "--block-size", "16",
        )
        assert code == 0
        assert "edge cut" in out
        assert "balance" in out

    def test_transport_white_reports_exact(self, capsys):
        code, out, _ = run(
            capsys, "transport", "--cells", "200", "--mesh", "square2d",
            "-k", "4", "-m", "2", "--boundary", "white",
            "--sigma-t", "1.0", "--sigma-s", "0.5", "--source", "2.0",
        )
        assert code == 0
        assert "infinite-medium exact value: 4.0000" in out
        assert "converged" in out

    def test_figures_single(self, capsys):
        code, out, _ = run(capsys, "figures", "fig2a", "--cells", "250")
        assert code == 0
        assert "Fig 2(a)" in out

    def test_compare(self, capsys):
        code, out, _ = run(
            capsys, "compare", "random_delay_priority", "random_delay",
            "--cells", "250", "--mesh", "square2d", "-k", "4", "-m", "4",
            "--trials", "4",
        )
        assert code == 0
        assert "95% CI" in out
        assert "wins" in out

    def test_families(self, capsys):
        code, out, _ = run(capsys, "families", "--size", "32", "-k", "3", "-m", "3")
        assert code == 0
        assert "identical_chains" in out
        assert "rotated_chains" in out

    def test_transport_krylov(self, capsys):
        code, out, _ = run(
            capsys, "transport", "--cells", "200", "--mesh", "square2d",
            "-k", "4", "-m", "2", "--krylov",
        )
        assert code == 0
        assert "GMRES converged" in out


class TestTournamentCommand:
    def test_tournament_default_contenders(self, capsys):
        code, out, _ = run(
            capsys, "tournament", "--cells", "250", "--mesh", "square2d",
            "-k", "4", "-m", "4", "--trials", "4",
        )
        assert code == 0
        assert "ranking" in out
        assert "random_delay_priority" in out

    def test_tournament_explicit_algorithms(self, capsys):
        code, out, _ = run(
            capsys, "tournament", "fifo", "dfds", "--cells", "250",
            "--mesh", "square2d", "-k", "4", "-m", "4", "--trials", "4",
        )
        assert code == 0
        assert "fifo" in out and "dfds" in out
