"""Cross-module edge cases: degenerate sizes, boundaries of validity.

The happy paths are covered module by module; these tests sweep the
degenerate corners (single cell, single direction, single processor,
m > n, empty graphs) through the whole stack, where off-by-one bugs
like to live.
"""

import numpy as np
import pytest

from repro.analysis import instance_stats, summarize_schedule
from repro.comm import c2_cost, interprocessor_edges, rounds_cost
from repro.core import (
    Dag,
    SweepInstance,
    average_load_lb,
    latency_list_schedule,
    optimal_makespan,
)
from repro.heuristics import ALGORITHMS
from repro.sweeps import batched_schedule


@pytest.fixture()
def single_cell():
    return SweepInstance(1, [Dag(1, []), Dag(1, [])], name="single")


@pytest.fixture()
def single_direction():
    g = Dag.from_edge_list(5, [(0, 1), (1, 2), (0, 3)])
    return SweepInstance(5, [g], name="one_dir")


class TestSingleCell:
    @pytest.mark.parametrize("name", sorted(ALGORITHMS))
    def test_all_algorithms(self, single_cell, name):
        s = ALGORITHMS[name](single_cell, 3, seed=0)
        s.validate()
        # Two copies of the one cell serialise: makespan exactly k.
        assert s.makespan == 2

    def test_opt(self, single_cell):
        assert optimal_makespan(single_cell, 3) == 2

    def test_comm_costs_zero(self, single_cell):
        s = ALGORITHMS["random_delay_priority"](single_cell, 3, seed=0)
        assert interprocessor_edges(single_cell, s.assignment) == 0
        assert c2_cost(s) == 0
        assert rounds_cost(s) == 0

    def test_stats(self, single_cell):
        st = instance_stats(single_cell)
        assert st.depth == 1
        assert st.n_tasks == 2


class TestSingleDirection:
    @pytest.mark.parametrize("name", sorted(ALGORITHMS))
    def test_all_algorithms(self, single_direction, name):
        s = ALGORITHMS[name](single_direction, 2, seed=0)
        s.validate()
        assert s.makespan >= 3  # critical path 0->1->2

    def test_delays_degenerate_to_zero(self, single_direction):
        s = ALGORITHMS["random_delay"](single_direction, 2, seed=0)
        assert list(s.meta["delays"]) == [0]


class TestMoreProcsThanTasks:
    def test_m_exceeds_everything(self, single_direction):
        s = ALGORITHMS["random_delay_priority"](single_direction, 50, seed=0)
        s.validate()
        # Makespan is the critical path; extra processors idle.
        assert s.makespan == 3
        assert average_load_lb(single_direction, 50) == 1

    def test_summary_handles_huge_m(self, single_direction):
        s = ALGORITHMS["fifo"](single_direction, 50, seed=0)
        summary = summarize_schedule(s)
        assert summary.ratio == s.makespan  # LB is 1

    def test_timed_engine(self, single_direction):
        s = latency_list_schedule(
            single_direction, 50,
            np.zeros(5, dtype=np.int64) + np.arange(5) % 50,
            comm_latency=3,
        )
        s.validate()


class TestEmptyGraphInstances:
    def test_all_isolated_cells(self):
        inst = SweepInstance(6, [Dag(6, []), Dag(6, [])])
        for name in ("random_delay", "random_delay_priority", "dfds"):
            s = ALGORITHMS[name](inst, 3, seed=0)
            s.validate()
            # Pure load balancing: perfect packing is 12/3 = 4; random
            # assignment may do worse but never better.
            assert s.makespan >= 4

    def test_batching_on_flat_instance(self):
        inst = SweepInstance(6, [Dag(6, []), Dag(6, [])])
        s = batched_schedule(inst, 2, n_batches=2, seed=0)
        s.validate()


class TestDegenerateDags:
    def test_complete_bipartite_order(self):
        """Every source before every sink, any schedule."""
        edges = [(i, j) for i in range(3) for j in range(3, 6)]
        g = Dag.from_edge_list(6, edges)
        inst = SweepInstance(6, [g])
        s = ALGORITHMS["random_delay_priority"](inst, 3, seed=0)
        s.validate()
        assert s.start[:3].max() < s.start[3:].min()

    def test_long_chain_single_proc_exact(self):
        g = Dag.from_edge_list(30, [(i, i + 1) for i in range(29)])
        inst = SweepInstance(30, [g])
        s = ALGORITHMS["level"](inst, 1, seed=0)
        assert s.makespan == 30
        assert list(s.start) == list(range(30))
