"""Crash-injection battery: campaign resume semantics under SIGKILL.

Resume semantics are only real if a kill-matrix proves them, so this
file drives real driver processes (``python -m repro campaign run``)
armed with the env-gated fault hook
(``REPRO_CAMPAIGN_FAULT=sigkill:<K>``, see
:mod:`repro.campaign.executor`) that SIGKILLs the driver immediately
after its K-th checkpoint commit.  For every K in the matrix the
battery asserts the full contract:

* the driver actually died by ``SIGKILL`` (no cleanup code ran),
* the store holds *exactly* K committed cells — sqlite's atomic
  commits mean a kill can never leave a torn row,
* the rerun executes *exactly* N − K cells (nothing redone, nothing
  lost), and
* the final report is byte-identical to an uninterrupted run's.

A ``workers=2`` variant (under ``grid_smoke`` with the rest of the
parallel battery) kills the driver while a process pool is live, then
proves resume + byte-identity still hold; the shared-memory segment the
killed driver leaks is reaped by the test, restoring the suite's
no-orphan invariant.
"""

import os
import signal
import subprocess
import sys
from pathlib import Path

import pytest

from repro.campaign import (
    ResultStore,
    load_spec,
    report_json,
    run_campaign,
)

ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture(autouse=True)
def build_cache_enabled(tmp_path, monkeypatch):
    """Run the whole battery with the content-addressed build cache on.

    Instance construction in both the in-process baselines and the
    SIGKILL'd driver subprocesses (which inherit ``os.environ``) goes
    through :mod:`repro.cache`; the byte-identity assertions below then
    double as proof that cached construction changes nothing.
    """
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "build_cache"))

#: 12-cell campaign (2 algorithms x 2 m x 3 seeds), small enough that
#: each subprocess run stays in CI-smoke territory.
SPEC_TOML = """\
name = "resume-battery"
engine = "auto"
with_comm = true

[[grid]]
mesh = ["square2d"]
target_cells = 120
mesh_seed = 0
k = [2]
algorithms = ["fifo", "random_delay_priority"]
block_sizes = [1]
m = [4, 8]
seeds = [0, 1, 2]
"""

N_CELLS = 12


def _write_spec(tmp_path: Path) -> Path:
    spec_path = tmp_path / "campaign.toml"
    spec_path.write_text(SPEC_TOML)
    return spec_path


def _run_driver(spec_path, store_path, fault=None, workers=1, limit=None):
    """Run ``repro campaign run`` in a real subprocess."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    env.pop("REPRO_CAMPAIGN_FAULT", None)
    if fault is not None:
        env["REPRO_CAMPAIGN_FAULT"] = fault
    return subprocess.run(
        [
            sys.executable, "-m", "repro", "campaign", "run",
            str(spec_path), "--store", str(store_path),
            "--workers", str(workers),
        ]
        + (["--limit", str(limit)] if limit is not None else []),
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )


def _reap_leaked_segments():
    """Unlink /dev/shm segments a SIGKILL'd driver could not clean up.

    The store unregisters its segment from the resource tracker on
    purpose (workers would double-free it otherwise), so a killed
    driver leaks exactly its own segment; reaping here keeps the
    suite's no-orphan invariant for every other test.
    """
    from repro.parallel import list_orphan_segments

    for name in list_orphan_segments():
        try:
            os.unlink(os.path.join("/dev/shm", name))
        except OSError:
            pass


def _baseline_report(tmp_path: Path) -> str:
    """Report bytes of an uninterrupted run (independent fresh store)."""
    spec = load_spec(_write_spec(tmp_path))
    clean_store = tmp_path / "uninterrupted.sqlite"
    run_campaign(spec, clean_store)
    with ResultStore.open(clean_store, spec) as store:
        return report_json(spec, store)


class TestKillMatrix:
    """Kill after K of N cells, for K across the whole campaign."""

    @pytest.mark.parametrize("kill_after", [1, 5, 11])
    def test_sigkill_then_resume_runs_exactly_the_rest(
        self, tmp_path, kill_after
    ):
        spec_path = _write_spec(tmp_path)
        store_path = tmp_path / "battery.sqlite"
        spec = load_spec(spec_path)

        proc = _run_driver(spec_path, store_path,
                           fault=f"sigkill:{kill_after}")
        assert proc.returncode == -signal.SIGKILL, proc.stderr

        # Atomic checkpoints: exactly K committed cells, never a torn row.
        with ResultStore.open(store_path, spec) as store:
            counts = store.counts(spec.universe_hashes())
        assert counts["done"] == kill_after
        assert counts["pending"] == N_CELLS - kill_after

        # The rerun picks up exactly the unfinished cells.
        stats = run_campaign(spec, store_path)
        assert stats.cells_executed == N_CELLS - kill_after
        assert stats.cells_skipped == kill_after
        assert stats.cells_total == N_CELLS

        # And the report is byte-identical to an uninterrupted run.
        with ResultStore.open(store_path, spec) as store:
            resumed = report_json(spec, store)
        assert resumed == _baseline_report(tmp_path)

    def test_interrupted_report_fails_loudly(self, tmp_path):
        from repro.util.errors import CampaignError

        spec_path = _write_spec(tmp_path)
        store_path = tmp_path / "partial.sqlite"
        spec = load_spec(spec_path)
        proc = _run_driver(spec_path, store_path, fault="sigkill:3")
        assert proc.returncode == -signal.SIGKILL
        with ResultStore.open(store_path, spec) as store:
            with pytest.raises(CampaignError, match="incomplete"):
                report_json(spec, store)

    def test_second_resume_is_a_no_op(self, tmp_path):
        spec_path = _write_spec(tmp_path)
        store_path = tmp_path / "noop.sqlite"
        spec = load_spec(spec_path)
        run_campaign(spec, store_path)
        stats = run_campaign(spec, store_path)
        assert stats.cells_executed == 0
        assert stats.cells_skipped == N_CELLS


class TestLimit:
    """``--limit N`` is a voluntary checkpoint: defer, then resume."""

    def test_limit_defers_and_resume_completes(self, tmp_path):
        spec_path = _write_spec(tmp_path)
        store_path = tmp_path / "limited.sqlite"
        spec = load_spec(spec_path)

        stats = run_campaign(spec, store_path, limit=5)
        assert stats.cells_executed == 5
        assert stats.cells_deferred == N_CELLS - 5
        assert stats.cells_skipped == 0
        with ResultStore.open(store_path, spec) as store:
            counts = store.counts(spec.universe_hashes())
        assert counts["done"] == 5
        assert counts["pending"] == N_CELLS - 5

        # The next (unlimited) run behaves exactly like a resume.
        stats = run_campaign(spec, store_path)
        assert stats.cells_executed == N_CELLS - 5
        assert stats.cells_skipped == 5
        assert stats.cells_deferred == 0
        with ResultStore.open(store_path, spec) as store:
            resumed = report_json(spec, store)
        assert resumed == _baseline_report(tmp_path)

    def test_limit_larger_than_pending_defers_nothing(self, tmp_path):
        spec = load_spec(_write_spec(tmp_path))
        stats = run_campaign(spec, tmp_path / "big.sqlite", limit=999)
        assert stats.cells_executed == N_CELLS
        assert stats.cells_deferred == 0

    def test_negative_limit_rejected(self, tmp_path):
        from repro.util.errors import CampaignError

        spec = load_spec(_write_spec(tmp_path))
        with pytest.raises(CampaignError, match="limit"):
            run_campaign(spec, tmp_path / "neg.sqlite", limit=-1)

    def test_cli_limit_flag_reports_deferral(self, tmp_path):
        spec_path = _write_spec(tmp_path)
        store_path = tmp_path / "cli.sqlite"
        proc = _run_driver(spec_path, store_path, limit=3)
        assert proc.returncode == 0, proc.stderr
        assert f"{N_CELLS - 3} deferred by --limit" in proc.stdout
        spec = load_spec(spec_path)
        with ResultStore.open(store_path, spec) as store:
            counts = store.counts(spec.universe_hashes())
        assert counts["done"] == 3


@pytest.mark.grid_smoke
class TestKillMatrixWorkers:
    """The same contract with a live worker pool at kill time."""

    def test_sigkill_mid_dispatch_then_parallel_resume(self, tmp_path):
        spec_path = _write_spec(tmp_path)
        store_path = tmp_path / "pool.sqlite"
        spec = load_spec(spec_path)
        try:
            proc = _run_driver(spec_path, store_path,
                               fault="sigkill:4", workers=2)
            assert proc.returncode == -signal.SIGKILL, proc.stderr
        finally:
            _reap_leaked_segments()

        with ResultStore.open(store_path, spec) as store:
            counts = store.counts(spec.universe_hashes())
        assert counts["done"] == 4
        assert counts["pending"] == N_CELLS - 4

        stats = run_campaign(spec, store_path, workers=2)
        assert stats.cells_executed == N_CELLS - 4
        assert stats.cells_skipped == 4
        with ResultStore.open(store_path, spec) as store:
            resumed = report_json(spec, store)
        assert resumed == _baseline_report(tmp_path)

    def test_serial_and_parallel_campaigns_byte_identical(self, tmp_path):
        spec_path = _write_spec(tmp_path)
        spec = load_spec(spec_path)
        serial_store = tmp_path / "serial.sqlite"
        parallel_store = tmp_path / "parallel.sqlite"
        run_campaign(spec, serial_store)
        run_campaign(spec, parallel_store, workers=2)
        with ResultStore.open(serial_store, spec) as store:
            serial = report_json(spec, store)
        with ResultStore.open(parallel_store, spec) as store:
            parallel = report_json(spec, store)
        assert serial == parallel


class TestReportMatchesRunGrid:
    """The store-derived report equals a fresh ``run_grid`` byte-for-byte."""

    def test_report_rows_equal_fresh_run_grid(self, tmp_path):
        import json

        from repro.campaign import campaign_rows, group_config
        from repro.experiments.runner import run_grid

        spec = load_spec(_write_spec(tmp_path))
        store_path = tmp_path / "grid.sqlite"
        run_campaign(spec, store_path)
        with ResultStore.open(store_path, spec) as store:
            rows = campaign_rows(spec, store)
        config = group_config(spec.compile(), spec)
        fresh = run_grid(config, with_comm=spec.with_comm)
        assert rows == fresh
        assert json.dumps(rows, indent=1, sort_keys=True) == json.dumps(
            fresh, indent=1, sort_keys=True
        )


class TestFaultHook:
    def test_malformed_fault_env_fails_loudly(self, tmp_path, monkeypatch):
        from repro.campaign.executor import FAULT_ENV
        from repro.util.errors import CampaignError

        monkeypatch.setenv(FAULT_ENV, "explode:oops")
        spec = load_spec(_write_spec(tmp_path))
        with pytest.raises(CampaignError, match="malformed"):
            run_campaign(spec, tmp_path / "hook.sqlite")
