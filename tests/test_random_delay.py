"""Tests for Algorithm 1 (Random Delay)."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core import (
    Dag,
    SweepInstance,
    draw_delays,
    random_delay_schedule,
)
from repro.core.random_delay import delayed_task_layers
from repro.util.errors import InvalidScheduleError

from .strategies import sweep_instances


class TestDelays:
    def test_delays_in_range(self, rng):
        x = draw_delays(10, rng)
        assert x.shape == (10,)
        assert x.min() >= 0 and x.max() <= 9

    def test_single_direction_delay_zero(self, rng):
        assert list(draw_delays(1, rng)) == [0]

    def test_delayed_layers_shift_by_direction(self, chain_instance):
        layers = delayed_task_layers(chain_instance, np.array([0, 5]))
        assert list(layers[:4]) == [0, 1, 2, 3]
        assert list(layers[4:]) == [8, 7, 6, 5]

    def test_delayed_layers_rejects_bad_shape(self, chain_instance):
        with pytest.raises(InvalidScheduleError, match="delays"):
            delayed_task_layers(chain_instance, np.array([1, 2, 3]))


class TestAlgorithm1:
    def test_schedule_is_feasible(self, tet_instance):
        s = random_delay_schedule(tet_instance, 8, seed=0)
        s.validate()

    def test_deterministic_for_fixed_seed(self, tet_instance):
        a = random_delay_schedule(tet_instance, 8, seed=7)
        b = random_delay_schedule(tet_instance, 8, seed=7)
        assert np.array_equal(a.start, b.start)
        assert np.array_equal(a.assignment, b.assignment)

    def test_different_seeds_differ(self, tet_instance):
        a = random_delay_schedule(tet_instance, 8, seed=1)
        b = random_delay_schedule(tet_instance, 8, seed=2)
        assert not np.array_equal(a.start, b.start)

    def test_meta_records_algorithm_and_delays(self, chain_instance):
        s = random_delay_schedule(chain_instance, 2, seed=0)
        assert s.meta["algorithm"] == "random_delay"
        assert s.meta["delays"].shape == (2,)

    def test_explicit_delays_respected(self, chain_instance):
        delays = np.array([0, 3])
        s = random_delay_schedule(chain_instance, 2, seed=0, delays=delays)
        assert list(s.meta["delays"]) == [0, 3]
        s.validate()

    def test_explicit_assignment_respected(self, chain_instance):
        assignment = np.array([1, 1, 0, 0])
        s = random_delay_schedule(chain_instance, 2, seed=0, assignment=assignment)
        assert np.array_equal(s.assignment, assignment)
        s.validate()

    def test_single_processor_serialises(self, chain_instance):
        s = random_delay_schedule(chain_instance, 1, seed=0)
        assert s.makespan == chain_instance.n_tasks

    def test_zero_delay_single_direction(self):
        g = Dag.from_edge_list(3, [(0, 1), (1, 2)])
        inst = SweepInstance(3, [g])
        s = random_delay_schedule(inst, 2, seed=0)
        s.validate()
        assert s.makespan >= 3

    @given(sweep_instances())
    @settings(max_examples=25, deadline=None)
    def test_always_feasible(self, inst):
        for m in (1, 3):
            s = random_delay_schedule(inst, m, seed=0)
            s.validate()

    @given(sweep_instances(max_n=15, max_k=3))
    @settings(max_examples=20, deadline=None)
    def test_makespan_at_most_serial(self, inst):
        s = random_delay_schedule(inst, 2, seed=0)
        # Layer-sequential never exceeds fully serial execution.
        assert s.makespan <= inst.n_tasks
