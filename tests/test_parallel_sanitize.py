"""Tests for the runtime shared-memory sanitizer (``REPRO_SANITIZE=1``).

The static lint rule RPL003 proves attach-side views are *built*
read-only; these tests cover the dynamic half: digest stamping at
publish, verification at attach / per-chunk / store close, and the
poisoned views that turn any write through an attached array into an
immediate ``ValueError``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.configs import ExperimentConfig
from repro.experiments.runner import get_instance
from repro.parallel import (
    SharedInstanceStore,
    attach,
    detach_all,
    verify_attached,
)
from repro.parallel.sanitize import (
    check_digest,
    poison_views,
    sanitize_enabled,
    segment_digest,
)
from repro.util.errors import SanitizerError

TINY = ExperimentConfig(
    mesh="square2d", target_cells=120, k=4,
    block_sizes=(1, 8), name="sanitize-test",
)


@pytest.fixture
def inst():
    return get_instance(TINY)


@pytest.fixture
def sanitized(monkeypatch):
    monkeypatch.setenv("REPRO_SANITIZE", "1")


class TestEnableFlag:
    def test_parsing(self, monkeypatch):
        for off in ("", "0"):
            monkeypatch.setenv("REPRO_SANITIZE", off)
            assert not sanitize_enabled()
        monkeypatch.delenv("REPRO_SANITIZE")
        assert not sanitize_enabled()
        for on in ("1", "yes", "2"):
            monkeypatch.setenv("REPRO_SANITIZE", on)
            assert sanitize_enabled()

    def test_digest_only_stamped_when_enabled(self, inst, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "0")
        with SharedInstanceStore.publish(inst) as store:
            assert store.manifest.digest is None
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        with SharedInstanceStore.publish(inst) as store:
            digest = store.manifest.digest
            assert digest is not None
            assert digest == segment_digest(store._shm.buf)
            detach_all()


class TestPoisonedViews:
    def test_write_through_attached_view_raises(self, inst, sanitized):
        with SharedInstanceStore.publish(inst) as store:
            got, _ = attach(store.manifest)
            edges = got.dags[0].edges
            assert not edges.flags.writeable
            with pytest.raises(ValueError, match="read-only"):
                edges[0, 0] = 99
            detach_all()

    def test_poison_views_rejects_writable_alias(self):
        views = {"ok": np.zeros(3), "leak": np.zeros(3)}
        for v in views.values():
            v.flags.writeable = False
        views["leak"].flags.writeable = True
        with pytest.raises(SanitizerError, match="leak"):
            poison_views(views, "test")

    def test_poison_views_passes_when_all_frozen(self):
        v = np.zeros(3)
        v.flags.writeable = False
        poison_views({"a": v}, "test")  # must not raise


class TestDigestVerification:
    def test_clean_round_trip(self, inst, sanitized):
        with SharedInstanceStore.publish(inst) as store:
            got, _ = attach(store.manifest)
            assert got.n_cells == inst.n_cells
            verify_attached(store.manifest)  # worker-chunk check passes
            detach_all()
        # close() re-verified the digest and unlinked without raising.

    def test_check_digest_is_noop_without_expectation(self):
        check_digest(memoryview(b"anything"), None, "test")

    def test_corruption_caught_at_attach(self, inst, sanitized):
        store = SharedInstanceStore.publish(inst)
        try:
            store._shm.buf[0] ^= 0xFF
            with pytest.raises(SanitizerError, match="attach"):
                attach(store.manifest)
        finally:
            detach_all()
            store._shm.buf[0] ^= 0xFF  # restore so close() verifies clean
            store.close()

    def test_corruption_caught_at_worker_chunk(self, inst, sanitized):
        store = SharedInstanceStore.publish(inst)
        try:
            attach(store.manifest)
            store._shm.buf[0] ^= 0xFF  # stray write between chunks
            with pytest.raises(SanitizerError, match="worker chunk"):
                verify_attached(store.manifest)
        finally:
            detach_all()
            store._shm.buf[0] ^= 0xFF
            store.close()

    def test_corruption_caught_at_store_close(self, inst, sanitized):
        store = SharedInstanceStore.publish(inst)
        store._shm.buf[0] ^= 0xFF
        with pytest.raises(SanitizerError, match="store close"):
            store.close()
        # The failed close left the segment linked so the evidence
        # survives; restore and close for real.
        store._shm.buf[0] ^= 0xFF
        store.close()

    def test_error_names_the_stage_and_digests(self, inst, sanitized):
        store = SharedInstanceStore.publish(inst)
        store._shm.buf[0] ^= 0xFF
        with pytest.raises(SanitizerError) as exc:
            store.close()
        msg = str(exc.value)
        assert "store close" in msg
        assert store.manifest.digest in msg
        store._shm.buf[0] ^= 0xFF
        store.close()


class TestDisabledIsFree:
    def test_attach_and_close_skip_checks(self, inst, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "0")
        with SharedInstanceStore.publish(inst) as store:
            got, _ = attach(store.manifest)
            # Views are read-only regardless of the sanitizer (RPL003's
            # static guarantee) — the flag only adds digest checks.
            assert not got.dags[0].edges.flags.writeable
            store._shm.buf[0] ^= 0xFF  # corruption goes undetected
            verify_attached(store.manifest)
            detach_all()


class TestTracingCompose:
    """``REPRO_SANITIZE=1`` and ``REPRO_TRACE`` compose.

    The per-chunk digest verification shows up as a span on the
    success path, and a :class:`SanitizerError` raised mid-chunk still
    flushes every buffered span back to the parent via the payload
    attached to the exception (the no-silent-trace-loss contract).
    """

    @pytest.fixture
    def traced(self):
        from repro import obs

        was = obs.tracing_enabled()
        obs.reset()
        obs.enable_tracing()
        yield obs
        obs.reset()
        if not was:
            obs.disable_tracing()

    @staticmethod
    def _cells():
        from repro.parallel.dispatcher import GridCell

        return [GridCell(0, "random_delay_priority", 4, 1, 0)]

    def test_verify_chunk_appears_as_span(self, inst, sanitized, traced):
        from repro.parallel.worker import run_chunk

        with SharedInstanceStore.publish(inst) as store:
            pairs, _rss, payload = run_chunk(
                store.manifest, self._cells(), False, "auto"
            )
            detach_all()
        assert len(pairs) == 1
        names = [s.name for s in payload["spans"]]
        assert "sanitize.verify_chunk" in names
        assert "worker.cell" in names
        # The verification span nests inside the chunk span.
        by_name = {s.name: s for s in payload["spans"]}
        assert by_name["sanitize.verify_chunk"].depth \
            > by_name["worker.chunk"].depth

    def test_sanitizer_error_mid_chunk_flushes_spans(
        self, inst, sanitized, traced
    ):
        from repro.parallel.worker import run_chunk

        store = SharedInstanceStore.publish(inst)
        try:
            attach(store.manifest)  # clean memoised attach
            store._shm.buf[0] ^= 0xFF  # stray write mid-chunk
            with pytest.raises(SanitizerError) as excinfo:
                run_chunk(store.manifest, self._cells(), False, "auto")
            # The payload rode the exception across the (would-be)
            # process boundary; recovering it ingests the worker spans.
            assert traced.recover_payload_from_exception(excinfo.value)
            names = {s.name for s in traced.drain_spans()}
            # The cell finished before verification failed, and the
            # interrupted chunk/verify spans flushed on exception.
            assert {"worker.cell", "worker.chunk",
                    "sanitize.verify_chunk"} <= names
        finally:
            detach_all()
            store._shm.buf[0] ^= 0xFF
            store.close()
