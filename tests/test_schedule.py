"""Tests for the Schedule container and independent validator."""

import numpy as np
import pytest

from repro.core import Dag, Schedule, SweepInstance
from repro.util.errors import InvalidScheduleError


def make_schedule(inst, start, assignment, m=2):
    return Schedule(
        instance=inst,
        m=m,
        start=np.asarray(start, dtype=np.int64),
        assignment=np.asarray(assignment, dtype=np.int64),
    )


@pytest.fixture()
def two_cell_instance():
    g = Dag.from_edge_list(2, [(0, 1)])
    return SweepInstance(2, [g])


class TestScheduleProperties:
    def test_makespan(self, two_cell_instance):
        s = make_schedule(two_cell_instance, [0, 1], [0, 1])
        assert s.makespan == 2

    def test_makespan_empty(self):
        inst = SweepInstance(0, [Dag(0, [])])
        s = make_schedule(inst, [], [])
        assert s.makespan == 0
        s.validate()

    def test_task_proc_tiles_assignment(self, chain_instance):
        s = make_schedule(
            chain_instance, np.zeros(8), [0, 1, 0, 1], m=2
        )
        assert list(s.task_proc()) == [0, 1, 0, 1, 0, 1, 0, 1]

    def test_proc_loads(self, chain_instance):
        s = make_schedule(chain_instance, np.arange(8), [0, 0, 0, 1], m=2)
        assert list(s.proc_loads()) == [6, 2]

    def test_idle_fraction(self, two_cell_instance):
        # 2 tasks, 2 procs, makespan 2 -> 2 busy of 4 slots.
        s = make_schedule(two_cell_instance, [0, 1], [0, 1])
        assert s.idle_fraction() == pytest.approx(0.5)

    def test_repr_contains_makespan(self, two_cell_instance):
        s = make_schedule(two_cell_instance, [0, 1], [0, 0])
        assert "makespan=2" in repr(s)


class TestValidator:
    def test_valid_schedule_passes(self, two_cell_instance):
        make_schedule(two_cell_instance, [0, 1], [0, 0]).validate()

    def test_precedence_violation_caught(self, two_cell_instance):
        with pytest.raises(InvalidScheduleError, match="violated"):
            make_schedule(two_cell_instance, [1, 0], [0, 1]).validate()

    def test_equal_start_on_edge_caught(self, two_cell_instance):
        with pytest.raises(InvalidScheduleError, match="violated"):
            make_schedule(two_cell_instance, [0, 0], [0, 1]).validate()

    def test_capacity_violation_caught(self):
        g = Dag(2, [])
        inst = SweepInstance(2, [g])
        with pytest.raises(InvalidScheduleError, match="slot"):
            make_schedule(inst, [0, 0], [0, 0]).validate()

    def test_missing_start_caught(self, two_cell_instance):
        with pytest.raises(InvalidScheduleError, match="no start"):
            make_schedule(two_cell_instance, [0, -1], [0, 0]).validate()

    def test_assignment_out_of_range_caught(self, two_cell_instance):
        with pytest.raises(InvalidScheduleError, match="assignment"):
            make_schedule(two_cell_instance, [0, 1], [0, 5]).validate()

    def test_wrong_start_shape_caught(self, two_cell_instance):
        with pytest.raises(InvalidScheduleError, match="start has shape"):
            make_schedule(two_cell_instance, [0, 1, 2], [0, 0]).validate()

    def test_wrong_assignment_shape_caught(self, two_cell_instance):
        with pytest.raises(InvalidScheduleError, match="assignment has shape"):
            make_schedule(two_cell_instance, [0, 1], [0]).validate()

    def test_nonpositive_m_caught(self, two_cell_instance):
        s = make_schedule(two_cell_instance, [0, 1], [0, 0], m=0)
        with pytest.raises(InvalidScheduleError, match="positive"):
            s.validate()

    def test_same_proc_constraint_is_structural(self, chain_instance):
        """Every copy of a cell shares its processor by construction."""
        s = make_schedule(chain_instance, [0, 1, 2, 3, 4, 5, 6, 7], [0, 1, 0, 1])
        proc = s.task_proc()
        for v in range(4):
            assert proc[v] == proc[4 + v]
