"""Tests for vectorised mesh geometry primitives."""

import numpy as np
import pytest

from repro.mesh.geometry import (
    face_normals_outward,
    simplex_centroids,
    simplex_volumes,
)
from repro.util.errors import MeshError


@pytest.fixture()
def unit_triangle():
    points = np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 1.0]])
    cells = np.array([[0, 1, 2]])
    return points, cells


@pytest.fixture()
def unit_tet():
    points = np.array(
        [[0.0, 0.0, 0.0], [1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]]
    )
    cells = np.array([[0, 1, 2, 3]])
    return points, cells


class TestCentroidsAndVolumes:
    def test_triangle_centroid(self, unit_triangle):
        points, cells = unit_triangle
        c = simplex_centroids(points, cells)
        assert np.allclose(c, [[1 / 3, 1 / 3]])

    def test_triangle_area(self, unit_triangle):
        points, cells = unit_triangle
        assert simplex_volumes(points, cells)[0] == pytest.approx(0.5)

    def test_tet_volume(self, unit_tet):
        points, cells = unit_tet
        assert simplex_volumes(points, cells)[0] == pytest.approx(1 / 6)

    def test_volume_translation_invariant(self, unit_tet):
        points, cells = unit_tet
        v0 = simplex_volumes(points, cells)[0]
        v1 = simplex_volumes(points + 100.0, cells)[0]
        assert v0 == pytest.approx(v1)

    def test_volume_orientation_independent(self, unit_tet):
        points, cells = unit_tet
        flipped = cells[:, [1, 0, 2, 3]]
        assert simplex_volumes(points, flipped)[0] == pytest.approx(1 / 6)

    def test_wrong_simplex_arity_rejected(self, unit_tet):
        points, _ = unit_tet
        with pytest.raises(MeshError, match="vertices"):
            simplex_volumes(points, np.array([[0, 1, 2]]))


class TestFaceNormals:
    def test_2d_normal_points_away_from_reference(self):
        points = np.array([[0.0, 0.0], [1.0, 0.0]])
        face = np.array([[0, 1]])
        inside = np.array([[0.5, -1.0]])  # below the x-axis edge
        n = face_normals_outward(points, face, inside)
        assert np.allclose(n, [[0.0, 1.0]])

    def test_3d_normal_unit_and_outward(self):
        points = np.array(
            [[0.0, 0.0, 0.0], [1.0, 0.0, 0.0], [0.0, 1.0, 0.0]]
        )
        face = np.array([[0, 1, 2]])
        inside = np.array([[0.2, 0.2, -1.0]])
        n = face_normals_outward(points, face, inside)
        assert np.allclose(np.linalg.norm(n, axis=1), 1.0)
        assert n[0, 2] > 0  # away from the z<0 reference

    def test_degenerate_face_rejected(self):
        points = np.array([[0.0, 0.0, 0.0], [1.0, 0.0, 0.0], [2.0, 0.0, 0.0]])
        face = np.array([[0, 1, 2]])  # collinear: zero area
        with pytest.raises(MeshError, match="degenerate"):
            face_normals_outward(points, face, np.zeros((1, 3)))

    def test_unsupported_dimension_rejected(self):
        points = np.zeros((3, 4))
        with pytest.raises(MeshError, match="2-D and 3-D"):
            face_normals_outward(points, np.array([[0, 1, 2]]), np.zeros((1, 4)))
