"""Worker memory + zero-rebuild contract of the parallel grid plane.

Spawn-context pool workers attach to the shared instance store instead
of inheriting a copy-on-write snapshot of the parent heap, so each
worker's peak RSS (``VmHWM``) must stay under the bench schema's
:data:`repro.experiments.bench.WORKER_RSS_CEILING_MB` — the fork-era
figure was ~860 MiB against a 150 MiB ceiling.  And because
:func:`repro.parallel.worker.warm_instance` ships every cache the vector
engine touches through the shm wire format, a vector-engine grid must
perform *zero* cache rebuilds inside workers: the ``dag.cache.rebuild``
counter (incremented whenever an adopted Dag re-materialises a cache it
should have received) stays at zero across the whole run.  A heap-engine
control grid proves the counter is live — the heap's Python-list caches
are per-process by nature, so its workers *must* rebuild — which keeps
the vector assertion falsifiable rather than vacuous.

Marked ``grid_smoke`` alongside the other dispatcher end-to-end tests:

    python -m pytest -q -m grid_smoke
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.experiments.bench import WORKER_RSS_CEILING_MB
from repro.experiments.configs import ExperimentConfig
from repro.experiments.runner import run_grid
from repro.parallel import DispatchStats


def _grid_config(engine: str) -> ExperimentConfig:
    return ExperimentConfig(
        mesh="tetonly", target_cells=250, k=4,
        m_values=(8,), block_sizes=(1,),
        algorithms=("random_delay_priority",),
        seeds=(0, 1, 2, 3), name=f"rss-grid-{engine}",
        engine=engine,
    )


@pytest.fixture
def traced_env():
    was = obs.tracing_enabled()
    obs.reset()
    obs.enable_tracing()
    yield obs
    obs.reset()
    if not was:
        obs.disable_tracing()


@pytest.mark.grid_smoke
class TestWorkerRssAndZeroRebuild:
    def test_vector_grid_stays_under_rss_ceiling(self, traced_env):
        stats = DispatchStats()
        rows = run_grid(
            _grid_config("vector"), with_comm=True, workers=2, stats=stats
        )
        assert rows
        # VmHWM was actually sampled in the workers...
        assert stats.peak_worker_rss_mb > 0
        # ...and every worker stayed under the committed ceiling.
        assert stats.peak_worker_rss_mb < WORKER_RSS_CEILING_MB, (
            f"peak worker RSS {stats.peak_worker_rss_mb:.1f} MiB breaches "
            f"the {WORKER_RSS_CEILING_MB:.0f} MiB committed bench ceiling — workers "
            "are rebuilding or copying parent state again"
        )

    def test_vector_grid_workers_rebuild_no_caches(self, traced_env):
        serial = run_grid(_grid_config("vector"), with_comm=True, workers=1)
        obs.reset()
        parallel = run_grid(_grid_config("vector"), with_comm=True, workers=2)
        metrics = obs.drain_metrics()
        rebuilds = metrics["counters"].get("dag.cache.rebuild", 0)
        assert rebuilds == 0, (
            f"vector-engine workers re-materialised {rebuilds} adopted "
            "caches — warm_instance no longer ships everything the engine "
            "touches"
        )
        # Adopting instead of rebuilding must not change the results.
        assert parallel == serial

    def test_rebuild_counter_is_live(self, traced_env):
        """Heap-engine control: its Python-list caches cannot ship over
        shm, so workers must rebuild them — proving the counter the
        vector test pins at zero actually fires.
        """
        obs.reset()
        rows = run_grid(_grid_config("heap"), with_comm=False, workers=2)
        assert rows
        metrics = obs.drain_metrics()
        assert metrics["counters"].get("dag.cache.rebuild", 0) > 0
