"""Tests for Krylov-accelerated and multigroup transport, plus the
linear-operator properties of the one-group solver."""

import numpy as np
import pytest

from repro.core import random_delay_priority_schedule
from repro.mesh import Mesh
from repro.sweeps import build_instance
from repro.transport import (
    MultigroupProblem,
    Quadrature,
    TransportProblem,
    si_vs_krylov_sweeps,
    solve_krylov_with_schedule,
    solve_multigroup_with_schedule,
    solve_with_schedule,
)
from repro.util.errors import ReproError


@pytest.fixture(scope="module")
def setup():
    mesh = Mesh.structured_grid((5, 5, 4))
    quad = Quadrature.sn(2)
    inst = build_instance(mesh, quad.directions)
    sched = random_delay_priority_schedule(inst, 4, seed=0)
    return mesh, quad, sched


class TestLinearity:
    """Transport with vacuum boundaries is a linear operator in q."""

    def test_scaling(self, setup):
        mesh, quad, sched = setup
        a = solve_with_schedule(
            TransportProblem(mesh, quad, 1.0, 0.5, 1.0), sched, tol=1e-11
        ).phi
        b = solve_with_schedule(
            TransportProblem(mesh, quad, 1.0, 0.5, 3.0), sched, tol=1e-11
        ).phi
        assert np.allclose(b, 3.0 * a, rtol=1e-7)

    def test_additivity(self, setup):
        mesh, quad, sched = setup
        rng = np.random.default_rng(0)
        q1 = rng.random(mesh.n_cells) + 0.1
        q2 = rng.random(mesh.n_cells) + 0.1

        def phi(q):
            return solve_with_schedule(
                TransportProblem(mesh, quad, 1.0, 0.4, q), sched, tol=1e-11
            ).phi

        assert np.allclose(phi(q1 + q2), phi(q1) + phi(q2), rtol=1e-6)


class TestKrylov:
    def test_agrees_with_source_iteration(self, setup):
        mesh, quad, sched = setup
        p = TransportProblem(mesh, quad, 1.0, 0.7, 1.0, boundary="vacuum")
        si = solve_with_schedule(p, sched, tol=1e-10)
        kr = solve_krylov_with_schedule(p, sched, tol=1e-10)
        assert kr.converged
        assert np.allclose(kr.phi, si.phi, atol=1e-7)

    def test_beats_source_iteration_at_high_scattering(self, setup):
        mesh, quad, sched = setup
        p = TransportProblem(mesh, quad, 1.0, 0.95, 1.0, boundary="vacuum")
        stats = si_vs_krylov_sweeps(p, sched, tol=1e-9)
        assert stats["si_converged"] and stats["krylov_converged"]
        assert stats["krylov_sweeps"] < stats["si_sweeps"]
        assert stats["max_diff"] < 1e-6

    def test_rejects_white_boundary(self, setup):
        mesh, quad, sched = setup
        p = TransportProblem(mesh, quad, 1.0, 0.5, 1.0, boundary="white")
        with pytest.raises(ReproError, match="vacuum"):
            solve_krylov_with_schedule(p, sched)

    def test_rejects_bad_args(self, setup):
        mesh, quad, sched = setup
        p = TransportProblem(mesh, quad, 1.0, 0.5, 1.0)
        with pytest.raises(ReproError, match="positive"):
            solve_krylov_with_schedule(p, sched, tol=0)


class TestMultigroup:
    def test_two_group_downscatter_exact(self, setup):
        """Analytic fixed point with white boundaries:
        phi1 = q1/(st1-ss11); phi2 = (q2 + ss12*phi1)/(st2-ss22)."""
        mesh, quad, sched = setup
        scatter = np.array([[0.3, 0.2], [0.0, 0.4]])
        p = MultigroupProblem(
            mesh, quad,
            sigma_t=np.array([1.0, 1.0]),
            scatter=scatter,
            source=np.array([2.0, 1.0]),
            boundary="white",
        )
        res = solve_multigroup_with_schedule(p, sched, tol=1e-9)
        assert res.converged
        phi1 = 2.0 / (1.0 - 0.3)
        phi2 = (1.0 + 0.2 * phi1) / (1.0 - 0.4)
        assert np.allclose(res.phi[0], phi1, atol=1e-6)
        assert np.allclose(res.phi[1], phi2, atol=1e-6)

    def test_downscatter_single_outer_pass(self, setup):
        mesh, quad, sched = setup
        p = MultigroupProblem(
            mesh, quad,
            sigma_t=np.array([1.0, 1.0]),
            scatter=np.array([[0.2, 0.3], [0.0, 0.2]]),
            source=np.array([1.0, 0.0]),
        )
        res = solve_multigroup_with_schedule(p, sched)
        assert res.converged
        assert res.outer_iterations <= 2

    def test_upscatter_converges(self, setup):
        mesh, quad, sched = setup
        p = MultigroupProblem(
            mesh, quad,
            sigma_t=np.array([1.0, 1.0]),
            scatter=np.array([[0.2, 0.3], [0.25, 0.2]]),
            source=np.array([1.0, 0.5]),
            boundary="white",
        )
        assert p.has_upscatter()
        res = solve_multigroup_with_schedule(p, sched, tol=1e-8)
        assert res.converged
        assert res.outer_iterations > 2
        # Cross-check the coupled fixed point analytically:
        # phi = (I - S^T)^-1 q with S the scatter matrix (white boundary,
        # uniform infinite medium, sigma_t = 1).
        a = np.eye(2) - p.scatter.T
        exact = np.linalg.solve(a, p.source)
        assert np.allclose(res.phi[0], exact[0], atol=1e-5)
        assert np.allclose(res.phi[1], exact[1], atol=1e-5)

    def test_validation_errors(self, setup):
        mesh, quad, _ = setup
        with pytest.raises(ReproError, match="subcritical"):
            MultigroupProblem(
                mesh, quad,
                sigma_t=np.array([1.0]),
                scatter=np.array([[1.0]]),
                source=np.array([1.0]),
            )
        with pytest.raises(ReproError, match="scatter must be"):
            MultigroupProblem(
                mesh, quad,
                sigma_t=np.array([1.0, 1.0]),
                scatter=np.zeros((2, 3)),
                source=np.array([1.0, 1.0]),
            )
        with pytest.raises(ReproError, match="nonnegative"):
            MultigroupProblem(
                mesh, quad,
                sigma_t=np.array([1.0]),
                scatter=np.array([[-0.1]]),
                source=np.array([1.0]),
            )

    def test_sweep_accounting(self, setup):
        mesh, quad, sched = setup
        p = MultigroupProblem(
            mesh, quad,
            sigma_t=np.array([1.0, 1.0]),
            scatter=np.array([[0.2, 0.1], [0.0, 0.2]]),
            source=np.array([1.0, 0.0]),
        )
        res = solve_multigroup_with_schedule(p, sched)
        # Sweeps accumulate over groups and outers.
        assert res.total_sweeps >= 2 * res.outer_iterations
