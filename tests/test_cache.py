"""Battery for the content-addressed build cache (``repro.cache``).

Locks the module's design contract: content keys are deterministic and
sensitive to every construction input; round-trips are bit-identical;
verification is fail-loud (corruption raises ``CacheError``, never a
silent miss); eviction is size-bounded LRU that never evicts the newest
entry; and writes are atomic — a ``SIGKILL`` landing in the widest
unsafe window (payload written, rename pending) leaves no visible
corrupt entry, only a stray ``*.tmp`` that the leak probe reports.
"""

from __future__ import annotations

import json
import os
import signal
import struct
import subprocess
import sys
import textwrap
from pathlib import Path

import numpy as np
import pytest

from repro import cache as build_cache
from repro.experiments.configs import ExperimentConfig
from repro.experiments import runner
from repro.mesh.generators import make_mesh, mesh_dim
from repro.sweeps import build_instance_batched, directions_for_mesh
from repro.sweeps.dag_builder import DEFAULT_TOL
from repro.util.errors import CacheError

_REPO = Path(__file__).resolve().parent.parent


@pytest.fixture
def cache_root(tmp_path, monkeypatch):
    root = tmp_path / "cache"
    monkeypatch.setenv(build_cache.DIR_ENV, str(root))
    monkeypatch.delenv(build_cache.MAX_MB_ENV, raising=False)
    monkeypatch.delenv(build_cache.FAULT_ENV, raising=False)
    build_cache.reset_counters()
    yield root
    build_cache.reset_counters()


def _tet_instance(cells=120, k=4):
    mesh = make_mesh("tetonly", target_cells=cells, seed=0)
    dirs = directions_for_mesh(3, k)
    inst = build_instance_batched(mesh, dirs)
    key = build_cache.instance_key("tetonly", cells, 0, k, DEFAULT_TOL, dirs)
    return key, inst


def _assert_same_instance(a, b) -> None:
    assert a.n_cells == b.n_cells and a.k == b.k and a.name == b.name
    for ga, gb in zip(a.dags, b.dags):
        assert np.array_equal(ga.edges, gb.edges)
    assert np.array_equal(a.task_levels(), b.task_levels())


class TestKey:
    def test_deterministic(self):
        dirs = directions_for_mesh(3, 8)
        a = build_cache.instance_key("tetonly", 200, 0, 8, DEFAULT_TOL, dirs)
        b = build_cache.instance_key("tetonly", 200, 0, 8, DEFAULT_TOL, dirs)
        assert a == b

    def test_sensitive_to_every_input(self):
        dirs = directions_for_mesh(3, 8)
        base = build_cache.instance_key("tetonly", 200, 0, 8, DEFAULT_TOL, dirs)
        bumped = dirs.copy()
        bumped[0, 0] = np.nextafter(bumped[0, 0], np.inf)
        variants = [
            build_cache.instance_key("graded", 200, 0, 8, DEFAULT_TOL, dirs),
            build_cache.instance_key("tetonly", 201, 0, 8, DEFAULT_TOL, dirs),
            build_cache.instance_key("tetonly", 200, 1, 8, DEFAULT_TOL, dirs),
            build_cache.instance_key("tetonly", 200, 0, 9, DEFAULT_TOL, dirs),
            build_cache.instance_key("tetonly", 200, 0, 8, 1e-9, dirs),
            build_cache.instance_key("tetonly", 200, 0, 8, DEFAULT_TOL, bumped),
        ]
        assert len({base, *variants}) == len(variants) + 1

    def test_disabled_without_env(self, monkeypatch):
        monkeypatch.delenv(build_cache.DIR_ENV, raising=False)
        key, inst = _tet_instance()
        assert build_cache.cache_dir() is None
        assert build_cache.entry_path(key) is None
        assert build_cache.store_instance(key, inst) is None
        assert build_cache.load_instance(key) is None
        assert build_cache.list_entries() == []
        assert build_cache.clear_cache() == 0


class TestRoundTrip:
    def test_store_load_bit_identical(self, cache_root):
        key, inst = _tet_instance()
        path = build_cache.store_instance(key, inst)
        assert path is not None and path.exists()
        loaded = build_cache.load_instance(key)
        assert loaded is not None
        _assert_same_instance(inst, loaded)
        assert build_cache.COUNTERS["store"] == 1
        assert build_cache.COUNTERS["hit"] == 1

    def test_materialised_caches_round_trip(self, cache_root):
        key, inst = _tet_instance()
        inst.task_levels()  # materialise before export
        build_cache.store_instance(key, inst)
        loaded = build_cache.load_instance(key)
        # from_arrays adopts the memo: levels come back without rebuild.
        assert loaded._task_level is not None
        assert np.array_equal(loaded.task_levels(), inst.task_levels())

    def test_miss_counts_and_returns_none(self, cache_root):
        assert build_cache.load_instance("0" * 32) is None
        assert build_cache.COUNTERS["miss"] == 1
        assert build_cache.COUNTERS["hit"] == 0


def _rewrite_header(path: Path, mutate) -> None:
    """Parse an entry file, apply ``mutate`` to its header dict, repack."""
    blob = path.read_bytes()
    head_at = len(b"REPROCACHE\n")
    (header_len,) = struct.unpack_from("<Q", blob, head_at)
    payload = blob[head_at + 8 + header_len :]
    header = json.loads(blob[head_at + 8 : head_at + 8 + header_len])
    mutate(header)
    packed = json.dumps(header, sort_keys=True).encode()
    path.write_bytes(
        blob[:head_at] + struct.pack("<Q", len(packed)) + packed + payload
    )


class TestVerification:
    def test_flipped_payload_byte_raises(self, cache_root):
        key, inst = _tet_instance()
        path = build_cache.store_instance(key, inst)
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF
        path.write_bytes(bytes(blob))
        with pytest.raises(CacheError, match="digest mismatch"):
            build_cache.load_arrays(key)

    def test_bad_magic_raises(self, cache_root):
        key, inst = _tet_instance()
        path = build_cache.store_instance(key, inst)
        path.write_bytes(b"NOTACACHE!!" + path.read_bytes()[11:])
        with pytest.raises(CacheError, match="bad magic"):
            build_cache.load_arrays(key)

    def test_version_mismatch_raises(self, cache_root):
        key, inst = _tet_instance()
        path = build_cache.store_instance(key, inst)
        _rewrite_header(path, lambda h: h.__setitem__("cache_version", 99))
        with pytest.raises(CacheError, match="cache_version"):
            build_cache.load_arrays(key)

    def test_truncated_entry_raises(self, cache_root):
        key, inst = _tet_instance()
        path = build_cache.store_instance(key, inst)
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) - 32])
        with pytest.raises(CacheError):
            build_cache.load_arrays(key)

    def test_key_mismatch_raises(self, cache_root):
        key, inst = _tet_instance()
        path = build_cache.store_instance(key, inst)
        stolen = "f" * len(key)
        path.rename(path.with_name(f"{stolen}{build_cache.ENTRY_SUFFIX}"))
        with pytest.raises(CacheError, match="stored key"):
            build_cache.load_arrays(stolen)


class TestEviction:
    def test_lru_keeps_hottest(self, cache_root, monkeypatch):
        key, inst = _tet_instance()
        one = build_cache.store_instance(key, inst)
        entry_mb = one.stat().st_size / 2**20
        # Room for ~2 entries: the third store must evict the coldest.
        monkeypatch.setenv(build_cache.MAX_MB_ENV, f"{2.5 * entry_mb:.6f}")
        keys = [key]
        for cells in (130, 140):
            k2, i2 = _tet_instance(cells=cells)
            os.utime(
                build_cache.entry_path(keys[-1]),
                ns=(0, len(keys) * 10**9),  # force distinct, old mtimes
            )
            build_cache.store_instance(k2, i2)
            keys.append(k2)
        survivors = {e["key"] for e in build_cache.list_entries()}
        assert keys[0] not in survivors  # coldest evicted
        assert keys[-1] in survivors  # newest kept
        assert build_cache.COUNTERS["evict"] >= 1

    def test_never_evicts_sole_newest_entry(self, cache_root, monkeypatch):
        monkeypatch.setenv(build_cache.MAX_MB_ENV, "0.000001")
        key, inst = _tet_instance()
        build_cache.store_instance(key, inst)
        assert build_cache.load_instance(key) is not None
        assert build_cache.COUNTERS["evict"] == 0


class TestAtomicity:
    """SIGKILL in the widest unsafe window never corrupts the cache."""

    _SCRIPT = textwrap.dedent(
        """
        import sys
        from repro import cache as build_cache
        from tests.test_cache import _tet_instance

        key, inst = _tet_instance()
        build_cache.store_instance(key, inst)
        print("stored", key)
        """
    )

    def _run(self, cache_root, fault=None):
        env = dict(
            os.environ,
            PYTHONPATH=f"{_REPO / 'src'}{os.pathsep}{_REPO}",
            **{build_cache.DIR_ENV: str(cache_root)},
        )
        if fault:
            env[build_cache.FAULT_ENV] = fault
        else:
            env.pop(build_cache.FAULT_ENV, None)
        return subprocess.run(
            [sys.executable, "-c", self._SCRIPT],
            env=env,
            cwd=_REPO,
            capture_output=True,
            text=True,
            timeout=120,
        )

    def test_sigkill_before_rename_leaves_no_corrupt_entry(self, cache_root):
        proc = self._run(cache_root, fault="sigkill:before_rename")
        assert proc.returncode == -signal.SIGKILL
        # No committed entry is visible; the only debris is a stray
        # *.tmp, which the leak probe reports and loads never touch.
        assert list(cache_root.glob(f"*{build_cache.ENTRY_SUFFIX}")) == []
        strays = list(cache_root.glob("*.tmp"))
        assert len(strays) == 1
        assert build_cache.list_corrupt_entries() == [strays[0].name]
        key, _ = _tet_instance()
        assert build_cache.load_instance(key) is None  # miss, not corrupt
        # A rerun without the fault commits a loadable entry.
        proc = self._run(cache_root)
        assert proc.returncode == 0, proc.stderr
        assert build_cache.load_instance(key) is not None

    def test_malformed_fault_spec_fails_loudly(self, cache_root, monkeypatch):
        monkeypatch.setenv(build_cache.FAULT_ENV, "pause")
        key, inst = _tet_instance()
        with pytest.raises(CacheError, match="malformed"):
            build_cache.store_instance(key, inst)


class TestProbeAndStats:
    def test_probe_reports_corrupt_and_stray(self, cache_root):
        key, inst = _tet_instance()
        path = build_cache.store_instance(key, inst)
        assert build_cache.list_corrupt_entries() == []
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF
        path.write_bytes(bytes(blob))
        (cache_root / "leak.1234.tmp").write_bytes(b"partial")
        assert build_cache.list_corrupt_entries() == sorted(
            [path.name, "leak.1234.tmp"]
        )
        stats = build_cache.cache_stats()
        assert stats["enabled"] and stats["corrupt"]

    def test_list_entries_shows_error_not_raise(self, cache_root):
        key, inst = _tet_instance()
        path = build_cache.store_instance(key, inst)
        path.write_bytes(b"garbage")
        (rows,) = build_cache.list_entries()
        assert rows["key"] == key and "error" in rows

    def test_clear_cache_removes_entries_and_strays(self, cache_root):
        key, inst = _tet_instance()
        build_cache.store_instance(key, inst)
        (cache_root / "leak.1.tmp").write_bytes(b"x")
        assert build_cache.clear_cache() == 2
        assert build_cache.list_entries() == []
        assert build_cache.list_corrupt_entries() == []


class TestPublishFromCache:
    def test_publish_arrays_from_cache_hit(self, cache_root):
        """A cache hit publishes to shared memory without building Dags."""
        from repro.parallel import SharedInstanceStore, attach, detach_all

        key, inst = _tet_instance()
        inst.task_levels()
        build_cache.store_instance(key, inst)
        hit = build_cache.load_arrays(key)
        assert hit is not None
        meta, arrays = hit
        store = SharedInstanceStore.publish_arrays(meta, arrays)
        try:
            attached, blocks = attach(store.manifest)
            _assert_same_instance(inst, attached)
            assert blocks == {}
        finally:
            detach_all()
            store.close()


class TestRunnerIntegration:
    def test_grid_runner_hits_on_second_process_epoch(self, cache_root):
        config = ExperimentConfig(
            mesh="tetonly", target_cells=120, k=4, m_values=(2,),
            seeds=(0,), name="cache_probe",
        )
        runner.clear_caches()
        first = runner.get_instance(config)
        assert build_cache.COUNTERS["store"] == 1
        # Simulate a fresh process: drop in-memory memos, keep the disk.
        runner.clear_caches()
        second = runner.get_instance(config)
        assert build_cache.COUNTERS["hit"] == 1
        _assert_same_instance(first, second)
        runner.clear_caches()


class TestCacheCLI:
    def _cli(self, *argv):
        from repro.cli import main

        return main(list(argv))

    def test_stats_disabled_exits_2(self, monkeypatch, capsys):
        monkeypatch.delenv(build_cache.DIR_ENV, raising=False)
        assert self._cli("cache", "stats") == 2
        assert "disabled" in capsys.readouterr().err

    def test_stats_ls_clear_healthy(self, cache_root, capsys):
        key, inst = _tet_instance()
        build_cache.store_instance(key, inst)
        assert self._cli("cache", "stats", "--dir", str(cache_root)) == 0
        out = capsys.readouterr().out
        assert "entries" in out and "no corrupt" in out
        assert self._cli("cache", "ls", "--dir", str(cache_root)) == 0
        assert key in capsys.readouterr().out
        assert self._cli("cache", "clear", "--dir", str(cache_root)) == 0
        assert build_cache.list_entries() == []

    def test_stats_corrupt_exits_1(self, cache_root, capsys):
        key, inst = _tet_instance()
        path = build_cache.store_instance(key, inst)
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF
        path.write_bytes(bytes(blob))
        assert self._cli("cache", "stats", "--dir", str(cache_root)) == 1
        assert "CORRUPT" in capsys.readouterr().out
