"""Tests for the discrete-ordinates transport solver."""

import numpy as np
import pytest

from repro.core import random_delay_priority_schedule
from repro.mesh import Mesh, tetonly_like
from repro.sweeps import build_instance
from repro.transport import (
    Quadrature,
    TransportProblem,
    build_geometry,
    direction_balance,
    schedule_orders,
    solve,
    solve_with_schedule,
    sweep_direction,
)
from repro.util.errors import ReproError


@pytest.fixture(scope="module")
def grid_setup():
    mesh = Mesh.structured_grid((5, 5, 5))
    quad = Quadrature.sn(2)
    inst = build_instance(mesh, quad.directions)
    sched = random_delay_priority_schedule(inst, 4, seed=0)
    return mesh, quad, inst, sched


@pytest.fixture(scope="module")
def tet_setup():
    mesh = tetonly_like(250, seed=0)
    quad = Quadrature.sn(2)
    inst = build_instance(mesh, quad.directions)
    sched = random_delay_priority_schedule(inst, 4, seed=1)
    return mesh, quad, inst, sched


class TestQuadrature:
    def test_sn_weights_sum_to_one(self):
        q = Quadrature.sn(4)
        assert q.k == 24
        assert q.weights.sum() == pytest.approx(1.0)

    def test_symmetric_first_moment_vanishes(self):
        for q in (Quadrature.sn(2), Quadrature.sn(4), Quadrature.fan2d(8)):
            assert np.linalg.norm(q.first_moment()) < 1e-12

    def test_fibonacci_nearly_balanced(self):
        q = Quadrature.fib(64)
        assert np.linalg.norm(q.first_moment()) < 0.05

    def test_rejects_bad_weights(self):
        with pytest.raises(ReproError, match="sum to 1"):
            Quadrature(np.eye(3), np.array([0.5, 0.5, 0.5]))
        with pytest.raises(ReproError, match="one weight"):
            Quadrature(np.eye(3), np.array([1.0]))
        with pytest.raises(ReproError, match="positive"):
            Quadrature(np.eye(2)[:, :2], np.array([1.5, -0.5]))


class TestProblemValidation:
    def test_rejects_abstract_mesh(self):
        mesh = Mesh.structured_grid((3, 3))
        mesh.face_areas = None
        with pytest.raises(ReproError, match="geometry"):
            TransportProblem(mesh, Quadrature.fan2d(4), 1.0, 0.0, 1.0)

    def test_rejects_dimension_mismatch(self):
        mesh = Mesh.structured_grid((3, 3))
        with pytest.raises(ReproError, match="dimension"):
            TransportProblem(mesh, Quadrature.sn(2), 1.0, 0.0, 1.0)

    def test_rejects_unstable_scattering(self):
        mesh = Mesh.structured_grid((3, 3))
        with pytest.raises(ReproError, match="stable"):
            TransportProblem(mesh, Quadrature.fan2d(4), 1.0, 1.0, 1.0)

    def test_rejects_nonpositive_sigma_t(self):
        mesh = Mesh.structured_grid((3, 3))
        with pytest.raises(ReproError, match="sigma_t"):
            TransportProblem(mesh, Quadrature.fan2d(4), 0.0, 0.0, 1.0)

    def test_rejects_unknown_boundary(self):
        mesh = Mesh.structured_grid((3, 3))
        with pytest.raises(ReproError, match="boundary"):
            TransportProblem(mesh, Quadrature.fan2d(4), 1.0, 0.0, 1.0, boundary="magic")

    def test_scalar_cross_sections_broadcast(self):
        mesh = Mesh.structured_grid((3, 3))
        p = TransportProblem(mesh, Quadrature.fan2d(4), 2.0, 0.5, 1.0)
        assert p.sigma_t.shape == (9,)
        assert p.sigma_s[0] == 0.5


class TestManufacturedSolution:
    def test_single_direction_sweep_exact(self, grid_setup):
        """Pick an arbitrary psi*, derive the source that makes it exact,
        and check the sweep reproduces psi* to round-off."""
        mesh, quad, inst, sched = grid_setup
        problem = TransportProblem(mesh, quad, 1.3, 0.0, 1.0)
        orders = schedule_orders(sched)
        geos, _ = build_geometry(problem, orders)
        geo = geos[0]
        rng = np.random.default_rng(0)
        psi_star = rng.random(mesh.n_cells) + 0.5
        # Per-cell source from the balance: removal psi* - inflow psi*_up.
        vol_q = geo.removal * psi_star
        np.subtract.at(
            vol_q,
            np.repeat(np.arange(mesh.n_cells), np.diff(geo.in_offsets)),
            geo.in_coeffs * psi_star[geo.in_neighbors],
        )
        emission = vol_q / mesh.cell_volumes
        psi = sweep_direction(problem, geo, emission)
        assert np.allclose(psi, psi_star, rtol=1e-12, atol=1e-12)


class TestInfiniteMedium:
    """White boundary + symmetric quadrature reproduces phi = q/(st - ss)
    exactly on any mesh (divergence theorem; see solver module docs)."""

    def test_structured_grid(self, grid_setup):
        mesh, quad, inst, sched = grid_setup
        p = TransportProblem(mesh, quad, 1.0, 0.5, 2.0, boundary="white")
        res = solve_with_schedule(p, sched, tol=1e-11)
        assert res.converged
        assert np.allclose(res.phi, 4.0, atol=1e-7)

    def test_unstructured_tets(self, tet_setup):
        mesh, quad, inst, sched = tet_setup
        p = TransportProblem(mesh, quad, 2.0, 1.0, 3.0, boundary="white")
        res = solve_with_schedule(p, sched, tol=1e-11)
        assert res.converged
        assert np.allclose(res.phi, 3.0, atol=1e-6)

    def test_pure_absorber_white(self, grid_setup):
        mesh, quad, inst, sched = grid_setup
        p = TransportProblem(mesh, quad, 2.0, 0.0, 2.0, boundary="white")
        res = solve_with_schedule(p, sched, tol=1e-11)
        assert np.allclose(res.phi, 1.0, atol=1e-8)


class TestVacuum:
    def test_flux_below_infinite_medium(self, tet_setup):
        mesh, quad, inst, sched = tet_setup
        p = TransportProblem(mesh, quad, 2.0, 1.0, 1.0, boundary="vacuum")
        res = solve_with_schedule(p, sched)
        assert res.converged
        assert res.phi.max() < 1.0  # leakage strictly lowers the flux
        assert res.phi.min() > 0.0  # positivity

    def test_interior_flux_exceeds_boundary(self, grid_setup):
        mesh, quad, inst, sched = grid_setup
        p = TransportProblem(mesh, quad, 1.0, 0.0, 1.0, boundary="vacuum")
        res = solve_with_schedule(p, sched)
        center = res.phi.argmax()
        assert np.all(
            np.abs(mesh.centroids[center] - 2.5) < 1.5
        )  # peak near the middle of the 5x5x5 box

    def test_conservation_per_direction(self, tet_setup):
        """source == collision + leakage to round-off (vacuum)."""
        mesh, quad, inst, sched = tet_setup
        p = TransportProblem(mesh, quad, 1.5, 0.0, 1.0, boundary="vacuum")
        orders = schedule_orders(sched)
        geos, _ = build_geometry(p, orders)
        emission = p.source.copy()
        for geo in geos[:3]:
            psi = sweep_direction(p, geo, emission)
            bal = direction_balance(p, geo, emission, psi)
            assert bal["source"] + bal["inflow"] == pytest.approx(
                bal["collision"] + bal["leakage"], rel=1e-10
            )

    def test_more_absorption_less_flux(self, grid_setup):
        mesh, quad, inst, sched = grid_setup
        lo = solve_with_schedule(
            TransportProblem(mesh, quad, 1.0, 0.0, 1.0), sched
        )
        hi = solve_with_schedule(
            TransportProblem(mesh, quad, 3.0, 0.0, 1.0), sched
        )
        assert np.all(hi.phi < lo.phi)


class TestScheduleIntegration:
    def test_any_feasible_schedule_gives_same_answer(self, tet_setup):
        """The flux must be schedule-independent: scheduling changes only
        the execution order, not the math."""
        mesh, quad, inst, _ = tet_setup
        p = TransportProblem(mesh, quad, 2.0, 0.8, 1.0, boundary="vacuum")
        from repro.heuristics import ALGORITHMS

        results = []
        for name in ("random_delay", "dfds", "fifo"):
            sched = ALGORITHMS[name](inst, 4, seed=0)
            results.append(solve_with_schedule(p, sched, tol=1e-10).phi)
        assert np.allclose(results[0], results[1], atol=1e-9)
        assert np.allclose(results[0], results[2], atol=1e-9)

    def test_infeasible_order_detected(self, grid_setup):
        mesh, quad, inst, sched = grid_setup
        p = TransportProblem(mesh, quad, 1.0, 0.0, 1.0)
        orders = schedule_orders(sched)
        orders[0] = orders[0][::-1].copy()  # reverse: violates upwinding
        with pytest.raises(ReproError, match="infeasible"):
            solve(p, orders, max_iterations=1)

    def test_mismatched_schedule_rejected(self, grid_setup, tet_setup):
        mesh, quad, _, _ = grid_setup
        _, _, _, tet_sched = tet_setup
        p = TransportProblem(mesh, quad, 1.0, 0.0, 1.0)
        with pytest.raises(ReproError, match="does not match"):
            solve_with_schedule(p, tet_sched)

    def test_bad_order_permutation_rejected(self, grid_setup):
        mesh, quad, inst, sched = grid_setup
        p = TransportProblem(mesh, quad, 1.0, 0.0, 1.0)
        orders = schedule_orders(sched)
        orders[0] = np.zeros_like(orders[0])
        with pytest.raises(ReproError, match="permutation"):
            solve(p, orders)


class TestConvergence:
    def test_scattering_ratio_drives_iteration_count(self, grid_setup):
        """Higher sigma_s/sigma_t means slower source iteration."""
        mesh, quad, inst, sched = grid_setup
        iters = []
        for ss in (0.1, 0.5, 0.9):
            p = TransportProblem(mesh, quad, 1.0, ss, 1.0, boundary="vacuum")
            iters.append(solve_with_schedule(p, sched, tol=1e-8).iterations)
        assert iters[0] < iters[1] < iters[2]

    def test_max_iterations_cap(self, grid_setup):
        mesh, quad, inst, sched = grid_setup
        p = TransportProblem(mesh, quad, 1.0, 0.9, 1.0)
        res = solve_with_schedule(p, sched, tol=1e-14, max_iterations=3)
        assert not res.converged
        assert res.iterations == 3

    def test_residual_history_monotone_tail(self, grid_setup):
        mesh, quad, inst, sched = grid_setup
        p = TransportProblem(mesh, quad, 1.0, 0.5, 1.0, boundary="vacuum")
        res = solve_with_schedule(p, sched, tol=1e-10)
        tail = res.residual_history[2:]
        assert all(b <= a * 1.01 for a, b in zip(tail, tail[1:]))

    def test_rejects_bad_solver_args(self, grid_setup):
        mesh, quad, inst, sched = grid_setup
        p = TransportProblem(mesh, quad, 1.0, 0.0, 1.0)
        with pytest.raises(ReproError, match="positive"):
            solve_with_schedule(p, sched, tol=-1)

    def test_2d_problem_solves(self):
        mesh = Mesh.structured_grid((6, 6))
        quad = Quadrature.fan2d(8)
        inst = build_instance(mesh, quad.directions)
        sched = random_delay_priority_schedule(inst, 4, seed=0)
        p = TransportProblem(mesh, quad, 1.0, 0.4, 1.0, boundary="white")
        res = solve_with_schedule(p, sched, tol=1e-10)
        assert np.allclose(res.phi, 1.0 / 0.6, atol=1e-7)
