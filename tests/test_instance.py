"""Tests for the SweepInstance model."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core import Dag, SweepInstance
from repro.util.errors import InvalidInstanceError

from .strategies import sweep_instances


class TestShape:
    def test_basic_counts(self, chain_instance):
        assert chain_instance.n_cells == 4
        assert chain_instance.k == 2
        assert chain_instance.n_tasks == 8

    def test_task_id_mapping_roundtrip(self, chain_instance):
        for v in range(4):
            for i in range(2):
                tid = chain_instance.task_id(v, i)
                assert chain_instance.task_cell(tid) == v
                assert chain_instance.task_direction(tid) == i

    def test_task_id_vectorised(self, chain_instance):
        tids = np.arange(8)
        cells = chain_instance.task_cell(tids)
        dirs = chain_instance.task_direction(tids)
        assert list(cells) == [0, 1, 2, 3, 0, 1, 2, 3]
        assert list(dirs) == [0, 0, 0, 0, 1, 1, 1, 1]

    def test_needs_at_least_one_dag(self):
        with pytest.raises(InvalidInstanceError, match="at least one"):
            SweepInstance(3, [])

    def test_rejects_mismatched_dag_size(self):
        g = Dag.from_edge_list(3, [(0, 1)])
        with pytest.raises(InvalidInstanceError, match="direction 0"):
            SweepInstance(4, [g])

    def test_rejects_negative_cells(self):
        with pytest.raises(InvalidInstanceError, match="n_cells"):
            SweepInstance(-1, [Dag(0, [])])

    def test_repr(self, chain_instance):
        assert "n_cells=4" in repr(chain_instance)


class TestDerivedStructure:
    def test_union_dag_offsets_directions(self, chain_instance):
        union = chain_instance.union_dag()
        assert union.n == 8
        assert union.num_edges == 6
        edges = set(map(tuple, union.edges.tolist()))
        assert (0, 1) in edges  # direction 0 chain
        assert (4 + 3, 4 + 2) in edges  # direction 1 reversed chain

    def test_union_dag_cached(self, chain_instance):
        assert chain_instance.union_dag() is chain_instance.union_dag()

    def test_task_levels(self, chain_instance):
        lev = chain_instance.task_levels()
        assert list(lev[:4]) == [0, 1, 2, 3]  # forward chain
        assert list(lev[4:]) == [3, 2, 1, 0]  # backward chain

    def test_depth(self, chain_instance):
        assert chain_instance.depth() == 4

    def test_derived_cell_edges_are_undirected_unique(self, chain_instance):
        e = chain_instance.cell_graph_edges
        # Both directions of the chain collapse to 3 undirected edges.
        assert e.shape == (3, 2)
        assert np.all(e[:, 0] < e[:, 1])

    def test_explicit_cell_edges_kept(self):
        g = Dag.from_edge_list(3, [(0, 1)])
        custom = np.array([[0, 2]])
        inst = SweepInstance(3, [g], cell_graph_edges=custom)
        assert inst.cell_graph_edges.tolist() == [[0, 2]]

    def test_validate_passes_on_good_instance(self, chain_instance):
        chain_instance.validate()

    @given(sweep_instances())
    @settings(max_examples=25, deadline=None)
    def test_union_levels_dominate_direction_levels(self, inst):
        """A task's union-DAG level is >= its level in its own direction
        (the union adds constraints only through shared structure —
        actually none here since directions are disjoint copies)."""
        union_lev = inst.union_dag().level_of()
        own = inst.task_levels()
        assert np.array_equal(union_lev, own)
