"""Shared fixtures: small meshes, instances, and hand-built DAGs."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import settings as hyp_settings

from repro.core import Dag, SweepInstance

# Derandomize hypothesis so the suite is reproducible run to run.
hyp_settings.register_profile("repro", derandomize=True, deadline=None)
hyp_settings.load_profile("repro")
from repro.mesh import Mesh, tetonly_like, unit_square_tri
from repro.sweeps import build_instance, circle_directions, level_symmetric


@pytest.fixture(scope="session")
def tri_mesh() -> Mesh:
    """~100-cell 2-D triangle mesh (fast, shared across the session)."""
    return unit_square_tri(target_cells=100, seed=0)


@pytest.fixture(scope="session")
def tet_mesh() -> Mesh:
    """~400-cell 3-D tet mesh."""
    return tetonly_like(target_cells=400, seed=0)


@pytest.fixture(scope="session")
def grid_mesh() -> Mesh:
    """6x5 structured quad grid (exact expectations possible)."""
    return Mesh.structured_grid((6, 5))


@pytest.fixture(scope="session")
def tri_instance(tri_mesh) -> SweepInstance:
    """2-D mesh with 4 sweep directions."""
    return build_instance(tri_mesh, circle_directions(4))


@pytest.fixture(scope="session")
def tet_instance(tet_mesh) -> SweepInstance:
    """3-D mesh with the 8-direction S2 set."""
    return build_instance(tet_mesh, level_symmetric(2))


@pytest.fixture()
def chain_instance() -> SweepInstance:
    """Two directions over a 4-cell path: one sweeps 0->3, one 3->0."""
    fwd = Dag.from_edge_list(4, [(0, 1), (1, 2), (2, 3)])
    bwd = Dag.from_edge_list(4, [(3, 2), (2, 1), (1, 0)])
    return SweepInstance(4, [fwd, bwd], name="chain")


@pytest.fixture()
def diamond_dag() -> Dag:
    """Classic diamond: 0 -> {1, 2} -> 3."""
    return Dag.from_edge_list(4, [(0, 1), (0, 2), (1, 3), (2, 3)])


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)
