"""Disabled-mode overhead smoke for the ``repro.obs`` instrumentation.

The tracing plane's design center is that instrumentation left in the
scheduler engines costs ~nothing while tracing is off.  Wall-clock A/B
runs of the same engine are too noisy on shared CI boxes to resolve a
small overhead, so this bounds it the robust way: measure the *actual*
per-call cost of the disabled primitives (``span``/``inc``/``gauge_max``
with tracing off), multiply by a generous over-count of the
instrumentation sites one ``mesh_large`` engine run executes, and
require the product to stay under 2% of the measured engine wall time.
Marked ``bench_smoke`` alongside the other timing-sensitive smokes:

    python -m pytest -q -m bench_smoke
"""

from __future__ import annotations

import pytest

from repro import obs
from repro.core.assignment import random_cell_assignment
from repro.core.list_scheduler import list_schedule
from repro.core.random_delay import delayed_task_layers, draw_delays
from repro.experiments.bench import bench_cases
from repro.util.rng import as_rng
from repro.util.timing import Timer

pytestmark = pytest.mark.bench_smoke

#: Generous over-count of obs primitive calls per engine run.  One run
#: executes a handful (1-2 spans, <=4 counters, <=1 gauge); 64 leaves
#: an order of magnitude of slack for future instrumentation points.
_CALLS_PER_RUN = 64

#: The acceptance bound: disabled-mode instrumentation within 2%.
_MAX_OVERHEAD_FRACTION = 0.02


@pytest.fixture(scope="module")
def mesh_large():
    """The smoke-sized mesh_large bench case, set up like run_bench."""
    case = next(
        c for c in bench_cases(smoke=True) if c["family"] == "mesh_large"
    )
    inst, _phases = case["build"]()
    m = case["m"]
    rng = as_rng(0)
    delays = draw_delays(inst.k, rng)
    assignment = random_cell_assignment(inst.n_cells, m, rng)
    priority = delayed_task_layers(inst, delays)
    union = inst.union_dag()
    union.successor_lists()
    union.padded_successors()
    union.num_levels()
    return inst, m, assignment, priority


@pytest.fixture
def untraced():
    was = obs.tracing_enabled()
    obs.disable_tracing()
    obs.reset()
    yield
    obs.reset()
    if was:
        obs.enable_tracing()


def _disabled_primitive_cost(iterations: int = 20000) -> float:
    """Measured per-call cost of the disabled obs fast path (seconds)."""
    with Timer() as t:
        for _ in range(iterations):
            with obs.span("overhead.probe", cat="bench"):
                pass
            obs.inc("overhead.probe")
            obs.gauge_max("overhead.probe", 1.0)
    # Three primitives per iteration; charge the dearest uniformly.
    return t.elapsed / (3 * iterations)


def _engine_wall(inst, m, assignment, priority, engine, repeats=5) -> float:
    best = float("inf")
    for _ in range(repeats):
        with Timer() as t:
            list_schedule(inst, m, assignment, priority=priority,
                          engine=engine)
        best = min(best, t.elapsed)
    return best


class TestDisabledOverhead:
    def test_disabled_primitives_record_nothing(self, untraced):
        _disabled_primitive_cost(iterations=100)
        assert obs.drain_spans() == []
        assert obs.drain_metrics() == {"counters": {}, "gauges": {}}

    @pytest.mark.parametrize("engine", ["heap", "bucket"])
    def test_instrumentation_within_two_percent_of_mesh_large(
        self, mesh_large, untraced, engine
    ):
        inst, m, assignment, priority = mesh_large
        # Interleave the measurements so a machine-load drift hits both.
        wall_a = _engine_wall(inst, m, assignment, priority, engine)
        per_call = _disabled_primitive_cost()
        wall_b = _engine_wall(inst, m, assignment, priority, engine)
        wall = min(wall_a, wall_b)
        overhead = _CALLS_PER_RUN * per_call
        assert overhead < _MAX_OVERHEAD_FRACTION * wall, (
            f"disabled obs cost {overhead * 1e6:.1f}us exceeds 2% of the "
            f"{engine} engine's {wall * 1e3:.2f}ms mesh_large run"
        )

    def test_disabled_span_is_allocation_free(self, untraced):
        # The no-op handle is one shared singleton: opening a span with
        # tracing off allocates no object per call.
        handles = {id(obs.span(f"s{i}")) for i in range(32)}
        assert len(handles) == 1
