"""Tests for the whole-program lint pass (``repro lint --deep``).

Mirrors the layering of ``tests/test_lint.py`` at the program level:

* **clean-tree gate** — ``repro lint src/repro --deep`` must be clean,
  making RPL101–105 repo-wide invariants;
* **fixture pairs** — each ``tests/lint_fixtures/deep/RPL10X_bad/``
  package (multi-file: the violation only exists *across* files) must
  trigger exactly rule RPL10X with the expected count, each
  ``RPL10X_ok/`` package must be silent;
* **mutation self-tests** — neuter each deep rule's ``check_program``
  (and the root/fact derivations they depend on) and assert the bad
  fixture goes quiet, proving the fixtures exercise live checkers;
* **graph mechanics** — the pinned call-graph golden (edge triples for
  the ``callgraph/`` fixture package), cache round-trips keyed on the
  source-tree hash, and serialisation fidelity;
* **CLI surface** — ``--deep`` exit codes, the path-error contract
  (missing / unreadable / no python files → exit 2), and the <30 s
  full-tree timing budget the CI job relies on.
"""

from __future__ import annotations

import json
import os
import time

import pytest

from repro.cli import main
from repro.lint import (
    build_program,
    get_rule,
    iter_python_files,
    lint_paths_deep,
    lint_paths_with_deep,
    load_program,
)
from repro.lint.dataflow import propagate_any, worker_entrypoints
from repro.lint.graph import Program, source_tree_hash

DEEP_FIXTURE_DIR = os.path.join(
    os.path.dirname(__file__), "lint_fixtures", "deep"
)
CALLGRAPH_GOLDEN = os.path.join(
    os.path.dirname(__file__), "goldens", "callgraph_edges.json"
)
SRC_REPRO = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src", "repro"
)

#: Rule code → number of findings its known-bad fixture package must
#: produce.  Exact counts so a checker that half-breaks still fails.
EXPECTED_DEEP_BAD = {
    "RPL101": 2,
    "RPL102": 2,
    "RPL103": 2,
    "RPL104": 1,
    "RPL105": 2,
}

DEEP_CODES = sorted(EXPECTED_DEEP_BAD)


def _package(code: str, kind: str) -> str:
    return os.path.join(DEEP_FIXTURE_DIR, f"{code}_{kind}")


def _lint_package(code: str, kind: str):
    return lint_paths_deep([_package(code, kind)], rules=[get_rule(code)])


# ---------------------------------------------------------------------------
# Clean-tree gate
# ---------------------------------------------------------------------------


class TestCleanTree:
    def test_src_repro_is_deep_clean(self):
        report = lint_paths_deep([SRC_REPRO])
        assert report.files_checked > 50
        assert report.ok, "\n" + report.format_text()

    def test_combined_pass_is_clean(self):
        report = lint_paths_with_deep([SRC_REPRO])
        assert report.ok, "\n" + report.format_text()

    def test_deep_rules_are_registered_and_marked(self):
        for code in DEEP_CODES:
            rule = get_rule(code)
            assert rule.deep is True
            assert rule.check(None) == []  # file-local pass: no-op

    def test_worker_entrypoints_exist_in_tree(self):
        # The spawn-safety and span-safety rules are vacuous without
        # roots; the real tree must provide them.
        program = build_program(iter_python_files([SRC_REPRO]))
        roots = worker_entrypoints(program)
        assert any(q.endswith(".init_worker") for q in roots)
        assert any(q.endswith(".run_chunk") for q in roots)

    def test_tree_has_engine_taker_call_sites(self):
        # RPL103 must actually be checking edges on the real tree.
        program = build_program(iter_python_files([SRC_REPRO]))
        checked = 0
        for fn in program.functions.values():
            if not fn.accepts_engine:
                continue
            for site in fn.calls:
                if any(
                    c in program.functions
                    and program.functions[c].accepts_engine
                    for c in site.callees
                ):
                    checked += 1
        assert checked >= 10


# ---------------------------------------------------------------------------
# Fixture pairs (multi-file packages)
# ---------------------------------------------------------------------------


class TestFixturePairs:
    @pytest.mark.parametrize("code", DEEP_CODES)
    def test_bad_package_triggers_its_rule(self, code):
        report = _lint_package(code, "bad")
        assert len(report.diagnostics) == EXPECTED_DEEP_BAD[code], (
            "\n" + report.format_text()
        )
        for diag in report.diagnostics:
            assert diag.rule == code
            assert diag.line > 0
            assert os.path.exists(diag.path)

    @pytest.mark.parametrize("code", DEEP_CODES)
    def test_ok_package_is_silent(self, code):
        report = _lint_package(code, "ok")
        assert report.ok, "\n" + report.format_text()

    @pytest.mark.parametrize("code", DEEP_CODES)
    def test_bad_findings_sit_on_distinct_lines(self, code):
        report = _lint_package(code, "bad")
        locations = {(d.path, d.line) for d in report.diagnostics}
        assert len(locations) == len(report.diagnostics)

    def test_violations_are_cross_file(self):
        # Each bad package really needs the whole-program view: the file
        # containing the finding must not be self-sufficient (it imports
        # a sibling fixture file that completes the violation).
        for code in DEEP_CODES:
            report = _lint_package(code, "bad")
            package_files = iter_python_files([_package(code, "bad")])
            assert len(package_files) >= 2
            flagged = {d.path for d in report.diagnostics}
            assert flagged < set(package_files)


# ---------------------------------------------------------------------------
# Mutation self-tests
# ---------------------------------------------------------------------------


class TestMutation:
    @pytest.mark.parametrize("code", DEEP_CODES)
    def test_neutered_checker_fails_the_fixture_expectation(
        self, code, monkeypatch
    ):
        rule = get_rule(code)
        monkeypatch.setattr(
            type(rule), "check_program", lambda self, program: []
        )
        report = _lint_package(code, "bad")
        assert len(report.diagnostics) != EXPECTED_DEEP_BAD[code]

    def test_emptied_banned_set_fails_spawn_safety(self, monkeypatch):
        import repro.lint.rules.deep.spawn_safety as mod

        monkeypatch.setattr(mod, "SPAWN_BANNED_NAMES", frozenset())
        report = _lint_package("RPL101", "bad")
        assert not report.diagnostics

    def test_removed_roots_fail_span_safety(self, monkeypatch):
        import repro.lint.rules.deep.span_safety as mod

        monkeypatch.setattr(mod, "worker_entrypoints", lambda program: [])
        report = _lint_package("RPL104", "bad")
        assert not report.diagnostics


# ---------------------------------------------------------------------------
# Graph mechanics: golden, cache, serialisation
# ---------------------------------------------------------------------------


class TestGraph:
    def _fixture_program(self) -> Program:
        files = iter_python_files(
            [os.path.join(DEEP_FIXTURE_DIR, "callgraph")]
        )
        return build_program(files)

    def test_callgraph_matches_golden(self):
        # Regenerate with:
        #   PYTHONPATH=src python scripts/regenerate_goldens.py --write
        with open(CALLGRAPH_GOLDEN, encoding="utf-8") as fh:
            stored = json.load(fh)
        current = self._fixture_program().edges_json()
        assert current == stored, (
            "call-graph resolution drifted — review and regenerate the "
            "golden if intended"
        )

    def test_golden_covers_every_edge_kind(self):
        kinds = {kind for _, _, kind in self._fixture_program().edges_json()}
        assert kinds == {"direct", "method", "init", "registry", "fallback"}

    def test_program_json_round_trip(self):
        program = self._fixture_program()
        clone = Program.from_json(program.to_json())
        assert clone.edges_json() == program.edges_json()
        assert set(clone.functions) == set(program.functions)
        for q in program.functions:
            assert (
                clone.functions[q].as_dict() == program.functions[q].as_dict()
            )

    def test_cache_round_trip(self, tmp_path):
        files = iter_python_files(
            [os.path.join(DEEP_FIXTURE_DIR, "callgraph")]
        )
        first = load_program(files, cache_dir=str(tmp_path))
        cached = list(tmp_path.glob("deepgraph-*.json"))
        assert len(cached) == 1
        second = load_program(files, cache_dir=str(tmp_path))
        assert second.edges_json() == first.edges_json()

    def test_corrupt_cache_is_rebuilt(self, tmp_path):
        files = iter_python_files(
            [os.path.join(DEEP_FIXTURE_DIR, "callgraph")]
        )
        load_program(files, cache_dir=str(tmp_path))
        (entry,) = tmp_path.glob("deepgraph-*.json")
        entry.write_text("{ not json")
        program = load_program(files, cache_dir=str(tmp_path))
        assert program.edges_json()  # rebuilt, not crashed

    def test_source_hash_tracks_content(self, tmp_path):
        a = tmp_path / "a.py"
        a.write_text("x = 1\n")
        h1 = source_tree_hash([str(a)])
        a.write_text("x = 2\n")
        h2 = source_tree_hash([str(a)])
        assert h1 != h2

    def test_propagate_any_reaches_fixpoint_over_cycles(self):
        # Two functions calling each other: a local fact on one must
        # propagate to the other without looping forever.
        program = self._fixture_program()
        any_q = sorted(program.functions)[0]
        facts = propagate_any(program, {any_q: True})
        assert facts[any_q] is True
        assert set(facts) == set(program.functions)


# ---------------------------------------------------------------------------
# Pragmas on deep findings
# ---------------------------------------------------------------------------


class TestDeepPragmas:
    def _write_package(self, tmp_path, driver_body: str):
        (tmp_path / "sched.py").write_text(
            "# repro-lint-fixture: path=core/sched.py\n"
            "def schedule(inst, m, engine=None):\n"
            "    return inst\n"
        )
        (tmp_path / "driver.py").write_text(driver_body)
        return str(tmp_path)

    def test_justified_pragma_suppresses_deep_finding(self, tmp_path):
        pkg = self._write_package(
            tmp_path,
            "# repro-lint-fixture: path=experiments/driver.py\n"
            "from repro.core.sched import schedule\n"
            "def run(inst, m, engine=None):\n"
            "    return schedule(inst, m)  "
            "# repro-lint: disable=RPL103 -- benchmark pins the default\n",
        )
        report = lint_paths_deep([pkg], rules=[get_rule("RPL103")])
        assert report.ok
        assert report.suppressed == 1

    def test_unjustified_pragma_does_not_suppress(self, tmp_path):
        pkg = self._write_package(
            tmp_path,
            "# repro-lint-fixture: path=experiments/driver.py\n"
            "from repro.core.sched import schedule\n"
            "def run(inst, m, engine=None):\n"
            "    return schedule(inst, m)  # repro-lint: disable=RPL103\n",
        )
        report = lint_paths_deep([pkg], rules=[get_rule("RPL103")])
        assert len(report.diagnostics) == 1
        assert report.suppressed == 0


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------


class TestCli:
    def test_deep_clean_tree_exits_zero(self, capsys):
        assert main(["lint", SRC_REPRO, "--deep"]) == 0
        assert "0 findings" in capsys.readouterr().out

    def test_deep_bad_package_exits_one(self, capsys):
        code = main([
            "lint", _package("RPL103", "bad"), "--deep", "--rule", "RPL103",
        ])
        assert code == 1
        assert "RPL103" in capsys.readouterr().out

    def test_deep_rules_inert_without_flag(self, capsys):
        assert main(["lint", _package("RPL103", "bad")]) == 0

    def test_deep_json_format(self, capsys):
        code = main([
            "lint", _package("RPL101", "bad"), "--deep", "--rule", "RPL101",
            "--format", "json",
        ])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert {f["rule"] for f in payload["findings"]} == {"RPL101"}

    def test_list_rules_marks_scope(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in DEEP_CODES:
            assert f"{code} " in out or f"{code}  " in out
        assert "[deep]" in out and "[file]" in out

    def test_missing_path_exits_two(self, capsys):
        assert main(["lint", "does/not/exist.py", "--deep"]) == 2
        assert "no such path" in capsys.readouterr().err

    def test_no_python_files_exits_two(self, tmp_path, capsys):
        (tmp_path / "README.md").write_text("not python\n")
        assert main(["lint", str(tmp_path)]) == 2
        assert "no python files" in capsys.readouterr().err

    def test_unreadable_file_exits_two(self, tmp_path, capsys, monkeypatch):
        target = tmp_path / "locked.py"
        target.write_text("x = 1\n")
        real_access = os.access
        monkeypatch.setattr(
            os, "access",
            lambda path, mode, **kw: (
                False if str(path) == str(target)
                else real_access(path, mode, **kw)
            ),
        )
        assert main(["lint", str(target)]) == 2
        assert "unreadable" in capsys.readouterr().err

    def test_graph_cache_flag_writes_cache(self, tmp_path, capsys):
        cache = tmp_path / "graphcache"
        code = main([
            "lint", _package("RPL103", "ok"), "--deep",
            "--graph-cache", str(cache),
        ])
        assert code == 0
        assert list(cache.glob("deepgraph-*.json"))


# ---------------------------------------------------------------------------
# Timing budget
# ---------------------------------------------------------------------------


class TestTiming:
    def test_full_tree_deep_pass_under_budget(self):
        # CI runs `repro lint --deep` on every push; the whole pass —
        # file-local rules + graph build + deep rules — must stay well
        # under 30 s or the lint job becomes the critical path.
        start = time.monotonic()
        report = lint_paths_with_deep([SRC_REPRO])
        elapsed = time.monotonic() - start
        assert report.files_checked > 50
        assert elapsed < 30.0, f"deep pass took {elapsed:.1f}s"
