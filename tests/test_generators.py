"""Tests for the paper-like mesh generators."""

import numpy as np
import pytest

from repro.mesh import MESH_GENERATORS, make_mesh, well_logging_like
from repro.util.errors import MeshError


class TestAllGenerators:
    @pytest.mark.parametrize("name", sorted(MESH_GENERATORS))
    def test_valid_and_named(self, name):
        mesh = make_mesh(name, target_cells=400, seed=0)
        mesh.validate()
        assert mesh.n_cells > 50
        assert name.split("2d")[0] in mesh.name or mesh.name.startswith(name)

    @pytest.mark.parametrize("name", ["tetonly", "long", "prismtet"])
    def test_cell_count_tracks_target(self, name):
        small = make_mesh(name, target_cells=300, seed=0)
        large = make_mesh(name, target_cells=1200, seed=0)
        assert large.n_cells > 2 * small.n_cells

    @pytest.mark.parametrize("name", sorted(MESH_GENERATORS))
    def test_deterministic(self, name):
        a = make_mesh(name, target_cells=300, seed=5)
        b = make_mesh(name, target_cells=300, seed=5)
        assert np.array_equal(a.adjacency, b.adjacency)

    def test_unknown_name_raises(self):
        with pytest.raises(MeshError, match="known:"):
            make_mesh("bogus")


class TestGeometricCharacter:
    def test_long_is_elongated(self):
        mesh = make_mesh("long", target_cells=400, seed=0)
        extent = mesh.centroids.max(axis=0) - mesh.centroids.min(axis=0)
        assert extent[0] > 5 * extent[1]

    def test_well_logging_bore_is_empty(self):
        mesh = well_logging_like(target_cells=800, seed=0, bore_radius=0.3)
        rad = np.hypot(mesh.centroids[:, 0], mesh.centroids[:, 1])
        assert rad.min() >= 0.3

    def test_well_logging_rejects_bad_radii(self):
        with pytest.raises(MeshError, match="bore_radius"):
            well_logging_like(target_cells=200, bore_radius=2.0, outer_radius=1.0)

    def test_prismtet_density_gradient(self):
        mesh = make_mesh("prismtet", target_cells=800, seed=0)
        lower = (mesh.centroids[:, 2] < 0.5).sum()
        upper = (mesh.centroids[:, 2] >= 0.5).sum()
        assert lower > 1.5 * upper  # fine region denser than coarse

    def test_square2d_is_two_dimensional(self):
        mesh = make_mesh("square2d", target_cells=100, seed=0)
        assert mesh.dim == 2
