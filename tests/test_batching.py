"""Tests for direction batching (angle-set aggregation)."""

import numpy as np
import pytest

from repro.core import random_delay_priority_schedule
from repro.sweeps import batched_schedule, direction_batches
from repro.util.errors import ReproError


class TestDirectionBatches:
    def test_even_split(self):
        batches = direction_batches(8, 4)
        assert [len(b) for b in batches] == [2, 2, 2, 2]
        assert np.concatenate(batches).tolist() == list(range(8))

    def test_uneven_split(self):
        batches = direction_batches(8, 3)
        assert sum(len(b) for b in batches) == 8
        assert max(len(b) for b in batches) - min(len(b) for b in batches) <= 1

    def test_one_batch_is_everything(self):
        (batch,) = direction_batches(5, 1)
        assert batch.tolist() == [0, 1, 2, 3, 4]

    def test_k_batches_are_singletons(self):
        batches = direction_batches(4, 4)
        assert all(len(b) == 1 for b in batches)

    def test_rejects_bad_counts(self):
        with pytest.raises(ReproError):
            direction_batches(4, 0)
        with pytest.raises(ReproError):
            direction_batches(4, 5)


class TestBatchedSchedule:
    def test_feasible(self, tet_instance):
        s = batched_schedule(tet_instance, 4, n_batches=4, seed=0)
        s.validate()
        assert s.meta["n_batches"] == 4

    def test_single_batch_matches_plain_algorithm(self, tet_instance):
        """n_batches=1 must be the plain algorithm with the same
        randomness stream structure — same makespan scale at least."""
        s1 = batched_schedule(tet_instance, 4, n_batches=1, seed=0)
        s1.validate()
        plain = random_delay_priority_schedule(tet_instance, 4, seed=0)
        assert abs(s1.makespan - plain.makespan) / plain.makespan < 0.15

    def test_batches_run_sequentially(self, tet_instance):
        n = tet_instance.n_cells
        s = batched_schedule(tet_instance, 4, n_batches=2, seed=0)
        first_half = s.start[: (tet_instance.k // 2) * n]
        second_half = s.start[(tet_instance.k // 2) * n :]
        assert first_half.max() < second_half.min()

    def test_more_batches_never_helps(self, tet_instance):
        """Batching only removes pipelining freedom: makespan is
        monotone (weakly, modulo randomness) in batch count."""
        spans = []
        for nb in (1, 2, 8):
            best = min(
                batched_schedule(tet_instance, 8, n_batches=nb, seed=s).makespan
                for s in range(3)
            )
            spans.append(best)
        assert spans[0] <= spans[1] * 1.05
        assert spans[1] <= spans[2] * 1.05

    def test_shared_assignment_across_batches(self, tet_instance):
        assignment = np.arange(tet_instance.n_cells) % 4
        s = batched_schedule(
            tet_instance, 4, n_batches=2, seed=0, assignment=assignment
        )
        assert np.array_equal(s.assignment, assignment)
        s.validate()

    def test_named_algorithm_forwarded(self, tet_instance):
        s = batched_schedule(tet_instance, 4, n_batches=2, algorithm="dfds", seed=0)
        s.validate()
        assert s.meta["algorithm"] == "batched_dfds"
