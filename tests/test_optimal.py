"""Tests for the exact optimal scheduler, and OPT-anchored verification
of every algorithm and lower bound on tiny instances."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core import Dag, SweepInstance, combined_lower_bound, graham_relaxation_lb
from repro.core.optimal import (
    optimal_makespan,
    optimal_makespan_for_assignment,
    _set_partitions,
)
from repro.heuristics import ALGORITHMS
from repro.util.errors import ReproError

from .strategies import sweep_instances


class TestExactSolver:
    def test_independent_tasks(self):
        inst = SweepInstance(4, [Dag(4, [])])
        assert optimal_makespan(inst, 2) == 2
        assert optimal_makespan(inst, 4) == 1

    def test_chain_forces_serialisation(self):
        g = Dag.from_edge_list(4, [(0, 1), (1, 2), (2, 3)])
        inst = SweepInstance(4, [g])
        assert optimal_makespan(inst, 4) == 4

    def test_two_opposing_chains(self, chain_instance):
        # 4 cells, 2 opposite chains, 8 tasks.  With m=2 OPT is known to
        # be >= nk/m = 4 and a hand schedule of 5 exists; check exact.
        opt = optimal_makespan(chain_instance, 2)
        assert 4 <= opt <= 6
        assert opt == optimal_makespan(chain_instance, 2)  # deterministic

    def test_same_proc_constraint_binds(self):
        """k copies of one cell must serialise on one processor."""
        inst = SweepInstance(1, [Dag(1, []), Dag(1, []), Dag(1, [])])
        assert optimal_makespan(inst, 3) == 3

    def test_fixed_assignment_variant(self):
        inst = SweepInstance(2, [Dag(2, [])])
        # Both cells on one proc: 2 steps; split: 1 step.
        assert optimal_makespan_for_assignment(inst, 2, np.array([0, 0])) == 2
        assert optimal_makespan_for_assignment(inst, 2, np.array([0, 1])) == 1

    def test_size_caps_enforced(self):
        big = SweepInstance(20, [Dag(20, [])])
        with pytest.raises(ReproError, match="caps"):
            optimal_makespan(big, 2)
        with pytest.raises(ReproError, match="caps"):
            optimal_makespan_for_assignment(big, 2, np.zeros(20, dtype=int))

    def test_empty_instance(self):
        inst = SweepInstance(0, [Dag(0, [])])
        assert optimal_makespan(inst, 2) == 0


class TestSetPartitions:
    def test_counts_bell_numbers(self):
        # Partitions of 3 items into <= 3 groups: Bell(3) = 5.
        assert len(list(_set_partitions(3, 3))) == 5
        # Into <= 2 groups: 4 (drop the all-singletons one).
        assert len(list(_set_partitions(3, 2))) == 4

    def test_canonical_form(self):
        for p in _set_partitions(4, 3):
            assert p[0] == 0  # item 0 anchors group 0
            # Restricted growth: each new label is at most max-so-far + 1.
            seen = 0
            for g in p:
                assert g <= seen
                seen = max(seen, g + 1)


class TestAlgorithmsAgainstOPT:
    """The point of the oracle: verify the whole stack on tiny instances."""

    @given(sweep_instances(max_n=5, max_k=2))
    @settings(max_examples=15, deadline=None)
    def test_lower_bounds_below_opt(self, inst):
        m = 2
        opt = optimal_makespan(inst, m)
        assert combined_lower_bound(inst, m) <= opt
        assert graham_relaxation_lb(inst, m) <= opt

    @given(sweep_instances(max_n=5, max_k=2))
    @settings(max_examples=10, deadline=None)
    def test_all_algorithms_at_least_opt(self, inst):
        m = 2
        opt = optimal_makespan(inst, m)
        for name, algo in ALGORITHMS.items():
            s = algo(inst, m, seed=0)
            assert s.makespan >= opt, f"{name} beat OPT — invalid schedule?"

    @given(sweep_instances(max_n=5, max_k=2))
    @settings(max_examples=10, deadline=None)
    def test_priority_algorithm_within_small_factor_of_opt(self, inst):
        """The paper observes ratios < 3 in practice; on tiny instances
        Algorithm 2 should stay within 3x of the true optimum across a
        few seeds (take the best — the guarantee is probabilistic)."""
        m = 2
        opt = optimal_makespan(inst, m)
        best = min(
            ALGORITHMS["random_delay_priority"](inst, m, seed=s).makespan
            for s in range(3)
        )
        assert best <= max(3 * opt, opt + 2)
