"""Cross-engine consistency properties.

The repository has three independent ways to evaluate a schedule's
quality (the standard engine, the timed engine, the exact oracle) and
two independent feasibility oracles (the validator, the transport
sweep).  These properties tie them together on random instances — the
strongest internal-consistency net the library can cast.  The last
class closes the net over the three list-scheduling engine
implementations (heap, bucket, vector): identical makespans,
assignments, and CRC-32 start checksums on hypothesis-random instances.
"""

import zlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import gantt_text
from repro.core import (
    latency_list_schedule,
    list_schedule,
    list_schedule_unassigned,
    optimal_makespan_for_assignment,
)

from .strategies import sweep_instances


class TestTimedVsExactOracle:
    @given(sweep_instances(max_n=5, max_k=2))
    @settings(max_examples=15, deadline=None)
    def test_timed_engine_never_beats_opt_for_assignment(self, inst):
        m = 2
        assignment = np.arange(inst.n_cells) % m
        opt = optimal_makespan_for_assignment(inst, m, assignment)
        timed = latency_list_schedule(inst, m, assignment, comm_latency=0)
        assert timed.makespan >= opt

    @given(sweep_instances(max_n=5, max_k=2))
    @settings(max_examples=15, deadline=None)
    def test_standard_engine_never_beats_opt_for_assignment(self, inst):
        m = 2
        assignment = np.arange(inst.n_cells) % m
        opt = optimal_makespan_for_assignment(inst, m, assignment)
        std = list_schedule(inst, m, assignment)
        assert std.makespan >= opt

    @given(sweep_instances(max_n=10, max_k=3))
    @settings(max_examples=20, deadline=None)
    def test_engines_agree_under_unique_priorities(self, inst):
        m = 2
        assignment = np.arange(inst.n_cells) % m
        prio = np.arange(inst.n_tasks)
        a = list_schedule(inst, m, assignment, priority=prio)
        b = latency_list_schedule(inst, m, assignment, priority=prio)
        assert np.array_equal(a.start, b.start)


class TestTimedGantt:
    def test_durations_fill_intervals(self, chain_instance):
        s = latency_list_schedule(
            chain_instance,
            2,
            np.array([0, 0, 1, 1]),
            task_cost=np.full(8, 2, dtype=np.int64),
        )
        text = gantt_text(s, max_steps=40, max_procs=2)
        # Every executed step shows a direction digit twice per task;
        # total digit cells across both rows = busy processor-steps.
        digit_cells = sum(
            ch.isdigit() for line in text.splitlines() for ch in line[5:]
        )
        busy = int(s.duration.sum())
        assert digit_cells == min(busy, 2 * 40)

    def test_latency_gaps_show_as_idle(self):
        from repro.core import Dag, SweepInstance

        g = Dag.from_edge_list(2, [(0, 1)])
        inst = SweepInstance(2, [g])
        s = latency_list_schedule(inst, 2, np.array([0, 1]), comm_latency=4)
        text = gantt_text(s, max_steps=10, max_procs=2)
        lines = text.splitlines()
        # Proc 1 idles 5 steps (task 0 runs 1, then 4 latency) then runs.
        assert lines[1].startswith("P1   .....0")


class TestThreeEngineChecksums:
    """heap == bucket == vector, summarised three independent ways.

    The equivalence suite compares start arrays elementwise; these
    properties pin the *derived* quantities every consumer actually
    reads — makespan, the echoed assignment, and the CRC-32 start
    checksum the bench report commits — across all three engines on
    hypothesis-random instances, assigned and unassigned mode alike.
    """

    ENGINES = ("heap", "bucket", "vector")

    @staticmethod
    def _crc(arr):
        return zlib.crc32(
            np.ascontiguousarray(arr, dtype=np.int64).tobytes()
        )

    @given(
        sweep_instances(max_n=12, max_k=3),
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=30, deadline=None)
    def test_assigned_mode_summaries_agree(self, inst, m, seed):
        from repro.util.rng import as_rng

        rng = as_rng(seed)
        assignment = rng.integers(0, m, inst.n_cells)
        prio = rng.integers(-4, 4, inst.n_tasks)
        results = {
            engine: list_schedule(
                inst, m, assignment, priority=prio, engine=engine
            )
            for engine in self.ENGINES
        }
        ref = results["heap"]
        for engine, got in results.items():
            assert got.makespan == ref.makespan, engine
            assert np.array_equal(got.assignment, ref.assignment), engine
            assert self._crc(got.start) == self._crc(ref.start), engine

    @given(
        sweep_instances(max_n=12, max_k=3),
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=30, deadline=None)
    def test_unassigned_mode_summaries_agree(self, inst, m, seed):
        from repro.util.rng import as_rng

        rng = as_rng(seed)
        prio = rng.integers(-4, 4, inst.n_tasks)
        results = {
            engine: list_schedule_unassigned(
                inst, m, priority=prio, engine=engine
            )
            for engine in self.ENGINES
        }
        ref = results["heap"]
        for engine, got in results.items():
            assert got.makespan == ref.makespan, engine
            assert self._crc(got.start) == self._crc(ref.start), engine
            assert self._crc(got.machine) == self._crc(ref.machine), engine
