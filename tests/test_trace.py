"""Tests for schedule traces (utilization, timelines, Gantt)."""

import numpy as np
import pytest

from repro.analysis import (
    direction_progress,
    gantt_text,
    processor_timeline,
    utilization_profile,
)
from repro.core import Dag, Schedule, SweepInstance, random_delay_priority_schedule
from repro.util.errors import ReproError


@pytest.fixture(scope="module")
def sched(tet_instance):
    return random_delay_priority_schedule(tet_instance, 4, seed=0)


class TestUtilization:
    def test_sums_to_task_count(self, sched, tet_instance):
        prof = utilization_profile(sched)
        assert prof.sum() == tet_instance.n_tasks
        assert prof.shape == (sched.makespan,)

    def test_never_exceeds_m(self, sched):
        assert utilization_profile(sched).max() <= sched.m

    def test_empty_schedule(self):
        inst = SweepInstance(0, [Dag(0, [])])
        s = Schedule(inst, 2, np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
        assert utilization_profile(s).size == 0


class TestTimeline:
    def test_covers_proc_tasks_exactly(self, sched):
        tl = processor_timeline(sched, 0)
        busy = tl[tl >= 0]
        assert busy.size == int(sched.proc_loads()[0])
        # Every listed task really runs on proc 0 at that step.
        proc = sched.task_proc()
        for t, tid in enumerate(tl):
            if tid >= 0:
                assert proc[tid] == 0
                assert sched.start[tid] == t

    def test_out_of_range_proc_rejected(self, sched):
        with pytest.raises(ReproError, match="out of range"):
            processor_timeline(sched, 99)


class TestDirectionProgress:
    def test_totals_per_direction(self, sched, tet_instance):
        prog = direction_progress(sched)
        assert prog.shape == (sched.makespan, tet_instance.k)
        assert np.all(prog.sum(axis=0) == tet_instance.n_cells)

    def test_per_step_total_matches_utilization(self, sched):
        prog = direction_progress(sched)
        assert np.array_equal(prog.sum(axis=1), utilization_profile(sched))


class TestGantt:
    def test_dimensions_and_markers(self, sched):
        text = gantt_text(sched, max_steps=40, max_procs=4)
        lines = text.splitlines()
        body = [l for l in lines if l.startswith("P")]
        assert len(body) == 4
        # Row width: "Pn   " prefix + 40 cells.
        assert all(len(l) == 5 + 40 for l in body)

    def test_truncation_note(self, sched):
        text = gantt_text(sched, max_steps=10, max_procs=2)
        assert "truncated" in text

    def test_idle_shown_as_dot(self):
        # Chain on 2 procs: proc 1 idles while the chain runs on proc 0.
        g = Dag.from_edge_list(3, [(0, 1), (1, 2)])
        inst = SweepInstance(3, [g])
        s = Schedule(inst, 2, np.array([0, 1, 2]), np.array([0, 0, 0]))
        text = gantt_text(s)
        assert "P1   ..." in text
        assert "P0   000" in text
