"""Hypothesis properties of campaign spec → cell universe compilation.

The compiled universe is the campaign plane's identity: the store keys
on its hashes and the report walks its order, so compilation must be a
pure function of the cell *set* a spec denotes.  These properties pin
that down over randomly messy specs (repeated axis values, shuffled
orders, overlapping grids, grid-vs-explicit spellings):

* deterministic — same spec dict, same universe, same hashes;
* order-independent — permuting any axis list, the grid-block list, or
  the explicit cell list never changes the universe;
* duplicate-free — repeated axis values, overlapping grid blocks, and
  explicit cells that restate grid cells collapse to one cell each;
* form-independent — a cartesian grid and the explicit enumeration of
  its cells compile to identical universes (and spec hashes).
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.campaign import CampaignSpec, cell_hash
from tests.strategies import campaign_spec_dicts


def _compiled(spec_dict):
    return CampaignSpec.from_dict(spec_dict).compile()


@given(campaign_spec_dicts())
@settings(max_examples=60)
def test_compilation_is_deterministic(spec_dict):
    spec = CampaignSpec.from_dict(spec_dict)
    again = CampaignSpec.from_dict(spec_dict)
    assert spec.compile() == again.compile()
    assert spec.spec_hash() == again.spec_hash()


@given(campaign_spec_dicts(), st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=60)
def test_compilation_is_order_independent(spec_dict, seed):
    rng = random.Random(seed)
    shuffled = dict(spec_dict)
    shuffled["grid"] = [dict(g) for g in spec_dict["grid"]]
    for grid in shuffled["grid"]:
        for axis, values in grid.items():
            if isinstance(values, list):
                grid[axis] = rng.sample(values, len(values))
    rng.shuffle(shuffled["grid"])
    if "cells" in shuffled:
        shuffled["cells"] = rng.sample(
            list(spec_dict["cells"]), len(spec_dict["cells"])
        )
    assert _compiled(shuffled) == _compiled(spec_dict)


@given(campaign_spec_dicts())
@settings(max_examples=60)
def test_universe_is_duplicate_free(spec_dict):
    universe = _compiled(spec_dict)
    assert len(set(universe)) == len(universe)
    spec = CampaignSpec.from_dict(spec_dict)
    hashes = [cell_hash(c, spec.engine, spec.with_comm) for c in universe]
    assert len(set(hashes)) == len(hashes)


@given(campaign_spec_dicts())
@settings(max_examples=60)
def test_universe_is_canonically_sorted(spec_dict):
    universe = _compiled(spec_dict)
    keys = [cell.sort_key() for cell in universe]
    assert keys == sorted(keys)


@given(campaign_spec_dicts())
@settings(max_examples=60)
def test_duplicating_a_grid_block_changes_nothing(spec_dict):
    doubled = dict(spec_dict)
    doubled["grid"] = list(spec_dict["grid"]) + [dict(spec_dict["grid"][0])]
    assert _compiled(doubled) == _compiled(spec_dict)


@given(campaign_spec_dicts(max_grids=2, max_cells=0))
@settings(max_examples=40)
def test_cartesian_and_explicit_forms_compile_identically(spec_dict):
    """A grid and its own explicit cell enumeration denote one universe."""
    universe = _compiled(spec_dict)
    explicit = {
        "name": spec_dict["name"],
        "cells": [cell.params() for cell in universe],
    }
    assert _compiled(explicit) == universe
    assert (
        CampaignSpec.from_dict(explicit).spec_hash()
        == CampaignSpec.from_dict(spec_dict).spec_hash()
    )


@given(campaign_spec_dicts(max_grids=1, max_cells=4))
@settings(max_examples=40)
def test_explicit_cells_restating_grid_cells_dedupe(spec_dict):
    universe = _compiled(spec_dict)
    restated = dict(spec_dict)
    restated["cells"] = list(spec_dict.get("cells", [])) + [
        universe[0].params(), universe[-1].params()
    ]
    assert _compiled(restated) == universe
