"""Tests for the prioritized list-scheduling engines."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core import (
    Dag,
    SweepInstance,
    list_schedule,
    list_schedule_unassigned,
)
from repro.core.lower_bounds import average_load_lb, critical_path_lb
from repro.util.errors import InvalidScheduleError

from .strategies import sweep_instances


class TestAssignedEngine:
    def test_single_chain_sequential(self):
        g = Dag.from_edge_list(3, [(0, 1), (1, 2)])
        inst = SweepInstance(3, [g])
        s = list_schedule(inst, 2, np.array([0, 1, 0]))
        s.validate()
        assert s.makespan == 3  # the chain forces full serialisation

    def test_independent_tasks_pack_perfectly(self):
        inst = SweepInstance(4, [Dag(4, [])])
        s = list_schedule(inst, 2, np.array([0, 0, 1, 1]))
        s.validate()
        assert s.makespan == 2

    def test_all_on_one_processor_serialises(self):
        inst = SweepInstance(4, [Dag(4, [])])
        s = list_schedule(inst, 3, np.zeros(4, dtype=int))
        assert s.makespan == 4

    def test_priority_order_respected_on_one_proc(self):
        inst = SweepInstance(3, [Dag(3, [])])
        prio = np.array([2, 0, 1])
        s = list_schedule(inst, 1, np.zeros(3, dtype=int), priority=prio)
        # Smallest priority first: task 1, then 2, then 0.
        assert list(s.start) == [2, 0, 1]

    def test_ties_break_by_task_id(self):
        inst = SweepInstance(3, [Dag(3, [])])
        s = list_schedule(inst, 1, np.zeros(3, dtype=int))
        assert list(s.start) == [0, 1, 2]

    def test_no_avoidable_idle_time(self, tet_instance):
        """At every step before the end, every processor with a ready
        assigned task is busy — i.e. work-conserving."""
        m = 4
        assignment = np.arange(tet_instance.n_cells) % m
        s = list_schedule(tet_instance, m, assignment)
        s.validate()
        # Work-conserving implies makespan <= load of the busiest proc
        # plus the critical path (Graham-style argument).
        busiest = int(s.proc_loads().max())
        assert s.makespan <= busiest + critical_path_lb(tet_instance)

    def test_meta_is_attached(self):
        inst = SweepInstance(1, [Dag(1, [])])
        s = list_schedule(inst, 1, np.zeros(1, dtype=int), meta={"algorithm": "x"})
        assert s.meta["algorithm"] == "x"

    def test_rejects_bad_assignment_shape(self, chain_instance):
        with pytest.raises(InvalidScheduleError, match="assignment"):
            list_schedule(chain_instance, 2, np.zeros(7, dtype=int))

    def test_rejects_out_of_range_assignment(self, chain_instance):
        with pytest.raises(InvalidScheduleError, match="assignment"):
            list_schedule(chain_instance, 2, np.array([0, 1, 2, 0]))

    def test_rejects_bad_priority_shape(self, chain_instance):
        with pytest.raises(InvalidScheduleError, match="priority"):
            list_schedule(
                chain_instance, 2, np.zeros(4, dtype=int), priority=np.zeros(3)
            )

    def test_cross_direction_same_cell_same_proc(self, chain_instance):
        s = list_schedule(chain_instance, 2, np.array([0, 1, 0, 1]))
        s.validate()
        proc = s.task_proc()
        for v in range(4):
            assert proc[v] == proc[4 + v]

    @given(sweep_instances())
    @settings(max_examples=30, deadline=None)
    def test_always_feasible(self, inst):
        m = 3
        assignment = np.arange(inst.n_cells) % m
        s = list_schedule(inst, m, assignment)
        s.validate()

    @given(sweep_instances(max_n=12, max_k=3))
    @settings(max_examples=30, deadline=None)
    def test_graham_bound_against_lower_bounds(self, inst):
        """Work-conserving schedules satisfy makespan <= load_max + CP."""
        m = 2
        assignment = np.arange(inst.n_cells) % m
        s = list_schedule(inst, m, assignment)
        load_max = int(s.proc_loads().max())
        assert s.makespan <= load_max + critical_path_lb(inst)


class TestUnassignedEngine:
    def test_packs_width_to_m(self):
        inst = SweepInstance(6, [Dag(6, [])])
        r = list_schedule_unassigned(inst, 3)
        assert r.makespan == 2
        # At most m tasks per step.
        counts = np.bincount(r.start)
        assert counts.max() <= 3

    def test_respects_precedence(self, chain_instance):
        r = list_schedule_unassigned(chain_instance, 2)
        union = chain_instance.union_dag()
        for u, v in union.edges:
            assert r.start[u] < r.start[v]

    def test_machines_distinct_per_step(self, tet_instance):
        r = list_schedule_unassigned(tet_instance, 4)
        key = r.start * 4 + r.machine
        assert np.unique(key).size == tet_instance.n_tasks

    def test_graham_two_approx_vs_lb(self, tet_instance):
        """Greedy <= 2x the trivial lower bounds of the relaxed problem."""
        m = 4
        r = list_schedule_unassigned(tet_instance, m)
        lb = max(average_load_lb(tet_instance, m), critical_path_lb(tet_instance))
        assert r.makespan <= 2 * lb

    def test_priorities_steer_order(self):
        inst = SweepInstance(2, [Dag(2, [])])
        r = list_schedule_unassigned(inst, 1, priority=np.array([5, 1]))
        assert r.start[1] < r.start[0]

    def test_rejects_nonpositive_m(self, chain_instance):
        with pytest.raises(InvalidScheduleError, match="positive"):
            list_schedule_unassigned(chain_instance, 0)

    @given(sweep_instances())
    @settings(max_examples=25, deadline=None)
    def test_every_layer_at_most_m(self, inst):
        m = 2
        r = list_schedule_unassigned(inst, m)
        counts = np.bincount(r.start)
        assert counts.max() <= m
