"""Mutation-kill tests for the bucket and vector scheduling engines.

Same philosophy as :mod:`tests.test_validator_mutations`: each seeded
fault in :mod:`repro.core.fast_scheduler` and
:mod:`repro.core.vector_scheduler` must be *killed* (detected) by at
least one case in this file, and each case documents exactly which
fault it targets and why (or whether) the other faults slip through it.
A fault that every case survives would mean the equivalence suite's
coverage has a hole exactly where the engine's bookkeeping is subtlest.

The three bucket-engine faults (``fast_scheduler._MUTATION``):

* ``"bucket_off_by_one"`` — promoted tasks are filed one bucket too
  high, i.e. their priority is silently inflated by one.
* ``"skip_promotion"`` — only the first newly-ready task of a promotion
  batch is pushed; the rest are lost.
* ``"stale_minptr"`` — the per-processor min-pointer is not lowered when
  a newly pushed task lands below it, so the forward scan can miss work.

Setting ``_MUTATION`` forces the narrow bucket-queue path (the faults
live in its ``push_batch``); the initial frontier push is exempt, so a
kill case must route the target task through a *promotion*.

The three vector-engine faults (``vector_scheduler._MUTATION``) target
the superstep kernel's three moving parts (pop cut, in-degree
decrement, packed-code tie-break); arming any of them also disables the
endgame drain so the superstep loop is always the code under test:

* ``"frontier_off_by_one"`` — the pop mask loses its last processor (its
  last ``min(m, r)``-th task in unassigned mode) whenever a superstep
  pops more than one task.
* ``"stale_indegree"`` — same-superstep sibling completions are folded
  to a single decrement, so a task whose predecessors finish together
  keeps a positive in-degree forever.
* ``"unstable_tiebreak"`` — the task-id component of the packed code is
  inverted (symmetrically, so decode still works): every equal-priority
  tie now breaks toward the *higher* id.
"""

import numpy as np
import pytest

import repro.core.fast_scheduler as fs
import repro.core.vector_scheduler as vs
from repro.core.dag import Dag
from repro.core.instance import SweepInstance
from repro.core.list_scheduler import list_schedule, list_schedule_unassigned
from repro.util.errors import InvalidScheduleError

MUTATIONS = ("bucket_off_by_one", "skip_promotion", "stale_minptr")
VECTOR_MUTATIONS = (
    "frontier_off_by_one",
    "stale_indegree",
    "unstable_tiebreak",
)


def run(inst, prio, mutation=None, monkeypatch=None):
    if mutation is not None:
        monkeypatch.setattr(fs, "_MUTATION", mutation)
    try:
        return list_schedule(
            inst, 1, np.zeros(inst.n_cells, dtype=np.int64),
            priority=np.asarray(prio), engine="bucket",
        )
    finally:
        if mutation is not None:
            monkeypatch.setattr(fs, "_MUTATION", None)


def case_off_by_one():
    """Kills ``bucket_off_by_one``.

    a(0) -> z(1); w(2) free.  Priorities [0, 5, 5]: after a runs, z and
    w tie at priority 5 and z's lower id must win.  The fault promotes z
    into bucket 6, so w (bucket 5) is popped first and the tie-break
    flips.  ``skip_promotion`` survives (the promotion batch is a
    singleton) and ``stale_minptr`` survives (z lands at bucket 5, not
    below the min-pointer, which sits at 0 from a's frontier push).
    """
    inst = SweepInstance(3, [Dag.from_edge_list(3, [(0, 1)])])
    return inst, [0, 5, 5], np.array([0, 1, 2])


def case_skip_promotion():
    """Kills ``skip_promotion``.

    a(0) -> b(1), a(0) -> c(2), uniform priorities: a's completion
    promotes the batch [b, c] and the fault drops c, which is then never
    ready — the engine must report the false cycle.  ``bucket_off_by_one``
    survives (both promotions shift to bucket 1 together; the scan still
    finds them and ids break the tie) and ``stale_minptr`` survives (the
    promotions land at bucket 1, not below the pointer at bucket 0).
    """
    inst = SweepInstance(3, [Dag.from_edge_list(3, [(0, 1), (0, 2)])])
    return inst, [0, 0, 0], np.array([0, 1, 2])


def case_stale_minptr():
    """Kills ``stale_minptr``.

    Roots a(0, prio 2) and w(1, prio 3); a -> z(2, prio 0).  After a
    runs, z is promoted into bucket 0 — *below* the min-pointer, which
    the frontier push left at 2.  The stale pointer scans forward, runs
    w before z, and on the final step walks off the end of the bucket
    array: the engine must raise its bookkeeping error.
    ``bucket_off_by_one`` survives (z lands at bucket 1, still below w;
    the pointer is correctly lowered and order is preserved) and
    ``skip_promotion`` survives (singleton batch).
    """
    inst = SweepInstance(3, [Dag.from_edge_list(3, [(0, 2)])])
    return inst, [2, 3, 0], np.array([0, 2, 1])


CASES = {
    "bucket_off_by_one": case_off_by_one,
    "skip_promotion": case_skip_promotion,
    "stale_minptr": case_stale_minptr,
}

#: What each (case, mutation) pair must do.  ``"correct"`` = survives
#: (bit-identical to production), anything else = the kill signature.
KILL_MATRIX = {
    ("bucket_off_by_one", "bucket_off_by_one"): "wrong_schedule",
    ("bucket_off_by_one", "skip_promotion"): "correct",
    ("bucket_off_by_one", "stale_minptr"): "correct",
    ("skip_promotion", "bucket_off_by_one"): "correct",
    ("skip_promotion", "skip_promotion"): "false_cycle",
    ("skip_promotion", "stale_minptr"): "correct",
    ("stale_minptr", "bucket_off_by_one"): "correct",
    ("stale_minptr", "skip_promotion"): "correct",
    ("stale_minptr", "stale_minptr"): "bookkeeping_error",
}


class TestProductionBaseline:
    """Unmutated engine: correct result, identical to the heap engine."""

    @pytest.mark.parametrize("case", sorted(CASES))
    def test_bucket_matches_expected_and_heap(self, case):
        inst, prio, expected_start = CASES[case]()
        got = run(inst, prio)
        assert np.array_equal(got.start, expected_start)
        ref = list_schedule(
            inst, 1, np.zeros(inst.n_cells, dtype=np.int64),
            priority=np.asarray(prio), engine="heap",
        )
        assert np.array_equal(got.start, ref.start)

    def test_mutation_forces_bucket_queue_path(self, monkeypatch):
        """The faults live in the narrow core; the pool must not be used
        while a mutation is armed, or the kill cases would test nothing.
        """
        inst, _, _ = case_off_by_one()
        monkeypatch.setattr(fs, "_MUTATION", "bucket_off_by_one")
        assert not fs._use_pool(inst, 1)


class TestKillMatrix:
    @pytest.mark.parametrize("case", sorted(CASES))
    @pytest.mark.parametrize("mutation", MUTATIONS)
    def test_cell(self, case, mutation, monkeypatch):
        inst, prio, expected_start = CASES[case]()
        outcome = KILL_MATRIX[(case, mutation)]
        if outcome == "correct":
            got = run(inst, prio, mutation, monkeypatch)
            assert np.array_equal(got.start, expected_start), (
                f"{mutation} unexpectedly changed the {case} schedule"
            )
        elif outcome == "wrong_schedule":
            got = run(inst, prio, mutation, monkeypatch)
            assert not np.array_equal(got.start, expected_start), (
                f"{case} failed to kill {mutation}"
            )
        elif outcome == "false_cycle":
            with pytest.raises(InvalidScheduleError, match="cycle"):
                run(inst, prio, mutation, monkeypatch)
        elif outcome == "bookkeeping_error":
            with pytest.raises(
                InvalidScheduleError, match="bookkeeping error"
            ):
                run(inst, prio, mutation, monkeypatch)
        else:  # pragma: no cover - matrix typo guard
            raise AssertionError(f"unknown outcome {outcome!r}")

    def test_every_mutation_is_killed(self):
        """Census: each fault must have at least one non-surviving cell."""
        for mutation in MUTATIONS:
            kills = [
                case
                for case in CASES
                if KILL_MATRIX[(case, mutation)] != "correct"
            ]
            assert kills, f"no case kills {mutation}"


# ----------------------------------------------------------------------
# vector engine
# ----------------------------------------------------------------------


def vrun(inst, m, assignment, prio, mutation=None, monkeypatch=None):
    if mutation is not None:
        monkeypatch.setattr(vs, "_MUTATION", mutation)
    try:
        return list_schedule(
            inst, m, np.asarray(assignment, dtype=np.int64),
            priority=np.asarray(prio), engine="vector",
        )
    finally:
        if mutation is not None:
            monkeypatch.setattr(vs, "_MUTATION", None)


def vcase_frontier_off_by_one():
    """Kills ``frontier_off_by_one``.

    Two free tasks on two processors, uniform priorities: production
    runs both at step 0; the fault clears the second processor's pop, so
    its task slips to step 1.  ``stale_indegree`` survives (no edges, so
    the decrement never runs) and ``unstable_tiebreak`` survives (each
    processor's queue holds a single task — there is no tie to flip).
    """
    inst = SweepInstance(2, [Dag.from_edge_list(2, [])])
    return inst, 2, [0, 1], [0, 0], np.array([0, 0])


def vcase_stale_indegree():
    """Kills ``stale_indegree``.

    a(0) -> z(2) and b(1) -> z(2) with a, b on different processors:
    both predecessors complete in the same superstep, so the gathered
    successor batch is ``[z, z]`` and the correct decrement is 2.  The
    fault subtracts 1, z's in-degree never reaches zero, and the engine
    must report the false cycle.  ``unstable_tiebreak`` survives (each
    processor run is a singleton at every superstep; z's promotion step
    and processor are unchanged).  ``frontier_off_by_one`` does NOT
    survive — it drops b's step-0 pop, serialising the predecessors —
    which is the price of a fault that perturbs *every* multi-pop
    superstep; the cell below records the honest outcome.
    """
    inst = SweepInstance(3, [Dag.from_edge_list(3, [(0, 2), (1, 2)])])
    return inst, 2, [0, 1, 0], [0, 0, 0], np.array([0, 0, 1])


def vcase_unstable_tiebreak():
    """Kills ``unstable_tiebreak``.

    Two free tasks tied at priority 0 on one processor: id order says
    task 0 first, the inverted packed codes say task 1 first.  The other
    faults survive: one processor run per superstep means the off-by-one
    cut never fires (it needs more than one pop), and no edges means no
    decrement for ``stale_indegree`` to corrupt.
    """
    inst = SweepInstance(2, [Dag.from_edge_list(2, [])])
    return inst, 1, [0, 0], [0, 0], np.array([0, 1])


VECTOR_CASES = {
    "frontier_off_by_one": vcase_frontier_off_by_one,
    "stale_indegree": vcase_stale_indegree,
    "unstable_tiebreak": vcase_unstable_tiebreak,
}

VECTOR_KILL_MATRIX = {
    ("frontier_off_by_one", "frontier_off_by_one"): "wrong_schedule",
    ("frontier_off_by_one", "stale_indegree"): "correct",
    ("frontier_off_by_one", "unstable_tiebreak"): "correct",
    ("stale_indegree", "frontier_off_by_one"): "wrong_schedule",
    ("stale_indegree", "stale_indegree"): "false_cycle",
    ("stale_indegree", "unstable_tiebreak"): "correct",
    ("unstable_tiebreak", "frontier_off_by_one"): "correct",
    ("unstable_tiebreak", "stale_indegree"): "correct",
    ("unstable_tiebreak", "unstable_tiebreak"): "wrong_schedule",
}


class TestVectorProductionBaseline:
    """Unmutated vector engine: correct result, identical to the heap."""

    @pytest.mark.parametrize("case", sorted(VECTOR_CASES))
    def test_vector_matches_expected_and_heap(self, case):
        inst, m, assignment, prio, expected_start = VECTOR_CASES[case]()
        got = vrun(inst, m, assignment, prio)
        assert np.array_equal(got.start, expected_start)
        ref = list_schedule(
            inst, m, np.asarray(assignment, dtype=np.int64),
            priority=np.asarray(prio), engine="heap",
        )
        assert np.array_equal(got.start, ref.start)

    def test_mutation_disables_endgame_drain(self, monkeypatch):
        """An armed fault must force the superstep loop even when the
        whole instance is one ready frontier, or drain-batched cases
        would never execute the mutated code at all.  Pinned through the
        superstep metric: the drain finishes the two-task single-proc
        case in one superstep, the loop needs two.
        """
        from repro import obs

        inst, m, assignment, prio, _ = vcase_unstable_tiebreak()
        was_on = obs.tracing_enabled()
        obs.enable_tracing()
        obs.reset()
        try:
            vrun(inst, m, assignment, prio)
            drained = obs.drain_metrics()["counters"]
            assert drained.get("scheduler.vector.supersteps") == 1
            vrun(inst, m, assignment, prio, "stale_indegree", monkeypatch)
            looped = obs.drain_metrics()["counters"]
            assert looped.get("scheduler.vector.supersteps") == 2
        finally:
            obs.reset()
            if not was_on:
                obs.disable_tracing()


class TestVectorKillMatrix:
    @pytest.mark.parametrize("case", sorted(VECTOR_CASES))
    @pytest.mark.parametrize("mutation", VECTOR_MUTATIONS)
    def test_cell(self, case, mutation, monkeypatch):
        inst, m, assignment, prio, expected_start = VECTOR_CASES[case]()
        outcome = VECTOR_KILL_MATRIX[(case, mutation)]
        if outcome == "correct":
            got = vrun(inst, m, assignment, prio, mutation, monkeypatch)
            assert np.array_equal(got.start, expected_start), (
                f"{mutation} unexpectedly changed the {case} schedule"
            )
        elif outcome == "wrong_schedule":
            got = vrun(inst, m, assignment, prio, mutation, monkeypatch)
            assert not np.array_equal(got.start, expected_start), (
                f"{case} failed to kill {mutation}"
            )
        elif outcome == "false_cycle":
            with pytest.raises(InvalidScheduleError, match="cycle"):
                vrun(inst, m, assignment, prio, mutation, monkeypatch)
        else:  # pragma: no cover - matrix typo guard
            raise AssertionError(f"unknown outcome {outcome!r}")

    def test_unassigned_mode_kills(self, monkeypatch):
        """Graham mode exercises the same faults through its own pop cut
        and machine assignment: two free tied tasks on two machines run
        ``(start 0, machines 0 and 1)`` in production; the off-by-one
        cut pops only one of them per superstep, and the inverted
        tie-break hands machine 0 to the wrong task.  ``stale_indegree``
        survives (no edges).
        """
        inst = SweepInstance(2, [Dag.from_edge_list(2, [])])

        def urun(mutation=None):
            if mutation is not None:
                monkeypatch.setattr(vs, "_MUTATION", mutation)
            try:
                return list_schedule_unassigned(
                    inst, 2,
                    priority=np.zeros(2, dtype=np.int64), engine="vector",
                )
            finally:
                if mutation is not None:
                    monkeypatch.setattr(vs, "_MUTATION", None)

        base = urun()
        assert np.array_equal(base.start, [0, 0])
        assert np.array_equal(base.machine, [0, 1])
        off = urun("frontier_off_by_one")
        assert not np.array_equal(off.start, base.start)
        tie = urun("unstable_tiebreak")
        assert not np.array_equal(tie.machine, base.machine)
        stale = urun("stale_indegree")
        assert np.array_equal(stale.start, base.start)
        assert np.array_equal(stale.machine, base.machine)

    def test_every_vector_mutation_is_killed(self):
        """Census: each vector fault has at least one non-surviving cell."""
        for mutation in VECTOR_MUTATIONS:
            kills = [
                case
                for case in VECTOR_CASES
                if VECTOR_KILL_MATRIX[(case, mutation)] != "correct"
            ]
            assert kills, f"no case kills {mutation}"
