"""Mutation-kill tests for the bucket scheduling engine.

Same philosophy as :mod:`tests.test_validator_mutations`: each seeded
fault in :mod:`repro.core.fast_scheduler` must be *killed* (detected) by
at least one case in this file, and each case documents exactly which
fault it targets and why the other faults slip through it.  A fault that
every case survives would mean the equivalence suite's coverage has a
hole exactly where the engine's bookkeeping is subtlest.

The three seeded faults (``fast_scheduler._MUTATION``):

* ``"bucket_off_by_one"`` — promoted tasks are filed one bucket too
  high, i.e. their priority is silently inflated by one.
* ``"skip_promotion"`` — only the first newly-ready task of a promotion
  batch is pushed; the rest are lost.
* ``"stale_minptr"`` — the per-processor min-pointer is not lowered when
  a newly pushed task lands below it, so the forward scan can miss work.

Setting ``_MUTATION`` forces the narrow bucket-queue path (the faults
live in its ``push_batch``); the initial frontier push is exempt, so a
kill case must route the target task through a *promotion*.
"""

import numpy as np
import pytest

import repro.core.fast_scheduler as fs
from repro.core.dag import Dag
from repro.core.instance import SweepInstance
from repro.core.list_scheduler import list_schedule
from repro.util.errors import InvalidScheduleError

MUTATIONS = ("bucket_off_by_one", "skip_promotion", "stale_minptr")


def run(inst, prio, mutation=None, monkeypatch=None):
    if mutation is not None:
        monkeypatch.setattr(fs, "_MUTATION", mutation)
    try:
        return list_schedule(
            inst, 1, np.zeros(inst.n_cells, dtype=np.int64),
            priority=np.asarray(prio), engine="bucket",
        )
    finally:
        if mutation is not None:
            monkeypatch.setattr(fs, "_MUTATION", None)


def case_off_by_one():
    """Kills ``bucket_off_by_one``.

    a(0) -> z(1); w(2) free.  Priorities [0, 5, 5]: after a runs, z and
    w tie at priority 5 and z's lower id must win.  The fault promotes z
    into bucket 6, so w (bucket 5) is popped first and the tie-break
    flips.  ``skip_promotion`` survives (the promotion batch is a
    singleton) and ``stale_minptr`` survives (z lands at bucket 5, not
    below the min-pointer, which sits at 0 from a's frontier push).
    """
    inst = SweepInstance(3, [Dag.from_edge_list(3, [(0, 1)])])
    return inst, [0, 5, 5], np.array([0, 1, 2])


def case_skip_promotion():
    """Kills ``skip_promotion``.

    a(0) -> b(1), a(0) -> c(2), uniform priorities: a's completion
    promotes the batch [b, c] and the fault drops c, which is then never
    ready — the engine must report the false cycle.  ``bucket_off_by_one``
    survives (both promotions shift to bucket 1 together; the scan still
    finds them and ids break the tie) and ``stale_minptr`` survives (the
    promotions land at bucket 1, not below the pointer at bucket 0).
    """
    inst = SweepInstance(3, [Dag.from_edge_list(3, [(0, 1), (0, 2)])])
    return inst, [0, 0, 0], np.array([0, 1, 2])


def case_stale_minptr():
    """Kills ``stale_minptr``.

    Roots a(0, prio 2) and w(1, prio 3); a -> z(2, prio 0).  After a
    runs, z is promoted into bucket 0 — *below* the min-pointer, which
    the frontier push left at 2.  The stale pointer scans forward, runs
    w before z, and on the final step walks off the end of the bucket
    array: the engine must raise its bookkeeping error.
    ``bucket_off_by_one`` survives (z lands at bucket 1, still below w;
    the pointer is correctly lowered and order is preserved) and
    ``skip_promotion`` survives (singleton batch).
    """
    inst = SweepInstance(3, [Dag.from_edge_list(3, [(0, 2)])])
    return inst, [2, 3, 0], np.array([0, 2, 1])


CASES = {
    "bucket_off_by_one": case_off_by_one,
    "skip_promotion": case_skip_promotion,
    "stale_minptr": case_stale_minptr,
}

#: What each (case, mutation) pair must do.  ``"correct"`` = survives
#: (bit-identical to production), anything else = the kill signature.
KILL_MATRIX = {
    ("bucket_off_by_one", "bucket_off_by_one"): "wrong_schedule",
    ("bucket_off_by_one", "skip_promotion"): "correct",
    ("bucket_off_by_one", "stale_minptr"): "correct",
    ("skip_promotion", "bucket_off_by_one"): "correct",
    ("skip_promotion", "skip_promotion"): "false_cycle",
    ("skip_promotion", "stale_minptr"): "correct",
    ("stale_minptr", "bucket_off_by_one"): "correct",
    ("stale_minptr", "skip_promotion"): "correct",
    ("stale_minptr", "stale_minptr"): "bookkeeping_error",
}


class TestProductionBaseline:
    """Unmutated engine: correct result, identical to the heap engine."""

    @pytest.mark.parametrize("case", sorted(CASES))
    def test_bucket_matches_expected_and_heap(self, case):
        inst, prio, expected_start = CASES[case]()
        got = run(inst, prio)
        assert np.array_equal(got.start, expected_start)
        ref = list_schedule(
            inst, 1, np.zeros(inst.n_cells, dtype=np.int64),
            priority=np.asarray(prio), engine="heap",
        )
        assert np.array_equal(got.start, ref.start)

    def test_mutation_forces_bucket_queue_path(self, monkeypatch):
        """The faults live in the narrow core; the pool must not be used
        while a mutation is armed, or the kill cases would test nothing.
        """
        inst, _, _ = case_off_by_one()
        monkeypatch.setattr(fs, "_MUTATION", "bucket_off_by_one")
        assert not fs._use_pool(inst, 1)


class TestKillMatrix:
    @pytest.mark.parametrize("case", sorted(CASES))
    @pytest.mark.parametrize("mutation", MUTATIONS)
    def test_cell(self, case, mutation, monkeypatch):
        inst, prio, expected_start = CASES[case]()
        outcome = KILL_MATRIX[(case, mutation)]
        if outcome == "correct":
            got = run(inst, prio, mutation, monkeypatch)
            assert np.array_equal(got.start, expected_start), (
                f"{mutation} unexpectedly changed the {case} schedule"
            )
        elif outcome == "wrong_schedule":
            got = run(inst, prio, mutation, monkeypatch)
            assert not np.array_equal(got.start, expected_start), (
                f"{case} failed to kill {mutation}"
            )
        elif outcome == "false_cycle":
            with pytest.raises(InvalidScheduleError, match="cycle"):
                run(inst, prio, mutation, monkeypatch)
        elif outcome == "bookkeeping_error":
            with pytest.raises(
                InvalidScheduleError, match="bookkeeping error"
            ):
                run(inst, prio, mutation, monkeypatch)
        else:  # pragma: no cover - matrix typo guard
            raise AssertionError(f"unknown outcome {outcome!r}")

    def test_every_mutation_is_killed(self):
        """Census: each fault must have at least one non-surviving cell."""
        for mutation in MUTATIONS:
            kills = [
                case
                for case in CASES
                if KILL_MATRIX[(case, mutation)] != "correct"
            ]
            assert kills, f"no case kills {mutation}"
