"""Unit and property tests for repro.core.dag."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings

from repro.core.dag import Dag, csr_from_edges, _gather_csr, _popcount_rows
from repro.util.errors import InvalidInstanceError

from .strategies import dags


class TestConstruction:
    def test_empty_graph(self):
        g = Dag(0, np.empty((0, 2)))
        assert g.n == 0
        assert g.num_edges == 0
        assert g.num_levels() == 0

    def test_single_vertex(self):
        g = Dag(1, [])
        assert g.n == 1
        assert g.num_levels() == 1
        assert list(g.roots()) == [0]
        assert list(g.leaves()) == [0]

    def test_from_edge_list(self):
        g = Dag.from_edge_list(3, [(0, 1), (1, 2)])
        assert g.num_edges == 2
        assert list(g.successors(0)) == [1]
        assert list(g.successors(2)) == []

    def test_negative_vertex_count_rejected(self):
        with pytest.raises(InvalidInstanceError, match="vertex count"):
            Dag(-1, [])

    def test_out_of_range_edge_rejected(self):
        with pytest.raises(InvalidInstanceError, match="endpoints"):
            Dag.from_edge_list(2, [(0, 2)])

    def test_negative_edge_rejected(self):
        with pytest.raises(InvalidInstanceError, match="endpoints"):
            Dag.from_edge_list(2, [(-1, 0)])

    def test_self_loop_rejected(self):
        with pytest.raises(InvalidInstanceError, match="self-loops"):
            Dag.from_edge_list(2, [(1, 1)])

    def test_cycle_rejected(self):
        with pytest.raises(InvalidInstanceError, match="cycle"):
            Dag.from_edge_list(3, [(0, 1), (1, 2), (2, 0)])

    def test_two_cycle_rejected(self):
        with pytest.raises(InvalidInstanceError, match="cycle"):
            Dag.from_edge_list(2, [(0, 1), (1, 0)])

    def test_bad_edge_shape_rejected(self):
        with pytest.raises(InvalidInstanceError, match="\\(E, 2\\)"):
            Dag(3, np.zeros((2, 3)))

    def test_parallel_edges_allowed(self):
        g = Dag.from_edge_list(2, [(0, 1), (0, 1)])
        assert g.num_edges == 2
        assert g.indegree()[1] == 2

    def test_validate_false_skips_checks(self):
        # A cyclic graph slips through with validate=False...
        g = Dag.from_edge_list(2, [(0, 1)], validate=False)
        assert g.n == 2

    def test_repr(self):
        g = Dag.from_edge_list(3, [(0, 1)])
        assert "n=3" in repr(g)
        assert "edges=1" in repr(g)


class TestAdjacency:
    def test_successors_and_predecessors(self, diamond_dag):
        assert sorted(diamond_dag.successors(0)) == [1, 2]
        assert sorted(diamond_dag.predecessors(3)) == [1, 2]
        assert list(diamond_dag.predecessors(0)) == []

    def test_degrees(self, diamond_dag):
        assert list(diamond_dag.indegree()) == [0, 1, 1, 2]
        assert list(diamond_dag.outdegree()) == [2, 1, 1, 0]

    def test_degree_arrays_are_copies(self, diamond_dag):
        a = diamond_dag.indegree()
        a[0] = 99
        assert diamond_dag.indegree()[0] == 0

    def test_roots_and_leaves(self, diamond_dag):
        assert list(diamond_dag.roots()) == [0]
        assert list(diamond_dag.leaves()) == [3]

    def test_csr_from_edges_matches_manual(self):
        src = np.array([2, 0, 0, 1])
        dst = np.array([3, 1, 2, 3])
        off, tgt = csr_from_edges(4, src, dst)
        assert list(off) == [0, 2, 3, 4, 4]
        assert sorted(tgt[0:2]) == [1, 2]
        assert list(tgt[2:3]) == [3]
        assert list(tgt[3:4]) == [3]

    def test_len_and_iter(self, diamond_dag):
        assert len(diamond_dag) == 4
        assert list(diamond_dag) == [0, 1, 2, 3]


class TestLevels:
    def test_diamond_levels(self, diamond_dag):
        assert list(diamond_dag.level_of()) == [0, 1, 1, 2]
        assert diamond_dag.num_levels() == 3

    def test_chain_levels(self):
        g = Dag.from_edge_list(4, [(0, 1), (1, 2), (2, 3)])
        assert list(g.level_of()) == [0, 1, 2, 3]
        assert g.num_levels() == 4

    def test_disconnected_levels(self):
        g = Dag.from_edge_list(4, [(0, 1)])
        lev = g.level_of()
        assert lev[0] == 0 and lev[1] == 1
        assert lev[2] == 0 and lev[3] == 0

    def test_level_skipping_edge(self):
        # 0 -> 3 jumps from level 0 to level 3 in a chain graph.
        g = Dag.from_edge_list(4, [(0, 1), (1, 2), (2, 3), (0, 3)])
        assert g.level_of()[3] == 3

    def test_levels_partition_vertices(self, diamond_dag):
        levels = diamond_dag.levels()
        flat = np.concatenate(levels)
        assert sorted(flat.tolist()) == [0, 1, 2, 3]
        assert [len(l) for l in levels] == [1, 2, 1]

    def test_topological_order_respects_edges(self, diamond_dag):
        order = diamond_dag.topological_order()
        pos = np.empty(4, dtype=int)
        pos[order] = np.arange(4)
        for u, v in diamond_dag.edges:
            assert pos[u] < pos[v]

    @given(dags())
    @settings(max_examples=40, deadline=None)
    def test_levels_match_networkx_longest_path(self, g):
        """Our Kahn-peel level equals networkx's longest-path layering."""
        nxg = g.to_networkx()
        expected = {v: 0 for v in nxg.nodes}
        for v in nx.topological_sort(nxg):
            for u in nxg.predecessors(v):
                expected[v] = max(expected[v], expected[u] + 1)
        got = g.level_of()
        for v in range(g.n):
            assert got[v] == expected[v]


class TestLongestPaths:
    def test_b_levels_chain(self):
        g = Dag.from_edge_list(3, [(0, 1), (1, 2)])
        assert list(g.b_levels()) == [3, 2, 1]

    def test_b_levels_diamond(self, diamond_dag):
        assert list(diamond_dag.b_levels()) == [3, 2, 2, 1]

    def test_t_levels_diamond(self, diamond_dag):
        assert list(diamond_dag.t_levels()) == [1, 2, 2, 3]

    def test_critical_path(self, diamond_dag):
        assert diamond_dag.critical_path_length() == 3

    def test_critical_path_empty(self):
        assert Dag(0, []).critical_path_length() == 0

    def test_critical_path_no_edges(self):
        assert Dag(5, []).critical_path_length() == 1

    @given(dags())
    @settings(max_examples=40, deadline=None)
    def test_critical_path_matches_networkx(self, g):
        nxg = g.to_networkx()
        expected = nx.dag_longest_path_length(nxg) + 1 if g.n else 0
        assert g.critical_path_length() == expected


class TestReachability:
    def test_descendant_counts_diamond(self, diamond_dag):
        assert list(diamond_dag.descendant_counts(exact=True)) == [3, 1, 1, 0]

    def test_descendant_counts_shared_descendant_not_double_counted(self):
        g = Dag.from_edge_list(4, [(0, 1), (0, 2), (1, 3), (2, 3)])
        # Vertex 3 reachable through both branches; exact count is 3 not 4.
        assert g.descendant_counts(exact=True)[0] == 3

    def test_approximate_counts_overcount_shared(self):
        g = Dag.from_edge_list(4, [(0, 1), (0, 2), (1, 3), (2, 3)])
        approx = g.descendant_counts(exact=False)
        assert approx[0] == 4  # 3 counted twice via both branches

    def test_auto_selects_exact_for_small(self, diamond_dag):
        assert list(diamond_dag.descendant_counts()) == [3, 1, 1, 0]

    def test_reachable_from(self, diamond_dag):
        assert sorted(diamond_dag.reachable_from(0)) == [1, 2, 3]
        assert sorted(diamond_dag.reachable_from(1)) == [3]
        assert list(diamond_dag.reachable_from(3)) == []

    @given(dags(max_n=20))
    @settings(max_examples=30, deadline=None)
    def test_exact_descendants_match_networkx(self, g):
        nxg = g.to_networkx()
        counts = g.descendant_counts(exact=True)
        for v in range(g.n):
            assert counts[v] == len(nx.descendants(nxg, v))

    @given(dags(max_n=20))
    @settings(max_examples=30, deadline=None)
    def test_approx_upper_bounds_exact(self, g):
        exact = g.descendant_counts(exact=True)
        approx = g.descendant_counts(exact=False)
        assert np.all(approx >= exact)


class TestNetworkxRoundtrip:
    def test_roundtrip(self, diamond_dag):
        g2 = Dag.from_networkx(diamond_dag.to_networkx())
        assert g2.n == diamond_dag.n
        assert sorted(map(tuple, g2.edges.tolist())) == sorted(
            map(tuple, diamond_dag.edges.tolist())
        )

    def test_from_networkx_rejects_noncontiguous_nodes(self):
        nxg = nx.DiGraph()
        nxg.add_edge(1, 5)
        with pytest.raises(InvalidInstanceError, match="0..n-1"):
            Dag.from_networkx(nxg)


class TestInternals:
    def test_gather_csr_concatenates_slices(self):
        off = np.array([0, 2, 2, 5])
        tgt = np.array([10, 11, 20, 21, 22])
        out = _gather_csr(off, tgt, np.array([0, 2]))
        assert list(out) == [10, 11, 20, 21, 22]

    def test_gather_csr_empty_nodes(self):
        off = np.array([0, 2])
        tgt = np.array([1, 2])
        out = _gather_csr(off, tgt, np.array([], dtype=np.int64))
        assert out.size == 0

    def test_popcount_rows(self):
        bits = np.array([[np.uint64(0b1011)], [np.uint64(0)]], dtype=np.uint64)
        assert list(_popcount_rows(bits)) == [3, 0]


class TestCsrFromEdgesValidation:
    def test_mismatched_lengths_rejected(self):
        with pytest.raises(InvalidInstanceError, match="matching shapes"):
            csr_from_edges(4, np.array([0, 1, 2]), np.array([1, 2]))

    def test_mismatched_lengths_rejected_from_lists(self):
        with pytest.raises(InvalidInstanceError, match="matching shapes"):
            csr_from_edges(4, [0, 1], [1])

    def test_matching_lengths_still_accepted(self):
        off, tgt = csr_from_edges(3, np.array([0, 0]), np.array([1, 2]))
        assert list(off) == [0, 2, 2, 2]
        assert sorted(tgt.tolist()) == [1, 2]


class TestMemoization:
    """The scheduling-engine caches must be caches: same values, and the
    arrays handed out must be private copies the caller can scribble on.
    """

    def test_t_levels_cached_and_copied(self):
        g = Dag.from_edge_list(4, [(0, 1), (1, 2), (0, 3)])
        a = g.t_levels()
        b = g.t_levels()
        assert np.array_equal(a, b)
        a[:] = -1
        assert np.array_equal(g.t_levels(), b)

    def test_descendant_counts_cached_per_mode(self):
        g = Dag.from_edge_list(5, [(0, 1), (1, 2), (0, 3), (3, 4)])
        exact = g.descendant_counts(exact=True)
        approx = g.descendant_counts(exact=False)
        assert np.array_equal(g.descendant_counts(exact=True), exact)
        assert np.array_equal(g.descendant_counts(exact=False), approx)
        exact[:] = -1
        assert np.all(g.descendant_counts(exact=True) >= 0)

    def test_successor_lists_match_csr(self):
        g = Dag.from_edge_list(4, [(0, 1), (0, 2), (2, 3)])
        off, tgt = g.successor_lists()
        coff, ctgt = g.successor_csr()
        assert off == coff.tolist()
        assert tgt == ctgt.tolist()
        assert g.successor_lists()[0] is off  # cached, not rebuilt

    def test_indegree_list_returns_fresh_copies(self):
        g = Dag.from_edge_list(3, [(0, 1), (0, 2)])
        a = g.indegree_list()
        assert a == [0, 1, 1]
        a[0] = 99
        assert g.indegree_list() == [0, 1, 1]

    def test_padded_successors_shape_and_sentinel(self):
        g = Dag.from_edge_list(4, [(0, 1), (0, 2), (2, 3)])
        padded = g.padded_successors()
        assert padded is not None
        P, indeg0 = padded
        assert P.shape == (4, 2)
        # Sentinel column entries point at the extra vertex n.
        assert P[1, 0] == 4 and P[1, 1] == 4
        assert indeg0.shape == (5,)
        assert indeg0[4] >= np.int64(1) << 60
        assert list(indeg0[:4]) == [0, 1, 1, 1]
        assert g.padded_successors() is padded  # cached

    def test_padded_successors_declines_ragged_graphs(self):
        # One hub with n-1 successors alongside many isolated vertices:
        # maxdeg * n blows past the density guard, so the padded matrix
        # is refused and the pool promotion falls back to CSR gathers.
        n = 600
        g = Dag.from_edge_list(n, [(0, v) for v in range(1, 101)])
        assert g.padded_successors() is None
        assert g.padded_successors() is None  # the refusal is cached too

    def test_edgeless_graph_padded(self):
        g = Dag(3, [])
        padded = g.padded_successors()
        assert padded is not None
        P, indeg0 = padded
        assert P.shape[0] == 3
        assert list(indeg0[:3]) == [0, 0, 0]
