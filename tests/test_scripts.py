"""Smoke tests for the repository scripts."""

import subprocess
import sys
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent


@pytest.mark.slow
class TestScripts:
    def test_regenerate_experiments_tiny(self):
        """The one-shot regeneration script runs end to end at tiny scale
        and emits every experiment's table."""
        out = subprocess.run(
            [sys.executable, "scripts/regenerate_experiments.py", "--cells", "250"],
            cwd=ROOT,
            capture_output=True,
            text=True,
            timeout=600,
        )
        assert out.returncode == 0, out.stderr[-2000:]
        for marker in ("Fig 2(a)", "Fig 3(c)", "E9 block size",
                       "E16 latency", "E18 hetero costs"):
            assert marker in out.stdout

    def test_run_full_scale_single_small(self):
        """The full-scale driver accepts a single preset (we shrink the
        work by patching nothing — fig2c at paper scale runs in ~5 s)."""
        out = subprocess.run(
            [sys.executable, "scripts/run_full_scale.py", "fig2c"],
            cwd=ROOT,
            capture_output=True,
            text=True,
            timeout=600,
        )
        assert out.returncode == 0, out.stderr[-2000:]
        assert "ratio to nk/m" in out.stdout
