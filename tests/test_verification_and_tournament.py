"""Tests for MMS sweep verification and the tournament harness."""

import numpy as np
import pytest

from repro.analysis import format_tournament, tournament
from repro.core import random_delay_priority_schedule
from repro.mesh import Mesh, tetonly_like
from repro.sweeps import build_instance
from repro.transport import (
    Quadrature,
    TransportProblem,
    manufactured_emission,
    schedule_orders,
    verify_sweep,
)
from repro.transport.sweep_solver import build_geometry
from repro.util.errors import ReproError


class TestMMS:
    @pytest.mark.parametrize("mesh_kind", ["grid", "tets"])
    def test_verify_sweep_at_roundoff(self, mesh_kind):
        if mesh_kind == "grid":
            mesh = Mesh.structured_grid((5, 5, 3))
        else:
            mesh = tetonly_like(200, seed=0)
        quad = Quadrature.sn(2)
        inst = build_instance(mesh, quad.directions)
        sched = random_delay_priority_schedule(inst, 4, seed=0)
        p = TransportProblem(mesh, quad, 1.7, 0.0, 1.0)
        err = verify_sweep(p, schedule_orders(sched))
        assert err < 1e-10

    def test_manufactured_emission_inverts_sweep(self):
        mesh = Mesh.structured_grid((4, 4))
        quad = Quadrature.fan2d(4)
        inst = build_instance(mesh, quad.directions)
        sched = random_delay_priority_schedule(inst, 2, seed=0)
        p = TransportProblem(mesh, quad, 2.0, 0.0, 1.0)
        geos, _ = build_geometry(p, schedule_orders(sched))
        rng = np.random.default_rng(1)
        psi_star = rng.random(mesh.n_cells) + 1.0
        emission = manufactured_emission(p, geos[0], psi_star)
        from repro.transport import sweep_direction

        psi = sweep_direction(p, geos[0], emission)
        assert np.allclose(psi, psi_star, atol=1e-12)

    def test_rejects_white_boundary(self):
        mesh = Mesh.structured_grid((3, 3))
        quad = Quadrature.fan2d(4)
        p = TransportProblem(mesh, quad, 1.0, 0.0, 1.0, boundary="white")
        with pytest.raises(ReproError, match="vacuum"):
            verify_sweep(p, [np.arange(9)] * 4)

    def test_rejects_bad_psi_shape(self):
        mesh = Mesh.structured_grid((3, 3))
        quad = Quadrature.fan2d(4)
        inst = build_instance(mesh, quad.directions)
        sched = random_delay_priority_schedule(inst, 2, seed=0)
        p = TransportProblem(mesh, quad, 1.0, 0.0, 1.0)
        geos, _ = build_geometry(p, schedule_orders(sched))
        with pytest.raises(ReproError, match="per cell"):
            manufactured_emission(p, geos[0], np.ones(5))


class TestTournament:
    def test_ranking_and_matrix(self, tet_instance):
        result = tournament(
            tet_instance,
            ["random_delay", "random_delay_priority", "fifo"],
            m=8,
            n_seeds=5,
        )
        names = [n for n, _ in result["ranking"]]
        assert set(names) == {"random_delay", "random_delay_priority", "fifo"}
        # Algorithm 2 must rank strictly above Algorithm 1.
        assert names.index("random_delay_priority") < names.index("random_delay")
        assert len(result["matrix"]) == 3  # C(3,2) pairs

    def test_format(self, tet_instance):
        result = tournament(
            tet_instance, ["random_delay", "random_delay_priority"], m=8,
            n_seeds=5,
        )
        text = format_tournament(result)
        assert "ranking" in text
        assert "beats" in text  # Alg 2 vs Alg 1 is a significant edge

    def test_needs_two_algorithms(self, tet_instance):
        with pytest.raises(ReproError, match="two"):
            tournament(tet_instance, ["fifo"], m=2)
