"""Multiprocess end-to-end tests for the ``repro.obs`` plane.

A ``workers=2`` grid run must come back with spans from at least two
distinct processes (driver + worker), merge them deterministically, and
export a Chrome trace that passes schema validation from disk.  Tracing
must also not perturb results: the traced parallel run stays
bit-identical to the serial runner.  Marked ``grid_smoke`` alongside the
other dispatcher end-to-end tests:

    python -m pytest -q -m grid_smoke
"""

from __future__ import annotations

import json
import os

import pytest

from repro import obs
from repro.experiments.configs import ExperimentConfig
from repro.experiments.runner import run_grid

TRACE_CONFIG = ExperimentConfig(
    mesh="tetonly", target_cells=250, k=4,
    m_values=(8,), block_sizes=(1,),
    algorithms=("random_delay_priority",),
    seeds=(0, 1, 2, 3), name="obs-grid",
)


@pytest.fixture
def traced_env():
    was = obs.tracing_enabled()
    obs.reset()
    obs.enable_tracing()
    yield obs
    obs.reset()
    if not was:
        obs.disable_tracing()


def _traced_grid_run(workers: int):
    """Run the trace config and return (rows, merged spans, metrics)."""
    obs.reset()
    rows = run_grid(TRACE_CONFIG, with_comm=True, workers=workers)
    spans = obs.merge_spans([obs.drain_spans()])
    metrics = obs.drain_metrics()
    return rows, spans, metrics


@pytest.mark.grid_smoke
class TestMultiprocessTrace:
    def test_workers2_trace_spans_two_pids(self, traced_env):
        rows, spans, metrics = _traced_grid_run(workers=2)
        assert rows  # the run itself produced results
        pids = {s.pid for s in spans}
        assert len(pids) >= 2, f"expected driver + worker pids, got {pids}"
        driver = os.getpid()
        assert driver in pids
        names_by_pid = {}
        for s in spans:
            names_by_pid.setdefault(s.pid, set()).add(s.name)
        # Dispatch phases recorded in the driver; chunk execution in
        # the workers, shipped back over the result channel.
        assert "grid.dispatch" in names_by_pid[driver]
        worker_names = set().union(
            *(names_by_pid[p] for p in pids if p != driver)
        )
        assert {"worker.chunk", "worker.cell"} <= worker_names
        # Every grid cell got exactly one worker.cell span.
        n_cells = sum(1 for s in spans if s.name == "worker.cell")
        assert n_cells == len(TRACE_CONFIG.seeds)
        # Worker metrics merged into the parent registry.
        assert metrics["counters"]  # scheduler counters from workers
        assert "parallel.publish_s" in metrics["gauges"]

    def test_merged_order_is_deterministic(self, traced_env):
        _, spans, _ = _traced_grid_run(workers=2)
        # Re-merging any interleaving of the same spans reproduces the
        # same timeline: the order is a pure function of the span set.
        odd, even = spans[::2], spans[1::2]
        assert obs.merge_spans([list(odd), list(even)]) == spans
        assert obs.merge_spans([list(even), list(odd)]) == spans
        keys = [obs.span_sort_key(s) for s in spans]
        assert keys == sorted(keys)

    def test_span_structure_stable_across_runs(self, traced_env):
        _, first, _ = _traced_grid_run(workers=2)
        _, second, _ = _traced_grid_run(workers=2)
        # Pids and timings differ run to run; the traced structure (how
        # many spans of each (name, cat, depth)) must not.
        def shape(spans):
            counts = {}
            for s in spans:
                key = (s.name, s.cat, s.depth)
                counts[key] = counts.get(key, 0) + 1
            return counts

        assert shape(first) == shape(second)

    def test_exported_chrome_trace_validates_from_disk(
        self, traced_env, tmp_path
    ):
        _, spans, metrics = _traced_grid_run(workers=2)
        path = tmp_path / "grid_trace.json"
        obs.write_chrome_trace(str(path), spans, metrics=metrics)
        loaded = json.loads(path.read_text())
        assert obs.validate_chrome_trace(loaded) == []
        event_pids = {e["pid"] for e in loaded["traceEvents"]}
        assert len(event_pids) >= 2
        # The driver (min pid need not be the parent!) and workers are
        # labelled via process_name metadata for the Perfetto UI.
        labels = [e["args"]["name"] for e in loaded["traceEvents"]
                  if e["ph"] == "M"]
        assert any("driver" in lbl for lbl in labels)
        assert any("worker" in lbl for lbl in labels)
        assert loaded["otherData"]["metrics"]["counters"]

    def test_traced_parallel_run_stays_bit_identical(self, traced_env):
        serial = run_grid(TRACE_CONFIG, with_comm=True, workers=1)
        obs.reset()
        parallel = run_grid(TRACE_CONFIG, with_comm=True, workers=2)
        assert serial == parallel

    def test_serial_run_traces_without_workers(self, traced_env):
        rows, spans, _ = _traced_grid_run(workers=1)
        assert rows
        names = {s.name for s in spans}
        assert "grid.serial" in names
        assert {s.pid for s in spans} == {os.getpid()}

    def test_untraced_grid_run_ships_no_payloads(self):
        was = obs.tracing_enabled()
        obs.disable_tracing()
        obs.reset()
        try:
            rows = run_grid(TRACE_CONFIG, with_comm=True, workers=2)
            assert rows
            assert obs.drain_spans() == []
            assert obs.drain_metrics() == {"counters": {}, "gauges": {}}
        finally:
            if was:
                obs.enable_tracing()
