"""Tests for the spectral and RCB partitioners."""

import numpy as np
import pytest

from repro.mesh import Mesh, tetonly_like
from repro.partition import (
    PartGraph,
    balance,
    bisection_cut,
    edge_cut,
    fiedler_vector,
    random_blocks,
    rcb_blocks,
    rcb_partition,
    spectral_bisect,
    spectral_partition,
)
from repro.util.errors import PartitionError


def grid_graph(nx_, ny_):
    mesh = Mesh.structured_grid((nx_, ny_))
    return PartGraph.from_edges(mesh.n_cells, mesh.adjacency), mesh


class TestFiedler:
    def test_path_graph_is_monotone(self):
        """On a path, the Fiedler vector is monotone along the path."""
        edges = np.array([[i, i + 1] for i in range(9)])
        g = PartGraph.from_edges(10, edges)
        f = fiedler_vector(g)
        diffs = np.diff(f)
        assert np.all(diffs > 0) or np.all(diffs < 0)

    def test_disconnected_graph_separates_components(self):
        edges = np.array([[0, 1], [1, 2], [3, 4], [4, 5]])
        g = PartGraph.from_edges(6, edges)
        f = fiedler_vector(g)
        a = f[:3]
        b = f[3:]
        assert a.max() < b.min() or b.max() < a.min()

    def test_needs_two_vertices(self):
        g = PartGraph.from_edges(1, np.empty((0, 2)))
        with pytest.raises(PartitionError):
            fiedler_vector(g)

    def test_large_graph_sparse_path(self):
        g, _ = grid_graph(12, 12)  # > 64 vertices: exercises eigsh
        f = fiedler_vector(g)
        assert f.shape == (144,)


class TestSpectralBisect:
    def test_grid_cut_near_optimal(self):
        g, _ = grid_graph(8, 8)
        side = spectral_bisect(g)
        assert bisection_cut(g, side) <= 2 * 8  # optimal is 8
        assert abs(int(side.sum()) - 32) <= 8

    def test_dumbbell_cuts_the_bridge(self):
        """Two cliques joined by one edge: spectral must cut the bridge."""
        edges = []
        for i in range(5):
            for j in range(i + 1, 5):
                edges.append((i, j))
                edges.append((5 + i, 5 + j))
        edges.append((0, 5))
        g = PartGraph.from_edges(10, np.array(edges))
        side = spectral_bisect(g, refine=False)
        assert bisection_cut(g, side) == 1

    def test_kway_partition(self):
        g, mesh = grid_graph(10, 10)
        labels = spectral_partition(g, 4)
        assert set(labels.tolist()) == {0, 1, 2, 3}
        assert balance(labels) < 1.5
        rnd = random_blocks(100, 25, seed=0)
        assert edge_cut(labels, mesh.adjacency) < edge_cut(rnd, mesh.adjacency)

    def test_rejects_bad_k(self):
        g, _ = grid_graph(3, 3)
        with pytest.raises(PartitionError):
            spectral_partition(g, 0)


class TestRCB:
    def test_balanced_exactly(self):
        rng = np.random.default_rng(0)
        pts = rng.random((100, 3))
        labels = rcb_partition(pts, 4)
        counts = np.bincount(labels)
        assert counts.max() - counts.min() <= 1

    def test_splits_longest_axis_first(self):
        pts = np.stack([np.arange(10.0), np.zeros(10)], axis=1)
        labels = rcb_partition(pts, 2)
        assert labels.tolist() == [0] * 5 + [1] * 5

    def test_k_not_power_of_two(self):
        rng = np.random.default_rng(1)
        pts = rng.random((90, 2))
        labels = rcb_partition(pts, 3)
        assert sorted(np.bincount(labels).tolist()) == [30, 30, 30]

    def test_blocks_by_size(self):
        rng = np.random.default_rng(2)
        pts = rng.random((100, 3))
        blocks = rcb_blocks(pts, 25)
        assert blocks.max() + 1 == 4

    def test_locality_beats_random_on_mesh(self):
        mesh = tetonly_like(400, seed=0)
        rcb = rcb_blocks(mesh.centroids, 32)
        rnd = random_blocks(mesh.n_cells, 32, seed=0)
        assert edge_cut(rcb, mesh.adjacency) < edge_cut(rnd, mesh.adjacency)

    def test_errors(self):
        with pytest.raises(PartitionError):
            rcb_partition(np.zeros((5, 2)), 0)
        with pytest.raises(PartitionError):
            rcb_blocks(np.zeros((5, 2)), 0)
        with pytest.raises(PartitionError):
            rcb_partition(np.zeros(5), 2)

    def test_empty(self):
        assert rcb_blocks(np.empty((0, 2)), 4).size == 0
