"""Tests for the shared-memory instance store (``repro.parallel.shm_store``).

In-process coverage of the publish/attach wire format and lifecycle:
round-trip fidelity (arrays, memo caches, partition labellings),
read-only zero-copy views, idempotent unlink, and the orphan-segment
scan the leak checks build on.  Cross-process behaviour is covered by
``tests/test_parallel_grid.py`` through the real dispatcher.
"""

import numpy as np
import pytest

from repro.core.dag import Dag
from repro.experiments.configs import ExperimentConfig
from repro.experiments.runner import get_blocks, get_instance
from repro.parallel import (
    SHM_PREFIX,
    SharedInstanceStore,
    attach,
    detach_all,
    list_orphan_segments,
    warm_instance,
)
from repro.util.errors import InvalidInstanceError

TINY = ExperimentConfig(
    mesh="square2d", target_cells=120, k=4,
    block_sizes=(1, 8), name="store-test",
)


@pytest.fixture
def inst():
    return get_instance(TINY)


def _segment_exists(name: str) -> bool:
    return name in list_orphan_segments()


class TestRoundTrip:
    def test_instance_arrays_survive(self, inst):
        with SharedInstanceStore.publish(inst) as store:
            got, blocks = attach(store.manifest)
            assert blocks == {}
            assert got.n_cells == inst.n_cells
            assert got.k == inst.k
            assert got.name == inst.name
            for a, b in zip(inst.dags, got.dags):
                assert np.array_equal(a.edges, b.edges)
            detach_all()

    def test_blocks_travel_with_instance(self, inst):
        labels = get_blocks(TINY, 8)
        with SharedInstanceStore.publish(inst, blocks={8: labels}) as store:
            assert store.manifest.block_sizes == (8,)
            _, blocks = attach(store.manifest)
            assert set(blocks) == {8}
            assert np.array_equal(blocks[8], labels)
            detach_all()

    def test_warmed_caches_are_adopted_not_recomputed(self, inst):
        warm_instance(inst, ("descendant", "dfds"))
        with SharedInstanceStore.publish(inst) as store:
            got, _ = attach(store.manifest)
            union = got.union_dag()
            # Adopted caches are already materialised on the attached side …
            assert union._num_levels is not None
            assert union._topo_order is not None
            assert union._padded is not None
            for g in got.dags:
                assert g._desc_exact is not None or g._desc_approx is not None
                assert g._b_level is not None
            # … and they carry the same values the parent computed.
            assert union.num_levels() == inst.union_dag().num_levels()
            for a, b in zip(inst.dags, got.dags):
                assert np.array_equal(a.b_levels(), b.b_levels())
            detach_all()

    def test_attached_views_are_read_only(self, inst):
        with SharedInstanceStore.publish(inst) as store:
            got, _ = attach(store.manifest)
            with pytest.raises(ValueError):
                got.dags[0].edges[0, 0] = 7
            detach_all()

    def test_attach_is_memoised_per_segment(self, inst):
        with SharedInstanceStore.publish(inst) as store:
            first, _ = attach(store.manifest)
            second, _ = attach(store.manifest)
            assert first is second
            detach_all()


class TestLifecycle:
    def test_close_unlinks_segment(self, inst):
        store = SharedInstanceStore.publish(inst)
        name = store.manifest.segment
        assert _segment_exists(name)
        store.close()
        assert not _segment_exists(name)

    def test_close_is_idempotent(self, inst):
        store = SharedInstanceStore.publish(inst)
        store.close()
        store.close()  # second close must not raise

    def test_context_manager_cleans_up_on_error(self, inst):
        with pytest.raises(RuntimeError, match="boom"):
            with SharedInstanceStore.publish(inst) as store:
                name = store.manifest.segment
                assert _segment_exists(name)
                raise RuntimeError("boom")
        assert not _segment_exists(name)

    def test_no_orphans_after_full_cycle(self, inst):
        with SharedInstanceStore.publish(inst) as store:
            attach(store.manifest)
            detach_all()
        assert list_orphan_segments() == []


class TestOrphanScan:
    def test_scan_sees_prefixed_segments_only(self):
        from multiprocessing import shared_memory

        shm = shared_memory.SharedMemory(
            name=f"{SHM_PREFIX}orphan_probe", create=True, size=64
        )
        try:
            assert f"{SHM_PREFIX}orphan_probe" in list_orphan_segments()
        finally:
            shm.close()
            shm.unlink()
        assert f"{SHM_PREFIX}orphan_probe" not in list_orphan_segments()


class TestCacheWireFormat:
    def test_adopt_rejects_unknown_array_key(self):
        g = Dag(3, np.array([[0, 1], [1, 2]]))
        with pytest.raises(InvalidInstanceError, match="unknown cache array"):
            g.adopt_caches({}, {"not_a_cache": np.zeros(3)})

    def test_adopt_rejects_unknown_scalar_key(self):
        g = Dag(3, np.array([[0, 1], [1, 2]]))
        with pytest.raises(InvalidInstanceError, match="unknown cache scalar"):
            g.adopt_caches({"bogus": 1}, {})

    def test_adopt_requires_padded_companion(self):
        g = Dag(3, np.array([[0, 1], [1, 2]]))
        with pytest.raises(InvalidInstanceError, match="companion"):
            g.adopt_caches({}, {"padded_P": np.zeros((1, 1), dtype=np.int64)})

    def test_export_roundtrips_through_adopt(self):
        g = Dag(4, np.array([[0, 1], [1, 2], [2, 3]]))
        g.num_levels()
        g.b_levels()
        scalars, arrays = g.export_caches()
        fresh = Dag(4, g.edges, validate=False)
        fresh.adopt_caches(scalars, arrays)
        assert fresh.num_levels() == g.num_levels()
        assert np.array_equal(fresh.b_levels(), g.b_levels())
