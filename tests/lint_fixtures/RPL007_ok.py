# repro-lint-fixture: path=serve/ok_async.py
# Near-miss fixture for RPL007 (async-discipline): the sanctioned
# patterns — awaited sleeps, executor-guarded builds, and blocking I/O
# confined to synchronous helpers — must produce zero findings.
import asyncio
import socket
import time

from repro.mesh import make_mesh
from repro.serve import protocol
from repro.sweeps import build_instance


async def async_retry(attempts):
    for _ in range(attempts):
        await asyncio.sleep(0.05)  # yields the loop; fine


async def guarded_build(spec):
    # Blocking construction pushed onto an executor thread: the lambda
    # body is a nested scope, so the calls inside it are not "in" the
    # coroutine.
    loop = asyncio.get_running_loop()
    return await loop.run_in_executor(
        None,
        lambda: build_instance(
            make_mesh(spec.mesh, target_cells=spec.cells, seed=0),
            spec.directions,
        ),
    )


def client_roundtrip(payload):
    # Synchronous helpers may block freely — only coroutine bodies run
    # on the event loop.
    time.sleep(0.01)
    sock = socket.create_connection(("127.0.0.1", 9999))
    protocol.write_frame(sock, payload)
    return protocol.read_frame(sock)
