# repro-lint-fixture: path=core/fast_scheduler.py
# Near-miss fixture for RPL005 (hot-path hygiene): nothing here may be
# flagged, even on the (virtual) hot path.
import numpy as np


def batched_insert(rest, codes):
    # np.insert is the sanctioned batched re-insertion, not list.insert.
    return np.insert(rest, np.searchsorted(rest, codes), codes)


def appended_ready(ready, tid):
    ready.append(tid)  # amortised O(1)
    return ready


def positional_insert(ready, tid):
    ready.insert(1, tid)  # not the head-insert anti-pattern
    return ready


def one_shot_concat(chunks):
    parts = []
    for chunk in chunks:
        parts.append(chunk)
    return np.concatenate(parts)  # single concatenate after the loop
