# Known-bad fixture for RPL001 (determinism): every statement below must
# be flagged.  Never imported — parsed only by repro.lint.
import random
import time

import numpy as np


def shuffled_delays(k):
    values = list(range(k))
    random.shuffle(values)  # stdlib random call
    return values


def noisy_priority(n):
    return np.random.rand(n)  # bare np.random.* call


def fresh_rng():
    return np.random.default_rng()  # unseeded: OS entropy


def chokepoint_bypass(seed):
    return np.random.default_rng(seed)  # seeded, but bypasses util/rng.py


def stamp():
    return time.time()  # wall clock leaks into output
