# repro-lint-fixture: path=core/fast_scheduler.py
# Known-bad fixture for RPL006 (obs-discipline): raw clock reads outside
# the timing chokepoint, plus eager span annotations in a file the
# directive places on the benchmarked hot path.
import time

from repro.obs import span


def handrolled_timer(fn):
    t0 = time.perf_counter()  # raw clock read #1
    fn()
    return time.perf_counter() - t0  # raw clock read #2


def traced_cells(cells):
    for tid in cells:
        with span(f"cell {tid}"):  # f-string formatted per iteration
            pass


def traced_with_eager_args(cells):
    for tid in cells:
        with span("cell", args_fn={"tid": tid}):  # dict built per iteration
            pass
