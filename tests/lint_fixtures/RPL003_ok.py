# Near-miss fixture for RPL003 (shm lifecycle): nothing here may be
# flagged.
from multiprocessing import shared_memory

import numpy as np


def scoped_publish(total):
    # Creation as a `with` context expression: cleanup is structural.
    with shared_memory.SharedMemory(create=True, size=total) as shm:
        return bytes(shm.buf[:8])


class OwningStore:
    """The owning-store pattern: creation + close/unlink in one class."""

    def __init__(self, total):
        self._shm = shared_memory.SharedMemory(create=True, size=total)

    def close(self):
        self._shm.close()
        self._shm.unlink()


def readonly_view(shm, shape):
    view = np.ndarray(shape, dtype=np.int64, buffer=shm.buf)
    view.flags.writeable = False  # explicit decision at the build site
    return view


def owner_view(shm, shape, writeable):
    view = np.ndarray(shape, dtype=np.int64, buffer=shm.buf)
    view.flags.writeable = writeable
    return view


def plain_array(shape):
    # ndarray without buffer= is an ordinary allocation, out of scope.
    return np.ndarray(shape, dtype=np.int64)
