# repro-lint-fixture: path=parallel/tasks.py
# Worker-path spans use `with`; the parent-side profiler below may hold
# a handle across statements — it never runs inside a worker.
from repro import obs


def process(cell):
    with obs.span("cell"):
        return compute(cell)


def compute(cell):
    return cell * 2


def parent_profile(cells):
    handle = obs.span("profile")
    total = sum(cells)
    handle.close()
    return total
