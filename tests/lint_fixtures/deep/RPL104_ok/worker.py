# repro-lint-fixture: path=parallel/worker.py
# Known-good fixture for RPL104: every worker-path span is a `with`
# context expression.
from repro import obs
from repro.parallel.tasks import process


def run_chunk(manifest, cells):
    with obs.span("chunk"):
        return [process(c) for c in cells]
