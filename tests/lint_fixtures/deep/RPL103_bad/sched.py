# repro-lint-fixture: path=core/sched.py
# Low-level scheduler: honours the engine= selector.


def schedule(inst, m, engine=None):
    return {"inst": inst, "m": m, "engine": engine}
