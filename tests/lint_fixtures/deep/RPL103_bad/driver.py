# repro-lint-fixture: path=experiments/driver.py
# Known-bad fixture for RPL103 (engine propagation): two findings —
# one call drops the selector, one pins it to a literal.  The callee
# lives in another file, which is exactly what file-local RPL002 misses.
from repro.core.sched import schedule


def run(inst, m, engine=None):
    return schedule(inst, m)


def run_pinned(inst, m, engine=None):
    return schedule(inst, m, engine="heap")
