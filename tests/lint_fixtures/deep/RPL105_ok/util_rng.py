# repro-lint-fixture: path=util/rng.py
# The chokepoint: direct RNG construction is sanctioned here, and only
# here — callers hand it a seed and get independent typed streams back.
import numpy as np


def spawn_rng(seed, index):
    seq = np.random.SeedSequence(seed)
    return np.random.default_rng(seq.spawn(index + 1)[index])
