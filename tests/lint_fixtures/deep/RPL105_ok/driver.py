# repro-lint-fixture: path=analysis/driver.py
# Known-good fixture for RPL105: the seed goes into the chokepoint; the
# helper receives a typed Generator, never the raw seed.
from repro.analysis.noise import jitter_with
from repro.util.rng import spawn_rng


def run(values, seed):
    rng = spawn_rng(seed, 0)
    return jitter_with(values, rng)
