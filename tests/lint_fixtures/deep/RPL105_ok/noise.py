# repro-lint-fixture: path=analysis/noise.py
# Takes a ready Generator — no RNG construction, nothing to escape to.


def jitter_with(values, rng):
    return [v + rng.standard_normal() for v in values]
