# repro-lint-fixture: path=experiments/runner.py
# Parent-side construction: banned from every worker call path.


def get_instance(mesh, k):
    return {"mesh": mesh, "k": k}


def warm_instance(mesh):
    return {"mesh": mesh, "warmed": True}
