# repro-lint-fixture: path=parallel/worker.py
# Known-bad fixture for RPL101 (spawn safety): both worker entrypoints
# reach parent-side construction through a helper in another file.
from repro.parallel.helpers import prepare, warm_all


def init_worker(manifest):
    prepare(manifest)


def run_chunk(manifest, cells):
    warm_all(manifest)
    return list(cells)
