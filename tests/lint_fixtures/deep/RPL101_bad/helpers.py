# repro-lint-fixture: path=parallel/helpers.py
# Middle hop: the violation is only visible across three files.
from repro.experiments.runner import get_instance, warm_instance


def prepare(manifest):
    return get_instance(manifest["mesh"], manifest["k"])


def warm_all(manifest):
    warm_instance(manifest["mesh"])
