# repro-lint-fixture: path=parallel/store.py
# Known-bad fixture for RPL102 (shm pairing): two findings below —
# an owning creation whose scope never reaches unlink(), and an
# unprotected window between a creation and its escape.
from multiprocessing import shared_memory

from repro.parallel.cleanup import half_release


class HalfStore:
    """Cleanup delegates to a helper that closes but never unlinks."""

    def __init__(self, shm):
        self._shm = shm

    @classmethod
    def publish(cls, total):
        return cls(shared_memory.SharedMemory(create=True, size=total))

    def close(self):
        half_release(self._shm)


def windowed_publish(payload, total):
    shm = shared_memory.SharedMemory(create=True, size=total)
    shm.buf[: len(payload)] = payload  # raises on size mismatch: leak
    out = HalfStore(shm)
    shm.close()
    shm.unlink()
    return out
