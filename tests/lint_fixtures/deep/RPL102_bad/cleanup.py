# repro-lint-fixture: path=parallel/cleanup.py
# The half-hearted helper: closes the mapping, never unlinks the
# segment — visible to RPL102 only through the call graph.


def half_release(shm):
    shm.close()
