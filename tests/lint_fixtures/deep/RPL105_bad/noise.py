# repro-lint-fixture: path=analysis/noise.py
# Transitively unsafe: constructs an RNG outside the chokepoint.  The
# construction itself is RPL001's (file-local) finding; RPL105 flags the
# *flows* that smuggle seeds into it from other files.
import numpy as np


def jitter(values, seed=None):
    rng = np.random.default_rng(seed)
    return [v + rng.standard_normal() for v in values]
