# repro-lint-fixture: path=analysis/driver.py
# Known-bad fixture for RPL105 (seed escape): two findings — a config
# seed attribute and a seed= keyword both flow into a helper that
# builds its RNG outside the repro.util.rng chokepoint.
from repro.analysis.noise import jitter


def run(cfg, values):
    return jitter(values, cfg.seed)


def run_keyword(values, seed):
    return jitter(values, seed=seed)
