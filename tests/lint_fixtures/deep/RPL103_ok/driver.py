# repro-lint-fixture: path=experiments/driver.py
# Known-good fixture for RPL103: keyword forward, positional forward,
# and **kwargs pass-through all preserve the caller's engine choice.
from repro.core.sched import resolve_engine, schedule


def run(inst, m, engine=None):
    return schedule(inst, m, engine=engine)


def run_positional(inst, m, engine=None):
    resolve_engine(engine)
    return schedule(inst, m, engine=engine)


def run_kwargs(inst, m, engine=None, **kwargs):
    return schedule(inst, m, engine=engine, **kwargs)
