# repro-lint-fixture: path=core/sched.py
# Low-level scheduler: honours the engine= selector.


def schedule(inst, m, engine=None):
    return {"inst": inst, "m": m, "engine": engine}


def resolve_engine(engine, default="auto"):
    return default if engine is None else engine
