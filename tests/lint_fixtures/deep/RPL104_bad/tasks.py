# repro-lint-fixture: path=parallel/tasks.py
# One finding: a span handle held positionally on a worker path — an
# exception in compute() leaves it dangling and loses the trace.
from repro import obs


def process(cell):
    handle = obs.span("cell")
    result = compute(cell)
    handle.close()
    return result


def compute(cell):
    return cell * 2
