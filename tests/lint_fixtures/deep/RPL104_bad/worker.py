# repro-lint-fixture: path=parallel/worker.py
# Known-bad fixture for RPL104 (span safety): the entrypoint is clean,
# but a helper one hop away opens a span without `with`.
from repro import obs
from repro.parallel.tasks import process


def run_chunk(manifest, cells):
    with obs.span("chunk"):
        return [process(c) for c in cells]
