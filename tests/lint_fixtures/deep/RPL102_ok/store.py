# repro-lint-fixture: path=parallel/store.py
# Known-good fixture for RPL102: cleanup delegated across files counts,
# a guarded window counts, and `with` blocks are always fine.
from multiprocessing import shared_memory

from repro.parallel.cleanup import full_release


class PairedStore:
    """Owner whose close() reaches both close and unlink via a helper."""

    def __init__(self, shm):
        self._shm = shm

    @classmethod
    def publish(cls, payload, total):
        shm = shared_memory.SharedMemory(create=True, size=total)
        try:
            shm.buf[: len(payload)] = payload
        except BaseException:
            shm.close()
            shm.unlink()
            raise
        return cls(shm)

    def close(self):
        full_release(self._shm)


def scratch_roundtrip(payload, total):
    with shared_memory.SharedMemory(create=True, size=total) as shm:
        shm.buf[: len(payload)] = payload
        return bytes(shm.buf[: len(payload)])
