# repro-lint-fixture: path=parallel/cleanup.py
# Complete cleanup helper: close + unlink, in one place.


def full_release(shm):
    shm.close()
    shm.unlink()
