# repro-lint-fixture: path=parallel/worker.py
# Known-good fixture for RPL101: workers attach to the published store
# and run cells; they never touch the construction pipeline.
from repro.parallel.helpers import attach_store, run_one


def init_worker(manifest):
    attach_store(manifest)


def run_chunk(manifest, cells):
    return [run_one(manifest, c) for c in cells]
