# repro-lint-fixture: path=experiments/runner.py
# get_instance exists here too, but only the parent-side driver calls
# it — reachability, not mere presence, is what RPL101 checks.


def get_instance(mesh, k):
    return {"mesh": mesh, "k": k}


def run_cell_on(manifest, cell):
    return {"cell": cell, "segment": manifest["segment"]}


def parent_driver(mesh, k):
    inst = get_instance(mesh, k)
    return run_cell_on({"segment": "s"}, 0), inst
