# repro-lint-fixture: path=parallel/helpers.py
# Worker-side helpers: attach + per-cell work only.
from repro.experiments.runner import get_instance, run_cell_on


def attach_store(manifest):
    return {"segment": manifest["segment"]}


def run_one(manifest, cell):
    return run_cell_on(manifest, cell)
