# repro-lint-fixture: path=heuristics/algos.py
# Leaf algorithms for the call-graph golden.


def alpha(inst, m, seed=None):
    return {"algo": "alpha", "inst": inst, "m": m}


def beta(inst, m, seed=None, flag=False):
    return {"algo": "beta", "inst": inst, "m": m, "flag": flag}
