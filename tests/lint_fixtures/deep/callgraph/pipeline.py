# repro-lint-fixture: path=experiments/pipeline.py
# Exercises every edge kind: direct (alpha), init (Stage), method
# (self.prepare), registry (get_algorithm fan-out), and fallback
# (execute_stage on an opaque receiver).
from repro.heuristics.algos import alpha
from repro.heuristics.registry import get_algorithm


class Pipeline:
    def __init__(self, stages):
        self.stages = stages

    def prepare(self, inst):
        return alpha(inst, 1)

    def run(self, inst, name):
        self.prepare(inst)
        algo = get_algorithm(name)
        out = algo(inst, 2)
        for stage in self.stages:
            out = stage.execute_stage(out)
        return out


def main(inst, name):
    from repro.experiments.stage import Stage

    pipe = Pipeline([Stage("s0")])
    return pipe.run(inst, name)
