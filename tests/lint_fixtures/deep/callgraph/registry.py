# repro-lint-fixture: path=heuristics/registry.py
# Registry for the call-graph golden: one direct value, one partial.
from functools import partial

from repro.heuristics.algos import alpha, beta

ALGORITHMS = {
    "alpha": alpha,
    "beta_flagged": partial(beta, flag=True),
}


def get_algorithm(name):
    return ALGORITHMS[name]
