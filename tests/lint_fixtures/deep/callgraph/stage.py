# repro-lint-fixture: path=experiments/stage.py
# Fallback-dispatch target: execute_stage is resolved by method name.


class Stage:
    def __init__(self, label):
        self.label = label

    def execute_stage(self, inst):
        return {"stage": self.label, "inst": inst}
