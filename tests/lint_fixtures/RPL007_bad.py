# repro-lint-fixture: path=serve/bad_async.py
# Known-bad fixture for RPL007 (async-discipline): blocking calls made
# directly inside coroutine bodies of a (virtual) serve-plane module —
# each one would stall the daemon's event loop.
import socket
import time

from repro.mesh import make_mesh
from repro.serve import protocol
from repro.sweeps import build_instance


async def sleepy_retry(attempts):
    for _ in range(attempts):
        time.sleep(0.05)  # blocking sleep on the event loop


async def sync_roundtrip(payload):
    sock = socket.create_connection(("127.0.0.1", 9999))  # blocking connect
    protocol.write_frame(sock, payload)  # blocking frame write
    return protocol.read_frame(sock)  # blocking frame read


async def inline_build(spec):
    mesh = make_mesh(spec.mesh, target_cells=spec.cells, seed=0)  # seconds
    return build_instance(mesh, spec.directions)  # more seconds
