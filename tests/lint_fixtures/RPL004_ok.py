# repro-lint-fixture: path=core/_fixture.py
# Near-miss fixture for RPL004 (dtype discipline): nothing here may be
# flagged, even though the directive places the file in core/.
import numpy as np


def explicit_edges(edges):
    return np.asarray(edges, dtype=np.int64)


def explicit_assignment(assignment, k):
    return np.tile(np.asarray(assignment, dtype=np.int64), k)


def priorities_may_be_float(priority):
    # Non-index data: priorities are legitimately floats.
    return np.asarray(priority)


def costs_may_be_float(task_cost):
    return np.array(task_cost)


def subscripted_source(arrays, key):
    # No recognisable index identifier: the rule stays silent rather
    # than guessing.
    return np.ascontiguousarray(arrays[key])
