# repro-lint-fixture: path=core/fast_scheduler.py
# Known-bad fixture for RPL005 (hot-path hygiene): all three banned
# idioms, inside a file the directive places on the benchmarked hot
# path.
import numpy as np


def growing_pool(pool, newly):
    for tid in newly:
        pool = np.append(pool, tid)  # O(n) copy per element
    return pool


def fifo_ready(ready, tid):
    ready.insert(0, tid)  # shifts the whole list
    return ready


def stepwise_concat(chunks):
    out = np.empty(0, dtype=np.int64)
    while chunks:
        out = np.concatenate([out, chunks.pop()])  # quadratic in steps
    return out
