# repro-lint-fixture: path=core/_fixture.py
# Known-bad fixture for RPL004 (dtype discipline): every construction
# below must be flagged.  The directive above places this file in core/,
# where the rule is in scope.
import numpy as np


def implicit_edges(edges):
    return np.asarray(edges)


def implicit_assignment(assignment, k):
    return np.tile(np.asarray(assignment), k)


def implicit_blocks(blocks):
    return np.array(blocks)


def implicit_csr(dag):
    return np.ascontiguousarray(dag.offsets)
