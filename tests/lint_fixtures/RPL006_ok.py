# repro-lint-fixture: path=core/fast_scheduler.py
# Near-miss fixture for RPL006 (obs-discipline): nothing here may be
# flagged, even on the (virtual) hot path.
from repro.obs import span
from repro.util.timing import Timer, now


def choked_timer(fn):
    # Measurement through the chokepoint, not time.perf_counter().
    t0 = now()
    fn()
    return now() - t0


def context_timer(fn):
    with Timer() as t:
        fn()
    return t.elapsed


def traced_cells(cells):
    for tid in cells:
        # Constant name; the dict hides behind a lazy callable.
        with span("cell", args_fn=lambda tid=tid: {"tid": tid}):
            pass


def formatted_elsewhere(tid):
    # f-strings outside span calls are fine — only the span annotation
    # itself must stay allocation-free.
    return f"cell {tid}"
