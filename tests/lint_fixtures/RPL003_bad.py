# Known-bad fixture for RPL003 (shm lifecycle): both patterns below must
# be flagged.
from multiprocessing import shared_memory

import numpy as np


def leaky_publish(total):
    # No context manager, no owning class: leaks on any exception below.
    shm = shared_memory.SharedMemory(create=True, size=total)
    return shm.name


def writable_view(shm, shape):
    # Buffer-backed view with no writability decision anywhere in scope.
    return np.ndarray(shape, dtype=np.int64, buffer=shm.buf)
