# Near-miss fixture for RPL002 (engine parity): nothing here may be
# flagged.
from repro.core.list_scheduler import list_schedule, list_schedule_unassigned
from repro.heuristics import get_algorithm


def forwarded(inst, m, assignment, priority=None, engine="auto"):
    return list_schedule(inst, m, assignment, priority=priority, engine=engine)


def forwarded_registry(inst, m, seed, engine="auto"):
    algo = get_algorithm("random_delay_priority")
    return algo(inst, m, seed=seed, engine=engine)


def no_engine_param(inst, m, assignment):
    # Callers without an engine parameter made no promise to forward one.
    return list_schedule(inst, m, assignment)


def uniform_signature_only(inst, m, engine="auto"):
    # Accepts engine for registry-signature uniformity but never runs a
    # list scheduler — vacuously compliant (Algorithm 1's shape).
    del engine
    return inst.union_dag().num_levels() * m


def splatted(inst, m, engine="auto", **kwargs):
    return list_schedule_unassigned(inst, m, engine=engine, **kwargs)
