# Near-miss fixture for RPL001 (determinism): nothing here may be
# flagged.  Exercises the look-alikes the rule must not confuse with
# real entropy sources.
import time

import numpy as np

from repro.util.rng import as_rng, spawn_rng


def seeded_priority(n, seed=None):
    rng = as_rng(seed)  # the sanctioned chokepoint
    return rng.random(n)  # Generator method, not np.random.*


def derived_stream(seed):
    return spawn_rng(seed, 1)


def annotated(rng: np.random.Generator) -> np.random.Generator:
    # Attribute *references* to np.random types are fine — only calls count.
    assert isinstance(rng, np.random.Generator)
    return rng


def measure():
    t0 = time.perf_counter()  # measurement-only timing is allowed
    return time.perf_counter() - t0


class Sampler:
    def random(self):
        return 4

    def draw(self):
        return self.random()  # method named `random` on our own object
