# Known-bad fixture for RPL002 (engine parity): both scheduling calls
# inside engine-accepting functions must be flagged.
from repro.core.list_scheduler import list_schedule, list_schedule_unassigned
from repro.heuristics import get_algorithm


def dropped_selector(inst, m, assignment, engine="auto"):
    # Accepts engine= but pins the core to "auto": flagged.
    return list_schedule(inst, m, assignment)


def dropped_on_registry(inst, m, seed, engine="auto"):
    algo = get_algorithm("random_delay_priority")
    # Registry algorithms take engine= too; dropping it is the same bug.
    return algo(inst, m, seed=seed)


def relaxation(inst, m, engine="auto"):
    # Forwarding a literal instead of the parameter also drops the choice.
    return list_schedule_unassigned(inst, m, engine="heap")
