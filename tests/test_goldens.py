"""Golden-snapshot regression: every registry scheduler, pinned numbers.

Three small fixed-seed instances run through every registered algorithm;
makespan, C1, and C2 must match ``tests/goldens/registry_goldens.json``
exactly.  Any intentional behaviour change must regenerate the goldens
(``PYTHONPATH=src python scripts/regenerate_goldens.py --write``) and
commit the JSON diff — see ``docs/testing.md``.
"""

import json
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
if str(ROOT / "scripts") not in sys.path:
    sys.path.insert(0, str(ROOT / "scripts"))

from regenerate_goldens import GOLDEN_CASES, GOLDEN_PATH, compute_goldens  # noqa: E402

REGEN = "PYTHONPATH=src python scripts/regenerate_goldens.py --write"


class TestGoldens:
    def test_golden_file_exists_and_covers_registry(self):
        from repro.heuristics import algorithm_names

        stored = json.loads(GOLDEN_PATH.read_text())
        assert set(stored) == {label for label, *_ in GOLDEN_CASES}
        for label, row in stored.items():
            assert set(row) == set(algorithm_names()), (
                f"golden case {label!r} does not cover the registry — "
                f"regenerate with: {REGEN}"
            )

    def test_registry_matches_goldens(self):
        stored = json.loads(GOLDEN_PATH.read_text())
        current = compute_goldens()
        drifted = [
            f"{case}/{algo}: stored={stored.get(case, {}).get(algo)} "
            f"current={vals}"
            for case, row in current.items()
            for algo, vals in row.items()
            if stored.get(case, {}).get(algo) != vals
        ]
        assert not drifted, (
            "golden drift (if intended, regenerate with: " + REGEN + ")\n"
            + "\n".join(drifted)
        )
