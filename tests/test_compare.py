"""Tests for the statistical comparison helpers."""

import numpy as np
import pytest

from repro.analysis import bootstrap_ci, compare_pair, sample_algorithm
from repro.util.errors import ReproError


class TestSampling:
    def test_sample_shape_and_lb(self, tet_instance):
        s = sample_algorithm(tet_instance, "random_delay_priority", 4, n_seeds=5)
        assert s.makespans.shape == (5,)
        assert s.lower_bound > 0
        assert np.all(s.ratios >= 1.0)

    def test_seeds_vary_makespans(self, tet_instance):
        s = sample_algorithm(tet_instance, "random_delay", 8, n_seeds=6)
        assert np.unique(s.makespans).size > 1

    def test_deterministic_given_seed(self, tet_instance):
        a = sample_algorithm(tet_instance, "random_delay", 4, n_seeds=4, seed=1)
        b = sample_algorithm(tet_instance, "random_delay", 4, n_seeds=4, seed=1)
        assert np.array_equal(a.makespans, b.makespans)

    def test_rejects_zero_seeds(self, tet_instance):
        with pytest.raises(ReproError):
            sample_algorithm(tet_instance, "fifo", 2, n_seeds=0)


class TestBootstrap:
    def test_ci_contains_true_mean_of_tight_sample(self):
        values = np.full(50, 7.0)
        lo, hi = bootstrap_ci(values)
        assert lo == hi == 7.0

    def test_ci_brackets_sample_mean(self, rng):
        values = rng.normal(10, 2, size=200)
        lo, hi = bootstrap_ci(values, seed=0)
        assert lo <= values.mean() <= hi
        assert hi - lo < 1.5  # reasonably tight at n=200

    def test_wider_confidence_wider_interval(self, rng):
        values = rng.normal(0, 1, size=50)
        lo95, hi95 = bootstrap_ci(values, confidence=0.95, seed=0)
        lo50, hi50 = bootstrap_ci(values, confidence=0.50, seed=0)
        assert (hi95 - lo95) > (hi50 - lo50)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ReproError):
            bootstrap_ci(np.array([]))
        with pytest.raises(ReproError):
            bootstrap_ci(np.array([1.0]), confidence=1.5)


class TestComparePair:
    def test_priority_beats_plain_significantly(self, tet_instance):
        """Algorithm 2 vs Algorithm 1 with paired seeds: the compaction
        advantage must be a significant win, not noise."""
        result = compare_pair(
            tet_instance, "random_delay_priority", "random_delay",
            m=8, n_seeds=8,
        )
        assert result["mean_diff"] < 0
        assert result["a_wins"] == 8
        assert result["significant"]

    def test_self_comparison_all_ties(self, tet_instance):
        result = compare_pair(
            tet_instance, "random_delay", "random_delay", m=4, n_seeds=5
        )
        assert result["ties"] == 5
        assert result["mean_diff"] == 0.0
        assert not result["significant"]

    def test_record_sums_to_n_seeds(self, tet_instance):
        result = compare_pair(tet_instance, "dfds", "level", m=4, n_seeds=6)
        assert result["a_wins"] + result["ties"] + result["b_wins"] == 6
