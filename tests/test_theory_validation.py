"""Statistical validation of the paper's lemmas on real instances (E8).

These tests measure the quantities Lemmas 2–4 bound and check the bounds
hold with the stated logarithmic scaling on an actual mesh instance —
the empirical counterpart of the proofs, and the guts of the
theory-validation benchmark.
"""

import numpy as np
import pytest

from repro.analysis import (
    expected_max_load_bound,
    lemma2_max_copies_per_layer,
    lemma3_max_tasks_per_proc_layer,
    mean_max_load,
)
from repro.core import (
    average_load_lb,
    random_cell_assignment,
    random_delay_schedule,
)
from repro.core.random_delay import draw_delays
from repro.util.rng import spawn_rngs


class TestLemma2:
    """Max copies of any cell per combined-DAG layer is O(log n) w.h.p."""

    def test_bound_holds_across_seeds(self, tet_instance):
        n = tet_instance.n_cells
        # alpha = 3 is far above the constant the proof needs here.
        bound = 3 * np.log(n)
        for rng in spawn_rngs(0, 10):
            delays = draw_delays(tet_instance.k, rng)
            assert lemma2_max_copies_per_layer(tet_instance, delays) <= bound

    def test_expectation_near_one(self, tet_instance):
        """E[copies of v in a layer] <= 1 (proof of Lemma 2); the max over
        all (v, layer) should still be small — single digits for n=400."""
        vals = []
        for rng in spawn_rngs(1, 10):
            delays = draw_delays(tet_instance.k, rng)
            vals.append(lemma2_max_copies_per_layer(tet_instance, delays))
        assert np.mean(vals) <= 8


class TestLemma3:
    """Tasks per (processor, layer) is O(max(|V_r|/m, 1) log^2 n) w.h.p."""

    def test_bound_holds(self, tet_instance):
        n, k = tet_instance.n_cells, tet_instance.k
        m = 8
        log2n = np.log(n) ** 2
        for rng in spawn_rngs(2, 8):
            delays = draw_delays(k, rng)
            assignment = random_cell_assignment(n, m, rng)
            worst = lemma3_max_tasks_per_proc_layer(
                tet_instance, delays, assignment, m
            )
            # |V_r| <= n, so the lemma's bound is at most (n/m) log^2 n;
            # the observed value should sit far below even with alpha'=1.
            assert worst <= max(n / m, 1) * log2n


class TestLemma4:
    """Algorithm 1's makespan is O(OPT log^2 n) — empirically the ratio
    to the nk/m lower bound stays tiny compared to log^2 n."""

    @pytest.mark.parametrize("m", [4, 16])
    def test_ratio_well_under_log_squared(self, tet_instance, m):
        lb = average_load_lb(tet_instance, m)
        log2n = np.log(tet_instance.n_cells) ** 2  # ~36 for n~400
        ratios = []
        for seed in range(5):
            s = random_delay_schedule(tet_instance, m, seed=seed)
            ratios.append(s.makespan / lb)
        assert max(ratios) < log2n / 3
        # And the paper's empirical observation: usually under ~3-4.
        assert np.mean(ratios) < 4.5


class TestCorollary2Scaling:
    """Balls-in-bins: the simulated expected max load obeys the bound
    at scheduling-relevant sizes (t tasks of a layer into m procs)."""

    @pytest.mark.parametrize("t,m", [(64, 8), (256, 16), (1024, 32)])
    def test_bound(self, t, m):
        emp = mean_max_load(t, m, trials=200, seed=0)
        assert emp <= expected_max_load_bound(t, m)
