"""Execute the code blocks the README and usage guide promise work.

Extracts fenced python blocks and runs them in a shared namespace per
document — the strongest possible "the docs are not lying" check.
"""

import re
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent


def python_blocks(path: Path) -> list[str]:
    text = path.read_text()
    return re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)


class TestReadmeQuickstart:
    def test_readme_python_blocks_run(self, capsys):
        blocks = python_blocks(ROOT / "README.md")
        assert blocks, "README must contain a python quickstart"
        ns: dict = {}
        for block in blocks:
            exec(compile(block, "README.md", "exec"), ns)  # noqa: S102
        out = capsys.readouterr().out
        assert out.strip(), "quickstart should print results"


@pytest.mark.slow
class TestUsageGuide:
    def test_usage_blocks_run_in_sequence(self, capsys, tmp_path, monkeypatch):
        """usage.md's recipes build on each other; run them as one
        script (in a temp cwd — recipe 9 writes artifact files).  Shell
        blocks are skipped; python blocks must all work."""
        monkeypatch.chdir(tmp_path)
        blocks = python_blocks(ROOT / "docs" / "usage.md")
        assert len(blocks) >= 8
        ns: dict = {}
        for i, block in enumerate(blocks):
            exec(compile(block, f"usage.md[{i}]", "exec"), ns)  # noqa: S102
        assert (tmp_path / "sched.npz").exists()  # recipe 9 persisted
