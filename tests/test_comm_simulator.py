"""Tests for the wall-clock communication simulator."""

import pytest

from repro.comm import (
    CommModel,
    communication_profile,
    estimate_wall_clock,
)
from repro.core import random_delay_priority_schedule
from repro.util.errors import ReproError


@pytest.fixture(scope="module")
def sched(tet_instance):
    return random_delay_priority_schedule(tet_instance, 4, seed=0)


class TestCommModel:
    def test_defaults(self):
        m = CommModel()
        assert m.p == 1.0 and m.accounting == "max_send"

    def test_rejects_bad_p(self):
        with pytest.raises(ReproError, match="task time"):
            CommModel(p=0)

    def test_rejects_negative_c(self):
        with pytest.raises(ReproError, match="message time"):
            CommModel(c=-1)

    def test_rejects_unknown_accounting(self):
        with pytest.raises(ReproError, match="accounting"):
            CommModel(accounting="psychic")


class TestEstimate:
    def test_none_accounting_is_pure_compute(self, sched):
        est = estimate_wall_clock(sched, CommModel(c=1.0, accounting="none"))
        assert est.comm_time == 0
        assert est.total == sched.makespan

    def test_accounting_ordering(self, sched):
        """max_send <= rounds <= total_edges (the cost sandwich)."""
        per = {
            acc: estimate_wall_clock(sched, CommModel(accounting=acc)).comm_steps
            for acc in ("max_send", "rounds", "total_edges")
        }
        assert per["max_send"] <= per["rounds"] <= per["total_edges"]

    def test_p_scales_compute(self, sched):
        a = estimate_wall_clock(sched, CommModel(p=1.0, accounting="none"))
        b = estimate_wall_clock(sched, CommModel(p=2.5, accounting="none"))
        assert b.compute_time == pytest.approx(2.5 * a.compute_time)

    def test_comm_fraction_bounds(self, sched):
        est = estimate_wall_clock(sched, CommModel(c=0.5))
        assert 0 < est.comm_fraction() < 1

    def test_profile_consistency(self, sched):
        prof = communication_profile(sched)
        assert prof["c2_max_send"] <= prof["rounds_1port"] <= prof["c1_total_edges"]
        assert prof["c2_peak_step"] <= prof["c2_max_send"]
