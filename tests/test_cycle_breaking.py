"""Tests for SCC detection and cycle breaking."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core.dag import Dag
from repro.sweeps import break_cycles, find_sccs

from .strategies import digraph_edges


class TestFindSccs:
    def test_triangle_is_one_scc(self):
        labels = find_sccs(3, np.array([[0, 1], [1, 2], [2, 0]]))
        assert labels[0] == labels[1] == labels[2]

    def test_dag_has_singleton_sccs(self):
        labels = find_sccs(3, np.array([[0, 1], [1, 2]]))
        assert len(set(labels.tolist())) == 3

    def test_empty_graph(self):
        assert find_sccs(0, np.empty((0, 2))).size == 0

    def test_no_edges(self):
        labels = find_sccs(4, np.empty((0, 2)))
        assert len(set(labels.tolist())) == 4


class TestBreakCycles:
    def test_acyclic_input_untouched(self):
        edges = np.array([[0, 1], [1, 2], [0, 2]])
        out, removed = break_cycles(3, edges)
        assert removed == 0
        assert np.array_equal(out, edges)

    def test_triangle_loses_exactly_one_edge(self):
        edges = np.array([[0, 1], [1, 2], [2, 0]])
        out, removed = break_cycles(3, edges)
        assert removed == 1
        assert out.shape[0] == 2
        Dag(3, out)  # must be acyclic now

    def test_two_cycle(self):
        edges = np.array([[0, 1], [1, 0]])
        out, removed = break_cycles(2, edges)
        assert removed == 1
        assert out.tolist() == [[0, 1]]

    def test_order_key_controls_survivors(self):
        """With projection keys, edges against the sweep direction die."""
        edges = np.array([[0, 1], [1, 0]])
        out, _ = break_cycles(2, edges, order_key=np.array([5.0, 1.0]))
        # Vertex 1 projects earlier, so only 1 -> 0 survives.
        assert out.tolist() == [[1, 0]]

    def test_edges_outside_scc_survive(self):
        # Cycle {0,1} plus a bridge 1 -> 2 that must be kept.
        edges = np.array([[0, 1], [1, 0], [1, 2]])
        out, removed = break_cycles(3, edges)
        assert removed == 1
        assert [1, 2] in out.tolist()

    def test_empty_edges(self):
        out, removed = break_cycles(5, np.empty((0, 2)))
        assert removed == 0
        assert out.shape == (0, 2)

    @given(digraph_edges())
    @settings(max_examples=60, deadline=None)
    def test_result_always_acyclic(self, case):
        n, edges = case
        out, removed = break_cycles(n, edges)
        Dag(n, out)  # raises if a cycle survived
        assert removed == edges.shape[0] - out.shape[0]

    @given(digraph_edges())
    @settings(max_examples=40, deadline=None)
    def test_with_random_order_key_acyclic(self, case):
        n, edges = case
        rng = np.random.default_rng(0)
        key = rng.random(n)
        out, _ = break_cycles(n, edges, order_key=key)
        Dag(n, out)
