"""Smoke test for the engine benchmark harness (``repro bench --smoke``).

Runs the real harness end to end on a tiny mesh and validates the
schema-v2 report, so CI catches a broken benchmark (or a drifted schema)
without paying for the full ``BENCH_2.json`` regeneration.  Marked
``bench_smoke`` so CI can also run it as a dedicated step:

    python -m pytest -q -m bench_smoke
"""

import json

import pytest

from repro.cli import main
from repro.experiments.bench import (
    BENCH_SCHEMA_VERSION,
    run_bench,
    validate_bench,
    write_bench,
)

pytestmark = pytest.mark.bench_smoke


@pytest.fixture(scope="module")
def smoke_report():
    return run_bench(smoke=True)


def test_smoke_report_is_schema_valid(smoke_report):
    assert validate_bench(smoke_report) == []
    assert smoke_report["schema_version"] == BENCH_SCHEMA_VERSION
    assert smoke_report["smoke"] is True


def test_smoke_report_covers_all_families(smoke_report):
    families = {case["family"] for case in smoke_report["cases"]}
    assert families == {"mesh_large", "mesh_standard", "chain", "wide_layer"}
    for case in smoke_report["cases"]:
        assert case["n_tasks"] > 0
        assert case["makespan"] > 0
        assert isinstance(case["checksum"], int)
        for eng in ("heap", "bucket"):
            assert case["engines"][eng]["wall_time_s"] > 0
            assert case["engines"][eng]["tasks_per_sec"] > 0


def test_write_bench_round_trips(smoke_report, tmp_path):
    out = tmp_path / "BENCH_2.json"
    write_bench(smoke_report, str(out))
    on_disk = json.loads(out.read_text())
    assert validate_bench(on_disk) == []
    assert on_disk["cases"][0]["checksum"] == smoke_report["cases"][0]["checksum"]


def test_write_bench_rejects_invalid_report(tmp_path):
    broken = {"schema_version": 1, "cases": []}
    with pytest.raises(ValueError, match="invalid bench report"):
        write_bench(broken, str(tmp_path / "bad.json"))


def test_cli_smoke_writes_report(tmp_path):
    out = tmp_path / "BENCH_2.json"
    rc = main(["bench", "--smoke", "--out", str(out)])
    assert rc in (0, None)
    report = json.loads(out.read_text())
    assert validate_bench(report) == []


def test_committed_baseline_is_schema_valid():
    """The checked-in BENCH_2.json must always parse and validate."""
    from pathlib import Path

    baseline = Path(__file__).resolve().parent.parent / "BENCH_2.json"
    report = json.loads(baseline.read_text())
    assert validate_bench(report) == []
    assert report["smoke"] is False
