"""Smoke test for the benchmark harness (``repro bench --smoke``).

Runs the real harness end to end on a tiny mesh and validates the
schema-v7 report (three engine timings per family, per-phase timing
breakdowns with the v6 mesh/build/cache construction split, the
parallel grid section, the cold-vs-warm ``construction`` row, and the
v7 ``serve`` section racing the resident daemon against cold process
startup), so CI catches a broken benchmark (or a drifted schema)
without paying for the full ``BENCH_7.json`` regeneration.  The
committed-baseline tests at the bottom are the perf-regression gates:
bucket's mesh_large speedup, the structural-only warm on wide_layer,
the worker RSS ceiling, the (cpu-gated) absolute grid throughput
target, the v6 frozen-v5 setup/checksum/warm-construction gates, and
the v7 warm-serve latency gate.  Marked ``bench_smoke`` so CI can also
run it as a dedicated step:

    python -m pytest -q -m bench_smoke
"""

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.experiments.bench import (
    BASELINE_SERIAL_ROWS_PER_SEC,
    BENCH_ENGINES,
    BENCH_SCHEMA_VERSION,
    TARGET_GRID_ROWS_FACTOR,
    TARGET_GRID_SPEEDUP,
    SERVE_WORKERS,
    TARGET_SETUP_SPEEDUP,
    TARGET_SPEEDUP,
    TARGET_WARM_CONSTRUCTION_SPEEDUP,
    TARGET_WARM_SERVE_SPEEDUP,
    V5_CASE_CHECKSUMS,
    V5_SETUP_S,
    WORKER_RSS_CEILING_MB,
    run_bench,
    validate_bench,
    write_bench,
)

pytestmark = pytest.mark.bench_smoke

_BASELINE = Path(__file__).resolve().parent.parent / "BENCH_7.json"


@pytest.fixture(scope="module")
def smoke_report():
    return run_bench(smoke=True)


@pytest.fixture(scope="module")
def baseline():
    return json.loads(_BASELINE.read_text())


def test_smoke_report_is_schema_valid(smoke_report):
    assert validate_bench(smoke_report) == []
    assert smoke_report["schema_version"] == BENCH_SCHEMA_VERSION
    assert smoke_report["smoke"] is True
    assert smoke_report["cpu_count"] >= 1


def test_smoke_report_covers_all_families(smoke_report):
    families = {case["family"] for case in smoke_report["cases"]}
    assert families == {"mesh_large", "mesh_standard", "chain", "wide_layer"}
    for case in smoke_report["cases"]:
        assert case["n_tasks"] > 0
        assert case["makespan"] > 0
        assert isinstance(case["checksum"], int)
        assert case["auto_engine"] in BENCH_ENGINES
        for eng in BENCH_ENGINES:
            assert case["engines"][eng]["wall_time_s"] > 0
            assert case["engines"][eng]["tasks_per_sec"] > 0


def test_smoke_report_grid_section(smoke_report):
    grid = smoke_report["grid"]
    workers = sorted(run["workers"] for run in grid["runs"])
    assert workers == [1, 2]
    for run in grid["runs"]:
        assert run["identical_to_serial"] is True
        if run["workers"] > 1:
            assert run["n_chunks"] >= 1
            assert run["peak_worker_rss_mb"] > 0
    assert grid["leaked_segments"] == []


def test_smoke_report_case_phases(smoke_report):
    """Schema v6: every case splits acquisition into mesh/build/cache
    next to the v5 setup/warm pair."""
    for case in smoke_report["cases"]:
        phases = case["phases"]
        assert set(phases) >= {
            "mesh_s", "build_s", "cache_s", "setup_s", "warm_s"
        }
        for value in phases.values():
            assert value >= 0.0
        # Cache disabled in the smoke run; synthetic families have no mesh.
        assert phases["cache_s"] == 0.0
        if case["family"] in ("chain", "wide_layer"):
            assert phases["mesh_s"] == 0.0
        assert phases["build_s"] > 0.0


def test_smoke_report_construction_section(smoke_report):
    """The v6 cold-vs-warm construction row: a real cache hit with
    byte-identical arrays, even at smoke size."""
    c = smoke_report["construction"]
    assert c["cold_s"] > 0 and c["warm_s"] > 0
    assert c["cache_hits"] >= 1
    assert c["byte_identical"] is True


def test_smoke_report_serve_section(smoke_report):
    """The v7 serve section: bit-identical daemon runs at workers 1 and
    2, clean SIGTERM drains, no leaked segments, and a measured cold
    one-shot baseline."""
    serve = smoke_report["serve"]
    assert serve["cold"]["ok"] is True
    assert serve["cold"]["wall_time_s"] > 0
    assert sorted(run["workers"] for run in serve["runs"]) == [1, 2]
    for run in serve["runs"]:
        assert run["identical_to_serial"] is True
        assert run["clean_exit"] is True
        assert run["chunks_dispatched"] >= 1
        assert 0 < run["warm_p50_ms"] <= run["warm_p95_ms"]
        assert run["batched_requests_per_sec"] > 0
        assert run["unbatched_requests_per_sec"] > 0
    assert serve["leaked_segments"] == []
    assert serve["warm_vs_cold_speedup"] > 0


def test_full_report_rejects_missing_serve(smoke_report):
    broken = dict(smoke_report, serve=None)
    assert any("serve" in p for p in validate_bench(broken))


def test_validator_gates_warm_serve_speedup(smoke_report):
    """At full fidelity the warm-serve latency gate is enforced."""
    import copy

    report = copy.deepcopy(smoke_report)
    report["smoke"] = False
    report["cells"] = 2000
    report["seed"] = 1  # dodge the frozen-v5 gates; serve gate is not sized
    report["serve"]["warm_vs_cold_speedup"] = (
        TARGET_WARM_SERVE_SPEEDUP / 2.0
    )
    problems = validate_bench(report)
    assert any("warm serve speedup" in p for p in problems)
    assert any(
        f"lacks worker counts {sorted(set(SERVE_WORKERS) - {1, 2})}" in p
        for p in problems
    )


def test_partial_families_report():
    """``--families`` runs the subset only and omits grid/construction."""
    report = run_bench(smoke=True, families=["chain"])
    assert validate_bench(report) == []
    assert report["partial"] is True
    assert report["families"] == ["chain"]
    assert [c["family"] for c in report["cases"]] == ["chain"]
    assert report["grid"] is None
    assert report["construction"] is None
    assert report["serve"] is None


def test_unknown_family_rejected():
    with pytest.raises(ValueError, match="unknown bench families"):
        run_bench(smoke=True, families=["no_such_family"])


def test_full_report_rejects_missing_construction(smoke_report):
    broken = dict(smoke_report, construction=None)
    assert any("construction" in p for p in validate_bench(broken))


def test_validator_gates_on_frozen_v5_values(smoke_report):
    """At reference fidelity (non-smoke, default cells, seed 0) the
    validator enforces the frozen-v5 setup and checksum gates."""
    import copy

    report = copy.deepcopy(smoke_report)
    report["smoke"] = False
    report["cells"] = 2000
    report["seed"] = 0
    for case in report["cases"]:
        if case["family"] in V5_SETUP_S:
            case["phases"]["setup_s"] = (
                2.0 * V5_SETUP_S[case["family"]] / TARGET_SETUP_SPEEDUP
            )
        if case["family"] in V5_CASE_CHECKSUMS:
            case["checksum"] = V5_CASE_CHECKSUMS[case["family"]] + 1
    problems = validate_bench(report)
    assert sum("misses the" in p for p in problems) == len(V5_SETUP_S)
    assert sum("frozen v5 value" in p for p in problems) == len(
        V5_CASE_CHECKSUMS
    )


def test_smoke_report_grid_phases(smoke_report):
    """Schema v5: serial runs record ``run_s``; parallel runs record the
    dispatcher's warm/plan/publish/dispatch/wait breakdown, with the
    sub-phases consistent with the run's total wall time."""
    for run in smoke_report["grid"]["runs"]:
        phases = run["phases"]
        if run["workers"] == 1:
            assert set(phases) == {"run_s"}
            assert phases["run_s"] >= 0.0
        else:
            assert set(phases) == {
                "warm_s", "plan_s", "publish_s", "dispatch_s", "wait_s"
            }
            for value in phases.values():
                assert value >= 0.0
            # wait_s is the stalled portion of the pool's lifetime.
            assert phases["wait_s"] <= phases["dispatch_s"] + 1e-9
            setup = (phases["warm_s"] + phases["plan_s"]
                     + phases["publish_s"] + phases["dispatch_s"])
            assert setup <= run["wall_time_s"] * 1.5 + 1e-9


def test_write_bench_round_trips(smoke_report, tmp_path):
    out = tmp_path / "BENCH_7.json"
    write_bench(smoke_report, str(out))
    on_disk = json.loads(out.read_text())
    assert validate_bench(on_disk) == []
    assert on_disk["cases"][0]["checksum"] == smoke_report["cases"][0]["checksum"]


def test_write_bench_rejects_invalid_report(tmp_path):
    broken = {"schema_version": 1, "cases": []}
    with pytest.raises(ValueError, match="invalid bench report"):
        write_bench(broken, str(tmp_path / "bad.json"))


def test_cli_smoke_writes_report(tmp_path):
    out = tmp_path / "BENCH_7.json"
    rc = main(["bench", "--smoke", "--out", str(out)])
    assert rc in (0, None)
    report = json.loads(out.read_text())
    assert validate_bench(report) == []


def test_committed_baseline_is_schema_valid(baseline):
    """The checked-in BENCH_7.json must always parse and validate."""
    assert validate_bench(baseline) == []
    assert baseline["smoke"] is False


def test_committed_baseline_warm_serve_latency(baseline):
    """The serve tentpole's acceptance gate: warm daemon p50 latency
    beats cold one-shot process startup by 5x or better, bit-identical
    to the serial runner, with every daemon drained clean."""
    serve = baseline["serve"]
    assert serve["warm_vs_cold_speedup"] >= TARGET_WARM_SERVE_SPEEDUP
    assert serve["cold"]["ok"] is True
    assert sorted(run["workers"] for run in serve["runs"]) == sorted(
        SERVE_WORKERS
    )
    for run in serve["runs"]:
        assert run["identical_to_serial"] is True
        assert run["clean_exit"] is True
    assert serve["leaked_segments"] == []


def test_committed_baseline_serve_batching_pays(baseline):
    """Pipelining the same requests through the coalescing window must
    beat one-request-per-round-trip throughput on every run — if it
    does not, the batcher is pure overhead."""
    for run in baseline["serve"]["runs"]:
        assert (
            run["batched_requests_per_sec"]
            > run["unbatched_requests_per_sec"]
        ), (
            f"workers={run['workers']}: batched "
            f"{run['batched_requests_per_sec']:.1f} req/s vs unbatched "
            f"{run['unbatched_requests_per_sec']:.1f} req/s"
        )


def test_committed_baseline_setup_speedup(baseline):
    """The batched builder's dividend: setup_s on the gated families
    beats the frozen v5 values by ``TARGET_SETUP_SPEEDUP`` or better."""
    for fam, v5 in V5_SETUP_S.items():
        case = next(c for c in baseline["cases"] if c["family"] == fam)
        assert case["phases"]["setup_s"] <= v5 / TARGET_SETUP_SPEEDUP, (
            f"{fam}: setup_s {case['phases']['setup_s']:.6f}s vs v5 "
            f"{v5:.6f}s"
        )


def test_committed_baseline_checksums_frozen(baseline):
    """Construction got faster; the schedules must be bit-unchanged."""
    for fam, checksum in V5_CASE_CHECKSUMS.items():
        case = next(c for c in baseline["cases"] if c["family"] == fam)
        assert case["checksum"] == checksum


def test_committed_baseline_warm_construction(baseline):
    """Cold-vs-warm: loading the cache entry beats rebuilding by the
    ``TARGET_WARM_CONSTRUCTION_SPEEDUP`` gate, byte-identically."""
    c = baseline["construction"]
    assert c["speedup"] >= TARGET_WARM_CONSTRUCTION_SPEEDUP
    assert c["byte_identical"] is True
    assert c["cache_hits"] >= 1


def test_committed_baseline_auto_picks_winner(baseline):
    """``engine="auto"`` must route every family to (near) its best engine.

    The regression contract from the crossover recalibration: on each
    committed bench family, the engine auto resolves to must be within
    10% of the faster engine's wall time.  A drifted width threshold
    (``_POOL_MIN_WIDTH``) or a changed cost profile shows up here.
    """
    for case in baseline["cases"]:
        engines = case["engines"]
        best = min(engines, key=lambda e: engines[e]["wall_time_s"])
        auto = case["auto_engine"]
        assert (
            engines[auto]["wall_time_s"]
            <= 1.10 * engines[best]["wall_time_s"]
        ), (
            f"{case['family']}: auto picked {auto} "
            f"({engines[auto]['wall_time_s']:.4f}s) but {best} is faster "
            f"({engines[best]['wall_time_s']:.4f}s)"
        )


def test_committed_baseline_bucket_speedup(baseline):
    """The bucket engine keeps its mesh_large win (the PR 2 gate)."""
    large = next(c for c in baseline["cases"] if c["family"] == "mesh_large")
    assert large["speedup"] >= TARGET_SPEEDUP


def test_committed_baseline_grid_criteria(baseline):
    """Grid gates: flat worker RSS always; wall-clock speedup when the
    machine has the cores (``cpu_count >= 4``) — a 1-core container can
    demonstrate correctness and memory flatness but not parallelism."""
    grid = baseline["grid"]
    runs = {run["workers"]: run for run in grid["runs"]}
    assert 1 in runs and len(runs) >= 2
    for run in grid["runs"]:
        assert run["identical_to_serial"] is True
    parallel = [run for w, run in runs.items() if w > 1]
    if len(parallel) >= 2:
        rss = [run["peak_worker_rss_mb"] for run in parallel]
        # Shared instance plane: adding workers must not grow per-worker
        # memory (each attaches the same segment instead of copying).
        assert max(rss) <= 1.25 * min(rss)
    if baseline["cpu_count"] >= 4 and 4 in runs:
        speedup = runs[1]["wall_time_s"] / runs[4]["wall_time_s"]
        assert speedup >= TARGET_GRID_SPEEDUP


def test_committed_baseline_worker_rss_ceiling(baseline):
    """Every parallel run's peak worker RSS sits under the v5 ceiling.

    Spawn-context workers attach to the shared store in a fresh
    interpreter; a regression toward fork-style heap inheritance (the
    old ~860 MiB VmHWM) or a worker-side rebuild of the big caches
    breaches this immediately.
    """
    for run in baseline["grid"]["runs"]:
        if run["workers"] > 1:
            assert 0 < run["peak_worker_rss_mb"] < WORKER_RSS_CEILING_MB, (
                f"workers={run['workers']}: peak worker RSS "
                f"{run['peak_worker_rss_mb']:.1f} MiB vs ceiling "
                f"{WORKER_RSS_CEILING_MB:.0f} MiB"
            )


def test_committed_baseline_wide_layer_warm_is_structural(baseline):
    """The wide_layer warm phase stays under a second.

    Schema v4 charged a padded-matrix build plus an ``np.subtract.at``
    level sweep to this family's warm (6.77 s committed); v5's warm is
    the structural trio (CSR, in-degrees, hybrid-decrement levels) and
    must stay two orders of magnitude below that.
    """
    wide = next(
        c for c in baseline["cases"] if c["family"] == "wide_layer"
    )
    assert wide["phases"]["warm_s"] < 1.0


def test_committed_baseline_vector_wins_wide_layer(baseline):
    """The vector engine is the fastest engine on wide_layer and auto
    routes there — the tentpole's raison d'être, pinned."""
    wide = next(
        c for c in baseline["cases"] if c["family"] == "wide_layer"
    )
    engines = wide["engines"]
    best = min(engines, key=lambda e: engines[e]["wall_time_s"])
    assert best == "vector"
    assert wide["auto_engine"] == "vector"


def test_committed_baseline_grid_throughput(baseline):
    """Absolute grid throughput: the best parallel run must reach
    ``TARGET_GRID_ROWS_FACTOR`` x the committed v4 serial baseline —
    gated on ``cpu_count >= 4``, because a 1-core container cannot show
    wall-clock parallel speedup no matter how good the dispatcher is.
    """
    if baseline["cpu_count"] < 4:
        pytest.skip("grid throughput gate needs cpu_count >= 4")
    best = max(
        run["rows_per_sec"]
        for run in baseline["grid"]["runs"]
        if run["workers"] > 1
    )
    assert best >= TARGET_GRID_ROWS_FACTOR * BASELINE_SERIAL_ROWS_PER_SEC
