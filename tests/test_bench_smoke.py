"""Smoke test for the benchmark harness (``repro bench --smoke``).

Runs the real harness end to end on a tiny mesh and validates the
schema-v4 report (engine families, per-phase timing breakdowns, and the
parallel grid section), so CI catches a broken benchmark (or a drifted
schema) without paying for the full ``BENCH_4.json`` regeneration.
Marked ``bench_smoke`` so CI can also run it as a dedicated step:

    python -m pytest -q -m bench_smoke
"""

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.experiments.bench import (
    BENCH_SCHEMA_VERSION,
    TARGET_GRID_SPEEDUP,
    TARGET_SPEEDUP,
    run_bench,
    validate_bench,
    write_bench,
)

pytestmark = pytest.mark.bench_smoke

_BASELINE = Path(__file__).resolve().parent.parent / "BENCH_4.json"


@pytest.fixture(scope="module")
def smoke_report():
    return run_bench(smoke=True)


@pytest.fixture(scope="module")
def baseline():
    return json.loads(_BASELINE.read_text())


def test_smoke_report_is_schema_valid(smoke_report):
    assert validate_bench(smoke_report) == []
    assert smoke_report["schema_version"] == BENCH_SCHEMA_VERSION
    assert smoke_report["smoke"] is True
    assert smoke_report["cpu_count"] >= 1


def test_smoke_report_covers_all_families(smoke_report):
    families = {case["family"] for case in smoke_report["cases"]}
    assert families == {"mesh_large", "mesh_standard", "chain", "wide_layer"}
    for case in smoke_report["cases"]:
        assert case["n_tasks"] > 0
        assert case["makespan"] > 0
        assert isinstance(case["checksum"], int)
        assert case["auto_engine"] in ("heap", "bucket")
        for eng in ("heap", "bucket"):
            assert case["engines"][eng]["wall_time_s"] > 0
            assert case["engines"][eng]["tasks_per_sec"] > 0


def test_smoke_report_grid_section(smoke_report):
    grid = smoke_report["grid"]
    workers = sorted(run["workers"] for run in grid["runs"])
    assert workers == [1, 2]
    for run in grid["runs"]:
        assert run["identical_to_serial"] is True
        if run["workers"] > 1:
            assert run["n_chunks"] >= 1
            assert run["peak_worker_rss_mb"] > 0
    assert grid["leaked_segments"] == []


def test_smoke_report_case_phases(smoke_report):
    """Schema v4: every engine case carries its setup/warm breakdown."""
    for case in smoke_report["cases"]:
        phases = case["phases"]
        assert set(phases) >= {"setup_s", "warm_s"}
        for value in phases.values():
            assert value >= 0.0


def test_smoke_report_grid_phases(smoke_report):
    """Schema v4: serial runs record ``run_s``; parallel runs record the
    dispatcher's warm/plan/publish/dispatch/wait breakdown, with the
    sub-phases consistent with the run's total wall time."""
    for run in smoke_report["grid"]["runs"]:
        phases = run["phases"]
        if run["workers"] == 1:
            assert set(phases) == {"run_s"}
            assert phases["run_s"] >= 0.0
        else:
            assert set(phases) == {
                "warm_s", "plan_s", "publish_s", "dispatch_s", "wait_s"
            }
            for value in phases.values():
                assert value >= 0.0
            # wait_s is the stalled portion of the pool's lifetime.
            assert phases["wait_s"] <= phases["dispatch_s"] + 1e-9
            setup = (phases["warm_s"] + phases["plan_s"]
                     + phases["publish_s"] + phases["dispatch_s"])
            assert setup <= run["wall_time_s"] * 1.5 + 1e-9


def test_write_bench_round_trips(smoke_report, tmp_path):
    out = tmp_path / "BENCH_4.json"
    write_bench(smoke_report, str(out))
    on_disk = json.loads(out.read_text())
    assert validate_bench(on_disk) == []
    assert on_disk["cases"][0]["checksum"] == smoke_report["cases"][0]["checksum"]


def test_write_bench_rejects_invalid_report(tmp_path):
    broken = {"schema_version": 1, "cases": []}
    with pytest.raises(ValueError, match="invalid bench report"):
        write_bench(broken, str(tmp_path / "bad.json"))


def test_cli_smoke_writes_report(tmp_path):
    out = tmp_path / "BENCH_4.json"
    rc = main(["bench", "--smoke", "--out", str(out)])
    assert rc in (0, None)
    report = json.loads(out.read_text())
    assert validate_bench(report) == []


def test_committed_baseline_is_schema_valid(baseline):
    """The checked-in BENCH_4.json must always parse and validate."""
    assert validate_bench(baseline) == []
    assert baseline["smoke"] is False


def test_committed_baseline_auto_picks_winner(baseline):
    """``engine="auto"`` must route every family to (near) its best engine.

    The regression contract from the crossover recalibration: on each
    committed bench family, the engine auto resolves to must be within
    10% of the faster engine's wall time.  A drifted width threshold
    (``_POOL_MIN_WIDTH``) or a changed cost profile shows up here.
    """
    for case in baseline["cases"]:
        engines = case["engines"]
        best = min(engines, key=lambda e: engines[e]["wall_time_s"])
        auto = case["auto_engine"]
        assert (
            engines[auto]["wall_time_s"]
            <= 1.10 * engines[best]["wall_time_s"]
        ), (
            f"{case['family']}: auto picked {auto} "
            f"({engines[auto]['wall_time_s']:.4f}s) but {best} is faster "
            f"({engines[best]['wall_time_s']:.4f}s)"
        )


def test_committed_baseline_bucket_speedup(baseline):
    """The bucket engine keeps its mesh_large win (the PR 2 gate)."""
    large = next(c for c in baseline["cases"] if c["family"] == "mesh_large")
    assert large["speedup"] >= TARGET_SPEEDUP


def test_committed_baseline_grid_criteria(baseline):
    """Grid gates: flat worker RSS always; wall-clock speedup when the
    machine has the cores (``cpu_count >= 4``) — a 1-core container can
    demonstrate correctness and memory flatness but not parallelism."""
    grid = baseline["grid"]
    runs = {run["workers"]: run for run in grid["runs"]}
    assert 1 in runs and len(runs) >= 2
    for run in grid["runs"]:
        assert run["identical_to_serial"] is True
    parallel = [run for w, run in runs.items() if w > 1]
    if len(parallel) >= 2:
        rss = [run["peak_worker_rss_mb"] for run in parallel]
        # Shared instance plane: adding workers must not grow per-worker
        # memory (each attaches the same segment instead of copying).
        assert max(rss) <= 1.25 * min(rss)
    if baseline["cpu_count"] >= 4 and 4 in runs:
        speedup = runs[1]["wall_time_s"] / runs[4]["wall_time_s"]
        assert speedup >= TARGET_GRID_SPEEDUP
