"""Tests for the baseline block partitioners and quality metrics."""

import numpy as np
import pytest

from repro.mesh import Mesh
from repro.partition import (
    balance,
    bfs_blocks,
    block_sizes,
    edge_cut,
    geometric_blocks,
    random_blocks,
)
from repro.util.errors import PartitionError


@pytest.fixture(scope="module")
def grid():
    return Mesh.structured_grid((10, 10))


class TestRandomBlocks:
    def test_balanced(self):
        blocks = random_blocks(100, 10, seed=0)
        sizes = block_sizes(blocks)
        assert sizes.max() - sizes.min() <= 1

    def test_block_count(self):
        blocks = random_blocks(100, 7, seed=0)
        assert blocks.max() + 1 == 15  # ceil(100/7)

    def test_rejects_bad_size(self):
        with pytest.raises(PartitionError):
            random_blocks(10, 0)


class TestBfsBlocks:
    def test_covers_all_cells(self, grid):
        blocks = bfs_blocks(grid.n_cells, grid.adjacency, 10, seed=0)
        assert (blocks >= 0).all()
        assert block_sizes(blocks).sum() == 100

    def test_blocks_are_contiguous_in_graph(self, grid):
        """Most BFS blocks induce connected subgraphs (locality)."""
        blocks = bfs_blocks(grid.n_cells, grid.adjacency, 10, seed=0)
        cut = edge_cut(blocks, grid.adjacency)
        rnd = edge_cut(random_blocks(100, 10, seed=0), grid.adjacency)
        assert cut < rnd

    def test_handles_disconnected_graph(self):
        blocks = bfs_blocks(6, np.array([[0, 1], [2, 3]]), 2, seed=0)
        assert (blocks >= 0).all()

    def test_exact_sizes_when_divisible(self, grid):
        blocks = bfs_blocks(grid.n_cells, grid.adjacency, 25, seed=0)
        assert sorted(block_sizes(blocks).tolist()) == [25, 25, 25, 25]


class TestGeometricBlocks:
    def test_covers_all(self, grid):
        blocks = geometric_blocks(grid.centroids, 20)
        assert block_sizes(blocks).sum() == 100

    def test_sorts_along_longest_axis(self):
        cent = np.stack([np.arange(10.0), np.zeros(10)], axis=1)
        blocks = geometric_blocks(cent, 5)
        assert blocks.tolist() == [0] * 5 + [1] * 5

    def test_empty(self):
        assert geometric_blocks(np.empty((0, 3)), 4).size == 0


class TestQualityMetrics:
    def test_edge_cut_counts_cross_edges(self):
        labels = np.array([0, 0, 1, 1])
        edges = np.array([[0, 1], [1, 2], [2, 3]])
        assert edge_cut(labels, edges) == 1

    def test_edge_cut_empty(self):
        assert edge_cut(np.array([0, 1]), np.empty((0, 2))) == 0

    def test_balance_perfect(self):
        assert balance(np.array([0, 0, 1, 1])) == 1.0

    def test_balance_skewed(self):
        assert balance(np.array([0, 0, 0, 1])) == pytest.approx(1.5)

    def test_balance_ignores_empty_labels(self):
        # Labels 0 and 5 occur; the gap does not count as empty blocks.
        assert balance(np.array([0, 5])) == 1.0

    def test_block_sizes_rejects_negative(self):
        with pytest.raises(PartitionError):
            block_sizes(np.array([-1, 0]))
