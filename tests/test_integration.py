"""End-to-end integration: mesh -> directions -> DAGs -> schedule -> costs.

Exercises the full pipeline the way the experiments do, across every
generator, and cross-checks module boundaries (schedule validity, cost
sandwiches, block assignment consistency).
"""

import numpy as np
import pytest

from repro.analysis import summarize_schedule
from repro.comm import c2_cost, interprocessor_edges, rounds_cost
from repro.core import average_load_lb, block_assignment
from repro.heuristics import ALGORITHMS
from repro.mesh import MESH_GENERATORS, make_mesh
from repro.partition import block_sizes, partition_mesh_blocks
from repro.sweeps import build_instance, directions_for_mesh


@pytest.mark.slow
class TestFullPipeline:
    @pytest.mark.parametrize("mesh_name", sorted(MESH_GENERATORS))
    def test_pipeline_on_every_mesh(self, mesh_name):
        mesh = make_mesh(mesh_name, target_cells=300, seed=0)
        mesh.validate()
        dirs = directions_for_mesh(mesh.dim, 8 if mesh.dim == 3 else 4)
        inst = build_instance(mesh, dirs)
        inst.validate()
        m = 8
        for algo_name in ("random_delay", "random_delay_priority", "dfds"):
            sched = ALGORITHMS[algo_name](inst, m, seed=0)
            sched.validate()
            summary = summarize_schedule(sched)
            assert summary.makespan >= summary.lower_bound
            assert 0 <= summary.c2 <= summary.c1

    def test_block_pipeline(self):
        mesh = make_mesh("tetonly", target_cells=600, seed=1)
        dirs = directions_for_mesh(3, 8)
        inst = build_instance(mesh, dirs)
        m = 4
        blocks = partition_mesh_blocks(mesh.n_cells, mesh.adjacency, 32, seed=0)
        assert block_sizes(blocks).sum() == mesh.n_cells
        assignment = block_assignment(blocks, m, seed=0)

        per_cell = ALGORITHMS["random_delay_priority"](inst, m, seed=0)
        blocked = ALGORITHMS["random_delay_priority"](
            inst, m, seed=0, assignment=assignment
        )
        blocked.validate()
        # The paper's Fig 2(b) shape: blocking cuts C1 substantially.
        c1_cell = interprocessor_edges(inst, per_cell.assignment)
        c1_block = interprocessor_edges(inst, blocked.assignment)
        assert c1_block < 0.75 * c1_cell

    def test_comm_cost_sandwich_on_real_schedule(self):
        mesh = make_mesh("well_logging", target_cells=400, seed=0)
        inst = build_instance(mesh, directions_for_mesh(3, 8))
        sched = ALGORITHMS["random_delay_priority"](inst, 4, seed=0)
        c2 = c2_cost(sched)
        rc = rounds_cost(sched)
        c1 = interprocessor_edges(inst, sched.assignment)
        assert c2 <= rc <= c1

    def test_headline_bound_small_scale(self):
        """makespan <= 3 nk/m for Algorithm 2 (paper's key observation),
        checked across meshes at m where nk/m dominates the bound."""
        for mesh_name in ("tetonly", "long"):
            mesh = make_mesh(mesh_name, target_cells=500, seed=0)
            inst = build_instance(mesh, directions_for_mesh(3, 8))
            for m in (4, 16):
                sched = ALGORITHMS["random_delay_priority"](inst, m, seed=0)
                assert sched.makespan <= 3 * max(
                    average_load_lb(inst, m), inst.depth()
                )

    def test_schedules_reproducible_across_pipeline(self):
        mesh = make_mesh("prismtet", target_cells=300, seed=2)
        inst = build_instance(mesh, directions_for_mesh(3, 8))
        a = ALGORITHMS["improved_random_delay"](inst, 8, seed=5)
        b = ALGORITHMS["improved_random_delay"](inst, 8, seed=5)
        assert np.array_equal(a.start, b.start)
