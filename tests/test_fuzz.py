"""Tests for the differential fuzzing subsystem (`repro.fuzz`).

The load-bearing assertions:

* the current code base is clean under a sizeable campaign (the fuzzer
  gates regressions, so it must not cry wolf);
* a deliberately broken scheduler — capacity check disabled — is caught
  by the oracle pack, shrunk to a near-minimal case, persisted to the
  corpus as reproducible JSON, and still fails on replay;
* every case family builds, every spec round-trips through JSON, and
  the shrinker's output still violates the original oracle.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core import Schedule, list_schedule, validate_schedule
from repro.core.io import instance_from_jsonable, instance_to_jsonable
from repro.fuzz import (
    CASE_FAMILIES,
    OracleContext,
    build_case,
    check_schedule,
    entry_from_result,
    iter_corpus,
    load_entry,
    proven_ratio_bound,
    random_spec,
    replay_corpus,
    replay_entry,
    run_case,
    run_fuzz,
    run_instance,
    save_entry,
    shrink_case,
    spec_label,
)
from repro.heuristics import ALGORITHMS
from repro.instances import make_instance
from repro.util.errors import InvalidScheduleError, ReproError


def broken_capacity_schedule(inst, m, seed=None, assignment=None):
    """A scheduler with the capacity check disabled: every task starts at
    its DAG level, so tasks sharing a (processor, level) slot collide."""
    if assignment is None:
        assignment = np.arange(inst.n_cells, dtype=np.int64) % m
    return Schedule(
        instance=inst,
        m=m,
        start=inst.task_levels().copy(),
        assignment=np.asarray(assignment, dtype=np.int64),
        meta={"algorithm": "broken_capacity"},
    )


class TestSpecs:
    def test_every_family_builds_and_round_trips(self):
        rng = np.random.default_rng(7)
        for i in range(len(CASE_FAMILIES)):
            spec = random_spec(rng, index=i)
            inst, m = build_case(spec)
            assert inst.n_cells >= 1 and inst.k >= 1 and m >= 1
            # Specs must survive JSON (that is what the corpus stores).
            inst2, m2 = build_case(json.loads(json.dumps(spec)))
            assert m2 == m
            assert inst2.n_cells == inst.n_cells and inst2.k == inst.k
            for g1, g2 in zip(inst.dags, inst2.dags):
                np.testing.assert_array_equal(g1.edges, g2.edges)

    def test_index_cycles_all_families(self):
        rng = np.random.default_rng(0)
        seen = {random_spec(rng, index=i)["family"]
                for i in range(len(CASE_FAMILIES))}
        assert seen == set(CASE_FAMILIES)

    def test_unknown_family_rejected(self):
        with pytest.raises(ReproError, match="unknown fuzz family"):
            build_case({"family": "nope", "seed": 0, "m": 2})

    def test_spec_label_mentions_family_and_seed(self):
        assert "chain" in spec_label({"family": "chain", "seed": 5, "m": 2})


class TestInstanceJson:
    def test_round_trip_exact(self):
        inst = make_instance("fork_join", n=16, k=3, seed=1)
        back = instance_from_jsonable(
            json.loads(json.dumps(instance_to_jsonable(inst)))
        )
        assert back.n_cells == inst.n_cells and back.k == inst.k
        assert back.name == inst.name
        for g1, g2 in zip(inst.dags, back.dags):
            np.testing.assert_array_equal(g1.edges, g2.edges)
        np.testing.assert_array_equal(
            back.cell_graph_edges, inst.cell_graph_edges
        )

    def test_malformed_payload_rejected(self):
        with pytest.raises(ReproError, match="malformed instance payload"):
            instance_from_jsonable({"n_cells": 3})


class TestOraclePack:
    def test_clean_schedule_passes_all_oracles(self):
        inst = make_instance("rotated_chains", n=20, k=4, seed=0)
        sched = ALGORITHMS["random_delay_priority"](inst, 4, seed=0)
        assert check_schedule(sched, algorithm="rdp") == []

    def test_capacity_violation_caught(self):
        inst = make_instance("identical_chains", n=10, k=3, seed=0)
        bad = broken_capacity_schedule(inst, 2)
        violations = check_schedule(bad, algorithm="broken")
        assert any(v.oracle == "feasibility" for v in violations)

    def test_impossibly_fast_schedule_caught_by_lower_bounds(self):
        # Everything at step 0 on distinct slots is impossible; beyond the
        # validator, the lower-bound oracle must flag it independently.
        inst = make_instance("identical_chains", n=8, k=2, seed=0)
        bad = broken_capacity_schedule(inst, 2)
        bad.start = np.zeros(inst.n_tasks, dtype=np.int64)
        names = {v.oracle for v in check_schedule(bad)}
        assert "lower_bounds" in names

    def test_same_processor_split_caught(self):
        # The Schedule representation makes a split impossible, so emulate
        # a broken representation by overriding task_proc.
        inst = make_instance("rotated_chains", n=8, k=2, seed=0)
        sched = ALGORITHMS["fifo"](inst, 2, seed=0)

        class SplitSchedule(Schedule):
            def task_proc(self):
                proc = super().task_proc().copy()
                proc[0] = (proc[0] + 1) % self.m  # move one copy only
                return proc

        bad = SplitSchedule(
            instance=inst, m=2, start=sched.start, assignment=sched.assignment
        )
        violations = check_schedule(bad)
        assert any(v.oracle == "same_processor" for v in violations)

    def test_serial_bound_oracle(self):
        inst = make_instance("identical_chains", n=6, k=2, seed=0)
        sched = ALGORITHMS["fifo"](inst, 2, seed=0)
        slow = Schedule(
            instance=inst,
            m=2,
            start=sched.start + np.arange(inst.n_tasks) * 3,
            assignment=sched.assignment,
        )
        assert any(
            v.oracle == "serial_bound" for v in check_schedule(slow)
        ) or slow.makespan <= inst.n_tasks

    def test_oracle_context_caches_graham_bound(self):
        inst = make_instance("fork_join", n=16, k=2, seed=0)
        ctx = OracleContext(inst, 3)
        assert ctx.graham_lb >= 1
        assert ctx.combined_lb >= max(ctx.avg_load_lb, ctx.copies_lb)


class TestDifferential:
    def test_clean_case_across_registry(self):
        spec = {"family": "chain", "seed": 11, "m": 3,
                "params": {"n": 12, "k": 3, "variant": "rotated"}}
        result = run_case(spec)
        assert result.ok, result.describe()
        assert set(result.makespans) == set(ALGORITHMS)
        assert result.best_makespan >= 1

    def test_broken_scheduler_flagged(self):
        spec = {"family": "chain", "seed": 1, "m": 2,
                "params": {"n": 8, "k": 2, "variant": "identical"}}
        algos = dict(ALGORITHMS, broken_capacity=broken_capacity_schedule)
        result = run_case(spec, algorithms=algos)
        assert not result.ok
        assert {v.algorithm for v in result.violations} == {"broken_capacity"}

    def test_crashing_scheduler_reported_not_raised(self):
        def boom(inst, m, seed=None, assignment=None):
            raise RuntimeError("kaboom")

        result = run_case(
            {"family": "edgeless", "seed": 0, "m": 2, "params": {"n": 4, "k": 2}},
            algorithms={"boom": boom},
        )
        assert [v.oracle for v in result.violations] == ["crash"]
        assert "kaboom" in result.violations[0].message

    def test_nondeterministic_scheduler_flagged(self):
        calls = {"n": 0}

        def flaky(inst, m, seed=None, assignment=None):
            calls["n"] += 1
            rng = np.random.default_rng(calls["n"])  # ignores the seed
            return ALGORITHMS["random_delay_priority"](inst, m, seed=rng)

        result = run_case(
            {"family": "chain", "seed": 4, "m": 2,
             "params": {"n": 10, "k": 3, "variant": "identical"}},
            algorithms={"flaky": flaky},
        )
        assert any(v.oracle == "determinism" for v in result.violations)

    def test_proven_ratio_bounds_exist_only_for_provable(self):
        inst = make_instance("rotated_chains", n=16, k=4, seed=0)
        assert proven_ratio_bound("random_delay", inst, 4) > 1
        assert proven_ratio_bound("improved_random_delay", inst, 4) > 1
        assert proven_ratio_bound("fifo", inst, 4) is None

    def test_theory_bound_violation_detected(self):
        # A fake "provable" algorithm that pads its makespan far beyond
        # the Theorem 2 ratio must trip the cross-engine check.
        def padded(inst, m, seed=None, assignment=None):
            s = ALGORITHMS["random_delay_priority"](inst, m, seed=seed)
            pad = 2000 + int(np.arange(inst.n_tasks).sum())
            return Schedule(
                instance=inst, m=m,
                start=s.start + np.arange(inst.n_tasks) * 2,
                assignment=s.assignment, meta=dict(s.meta),
            )

        algos = dict(ALGORITHMS)
        algos["random_delay_priority"] = padded
        result = run_case(
            {"family": "edgeless", "seed": 9, "m": 2, "params": {"n": 12, "k": 2}},
            algorithms=algos,
        )
        oracles = {v.oracle for v in result.violations}
        assert "theory_bound" in oracles or "serial_bound" in oracles


class TestShrinker:
    def test_shrinks_capacity_bug_to_minimal_case(self):
        inst = make_instance("rotated_chains", n=24, k=4, seed=3)

        def fails(candidate, m):
            bad = broken_capacity_schedule(candidate, m)
            try:
                validate_schedule(bad)
            except InvalidScheduleError:
                return True
            return False

        assert fails(inst, 4)
        small, small_m, evals = shrink_case(inst, 4, fails, max_evals=400)
        assert fails(small, small_m)  # violation preserved
        assert small.n_tasks <= 4  # near-minimal: 2 tasks on 1 proc suffice
        assert small_m == 1
        assert evals > 0

    def test_shrink_respects_budget(self):
        inst = make_instance("rotated_chains", n=24, k=4, seed=3)
        count = {"n": 0}

        def fails(candidate, m):
            count["n"] += 1
            return True  # everything "fails": worst case for the budget

        _, _, evals = shrink_case(inst, 4, fails, max_evals=25)
        assert evals <= 25
        assert count["n"] <= 25

    def test_never_returns_nonfailing_case(self):
        inst = make_instance("fork_join", n=16, k=2, seed=0)

        def fails(candidate, m):
            # Bug needs at least 10 cells and 2 directions to manifest.
            return candidate.n_cells >= 10 and candidate.k >= 2

        small, small_m, _ = shrink_case(inst, 3, fails, max_evals=300)
        assert fails(small, small_m)
        assert small.n_cells >= 10 and small.k >= 2


class TestCorpusAndCampaign:
    def test_broken_scheduler_end_to_end(self, tmp_path):
        """Acceptance path: disabled capacity check -> caught, shrunk,
        persisted as JSON, replayable, and idempotent on re-fuzz."""
        corpus = tmp_path / "corpus"
        algos = {"broken_capacity": broken_capacity_schedule}
        report = run_fuzz(
            n_seeds=4, seed=3, corpus_dir=corpus, algorithms=algos
        )
        assert not report.ok
        assert report.corpus_paths
        paths = iter_corpus(corpus)
        assert paths == sorted(report.corpus_paths)

        entry = load_entry(paths[0])
        assert entry["format_version"] == 1
        assert entry["oracle"] == "feasibility"
        assert "shrunk" in entry  # the shrinker produced a witness
        shrunk_n = entry["shrunk"]["instance"]["n_cells"]
        assert shrunk_n <= 4

        # Replay still fails on the broken scheduler...
        replay = replay_corpus(corpus, algorithms=algos)
        assert not replay.ok and replay.cases_run == len(paths)
        # ...and is clean once the "fix" (real registry) lands.
        fixed = replay_corpus(corpus)
        assert fixed.ok and fixed.cases_run == len(paths)

        # Re-running the same campaign adds no new corpus files.
        report2 = run_fuzz(
            n_seeds=4, seed=3, corpus_dir=corpus, algorithms=algos
        )
        assert sorted(report2.corpus_paths) == paths
        assert iter_corpus(corpus) == paths

    def test_campaign_clean_on_current_code(self):
        report = run_fuzz(n_seeds=20, seed=123)
        assert report.ok, "\n".join(r.describe() for r in report.failures)
        assert report.cases_run == 20

    def test_time_budget_stops_campaign(self):
        report = run_fuzz(time_budget=0.0, seed=0)
        assert report.cases_run == 0

    def test_entry_from_clean_result_rejected(self):
        result = run_case(
            {"family": "edgeless", "seed": 0, "m": 2, "params": {"n": 4, "k": 2}}
        )
        with pytest.raises(ReproError, match="clean case"):
            entry_from_result(result)

    def test_replay_entry_without_shrunk_uses_spec(self):
        spec = {"family": "edgeless", "seed": 5, "m": 2,
                "params": {"n": 6, "k": 2}}
        entry = {
            "format_version": 1, "spec": spec, "oracle": "feasibility",
            "algorithm": "broken", "violations": [], "makespans": {},
        }
        result = replay_entry(entry)  # current registry: must be clean
        assert result.ok

    def test_corrupt_corpus_entry_rejected(self, tmp_path):
        bad = tmp_path / "x.json"
        bad.write_text("{not json")
        with pytest.raises(ReproError, match="corrupt corpus entry"):
            load_entry(bad)
        bad.write_text(json.dumps({"format_version": 99}))
        with pytest.raises(ReproError, match="format version"):
            load_entry(bad)


@pytest.mark.fuzz_replay
class TestFuzzCampaignLong:
    """The acceptance-scale campaign; deselected from tier-1 by the
    ``fuzz_replay`` marker (run with ``pytest -m fuzz_replay``)."""

    def test_200_seed_campaign_clean(self, tmp_path):
        report = run_fuzz(n_seeds=200, seed=2026, corpus_dir=tmp_path / "c")
        assert report.ok, "\n".join(r.describe() for r in report.failures)
        assert report.cases_run == 200
        assert not report.corpus_paths


class TestCliFuzz:
    def run(self, capsys, *argv):
        from repro.cli import main

        code = main(list(argv))
        out = capsys.readouterr()
        return code, out.out

    def test_fuzz_command_clean(self, capsys, tmp_path):
        code, out = self.run(
            capsys, "fuzz", "--seeds", "8", "--quiet",
            "--corpus", str(tmp_path / "corpus"),
        )
        assert code == 0
        assert "clean" in out

    def test_fuzz_time_budget_mode(self, capsys, tmp_path):
        code, out = self.run(
            capsys, "fuzz", "--time-budget", "1", "--quiet", "--no-corpus",
        )
        assert code == 0
        assert "case(s)" in out

    def test_fuzz_replay_empty_corpus(self, capsys, tmp_path):
        code, out = self.run(
            capsys, "fuzz", "--replay", "--corpus", str(tmp_path / "empty"),
        )
        assert code == 0
        assert "no corpus entries" in out

    def test_fuzz_restricted_algorithms(self, capsys, tmp_path):
        code, out = self.run(
            capsys, "fuzz", "--seeds", "4", "--quiet", "--no-corpus",
            "--algorithms", "fifo", "random_delay",
        )
        assert code == 0
