"""Unit tests for the ``repro.obs`` tracing & metrics plane.

Covers the tracer (nesting/reentrancy, ring-buffer bounds, the disabled
no-op path, exception flush), the metrics registry (gating, merge
semantics), the cross-process payload round trip (success and exception
paths, through a real pickle), deterministic multi-list merge, and the
three exporters including Chrome trace-event schema validation.  The
multiprocess end-to-end lives in ``test_obs_grid.py``.
"""

from __future__ import annotations

import json
import os
import pickle
import threading

import pytest

from repro import obs
from repro.obs import tracer as tracer_mod


@pytest.fixture
def traced_env():
    """Tracing on, buffers empty; restores prior state afterwards."""
    was = obs.tracing_enabled()
    obs.reset()
    obs.enable_tracing()
    yield obs
    obs.reset()
    if not was:
        obs.disable_tracing()


@pytest.fixture
def untraced_env():
    """Tracing off, buffers empty; restores prior state afterwards."""
    was = obs.tracing_enabled()
    obs.disable_tracing()
    obs.reset()
    yield obs
    obs.reset()
    if was:
        obs.enable_tracing()


def _mk_span(name="s", pid=1, stream=1, start=0.0, dur=1.0, depth=0,
             cat="repro", args=None):
    return obs.Span(name, cat, start, dur, pid, stream, depth, args)


# ---------------------------------------------------------------------------
# Tracer: nesting, reentrancy, buffer, disabled path
# ---------------------------------------------------------------------------


class TestSpanNesting:
    def test_nested_spans_record_depths_and_close_order(self, traced_env):
        with obs.span("outer", cat="t"):
            with obs.span("inner", cat="t"):
                pass
        spans = obs.drain_spans()
        assert [s.name for s in spans] == ["inner", "outer"]
        assert [s.depth for s in spans] == [1, 0]
        assert all(s.pid == os.getpid() for s in spans)
        assert all(s.stream == threading.get_ident() for s in spans)
        # Inner is contained in outer on the shared timeline.
        inner, outer = spans
        assert outer.start <= inner.start
        assert inner.start + inner.dur <= outer.start + outer.dur + 1e-9

    def test_reentrant_recursion_tracks_depth(self, traced_env):
        @obs.traced("fib", cat="t")
        def fib(n):
            return n if n < 2 else fib(n - 1) + fib(n - 2)

        assert fib(4) == 3
        spans = obs.drain_spans()
        assert all(s.name == "fib" for s in spans)
        assert max(s.depth for s in spans) >= 2
        assert min(s.depth for s in spans) == 0

    def test_depth_recovers_after_exception(self, traced_env):
        with pytest.raises(RuntimeError):
            with obs.span("boom"):
                raise RuntimeError
        with obs.span("after"):
            pass
        spans = {s.name: s for s in obs.drain_spans()}
        # The interrupted span still landed in the buffer (flush-on-
        # exception contract), and depth unwound to 0 for the next span.
        assert spans["boom"].depth == 0
        assert spans["after"].depth == 0

    def test_args_fn_evaluated_lazily_at_close(self, traced_env):
        calls = []
        with obs.span("s", args_fn=lambda: calls.append(1) or {"k": 7}):
            assert calls == []  # not yet — only at span close
        (s,) = obs.drain_spans()
        assert calls == [1]
        assert s.args == {"k": 7}

    def test_traced_decorator_defaults_to_qualname(self, traced_env):
        @obs.traced()
        def my_fn():
            return 42

        assert my_fn() == 42
        (s,) = obs.drain_spans()
        assert "my_fn" in s.name
        assert my_fn.__name__ == "my_fn"  # functools.wraps preserved


class TestDisabledPath:
    def test_span_is_shared_noop_and_records_nothing(self, untraced_env):
        h1 = obs.span("a")
        h2 = obs.span("b", cat="x", args_fn=lambda: {"never": True})
        assert h1 is h2  # one shared singleton, zero allocation
        with h1:
            pass
        assert obs.drain_spans() == []

    def test_args_fn_never_called_when_disabled(self, untraced_env):
        calls = []
        with obs.span("s", args_fn=lambda: calls.append(1) or {}):
            pass
        assert calls == []

    def test_traced_function_still_runs(self, untraced_env):
        @obs.traced("t")
        def f(x):
            return x + 1

        assert f(1) == 2
        assert obs.drain_spans() == []

    def test_metrics_are_noops_when_disabled(self, untraced_env):
        obs.inc("c", 5)
        obs.gauge("g", 1.0)
        obs.gauge_max("h", 2.0)
        snap = obs.metrics_snapshot()
        assert snap == {"counters": {}, "gauges": {}}

    def test_export_payload_is_none_when_disabled(self, untraced_env):
        assert obs.export_payload() is None

    def test_env_var_controls_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE", "1")
        assert tracer_mod._env_enabled()
        monkeypatch.setenv("REPRO_TRACE", "0")
        assert not tracer_mod._env_enabled()
        monkeypatch.delenv("REPRO_TRACE")
        assert not tracer_mod._env_enabled()


class TestRingBuffer:
    def test_buffer_keeps_only_the_tail(self, traced_env):
        obs.enable_tracing(buffer_spans=4)
        try:
            for i in range(10):
                with obs.span(f"s{i}"):
                    pass
            names = [s.name for s in obs.drain_spans()]
            assert names == ["s6", "s7", "s8", "s9"]
        finally:
            obs.enable_tracing(buffer_spans=obs.DEFAULT_BUFFER_SPANS)

    def test_peek_does_not_drain(self, traced_env):
        with obs.span("s"):
            pass
        assert len(obs.peek_spans()) == 1
        assert len(obs.peek_spans()) == 1
        assert len(obs.drain_spans()) == 1
        assert obs.peek_spans() == []

    def test_env_buffer_parse(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_BUFFER", "128")
        assert tracer_mod._env_buffer() == 128
        monkeypatch.setenv("REPRO_TRACE_BUFFER", "not-a-number")
        assert tracer_mod._env_buffer() == obs.DEFAULT_BUFFER_SPANS
        monkeypatch.setenv("REPRO_TRACE_BUFFER", "-5")
        assert tracer_mod._env_buffer() == obs.DEFAULT_BUFFER_SPANS


# ---------------------------------------------------------------------------
# Deterministic merge
# ---------------------------------------------------------------------------


class TestMerge:
    def test_merge_is_independent_of_list_order(self):
        a = [_mk_span("a1", pid=2, start=1.0), _mk_span("a2", pid=2, start=3.0)]
        b = [_mk_span("b1", pid=1, start=2.0), _mk_span("b2", pid=1, start=0.5)]
        fwd = obs.merge_spans([a, b])
        rev = obs.merge_spans([b, a])
        assert fwd == rev
        assert [s.name for s in fwd] == ["b2", "b1", "a1", "a2"]

    def test_sort_key_orders_pid_stream_start_depth(self):
        spans = [
            _mk_span("d", pid=2, stream=1, start=0.0),
            _mk_span("c", pid=1, stream=2, start=0.0),
            _mk_span("b", pid=1, stream=1, start=1.0),
            _mk_span("a", pid=1, stream=1, start=0.0, depth=1),
            _mk_span("z", pid=1, stream=1, start=0.0, depth=0),
        ]
        merged = obs.merge_spans([spans])
        assert [s.name for s in merged] == ["z", "a", "b", "c", "d"]

    def test_stable_for_identical_keys(self):
        s1 = _mk_span("first")
        s2 = _mk_span("second")
        assert obs.span_sort_key(s1) == obs.span_sort_key(s2)
        assert [s.name for s in obs.merge_spans([[s1, s2]])] == [
            "first", "second"]


# ---------------------------------------------------------------------------
# Metrics registry
# ---------------------------------------------------------------------------


class TestMetrics:
    def test_counters_accumulate_and_drain(self, traced_env):
        obs.inc("c")
        obs.inc("c", 4)
        snap = obs.drain_metrics()
        assert snap["counters"] == {"c": 5}
        assert obs.metrics_snapshot() == {"counters": {}, "gauges": {}}

    def test_gauge_last_write_vs_high_water(self, traced_env):
        obs.gauge("g", 3.0)
        obs.gauge("g", 1.0)
        obs.gauge_max("h", 3.0)
        obs.gauge_max("h", 1.0)
        snap = obs.metrics_snapshot()
        assert snap["gauges"]["g"] == 1.0
        assert snap["gauges"]["h"] == 3.0

    def test_ingest_adds_counters_and_maxes_gauges(self, traced_env):
        obs.inc("c", 2)
        obs.gauge_max("g", 5.0)
        obs.ingest_metrics({"counters": {"c": 3}, "gauges": {"g": 4.0}})
        obs.ingest_metrics({"counters": {"c": 1}, "gauges": {"g": 9.0}})
        snap = obs.metrics_snapshot()
        assert snap["counters"]["c"] == 6
        assert snap["gauges"]["g"] == 9.0

    def test_merge_metrics_is_order_independent(self):
        s1 = {"counters": {"c": 1}, "gauges": {"g": 2.0}}
        s2 = {"counters": {"c": 4, "d": 1}, "gauges": {"g": 1.0, "h": 7.0}}
        fwd = obs.merge_metrics([s1, s2])
        rev = obs.merge_metrics([s2, s1])
        assert fwd == rev
        assert fwd == {"counters": {"c": 5, "d": 1},
                       "gauges": {"g": 2.0, "h": 7.0}}


# ---------------------------------------------------------------------------
# Cross-process payload round trip (through a real pickle)
# ---------------------------------------------------------------------------


class TestPayload:
    def test_export_ingest_round_trip_via_pickle(self, traced_env):
        with obs.span("work", cat="t", args_fn=lambda: {"n": 3}):
            pass
        obs.inc("jobs", 3)
        payload = obs.export_payload()
        assert payload is not None and payload["pid"] == os.getpid()
        # Export drained the local buffers.
        assert obs.peek_spans() == []
        wire = pickle.loads(pickle.dumps(payload))
        obs.ingest_payload(wire)
        spans = obs.drain_spans()
        assert [s.name for s in spans] == ["work"]
        assert spans[0].args == {"n": 3}
        assert obs.drain_metrics()["counters"] == {"jobs": 3}

    def test_ingest_none_is_noop(self, traced_env):
        obs.ingest_payload(None)
        assert obs.drain_spans() == []

    def test_exception_carries_payload_through_pickle(self, traced_env):
        with obs.span("doomed"):
            pass
        exc = RuntimeError("chunk failed")
        obs.attach_payload_to_exception(exc)
        # BaseException.__reduce__ preserves __dict__, so the payload
        # survives the pool's pickle round trip.
        wire_exc = pickle.loads(pickle.dumps(exc))
        assert obs.recover_payload_from_exception(wire_exc)
        assert [s.name for s in obs.drain_spans()] == ["doomed"]
        # Removed from the exception: a retry cannot double-ingest.
        assert not obs.recover_payload_from_exception(wire_exc)

    def test_attach_is_noop_when_disabled(self, untraced_env):
        exc = RuntimeError("x")
        obs.attach_payload_to_exception(exc)
        assert not hasattr(exc, "obs_payload")
        assert not obs.recover_payload_from_exception(exc)


# ---------------------------------------------------------------------------
# Exporters
# ---------------------------------------------------------------------------


class TestChromeExport:
    def test_event_structure_and_units(self):
        spans = [
            _mk_span("task", pid=7, stream=11, start=1.5, dur=0.25,
                     args={"m": 8}),
            _mk_span("task", pid=9, stream=12, start=2.0, dur=0.5),
        ]
        payload = obs.chrome_trace(spans, metrics={"counters": {"c": 1}})
        assert obs.validate_chrome_trace(payload) == []
        meta = [e for e in payload["traceEvents"] if e["ph"] == "M"]
        complete = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        # One process_name label per pid; min pid is the driver.
        assert {e["pid"] for e in meta} == {7, 9}
        labels = {e["pid"]: e["args"]["name"] for e in meta}
        assert "driver" in labels[7] and "worker" in labels[9]
        ev = complete[0]
        assert ev["ts"] == pytest.approx(1.5e6)  # seconds -> microseconds
        assert ev["dur"] == pytest.approx(0.25e6)
        assert ev["args"] == {"m": 8}
        assert payload["otherData"]["metrics"] == {"counters": {"c": 1}}

    def test_validator_catches_broken_payloads(self):
        assert obs.validate_chrome_trace([]) != []
        assert obs.validate_chrome_trace({}) != []
        assert obs.validate_chrome_trace({"traceEvents": []}) != []
        bad_ph = {"traceEvents": [{"name": "x", "ph": "B", "pid": 1, "tid": 1}]}
        assert any("ph" in p for p in obs.validate_chrome_trace(bad_ph))
        neg = {"traceEvents": [
            {"name": "x", "ph": "X", "pid": 1, "tid": 1, "ts": -1, "dur": 0}]}
        assert any("ts" in p for p in obs.validate_chrome_trace(neg))
        meta_only = {"traceEvents": [
            {"name": "process_name", "ph": "M", "pid": 1, "tid": 0}]}
        assert any("complete" in p for p in obs.validate_chrome_trace(meta_only))

    def test_write_chrome_trace_is_loadable_json(self, tmp_path):
        path = tmp_path / "trace.json"
        spans = [_mk_span("a"), _mk_span("b", start=2.0)]
        written = obs.write_chrome_trace(str(path), spans)
        loaded = json.loads(path.read_text())
        assert loaded == written
        assert obs.validate_chrome_trace(loaded) == []

    def test_write_refuses_empty_trace(self, tmp_path):
        with pytest.raises(ValueError, match="invalid chrome trace"):
            obs.write_chrome_trace(str(tmp_path / "empty.json"), [])


class TestOtherExports:
    def test_flat_json_round_trips_every_field(self):
        s = _mk_span("n", pid=3, stream=4, start=1.0, dur=2.0, depth=1,
                     cat="c", args={"k": "v"})
        payload = obs.flat_json([s], metrics={"counters": {"x": 1}})
        assert payload["spans"] == [{
            "name": "n", "cat": "c", "start": 1.0, "dur": 2.0,
            "pid": 3, "stream": 4, "depth": 1, "args": {"k": "v"},
        }]
        assert payload["metrics"] == {"counters": {"x": 1}}
        json.dumps(payload)  # must be serialisable as-is

    def test_summary_text_table_and_metrics(self):
        spans = [_mk_span("hot", dur=0.010)] * 3 + [_mk_span("cold", dur=0.001)]
        text = obs.summary_text(
            spans,
            metrics={"counters": {"c": 2}, "gauges": {"g": 1.5}},
            top=10,
        )
        lines = text.splitlines()
        assert "span" in lines[0] and "p95_ms" in lines[0]
        # Sorted by total time: hot (30ms) above cold (1ms).
        assert lines[1].startswith("hot") and "3" in lines[1]
        assert lines[2].startswith("cold")
        assert "c = 2" in text and "g = 1.5" in text

    def test_summary_truncates_to_top_n(self):
        spans = [_mk_span(f"s{i}") for i in range(8)]
        text = obs.summary_text(spans, top=3)
        assert "... 5 more span names" in text
