"""Tests for the KBA structured-grid scheduler."""

import numpy as np
import pytest

from repro.core import average_load_lb
from repro.heuristics import kba_assignment, kba_schedule
from repro.mesh import Mesh
from repro.sweeps import build_instance, circle_directions, level_symmetric
from repro.util.errors import InvalidScheduleError


class TestKbaAssignment:
    def test_2d_columns(self):
        mesh = Mesh.structured_grid((4, 3))
        a = kba_assignment(mesh.cell_coords, (2, 1))
        # x in {0,1} -> proc 0; x in {2,3} -> proc 1; independent of y.
        for cid, (x, _y) in enumerate(mesh.cell_coords):
            assert a[cid] == (0 if x < 2 else 1)

    def test_3d_columns_ignore_z(self):
        mesh = Mesh.structured_grid((2, 2, 3))
        a = kba_assignment(mesh.cell_coords, (2, 2))
        for cid, (x, y, _z) in enumerate(mesh.cell_coords):
            assert a[cid] == x * 2 + y

    def test_uneven_split(self):
        mesh = Mesh.structured_grid((5, 1))
        a = kba_assignment(mesh.cell_coords, (2, 1))
        assert sorted(np.bincount(a).tolist()) == [2, 3]

    def test_rejects_2d_with_y_procs(self):
        mesh = Mesh.structured_grid((4, 4))
        with pytest.raises(InvalidScheduleError, match="px, 1"):
            kba_assignment(mesh.cell_coords, (2, 2))

    def test_rejects_bad_grid(self):
        mesh = Mesh.structured_grid((4, 4))
        with pytest.raises(InvalidScheduleError, match="positive"):
            kba_assignment(mesh.cell_coords, (0, 1))

    def test_rejects_bad_coords(self):
        with pytest.raises(InvalidScheduleError, match="cell_coords"):
            kba_assignment(np.zeros((5, 4)), (2, 2))


class TestKbaSchedule:
    def test_feasible_2d(self):
        mesh = Mesh.structured_grid((8, 8))
        inst = build_instance(mesh, circle_directions(4, offset=0.3))
        s = kba_schedule(inst, mesh.cell_coords, (4, 1))
        s.validate()
        assert s.meta["algorithm"] == "kba"

    def test_feasible_3d(self):
        mesh = Mesh.structured_grid((4, 4, 4))
        inst = build_instance(mesh, level_symmetric(2))
        s = kba_schedule(inst, mesh.cell_coords, (2, 2))
        s.validate()

    def test_kba_near_optimal_on_regular_grid(self):
        """KBA's pipelining should land within ~2.5x of nk/m on a regular
        grid — the regime where it is known to be essentially optimal."""
        mesh = Mesh.structured_grid((12, 12, 4))
        inst = build_instance(mesh, level_symmetric(2))
        m = 16
        s = kba_schedule(inst, mesh.cell_coords, (4, 4))
        s.validate()
        assert s.makespan <= 2.5 * average_load_lb(inst, m)
