"""Tests for the non-geometric instance families."""

import numpy as np
import pytest

from repro.core import (
    average_load_lb,
    combined_lower_bound,
    critical_path_lb,
    random_delay_priority_schedule,
)
from repro.heuristics import ALGORITHMS
from repro.instances import (
    INSTANCE_FAMILIES,
    fork_join,
    identical_chains,
    make_instance,
    opposing_chains,
    random_layered,
    rotated_chains,
    wide_shallow,
)
from repro.util.errors import ReproError


class TestStructure:
    def test_identical_chains_depth(self):
        inst = identical_chains(10, 4)
        assert inst.depth() == 10
        assert inst.n_tasks == 40
        # Every direction has the same edges.
        for g in inst.dags[1:]:
            assert np.array_equal(g.edges, inst.dags[0].edges)

    def test_rotated_chains_distinct_starts(self):
        inst = rotated_chains(12, 4)
        starts = [int(g.roots()[0]) for g in inst.dags]
        assert len(set(starts)) == 4

    def test_opposing_chains_alternate(self):
        inst = opposing_chains(6, 4)
        assert inst.dags[0].level_of()[0] == 0
        assert inst.dags[1].level_of()[0] == 5

    def test_fork_join_shape(self):
        inst = fork_join(3, 4, 2)
        assert inst.n_cells == 3 * 5 + 1
        g = inst.dags[0]
        assert g.num_levels() == 2 * 3 + 1  # src, fan alternating, final join

    def test_wide_shallow_depth_two(self):
        inst = wide_shallow(40, 3, seed=0)
        assert inst.depth() <= 2

    def test_random_layered_within_layer_bound(self):
        inst = random_layered(30, 2, 5, seed=0)
        for g in inst.dags:
            assert g.num_levels() <= 5

    def test_all_families_valid(self):
        for name in INSTANCE_FAMILIES:
            inst = make_instance(name, n=30, k=4, seed=1)
            inst.validate()
            assert inst.n_cells >= 2

    def test_errors(self):
        with pytest.raises(ReproError, match="cells"):
            identical_chains(1, 2)
        with pytest.raises(ReproError, match="direction"):
            rotated_chains(5, 0)
        with pytest.raises(ReproError, match="n_layers"):
            random_layered(5, 1, 0)
        with pytest.raises(ReproError, match="unknown family"):
            make_instance("nope")


class TestSchedulingBehaviour:
    @pytest.mark.parametrize("family", sorted(INSTANCE_FAMILIES))
    def test_all_algorithms_feasible(self, family):
        inst = make_instance(family, n=24, k=3, seed=0)
        for name, algo in ALGORITHMS.items():
            algo(inst, 3, seed=0).validate()

    def test_identical_chains_is_contention_bound(self):
        """All copies of the tail cell are ready simultaneously but share
        one processor: OPT >= n + k - 1."""
        n, k, m = 20, 6, 6
        inst = identical_chains(n, k)
        assert critical_path_lb(inst) == n
        s = random_delay_priority_schedule(inst, m, seed=0)
        assert s.makespan >= n + k - 1

    def test_rotated_chains_pipeline_well(self):
        """Staggered fronts: Algorithm 2 lands within 2x of nk/m."""
        n, k, m = 60, 6, 6
        inst = rotated_chains(n, k)
        best = min(
            random_delay_priority_schedule(inst, m, seed=s).makespan
            for s in range(3)
        )
        assert best <= 2 * max(average_load_lb(inst, m), n)

    def test_wide_shallow_near_perfect(self):
        inst = wide_shallow(64, 4, seed=0)
        m = 8
        s = random_delay_priority_schedule(inst, m, seed=0)
        assert s.makespan <= 2.2 * combined_lower_bound(inst, m)


class TestTreeAndButterfly:
    def test_tree_counts(self):
        from repro.instances import tree_sweeps

        inst = tree_sweeps(3, 2, branching=2)
        assert inst.n_cells == 15  # complete binary tree, depth 3
        # Out-tree (dir 0): root is the single source.
        assert list(inst.dags[0].roots()) == [0]
        # In-tree (dir 1): root is the single sink.
        assert list(inst.dags[1].leaves()) == [0]

    def test_tree_depth_is_tree_depth(self):
        from repro.instances import tree_sweeps

        inst = tree_sweeps(4, 1)
        assert inst.dags[0].num_levels() == 5

    def test_tree_errors(self):
        import pytest as _pytest

        from repro.instances import tree_sweeps
        from repro.util.errors import ReproError

        with _pytest.raises(ReproError):
            tree_sweeps(0, 2)
        with _pytest.raises(ReproError):
            tree_sweeps(2, 2, branching=1)

    def test_butterfly_counts(self):
        from repro.instances import butterfly

        inst = butterfly(3, 2)
        assert inst.n_cells == 8 * 4  # 2^3 wide, 4 ranks
        g = inst.dags[0]
        assert g.num_levels() == 4
        # Every non-final node has exactly 2 successors.
        assert g.num_edges == 2 * 8 * 3

    def test_butterfly_full_mixing(self):
        """Every rank-0 node reaches every last-rank node (FFT mixing)."""
        from repro.instances import butterfly

        inst = butterfly(3, 1)
        g = inst.dags[0]
        reach = g.reachable_from(0)
        last_rank = set(range(8 * 3, 8 * 4))
        assert last_rank <= set(reach.tolist())

    def test_butterfly_errors(self):
        import pytest as _pytest

        from repro.instances import butterfly
        from repro.util.errors import ReproError

        with _pytest.raises(ReproError):
            butterfly(0, 2)
