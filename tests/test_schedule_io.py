"""Tests for schedule persistence."""

import numpy as np
import pytest

from repro.core import (
    load_schedule,
    random_delay_priority_schedule,
    save_schedule,
)
from repro.util.errors import ReproError


class TestRoundtrip:
    def test_exact_roundtrip(self, tmp_path, tet_instance):
        sched = random_delay_priority_schedule(tet_instance, 4, seed=0)
        path = tmp_path / "s.npz"
        save_schedule(sched, path)
        loaded = load_schedule(path)
        assert loaded.m == 4
        assert np.array_equal(loaded.start, sched.start)
        assert np.array_equal(loaded.assignment, sched.assignment)
        assert loaded.makespan == sched.makespan
        assert loaded.instance.n_cells == tet_instance.n_cells
        assert loaded.instance.k == tet_instance.k
        assert loaded.meta["algorithm"] == "random_delay_priority"

    def test_meta_delays_survive_as_lists(self, tmp_path, chain_instance):
        sched = random_delay_priority_schedule(chain_instance, 2, seed=3)
        path = tmp_path / "s.npz"
        save_schedule(sched, path)
        loaded = load_schedule(path)
        assert loaded.meta["delays"] == sched.meta["delays"].tolist()

    def test_dag_structure_preserved(self, tmp_path, chain_instance):
        sched = random_delay_priority_schedule(chain_instance, 2, seed=0)
        path = tmp_path / "s.npz"
        save_schedule(sched, path)
        loaded = load_schedule(path)
        for g_in, g_out in zip(chain_instance.dags, loaded.instance.dags):
            assert np.array_equal(g_in.edges, g_out.edges)

    def test_load_validates(self, tmp_path, chain_instance):
        """A tampered file fails the feasibility check on load."""
        sched = random_delay_priority_schedule(chain_instance, 2, seed=0)
        sched.start[:] = 0  # precedence + capacity violations
        path = tmp_path / "bad.npz"
        save_schedule(sched, path)
        with pytest.raises(Exception):
            load_schedule(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(ReproError, match="not found"):
            load_schedule(tmp_path / "nope.npz")
