"""Tests for the util layer (rng, errors, timing)."""

import time

import numpy as np
import pytest

from repro.util import (
    InvalidInstanceError,
    InvalidScheduleError,
    MeshError,
    PartitionError,
    ReproError,
    Timer,
    as_rng,
    spawn_rngs,
)


class TestRng:
    def test_none_gives_generator(self):
        assert isinstance(as_rng(None), np.random.Generator)

    def test_int_seed_deterministic(self):
        assert as_rng(5).integers(1000) == as_rng(5).integers(1000)

    def test_generator_passthrough(self):
        g = np.random.default_rng(0)
        assert as_rng(g) is g

    def test_seed_sequence_accepted(self):
        ss = np.random.SeedSequence(42)
        assert isinstance(as_rng(ss), np.random.Generator)

    def test_spawn_independent_streams(self):
        a, b = spawn_rngs(0, 2)
        assert a.integers(10**9) != b.integers(10**9)

    def test_spawn_deterministic(self):
        x = [g.integers(10**9) for g in spawn_rngs(7, 3)]
        y = [g.integers(10**9) for g in spawn_rngs(7, 3)]
        assert x == y

    def test_spawn_from_generator(self):
        children = spawn_rngs(np.random.default_rng(0), 2)
        assert len(children) == 2
        assert children[0].integers(10**9) != children[1].integers(10**9)

    def test_spawn_zero(self):
        assert spawn_rngs(0, 0) == []

    def test_spawn_negative_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            spawn_rngs(0, -1)


class TestErrors:
    @pytest.mark.parametrize(
        "exc",
        [InvalidInstanceError, InvalidScheduleError, PartitionError, MeshError],
    )
    def test_hierarchy(self, exc):
        assert issubclass(exc, ReproError)
        with pytest.raises(ReproError):
            raise exc("boom")


class TestTimer:
    def test_measures_elapsed(self):
        with Timer() as t:
            time.sleep(0.01)
        assert t.elapsed >= 0.009

    def test_reusable(self):
        t = Timer()
        with t:
            pass
        first = t.elapsed
        with t:
            time.sleep(0.01)
        assert t.elapsed >= first
