"""Tests for the lower-bound calculators."""

import pytest

from repro.core import (
    Dag,
    SweepInstance,
    average_load_lb,
    combined_lower_bound,
    copies_lb,
    critical_path_lb,
    graham_relaxation_lb,
    random_delay_priority_schedule,
)
from repro.heuristics import fifo_schedule


class TestFormulas:
    def test_average_load_rounds_up(self, chain_instance):
        # 8 tasks over 3 processors -> ceil(8/3) = 3.
        assert average_load_lb(chain_instance, 3) == 3

    def test_average_load_exact_division(self, chain_instance):
        assert average_load_lb(chain_instance, 4) == 2

    def test_copies_lb_is_k(self, chain_instance):
        assert copies_lb(chain_instance) == 2

    def test_critical_path_chain(self, chain_instance):
        assert critical_path_lb(chain_instance) == 4

    def test_combined_takes_max(self, chain_instance):
        # m=1: avg load 8 dominates.
        assert combined_lower_bound(chain_instance, 1) == 8
        # m=8: critical path 4 dominates.
        assert combined_lower_bound(chain_instance, 8) == 4

    def test_empty_instance(self):
        inst = SweepInstance(0, [Dag(0, [])])
        assert average_load_lb(inst, 4) == 0
        assert copies_lb(inst) == 0
        assert critical_path_lb(inst) == 0
        assert graham_relaxation_lb(inst, 4) == 0


class TestSoundness:
    """Every lower bound must be <= the makespan of any feasible schedule."""

    @pytest.mark.parametrize("m", [1, 4, 16])
    def test_bounds_below_feasible_makespans(self, tet_instance, m):
        lb = combined_lower_bound(tet_instance, m)
        glb = graham_relaxation_lb(tet_instance, m)
        for algo in (random_delay_priority_schedule, fifo_schedule):
            s = algo(tet_instance, m, seed=0)
            assert lb <= s.makespan
            assert glb <= s.makespan

    def test_graham_lb_at_least_trivial_over_two(self, tet_instance):
        m = 4
        glb = graham_relaxation_lb(tet_instance, m)
        assert glb >= average_load_lb(tet_instance, m) // 2
