"""Tests for instance structure statistics and repository-tree hygiene."""

import re
from pathlib import Path

import numpy as np

from repro.analysis import (
    direction_stats,
    instance_stats,
    parallelism_profile,
)
from repro.core import Dag, SweepInstance


class TestDirectionStats:
    def test_chain(self, chain_instance):
        s = direction_stats(chain_instance, 0)
        assert s.depth == 4
        assert s.max_width == 1
        assert s.mean_width == 1.0
        assert s.edges == 3

    def test_flat_dag(self):
        inst = SweepInstance(5, [Dag(5, [])])
        s = direction_stats(inst, 0)
        assert s.depth == 1
        assert s.max_width == 5


class TestParallelismProfile:
    def test_sums_to_tasks(self, tet_instance):
        prof = parallelism_profile(tet_instance)
        assert prof.sum() == tet_instance.n_tasks

    def test_chain_instance_profile(self, chain_instance):
        # Two opposite 4-chains: at union level j, one task from each
        # direction -> width 2 at every level.
        prof = parallelism_profile(chain_instance)
        assert prof.tolist() == [2, 2, 2, 2]


class TestInstanceStats:
    def test_fields(self, tet_instance):
        s = instance_stats(tet_instance)
        assert s.n_cells == tet_instance.n_cells
        assert s.n_tasks == tet_instance.n_tasks
        assert s.depth == tet_instance.depth()
        assert s.max_parallelism >= s.n_tasks // max(s.depth, 1) // 2
        assert s.intrinsic_parallelism > 1.0
        assert s.as_dict()["k"] == tet_instance.k

    def test_chain_limits(self, chain_instance):
        s = instance_stats(chain_instance)
        assert s.depth == 4
        assert s.intrinsic_parallelism == 2.0  # 8 tasks / 4 union levels
        assert s.serial_direction_limit == 2.0

    def test_long_mesh_is_deeper_than_cube(self):
        from repro.mesh import long_like, tetonly_like
        from repro.sweeps import build_instance, level_symmetric

        dirs = level_symmetric(2)
        cube = instance_stats(build_instance(tetonly_like(500, seed=0), dirs))
        bar = instance_stats(build_instance(long_like(500, seed=0), dirs))
        # The elongated bar sweeps through more levels per cell.
        assert bar.depth / bar.n_cells > cube.depth / cube.n_cells


class TestRepoRootHygiene:
    """No shell-mangled filenames at the repository root.

    A truncated redirect or an unquoted variable in a shell one-liner
    leaves droppings like ``hich,$p`` — names containing metacharacters
    that the next unquoted command then re-expands.  Every legitimate
    root-level file is plain ``[A-Za-z0-9._-]``, so anything else is an
    accident by construction.
    """

    _CLEAN_NAME = re.compile(r"^[A-Za-z0-9._-]+$")

    def test_root_filenames_are_shell_safe(self):
        root = Path(__file__).resolve().parent.parent
        offenders = [
            entry.name
            for entry in root.iterdir()
            if entry.is_file() and not self._CLEAN_NAME.match(entry.name)
        ]
        assert not offenders, (
            f"repo root contains shell-unsafe filenames: {offenders!r} — "
            "likely droppings of a mangled shell command; delete them"
        )
