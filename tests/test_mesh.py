"""Tests for the Mesh container and builders."""

import numpy as np
import pytest

from repro.mesh import Mesh, load_mesh, save_mesh
from repro.util.errors import MeshError


class TestStructuredGrid:
    def test_2d_counts(self):
        mesh = Mesh.structured_grid((3, 2))
        assert mesh.n_cells == 6
        # Interior faces: 2*2 along x + 3*1 along y = 7.
        assert mesh.n_faces == 7

    def test_3d_counts(self):
        mesh = Mesh.structured_grid((2, 2, 2))
        assert mesh.n_cells == 8
        # 4 per axis * 3 axes.
        assert mesh.n_faces == 12

    def test_normals_are_axis_vectors(self):
        mesh = Mesh.structured_grid((2, 2))
        for n in mesh.face_normals:
            assert sorted(np.abs(n)) == [0.0, 1.0]

    def test_cell_coords_present(self):
        mesh = Mesh.structured_grid((3, 2))
        assert mesh.cell_coords.shape == (6, 2)
        assert mesh.cell_coords.max(axis=0).tolist() == [2, 1]

    def test_adjacency_orientation_matches_normals(self):
        """Normal points from adjacency[:,0] toward adjacency[:,1]."""
        mesh = Mesh.structured_grid((3, 1))
        for (u, v), n in zip(mesh.adjacency, mesh.face_normals):
            d = mesh.centroids[v] - mesh.centroids[u]
            assert np.dot(d, n) > 0

    def test_single_cell(self):
        mesh = Mesh.structured_grid((1, 1))
        assert mesh.n_cells == 1
        assert mesh.n_faces == 0

    def test_rejects_bad_shape(self):
        with pytest.raises(MeshError, match="shape"):
            Mesh.structured_grid((0, 3))
        with pytest.raises(MeshError, match="shape"):
            Mesh.structured_grid((2,))


class TestDelaunay:
    def test_2d_mesh_valid(self, tri_mesh):
        tri_mesh.validate()
        assert tri_mesh.dim == 2
        assert tri_mesh.n_cells > 10

    def test_3d_mesh_valid(self, tet_mesh):
        tet_mesh.validate()
        assert tet_mesh.dim == 3
        assert tet_mesh.cells.shape[1] == 4

    def test_adjacency_pairs_share_a_face(self, tet_mesh):
        """Adjacent tets share exactly 3 vertices."""
        for u, v in tet_mesh.adjacency[:50]:
            shared = set(tet_mesh.cells[u]) & set(tet_mesh.cells[v])
            assert len(shared) == 3

    def test_normals_point_toward_second_cell(self, tet_mesh):
        d = tet_mesh.centroids[tet_mesh.adjacency[:, 1]] - tet_mesh.centroids[
            tet_mesh.adjacency[:, 0]
        ]
        dots = np.einsum("fd,fd->f", d, tet_mesh.face_normals)
        # The normal lies in the shared face plane oriented outward from
        # cell 0; the centroid difference must have positive component.
        assert np.all(dots > 0)

    def test_keep_filter_removes_cells(self):
        rng = np.random.default_rng(0)
        pts = rng.random((80, 2))
        full = Mesh.from_delaunay(pts)
        half = Mesh.from_delaunay(pts, keep=lambda c: c[:, 0] < 0.5)
        assert 0 < half.n_cells < full.n_cells
        assert np.all(half.centroids[:, 0] < 0.5)
        half.validate()

    def test_keep_filter_rejects_empty_result(self):
        rng = np.random.default_rng(0)
        pts = rng.random((30, 2))
        with pytest.raises(MeshError, match="every cell"):
            Mesh.from_delaunay(pts, keep=lambda c: np.zeros(len(c), dtype=bool))

    def test_rejects_bad_points_shape(self):
        with pytest.raises(MeshError, match="points"):
            Mesh.from_delaunay(np.zeros((10, 4)))


class TestValidate:
    def test_catches_out_of_range_adjacency(self, grid_mesh):
        bad = Mesh(
            points=grid_mesh.points,
            cells=None,
            adjacency=np.array([[0, 99]]),
            face_normals=np.array([[1.0, 0.0]]),
            centroids=grid_mesh.centroids,
        )
        with pytest.raises(MeshError, match="out of range"):
            bad.validate()

    def test_catches_self_adjacency(self, grid_mesh):
        bad = Mesh(
            points=grid_mesh.points,
            cells=None,
            adjacency=np.array([[1, 1]]),
            face_normals=np.array([[1.0, 0.0]]),
            centroids=grid_mesh.centroids,
        )
        with pytest.raises(MeshError, match="itself"):
            bad.validate()

    def test_catches_non_unit_normals(self, grid_mesh):
        bad = Mesh(
            points=grid_mesh.points,
            cells=None,
            adjacency=np.array([[0, 1]]),
            face_normals=np.array([[2.0, 0.0]]),
            centroids=grid_mesh.centroids,
        )
        with pytest.raises(MeshError, match="unit"):
            bad.validate()

    def test_catches_duplicate_pairs(self, grid_mesh):
        bad = Mesh(
            points=grid_mesh.points,
            cells=None,
            adjacency=np.array([[0, 1], [1, 0]]),
            face_normals=np.array([[1.0, 0.0], [-1.0, 0.0]]),
            centroids=grid_mesh.centroids,
        )
        with pytest.raises(MeshError, match="duplicate"):
            bad.validate()


class TestIO:
    def test_roundtrip_structured(self, tmp_path, grid_mesh):
        path = tmp_path / "grid.npz"
        save_mesh(grid_mesh, path)
        loaded = load_mesh(path)
        assert loaded.n_cells == grid_mesh.n_cells
        assert np.array_equal(loaded.adjacency, grid_mesh.adjacency)
        assert np.array_equal(loaded.cell_coords, grid_mesh.cell_coords)
        assert loaded.meta == grid_mesh.meta

    def test_roundtrip_delaunay(self, tmp_path, tet_mesh):
        path = tmp_path / "tet.npz"
        save_mesh(tet_mesh, path)
        loaded = load_mesh(path)
        assert np.allclose(loaded.face_normals, tet_mesh.face_normals)
        assert np.array_equal(loaded.cells, tet_mesh.cells)
        assert loaded.name == tet_mesh.name

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(MeshError, match="not found"):
            load_mesh(tmp_path / "nope.npz")
