"""Docs-vs-code consistency: names the documentation promises must exist.

Documentation drift is the silent killer of reproduction repos; these
tests parse the public names referenced by the README / usage guide /
API reference and verify each resolves against the live package.
"""

import importlib
import re
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent

PACKAGES = [
    "repro.core",
    "repro.heuristics",
    "repro.mesh",
    "repro.sweeps",
    "repro.partition",
    "repro.comm",
    "repro.analysis",
    "repro.transport",
    "repro.instances",
    "repro.experiments",
    "repro.parallel",
    "repro.campaign",
    "repro.cache",
    "repro.obs",
    "repro.serve",
    "repro.util",
]


class TestPackageExports:
    @pytest.mark.parametrize("pkg", PACKAGES)
    def test_all_exports_resolve(self, pkg):
        module = importlib.import_module(pkg)
        for name in getattr(module, "__all__", []):
            assert hasattr(module, name), f"{pkg}.__all__ lists missing {name}"

    @pytest.mark.parametrize("pkg", PACKAGES)
    def test_exports_have_docstrings(self, pkg):
        module = importlib.import_module(pkg)
        undocumented = []
        for name in getattr(module, "__all__", []):
            obj = getattr(module, name)
            if callable(obj) and not (obj.__doc__ or "").strip():
                undocumented.append(name)
        assert not undocumented, f"{pkg}: missing docstrings on {undocumented}"


def _code_names(markdown: str) -> set[str]:
    """Backticked identifiers that look like repro API names."""
    names = set()
    for token in re.findall(r"`([A-Za-z_][A-Za-z0-9_.]*)`", markdown):
        if token.startswith("repro."):
            names.add(token)
    return names


class TestDocReferences:
    @pytest.mark.parametrize(
        "doc", ["README.md", "docs/usage.md", "docs/deviations.md",
                "docs/architecture.md", "docs/linting.md",
                "docs/observability.md", "docs/campaigns.md",
                "docs/serving.md"]
    )
    def test_repro_paths_in_docs_resolve(self, doc):
        text = (ROOT / doc).read_text()
        for name in _code_names(text):
            parts = name.split(".")
            # Find the longest importable prefix, then getattr the rest.
            obj = None
            for cut in range(len(parts), 0, -1):
                try:
                    obj = importlib.import_module(".".join(parts[:cut]))
                    rest = parts[cut:]
                    break
                except ImportError:
                    continue
            assert obj is not None, f"{doc}: cannot import any prefix of {name}"
            for attr in rest:
                assert hasattr(obj, attr), f"{doc} references missing {name}"
                obj = getattr(obj, attr)

    def test_registry_names_in_usage_doc_exist(self):
        from repro.heuristics import ALGORITHMS

        text = (ROOT / "docs" / "usage.md").read_text()
        # The usage doc enumerates registry names with [_delays] shorthand.
        for base in ("random_delay", "level", "descendant", "dfds", "blevel",
                     "fifo"):
            assert base in text
            assert base in ALGORITHMS

    def test_design_experiment_benches_exist(self):
        """Every bench target DESIGN.md names must be a real file."""
        text = (ROOT / "DESIGN.md").read_text()
        for match in re.findall(r"`benchmarks/([a-z0-9_]+\.py)`", text):
            assert (ROOT / "benchmarks" / match).exists(), f"missing {match}"
