"""Tests for communication-cost measures C1, C2, and message rounds."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.comm import (
    c2_cost,
    greedy_edge_coloring,
    interprocessor_edges,
    interprocessor_edge_fraction,
    max_degree,
    per_step_rounds,
    per_step_send_counts,
    rounds_cost,
    step_message_graph,
)
from repro.core import (
    Dag,
    Schedule,
    SweepInstance,
    list_schedule,
    random_cell_assignment,
    random_delay_priority_schedule,
)
from repro.util.errors import ReproError

from .strategies import sweep_instances


class TestC1:
    def test_counts_cross_edges_per_direction(self, chain_instance):
        # Assignment 0,0,1,1 cuts one edge in each of the two chains.
        assert interprocessor_edges(chain_instance, np.array([0, 0, 1, 1])) == 2

    def test_zero_when_single_processor(self, chain_instance):
        assert interprocessor_edges(chain_instance, np.zeros(4, dtype=int)) == 0

    def test_all_cross_when_alternating(self, chain_instance):
        assert interprocessor_edges(chain_instance, np.array([0, 1, 0, 1])) == 6

    def test_fraction(self, chain_instance):
        frac = interprocessor_edge_fraction(chain_instance, np.array([0, 0, 1, 1]))
        assert frac == pytest.approx(2 / 6)

    def test_fraction_no_edges(self):
        inst = SweepInstance(3, [Dag(3, [])])
        assert interprocessor_edge_fraction(inst, np.zeros(3, dtype=int)) == 0.0

    def test_random_assignment_fraction_near_m_minus_1_over_m(self, tet_instance):
        """The paper's observation: random per-cell assignment cuts about
        (m-1)/m of all edges."""
        m = 8
        a = random_cell_assignment(tet_instance.n_cells, m, seed=0)
        frac = interprocessor_edge_fraction(tet_instance, a)
        assert abs(frac - (m - 1) / m) < 0.05


class TestC2:
    def test_hand_example(self):
        """Two chains on two procs: each cut edge sends 1 message."""
        g = Dag.from_edge_list(2, [(0, 1)])
        inst = SweepInstance(2, [g])
        s = list_schedule(inst, 2, np.array([0, 1]))
        # Task 0 at step 0 on proc 0 sends one message; step 1 sends none.
        assert per_step_send_counts(s).tolist() == [1, 0]
        assert c2_cost(s) == 1

    def test_zero_on_one_processor(self, tet_instance):
        s = random_delay_priority_schedule(tet_instance, 1, seed=0)
        assert c2_cost(s) == 0

    def test_dedup_reduces_or_equals(self, tet_instance):
        s = random_delay_priority_schedule(tet_instance, 4, seed=0)
        assert c2_cost(s, dedup=True) <= c2_cost(s, dedup=False)

    def test_c2_below_c1(self, tet_instance):
        """C2 sums per-step *maxima*, C1 sums every cross edge."""
        s = random_delay_priority_schedule(tet_instance, 4, seed=0)
        assert c2_cost(s) <= interprocessor_edges(tet_instance, s.assignment)

    @given(sweep_instances(max_n=12, max_k=3))
    @settings(max_examples=20, deadline=None)
    def test_c2_sandwich_property(self, inst):
        s = random_delay_priority_schedule(inst, 3, seed=0)
        c2 = c2_cost(s)
        c1 = interprocessor_edges(inst, s.assignment)
        assert 0 <= c2 <= c1


class TestEdgeColoring:
    def test_triangle_needs_three_colors(self):
        edges = np.array([[0, 1], [1, 2], [0, 2]])
        colors = greedy_edge_coloring(edges, 3)
        assert len(set(colors.tolist())) == 3

    def test_star_needs_degree_colors(self):
        edges = np.array([[0, 1], [0, 2], [0, 3]])
        colors = greedy_edge_coloring(edges, 4)
        assert sorted(colors.tolist()) == [0, 1, 2]

    def test_proper_coloring(self):
        rng = np.random.default_rng(0)
        edges = rng.integers(0, 10, size=(40, 2))
        edges = edges[edges[:, 0] != edges[:, 1]]
        colors = greedy_edge_coloring(edges, 10)
        for i in range(len(edges)):
            for j in range(i + 1, len(edges)):
                if set(edges[i]) & set(edges[j]):
                    assert colors[i] != colors[j]

    def test_within_greedy_bound(self):
        rng = np.random.default_rng(1)
        edges = rng.integers(0, 8, size=(60, 2))
        edges = edges[edges[:, 0] != edges[:, 1]]
        colors = greedy_edge_coloring(edges, 8)
        delta = max_degree(edges, 8)
        assert colors.max() + 1 <= 2 * delta - 1

    def test_parallel_edges_get_distinct_colors(self):
        edges = np.array([[0, 1], [0, 1]])
        colors = greedy_edge_coloring(edges, 2)
        assert colors[0] != colors[1]

    def test_rejects_self_loop(self):
        with pytest.raises(ReproError, match="itself"):
            greedy_edge_coloring(np.array([[1, 1]]), 2)

    def test_empty(self):
        assert greedy_edge_coloring(np.empty((0, 2)), 3).size == 0
        assert max_degree(np.empty((0, 2)), 3) == 0


class TestRounds:
    def test_rounds_sandwiched_between_c2_and_c1(self, tet_instance):
        s = random_delay_priority_schedule(tet_instance, 4, seed=0)
        rc = rounds_cost(s)
        assert c2_cost(s) <= rc <= interprocessor_edges(tet_instance, s.assignment)

    def test_per_step_rounds_at_least_max_sends(self, tet_instance):
        s = random_delay_priority_schedule(tet_instance, 4, seed=0)
        rounds = per_step_rounds(s)
        sends = per_step_send_counts(s)
        assert np.all(rounds >= sends)

    def test_step_message_graph_entries(self):
        g = Dag.from_edge_list(2, [(0, 1)])
        inst = SweepInstance(2, [g])
        s = list_schedule(inst, 2, np.array([0, 1]))
        msgs = step_message_graph(s, 0)
        assert msgs.tolist() == [[0, 1]]
        assert step_message_graph(s, 1).size == 0

    def test_no_edges_no_rounds(self):
        inst = SweepInstance(3, [Dag(3, [])])
        s = list_schedule(inst, 2, np.array([0, 1, 0]))
        assert rounds_cost(s) == 0
