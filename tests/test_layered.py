"""Tests for the layer-sequential schedule construction (Alg 1/3 step 4)."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core import Dag, SweepInstance
from repro.core.layered import layer_makespans, schedule_layers_sequentially
from repro.core.random_delay import delayed_task_layers
from repro.util.errors import InvalidScheduleError

from .strategies import sweep_instances


class TestLayerMakespans:
    def test_single_layer_counts_max_per_proc(self):
        layers = np.array([0, 0, 0])
        procs = np.array([0, 0, 1])
        assert list(layer_makespans(layers, procs, 2)) == [2]

    def test_empty_layers_cost_zero(self):
        layers = np.array([0, 2])
        procs = np.array([0, 0])
        assert list(layer_makespans(layers, procs, 1)) == [1, 0, 1]

    def test_empty_input(self):
        out = layer_makespans(np.array([], dtype=int), np.array([], dtype=int), 3)
        assert out.size == 0


class TestLayeredSchedule:
    def test_layers_processed_strictly_in_order(self, chain_instance):
        layers = delayed_task_layers(chain_instance, np.array([0, 0]))
        assignment = np.array([0, 0, 1, 1])
        s = schedule_layers_sequentially(chain_instance, 2, layers, assignment)
        s.validate()
        # Every task in layer r finishes before any task of layer r+1 starts.
        for r in range(int(layers.max())):
            in_r = s.start[layers == r]
            in_next = s.start[layers == r + 1]
            if in_r.size and in_next.size:
                assert in_r.max() < in_next.min()

    def test_makespan_equals_sum_of_layer_maxima(self, tet_instance):
        delays = np.zeros(tet_instance.k, dtype=np.int64)
        layers = delayed_task_layers(tet_instance, delays)
        m = 4
        assignment = np.arange(tet_instance.n_cells) % m
        s = schedule_layers_sequentially(tet_instance, m, layers, assignment)
        s.validate()
        proc = np.tile(assignment, tet_instance.k)
        expected = int(layer_makespans(layers, proc, m).sum())
        assert s.makespan == expected

    def test_rejects_bad_layer_assignment(self, chain_instance):
        bad_layers = np.zeros(8, dtype=np.int64)  # everything in layer 0
        with pytest.raises(InvalidScheduleError, match="precedence"):
            schedule_layers_sequentially(
                chain_instance, 2, bad_layers, np.zeros(4, dtype=int)
            )

    def test_rejects_wrong_shape(self, chain_instance):
        with pytest.raises(InvalidScheduleError, match="task_layer"):
            schedule_layers_sequentially(
                chain_instance, 2, np.zeros(3, dtype=int), np.zeros(4, dtype=int)
            )

    def test_check_layers_can_be_disabled(self):
        inst = SweepInstance(2, [Dag(2, [])])
        s = schedule_layers_sequentially(
            inst, 1, np.zeros(2, dtype=int), np.zeros(2, dtype=int),
            check_layers=False,
        )
        s.validate()

    @given(sweep_instances())
    @settings(max_examples=25, deadline=None)
    def test_always_feasible_with_level_layers(self, inst):
        layers = inst.task_levels()
        m = 2
        assignment = np.arange(inst.n_cells) % m
        s = schedule_layers_sequentially(inst, m, layers, assignment)
        s.validate()
