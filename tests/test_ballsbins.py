"""Tests for the probability toolkit (Lemma 1, Corollary 2, Lemma 5)."""

import numpy as np
import pytest

from repro.analysis import (
    bound_F,
    bound_H,
    chernoff_G,
    expected_max_load_bound,
    max_load,
    mean_max_load,
    phi,
)
from repro.util.errors import ReproError


class TestChernoffG:
    def test_zero_delta_is_one(self):
        assert chernoff_G(5.0, 0.0) == 1.0

    def test_decreasing_in_delta(self):
        vals = [chernoff_G(2.0, d) for d in (0.5, 1.0, 2.0, 4.0)]
        assert vals == sorted(vals, reverse=True)

    def test_decreasing_in_mu_for_fixed_delta(self):
        assert chernoff_G(10.0, 1.0) < chernoff_G(1.0, 1.0)

    def test_matches_direct_formula(self):
        mu, d = 3.0, 1.5
        direct = (np.e**d / (1 + d) ** (1 + d)) ** mu
        assert chernoff_G(mu, d) == pytest.approx(direct)

    def test_no_overflow_for_large_delta(self):
        assert chernoff_G(1.0, 1e6) == 0.0

    def test_bound_actually_bounds_binomial_tail(self):
        """Monte-Carlo sanity: Pr[X >= mu(1+d)] <= G(mu, d) for a
        Binomial(n, p) with mu = np."""
        rng = np.random.default_rng(0)
        n, p = 400, 0.05
        mu = n * p
        delta = 1.0
        xs = rng.binomial(n, p, size=20_000)
        emp = float((xs >= mu * (1 + delta)).mean())
        assert emp <= chernoff_G(mu, delta) + 0.01

    def test_rejects_negative(self):
        with pytest.raises(ReproError):
            chernoff_G(-1.0, 0.5)


class TestBoundF:
    def test_tail_mass_below_p(self):
        """G(mu, F/mu - 1) < p across regimes, i.e. Pr[X > F] < p."""
        for mu in (0.1, 0.5, 1.0, 3.0, 10.0, 100.0):
            for p in (0.1, 0.01, 1e-4):
                f = bound_F(mu, p)
                assert f >= mu
                delta = f / mu - 1
                if delta > 0:
                    assert chernoff_G(mu, delta) < p

    def test_rejects_bad_args(self):
        with pytest.raises(ReproError):
            bound_F(0.0, 0.5)
        with pytest.raises(ReproError):
            bound_F(1.0, 1.5)


class TestBoundH:
    def test_nondecreasing_in_mu(self):
        p = 1e-4
        mus = np.linspace(0.01, 50, 200)
        vals = [bound_H(m, p) for m in mus]
        assert all(b >= a - 1e-9 for a, b in zip(vals, vals[1:]))

    def test_concave_in_mu_below_regime_band(self):
        """Corollary 2(a) holds for mu < L/e^2; the paper's literal H is
        mildly convex on (L/e^2, L/e] — see the bound_H docstring."""
        p = 1e-4
        L = np.log(1 / p)
        mus = np.linspace(0.01, L / np.e**2, 100)
        for a, b in zip(mus[:-2], mus[2:]):
            mid = (a + b) / 2
            assert bound_H(mid, p) >= (bound_H(a, p) + bound_H(b, p)) / 2 - 1e-9

    def test_linear_hence_concave_in_dense_regime(self):
        p = 1e-4
        L = np.log(1 / p)
        mus = np.linspace(L / np.e * 1.01, 50, 50)
        vals = np.array([bound_H(m, p) for m in mus])
        slope = np.diff(vals) / np.diff(mus)
        assert np.allclose(slope, slope[0])

    def test_continuous_at_regime_boundary(self):
        p = 1e-6
        edge = np.log(1 / p) / np.e
        below = bound_H(edge * 0.9999, p)
        above = bound_H(edge * 1.0001, p)
        assert abs(below - above) / above < 0.01


class TestCorollary2b:
    @pytest.mark.parametrize("t,m", [(10, 10), (100, 10), (50, 50), (500, 20)])
    def test_expected_max_load_bounded(self, t, m):
        emp = mean_max_load(t, m, trials=300, seed=0)
        assert emp <= expected_max_load_bound(t, m)

    def test_zero_balls(self):
        assert expected_max_load_bound(0, 5) == 0.0
        assert max_load(0, 5) == 0

    def test_max_load_range(self):
        load = max_load(100, 10, seed=0)
        assert 10 <= load <= 100

    def test_rejects_bad_bins(self):
        with pytest.raises(ReproError):
            max_load(5, 0)
        with pytest.raises(ReproError):
            expected_max_load_bound(5, 0)
        with pytest.raises(ReproError):
            mean_max_load(5, 2, trials=0)


class TestPhi:
    def test_values(self):
        assert phi(0.0) == 0.0
        assert phi(1.0) == pytest.approx(np.exp(-1))

    def test_convex_on_unit_interval_for_a3(self):
        """Lemma 5: phi_a convex on [0,1] for a >= 3 (midpoint test)."""
        xs = np.linspace(0, 1, 101)
        for a in (3.0, 4.0, 6.0):
            vals = phi(xs, a=a)
            mid = phi((xs[:-2] + xs[2:]) / 2, a=a)
            assert np.all(mid <= (vals[:-2] + vals[2:]) / 2 + 1e-12)

    def test_vectorised(self):
        out = phi(np.array([0.1, 0.5]))
        assert out.shape == (2,)
