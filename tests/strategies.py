"""Hypothesis strategies for DAGs and sweep instances.

Random DAGs are built by drawing edges over a hidden random vertex
ordering — every generated graph is acyclic by construction but the edge
*labels* are arbitrary, so level structure, branching, and density all
vary.
"""

from __future__ import annotations

import numpy as np
from hypothesis import strategies as st

from repro.core import Dag, SweepInstance

__all__ = ["dags", "sweep_instances", "digraph_edges", "campaign_spec_dicts"]


@st.composite
def dags(draw, max_n: int = 30, max_extra_edges: int = 60) -> Dag:
    """A random DAG on 1..max_n vertices."""
    n = draw(st.integers(min_value=1, max_value=max_n))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    order = rng.permutation(n)  # hidden topological order
    rank = np.empty(n, dtype=np.int64)
    rank[order] = np.arange(n)
    n_edges = draw(st.integers(min_value=0, max_value=max_extra_edges))
    edges = []
    for _ in range(n_edges):
        u, v = rng.integers(0, n, size=2)
        if rank[u] == rank[v]:
            continue
        if rank[u] < rank[v]:
            edges.append((u, v))
        else:
            edges.append((v, u))
    return Dag.from_edge_list(n, edges)


@st.composite
def sweep_instances(draw, max_n: int = 20, max_k: int = 4) -> SweepInstance:
    """A random instance: k random DAGs over one shared vertex set."""
    n = draw(st.integers(min_value=1, max_value=max_n))
    k = draw(st.integers(min_value=1, max_value=max_k))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    dag_list = []
    for _ in range(k):
        order = rng.permutation(n)
        rank = np.empty(n, dtype=np.int64)
        rank[order] = np.arange(n)
        m_edges = int(rng.integers(0, 3 * n))
        edges = []
        for _ in range(m_edges):
            u, v = rng.integers(0, n, size=2)
            if rank[u] < rank[v]:
                edges.append((u, v))
            elif rank[v] < rank[u]:
                edges.append((v, u))
        dag_list.append(Dag.from_edge_list(n, edges))
    return SweepInstance(n, dag_list)


#: Small-but-real axis pools for campaign specs (valid registry names).
_CAMPAIGN_MESHES = ("square2d", "tetonly", "long")
_CAMPAIGN_ALGOS = ("fifo", "random_delay_priority", "dfds", "level")


@st.composite
def campaign_spec_dicts(draw, max_grids: int = 3, max_cells: int = 6) -> dict:
    """A raw campaign spec dict: 1..max_grids cartesian grid blocks plus
    0..max_cells explicit cells, all drawn from valid axis pools.

    Axis lists may repeat values and arrive in any order — exactly the
    messiness the compiler must normalise away (the determinism /
    order-independence / dedup properties in
    ``tests/test_campaign_properties.py``).
    """

    def axis(pool):
        return st.lists(
            st.sampled_from(pool), min_size=1, max_size=len(pool), unique=False
        )

    small_ints = st.sampled_from((0, 1, 2))
    grids = draw(
        st.lists(
            st.fixed_dictionaries(
                {
                    "mesh": axis(_CAMPAIGN_MESHES),
                    "target_cells": st.sampled_from((80, 120)),
                    "mesh_seed": small_ints,
                    "k": axis((2, 4)),
                    "algorithms": axis(_CAMPAIGN_ALGOS),
                    "block_sizes": axis((1, 8)),
                    "m": axis((2, 4, 8)),
                    "seeds": st.lists(
                        small_ints, min_size=1, max_size=4, unique=False
                    ),
                }
            ),
            min_size=1,
            max_size=max_grids,
        )
    )
    cells = draw(
        st.lists(
            st.fixed_dictionaries(
                {
                    "mesh": st.sampled_from(_CAMPAIGN_MESHES),
                    "target_cells": st.sampled_from((80, 120)),
                    "mesh_seed": small_ints,
                    "k": st.sampled_from((2, 4)),
                    "algorithm": st.sampled_from(_CAMPAIGN_ALGOS),
                    "block_size": st.sampled_from((1, 8)),
                    "m": st.sampled_from((2, 4, 8)),
                    "seed": small_ints,
                }
            ),
            max_size=max_cells,
        )
    )
    spec = {"name": "prop", "grid": grids}
    if cells:
        spec["cells"] = cells
    return spec


@st.composite
def digraph_edges(draw, max_n: int = 25, max_edges: int = 80):
    """(n, edges) for a possibly-cyclic digraph without self-loops."""
    n = draw(st.integers(min_value=1, max_value=max_n))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    n_edges = draw(st.integers(min_value=0, max_value=max_edges))
    edges = []
    for _ in range(n_edges):
        u, v = rng.integers(0, n, size=2)
        if u != v:
            edges.append((u, v))
    return n, np.array(edges, dtype=np.int64).reshape(-1, 2)
