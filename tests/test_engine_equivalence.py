"""Cross-engine equivalence: heap vs bucket vs vector, bit for bit.

The headline guarantee of the batched engines
(:mod:`repro.core.fast_scheduler` and
:mod:`repro.core.vector_scheduler`) is that they are pure optimisations:
same start times, same machine numbers, same tie-breaks, same errors as
the heap engine, on every input.  This suite pins that guarantee on

* every fuzz spec family (:data:`repro.fuzz.spec.CASE_FAMILIES`),
* every registry golden case x every registry algorithm,
* every persisted fuzz-corpus entry,
* random hypothesis instances,

always exercising *both* internal bucket-engine paths (the vectorised
sorted pool and the narrow bucket queues) via the ``_FORCE_PATH`` test
hook and the vector engine's superstep kernel, so the ``auto`` width
heuristic can never hide a broken path.  Start arrays are compared both
elementwise and by CRC-32 checksum — the same digest the bench report
commits — so a checksum scheme that ever diverged from the arrays would
be caught here first.

The priority-property tests at the bottom cover the tie-break contract
itself: ``priority=None`` is the all-zeros priority, schedules depend
only on the *relative order* of priorities, and permuting equal-priority
task ids leaves every engine deterministic, mutually identical, and
oracle-clean.
"""

import json
import zlib
from contextlib import contextmanager

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.core.fast_scheduler as fs
from repro.core.assignment import random_cell_assignment
from repro.core.list_scheduler import list_schedule, list_schedule_unassigned
from repro.core.random_delay import delayed_task_layers, draw_delays
from repro.fuzz.corpus import iter_corpus, load_entry, replay_entry
from repro.fuzz.spec import CASE_FAMILIES, build_case
from repro.heuristics import algorithm_names, get_algorithm
from repro.util.rng import as_rng

from .strategies import sweep_instances

PATHS = ("bucket", "pool")


@contextmanager
def force_path(path):
    saved = fs._FORCE_PATH
    fs._FORCE_PATH = path
    try:
        yield
    finally:
        fs._FORCE_PATH = saved


def start_checksum(schedule):
    """The bench report's schedule digest: CRC-32 of the start array."""
    start = np.ascontiguousarray(schedule.start, dtype=np.int64)
    return zlib.crc32(start.tobytes())


def engine_variants():
    """Every (label, engine, forced path) combination the suite runs."""
    yield "bucket[bucket]", "bucket", "bucket"
    yield "bucket[pool]", "bucket", "pool"
    yield "vector", "vector", None


def assert_engines_match(inst, m, assignment, priority, label=""):
    """Heap vs bucket (both paths) vs vector, assigned and unassigned.

    Asserts identical start arrays, assignments, machine numbers,
    makespans, and CRC-32 start checksums for every engine variant.
    """
    ref = list_schedule(inst, m, assignment, priority=priority, engine="heap")
    uref = list_schedule_unassigned(inst, m, priority=priority, engine="heap")
    for vlabel, engine, path in engine_variants():
        with force_path(path):
            got = list_schedule(
                inst, m, assignment, priority=priority, engine=engine
            )
            ugot = list_schedule_unassigned(
                inst, m, priority=priority, engine=engine
            )
        where = f"{label} [{vlabel}]"
        assert np.array_equal(got.start, ref.start), f"{where} start"
        assert np.array_equal(got.assignment, ref.assignment), (
            f"{where} assignment"
        )
        assert got.makespan == ref.makespan, f"{where} makespan"
        assert start_checksum(got) == start_checksum(ref), f"{where} checksum"
        assert np.array_equal(ugot.start, uref.start), (
            f"{where} unassigned start"
        )
        assert np.array_equal(ugot.machine, uref.machine), (
            f"{where} machine"
        )


def case_priorities(inst, seed):
    """The priority flavours every case is checked under."""
    rng = as_rng(seed)
    gamma = delayed_task_layers(inst, draw_delays(inst.k, rng))
    yield "uniform", None
    yield "delayed-level", gamma
    yield "float", rng.random(inst.n_tasks)
    yield "negative", rng.integers(-8, 8, inst.n_tasks)


class TestFuzzFamilies:
    @pytest.mark.parametrize("family", sorted(CASE_FAMILIES))
    @pytest.mark.parametrize("seed,m", [(0, 1), (1, 3), (2, 7)])
    def test_family_bit_identical(self, family, seed, m):
        inst, m = build_case(
            {"family": family, "seed": seed, "m": m, "params": {}}
        )
        rng = as_rng(seed)
        assignment = random_cell_assignment(inst.n_cells, m, rng)
        for pname, prio in case_priorities(inst, seed):
            assert_engines_match(
                inst, m, assignment, prio, label=f"{family}/{pname}"
            )


class TestRegistryGoldens:
    @pytest.fixture(scope="class")
    def golden_cases(self):
        import sys
        from pathlib import Path

        root = Path(__file__).resolve().parent.parent
        if str(root / "scripts") not in sys.path:
            sys.path.insert(0, str(root / "scripts"))
        from regenerate_goldens import GOLDEN_CASES

        from repro.instances import make_instance

        return [
            (label, make_instance(family, **params), m)
            for label, family, params, m in GOLDEN_CASES
        ]

    @pytest.mark.parametrize("algorithm", algorithm_names())
    def test_golden_cases_bit_identical(self, golden_cases, algorithm):
        fn = get_algorithm(algorithm)
        for label, inst, m in golden_cases:
            ref = fn(inst, m, seed=0, engine="heap")
            for vlabel, engine, path in engine_variants():
                with force_path(path):
                    got = fn(inst, m, seed=0, engine=engine)
                assert np.array_equal(got.start, ref.start), (
                    f"{label}/{algorithm} [{vlabel}]"
                )
                assert got.makespan == ref.makespan
                assert start_checksum(got) == start_checksum(ref)


class TestCorpus:
    def test_corpus_replays_engine_clean(self):
        entries = iter_corpus("corpus")
        for path in entries:
            entry = load_entry(path)
            result = replay_entry(entry)
            engine_violations = [
                v for v in result.violations if v.oracle == "engine_equivalence"
            ]
            assert not engine_violations, (
                f"{path.name}: {[str(v) for v in engine_violations]}"
            )

    def test_corpus_entries_are_wellformed_json(self):
        for path in iter_corpus("corpus"):
            json.loads(path.read_text())


class TestHypothesisEquivalence:
    @given(
        sweep_instances(max_n=14, max_k=3),
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=40, deadline=None)
    def test_random_instances_bit_identical(self, inst, m, seed):
        rng = as_rng(seed)
        assignment = random_cell_assignment(inst.n_cells, m, rng)
        for pname, prio in case_priorities(inst, seed):
            assert_engines_match(inst, m, assignment, prio, label=pname)


class TestPriorityProperties:
    """Satellite: tie-break determinism pinned for every engine."""

    def _engines(self):
        yield "heap", None
        yield "vector", None
        for path in PATHS:
            yield "bucket", path

    @given(sweep_instances(max_n=12, max_k=3))
    @settings(max_examples=25, deadline=None)
    def test_none_equals_zeros(self, inst):
        m = 3
        assignment = np.arange(inst.n_cells) % m
        zeros = np.zeros(inst.n_tasks, dtype=np.int64)
        for engine, path in self._engines():
            with force_path(path):
                a = list_schedule(inst, m, assignment, priority=None,
                                  engine=engine)
                b = list_schedule(inst, m, assignment, priority=zeros,
                                  engine=engine)
                ua = list_schedule_unassigned(inst, m, priority=None,
                                              engine=engine)
                ub = list_schedule_unassigned(inst, m, priority=zeros,
                                              engine=engine)
            assert np.array_equal(a.start, b.start), (engine, path)
            assert np.array_equal(ua.start, ub.start), (engine, path)
            assert np.array_equal(ua.machine, ub.machine), (engine, path)

    @given(
        sweep_instances(max_n=12, max_k=3),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=25, deadline=None)
    def test_order_preserving_transforms_do_not_matter(self, inst, seed):
        """Only the relative order of priorities affects the schedule."""
        m = 3
        rng = as_rng(seed)
        assignment = np.arange(inst.n_cells) % m
        prio = rng.integers(0, 5, inst.n_tasks)
        scaled = prio * 1000 - 7
        for engine, path in self._engines():
            with force_path(path):
                a = list_schedule(inst, m, assignment, priority=prio,
                                  engine=engine)
                b = list_schedule(inst, m, assignment, priority=scaled,
                                  engine=engine)
            assert np.array_equal(a.start, b.start), (engine, path)

    @given(
        sweep_instances(max_n=10, max_k=3),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=20, deadline=None)
    def test_equal_priority_permutation_keeps_oracles(self, inst, seed):
        """Permuting equal-priority task ids: engines stay deterministic,
        mutually bit-identical, and the resulting schedule passes the full
        makespan-oracle pack on both the original and permuted labelling.
        """
        from repro.fuzz.oracles import OracleContext, check_schedule

        m = 2
        rng = as_rng(seed)
        # Permute cell ids (equal-priority: priorities are uniform).
        perm = rng.permutation(inst.n_cells)
        inv = np.empty_like(perm)
        inv[perm] = np.arange(inst.n_cells)
        permuted = type(inst)(
            inst.n_cells,
            [type(g)(g.n, inv[g.edges] if g.num_edges else g.edges)
             for g in inst.dags],
        )
        for variant, vinst in (("original", inst), ("permuted", permuted)):
            assignment = np.arange(vinst.n_cells) % m
            ref = list_schedule(vinst, m, assignment, priority=None,
                                engine="heap")
            again = list_schedule(vinst, m, assignment, priority=None,
                                  engine="heap")
            assert np.array_equal(ref.start, again.start), variant
            for vlabel, engine, path in engine_variants():
                with force_path(path):
                    got = list_schedule(vinst, m, assignment, priority=None,
                                        engine=engine)
                assert np.array_equal(got.start, ref.start), (variant, vlabel)
            ctx = OracleContext(vinst, m)
            violations = check_schedule(ref, algorithm="fifo", ctx=ctx)
            assert not violations, (variant, [str(v) for v in violations])


class TestAutoRule:
    def test_auto_crossover_heap_bucket_vector(self):
        """The three-way width rule: heap below the bucket crossover,
        bucket in the merely-wide regime, vector once the *uncapped* mean
        wavefront reaches ``_VECTOR_MIN_WIDTH`` tasks per level.
        """
        from repro.core.list_scheduler import resolve_engine
        from repro.core.vector_scheduler import _VECTOR_MIN_WIDTH
        from repro.instances.families import identical_chains, wide_shallow

        narrow = identical_chains(64, 2)
        assert resolve_engine("auto", None, narrow, 4) == "heap"
        # Wide but below the vector crossover: the bucket engine's regime.
        wide = wide_shallow(1000, 2, seed=0)
        assert wide.n_tasks // wide.union_dag().num_levels() < _VECTOR_MIN_WIDTH
        assert resolve_engine("auto", None, wide, 512) == "bucket"
        # At/above the vector crossover the frontier batch kernel wins.
        very_wide = wide_shallow(4000, 2, seed=0)
        assert (
            very_wide.n_tasks // very_wide.union_dag().num_levels()
            >= _VECTOR_MIN_WIDTH
        )
        assert resolve_engine("auto", None, very_wide, 512) == "vector"
        # Unsupported keys force the heap even on very wide instances.
        obj = np.empty(very_wide.n_tasks, dtype=object)
        obj[:] = [(0, i) for i in range(very_wide.n_tasks)]
        assert resolve_engine("auto", obj, very_wide, 512) == "heap"

    @pytest.mark.parametrize("engine", ["bucket", "vector"])
    def test_explicit_engine_ignores_width(self, engine):
        from repro.core.list_scheduler import resolve_engine
        from repro.instances.families import identical_chains

        narrow = identical_chains(64, 2)
        assert resolve_engine(engine, None, narrow, 4) == engine

    @pytest.mark.parametrize("engine", ["bucket", "vector"])
    def test_explicit_engine_rejects_object_keys(self, engine):
        from repro.core.list_scheduler import resolve_engine
        from repro.instances.families import identical_chains
        from repro.util.errors import InvalidScheduleError

        narrow = identical_chains(8, 2)
        obj = np.empty(narrow.n_tasks, dtype=object)
        obj[:] = [(0, i) for i in range(narrow.n_tasks)]
        with pytest.raises(InvalidScheduleError, match="NaN-free"):
            resolve_engine(engine, obj, narrow, 4)

    def test_unknown_engine_rejected(self):
        from repro.core.list_scheduler import resolve_engine
        from repro.util.errors import InvalidScheduleError

        with pytest.raises(InvalidScheduleError, match="unknown engine"):
            resolve_engine("quantum", None)
