"""Tests for experiment row export (CSV / JSON)."""

import csv

import numpy as np
import pytest

from repro.experiments import load_rows_json, rows_to_csv, rows_to_json
from repro.util.errors import ReproError

ROWS = [
    {"algorithm": "a", "m": 2, "ratio": 1.5},
    {"algorithm": "b", "m": 2, "ratio": 1.25, "extra": "x"},
]


class TestCsv:
    def test_roundtrip_via_stdlib(self, tmp_path):
        path = tmp_path / "rows.csv"
        rows_to_csv(ROWS, path)
        with path.open() as fh:
            back = list(csv.DictReader(fh))
        assert back[0]["algorithm"] == "a"
        assert float(back[1]["ratio"]) == 1.25
        # Union of keys, first-appearance order.
        assert list(back[0].keys()) == ["algorithm", "m", "ratio", "extra"]

    def test_explicit_columns(self, tmp_path):
        path = tmp_path / "rows.csv"
        rows_to_csv(ROWS, path, columns=["m", "ratio"])
        header = path.read_text().splitlines()[0]
        assert header == "m,ratio"

    def test_rejects_empty(self, tmp_path):
        with pytest.raises(ReproError, match="no rows"):
            rows_to_csv([], tmp_path / "x.csv")


class TestJson:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "rows.json"
        rows_to_json(ROWS, path)
        back = load_rows_json(path)
        assert back[0] == ROWS[0]

    def test_numpy_scalars_coerced(self, tmp_path):
        path = tmp_path / "np.json"
        rows_to_json([{"v": np.int64(5), "w": np.float64(1.5)}], path)
        back = load_rows_json(path)
        assert back == [{"v": 5, "w": 1.5}]

    def test_missing_file(self, tmp_path):
        with pytest.raises(ReproError, match="not found"):
            load_rows_json(tmp_path / "nope.json")

    def test_rejects_non_dict_rows(self, tmp_path):
        with pytest.raises(ReproError, match="dicts"):
            rows_to_json([1, 2], tmp_path / "x.json")
