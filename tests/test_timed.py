"""Tests for the latency/cost-aware event scheduler."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Dag,
    SweepInstance,
    latency_list_schedule,
    list_schedule,
)
from repro.core.random_delay import delayed_task_layers, draw_delays
from repro.util.errors import InvalidScheduleError

from .strategies import sweep_instances


class TestReductionToStandardEngine:
    def test_zero_latency_unit_cost_matches_list_schedule(self, tet_instance):
        """With unique priorities both engines make identical choices."""
        m = 4
        assignment = np.arange(tet_instance.n_cells) % m
        prio = np.arange(tet_instance.n_tasks)  # strictly unique
        a = list_schedule(tet_instance, m, assignment, priority=prio)
        b = latency_list_schedule(tet_instance, m, assignment, priority=prio)
        b.validate()
        assert np.array_equal(a.start, b.start)

    def test_delayed_priorities_match_too(self, tet_instance):
        m = 4
        rng = np.random.default_rng(0)
        assignment = rng.integers(0, m, size=tet_instance.n_cells)
        gamma = delayed_task_layers(tet_instance, draw_delays(tet_instance.k, rng))
        # Make ties unique so both engines agree exactly.
        prio = gamma * tet_instance.n_tasks + np.arange(tet_instance.n_tasks)
        a = list_schedule(tet_instance, m, assignment, priority=prio)
        b = latency_list_schedule(tet_instance, m, assignment, priority=prio)
        assert a.makespan == b.makespan


class TestLatency:
    def test_cross_proc_chain_pays_latency(self):
        g = Dag.from_edge_list(2, [(0, 1)])
        inst = SweepInstance(2, [g])
        s = latency_list_schedule(
            inst, 2, np.array([0, 1]), comm_latency=5
        )
        s.validate()
        assert s.start[1] == 6  # 1 (task 0) + 5 latency

    def test_same_proc_chain_pays_nothing(self):
        g = Dag.from_edge_list(2, [(0, 1)])
        inst = SweepInstance(2, [g])
        s = latency_list_schedule(inst, 2, np.array([0, 0]), comm_latency=5)
        assert s.start[1] == 1

    def test_makespan_monotone_in_latency(self, tet_instance):
        m = 4
        assignment = np.arange(tet_instance.n_cells) % m
        spans = [
            latency_list_schedule(
                tet_instance, m, assignment, comm_latency=c
            ).makespan
            for c in (0, 1, 4, 16)
        ]
        assert spans == sorted(spans)

    def test_block_assignment_wins_under_high_latency(self, tet_mesh, tet_instance):
        """The Section 5.1 trade-off: fewer cut edges beats better balance
        once communication is expensive."""
        from repro.core import block_assignment
        from repro.partition import partition_mesh_blocks

        m = 4
        rng = np.random.default_rng(0)
        per_cell = rng.integers(0, m, size=tet_instance.n_cells)
        blocks = partition_mesh_blocks(
            tet_mesh.n_cells, tet_mesh.adjacency, 32, seed=0
        )
        blocked = block_assignment(blocks, m, seed=0, balanced=True)
        c = 20
        span_cell = latency_list_schedule(
            tet_instance, m, per_cell, comm_latency=c
        ).makespan
        span_block = latency_list_schedule(
            tet_instance, m, blocked, comm_latency=c
        ).makespan
        assert span_block < span_cell

    def test_rejects_negative_latency(self, chain_instance):
        with pytest.raises(InvalidScheduleError, match="latency"):
            latency_list_schedule(
                chain_instance, 2, np.zeros(4, dtype=int), comm_latency=-1
            )


class TestCosts:
    def test_weighted_serial_sum(self):
        inst = SweepInstance(3, [Dag(3, [])])
        s = latency_list_schedule(
            inst, 1, np.zeros(3, dtype=int), task_cost=np.array([2, 3, 5])
        )
        s.validate()
        assert s.makespan == 10

    def test_weighted_chain(self):
        g = Dag.from_edge_list(2, [(0, 1)])
        inst = SweepInstance(2, [g])
        s = latency_list_schedule(
            inst, 2, np.array([0, 1]), task_cost=np.array([4, 2])
        )
        assert s.start[1] == 4
        assert s.makespan == 6

    def test_long_task_does_not_block_other_proc(self):
        inst = SweepInstance(2, [Dag(2, [])])
        s = latency_list_schedule(
            inst, 2, np.array([0, 1]), task_cost=np.array([10, 1])
        )
        assert s.start[1] == 0

    def test_rejects_nonpositive_cost(self, chain_instance):
        with pytest.raises(InvalidScheduleError, match="positive"):
            latency_list_schedule(
                chain_instance, 2, np.zeros(4, dtype=int),
                task_cost=np.zeros(8, dtype=int),
            )

    def test_rejects_bad_cost_shape(self, chain_instance):
        with pytest.raises(InvalidScheduleError, match="task_cost"):
            latency_list_schedule(
                chain_instance, 2, np.zeros(4, dtype=int),
                task_cost=np.ones(3, dtype=int),
            )


class TestTimedValidator:
    def test_catches_overlap(self, chain_instance):
        s = latency_list_schedule(chain_instance, 2, np.zeros(4, dtype=int))
        s.duration = s.duration.copy()
        s.duration[0] = 10  # now overlaps the next task on its proc
        with pytest.raises(InvalidScheduleError, match="overlap"):
            s.validate()

    def test_catches_latency_violation(self):
        g = Dag.from_edge_list(2, [(0, 1)])
        inst = SweepInstance(2, [g])
        s = latency_list_schedule(inst, 2, np.array([0, 1]), comm_latency=0)
        s.comm_latency = 3  # claim a latency the schedule never honoured
        with pytest.raises(InvalidScheduleError, match="latency"):
            s.validate()

    def test_catches_zero_duration(self, chain_instance):
        s = latency_list_schedule(chain_instance, 2, np.zeros(4, dtype=int))
        s.duration = s.duration.copy()
        s.duration[0] = 0
        with pytest.raises(InvalidScheduleError, match="positive"):
            s.validate()


class TestPropertyFeasibility:
    @given(
        sweep_instances(max_n=12, max_k=3),
        st.integers(0, 6),
        st.integers(1, 3),
    )
    @settings(max_examples=30, deadline=None)
    def test_always_feasible(self, inst, latency, max_cost):
        rng = np.random.default_rng(0)
        m = 2
        assignment = rng.integers(0, m, size=inst.n_cells)
        costs = rng.integers(1, max_cost + 1, size=inst.n_tasks)
        s = latency_list_schedule(
            inst, m, assignment, task_cost=costs, comm_latency=latency
        )
        s.validate()
        assert s.makespan >= int(costs.sum()) // m
