"""Property-based tests over random meshes and sweep directions.

Hypothesis drives point clouds and direction angles; the invariants are
the contracts everything downstream assumes: valid meshes, acyclic sweep
DAGs, orientation consistency, cell-closure (divergence theorem), and
coverage of the whole mesh by every sweep.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mesh import Mesh
from repro.sweeps import sweep_dag, sweep_edges


@st.composite
def point_clouds_2d(draw):
    seed = draw(st.integers(0, 2**31 - 1))
    n = draw(st.integers(min_value=10, max_value=60))
    rng = np.random.default_rng(seed)
    return rng.random((n, 2))


@st.composite
def point_clouds_3d(draw):
    seed = draw(st.integers(0, 2**31 - 1))
    n = draw(st.integers(min_value=12, max_value=50))
    rng = np.random.default_rng(seed)
    return rng.random((n, 3))


angles = st.floats(min_value=0.0, max_value=2 * np.pi, allow_nan=False)


class TestRandomMeshInvariants:
    @given(point_clouds_2d())
    @settings(max_examples=25, deadline=None)
    def test_2d_mesh_valid(self, pts):
        mesh = Mesh.from_delaunay(pts)
        mesh.validate()
        assert mesh.cell_volumes.min() >= 0
        # Euler-ish sanity: triangles <= 2 * points.
        assert mesh.n_cells <= 2 * pts.shape[0]

    @given(point_clouds_3d())
    @settings(max_examples=15, deadline=None)
    def test_3d_mesh_valid(self, pts):
        mesh = Mesh.from_delaunay(pts)
        mesh.validate()

    @given(point_clouds_2d())
    @settings(max_examples=20, deadline=None)
    def test_cell_closure(self, pts):
        """Divergence theorem per cell: interior + boundary face normals
        (area-weighted) of each cell sum to ~0.  This is the identity
        the white-boundary infinite-medium proof rests on."""
        mesh = Mesh.from_delaunay(pts)
        acc = np.zeros((mesh.n_cells, 2))
        if mesh.n_faces:
            w = mesh.face_normals * mesh.face_areas[:, None]
            np.add.at(acc, mesh.adjacency[:, 0], w)
            np.add.at(acc, mesh.adjacency[:, 1], -w)
        if mesh.boundary_cells is not None and mesh.boundary_cells.size:
            bw = mesh.boundary_normals * mesh.boundary_areas[:, None]
            np.add.at(acc, mesh.boundary_cells, bw)
        assert np.abs(acc).max() < 1e-9


class TestRandomSweepInvariants:
    @given(point_clouds_2d(), angles)
    @settings(max_examples=30, deadline=None)
    def test_sweep_dag_acyclic_without_breaking(self, pts, theta):
        """Delaunay meshes admit acyclic sweeps for any direction
        (Edelsbrunner's acyclicity theorem) — the Dag constructor
        verifies acyclicity, so construction succeeding is the test."""
        mesh = Mesh.from_delaunay(pts)
        w = np.array([np.cos(theta), np.sin(theta)])
        sweep_dag(mesh, w, allow_cycle_breaking=False)

    @given(point_clouds_2d(), angles)
    @settings(max_examples=25, deadline=None)
    def test_opposite_direction_reverses(self, pts, theta):
        mesh = Mesh.from_delaunay(pts)
        w = np.array([np.cos(theta), np.sin(theta)])
        fwd = {tuple(e) for e in sweep_edges(mesh, w).tolist()}
        bwd = {tuple(e) for e in sweep_edges(mesh, -w).tolist()}
        assert fwd == {(v, u) for (u, v) in bwd}

    @given(point_clouds_2d(), angles)
    @settings(max_examples=25, deadline=None)
    def test_every_cell_reachable_in_levels(self, pts, theta):
        mesh = Mesh.from_delaunay(pts)
        w = np.array([np.cos(theta), np.sin(theta)])
        g = sweep_dag(mesh, w)
        assert g.level_of().min() >= 0  # every cell placed in a level

    @given(point_clouds_2d(), angles)
    @settings(max_examples=20, deadline=None)
    def test_levels_follow_projection_on_average(self, pts, theta):
        """Downstream levels sit (weakly) further along the sweep
        direction: mean projection is nondecreasing with level for the
        first vs last level."""
        mesh = Mesh.from_delaunay(pts)
        w = np.array([np.cos(theta), np.sin(theta)])
        g = sweep_dag(mesh, w)
        if g.num_levels() < 2 or g.num_edges == 0:
            return
        proj = mesh.centroids @ w
        levels = g.levels()
        assert proj[levels[0]].mean() <= proj[levels[-1]].mean() + 1e-9
