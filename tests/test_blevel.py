"""Tests for the b-level (HLFET) heuristic."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core import Dag, SweepInstance
from repro.heuristics import ALGORITHMS, blevel_priorities, blevel_schedule

from .strategies import sweep_instances


class TestPriorities:
    def test_chain_blevels(self, chain_instance):
        b = blevel_priorities(chain_instance)
        assert list(b[:4]) == [4, 3, 2, 1]
        assert list(b[4:]) == [1, 2, 3, 4]

    def test_deepest_task_first_on_one_proc(self):
        # Two roots: 0 heads a chain of 3, 1 is isolated.
        g = Dag.from_edge_list(4, [(0, 2), (2, 3)])
        inst = SweepInstance(4, [g])
        s = blevel_schedule(inst, 1, assignment=np.zeros(4, dtype=int), seed=0)
        assert s.start[0] < s.start[1]


class TestSchedule:
    def test_feasible(self, tet_instance):
        s = blevel_schedule(tet_instance, 4, seed=0)
        s.validate()
        assert s.meta["algorithm"] == "blevel"

    def test_with_delays(self, tet_instance):
        s = blevel_schedule(tet_instance, 4, seed=0, with_delays=True)
        s.validate()
        assert s.meta["algorithm"] == "blevel_delays"

    def test_registered(self):
        assert "blevel" in ALGORITHMS and "blevel_delays" in ALGORITHMS

    def test_beats_fifo_on_deep_instance(self):
        """On a deep chain plus filler, critical-path awareness wins."""
        edges = [(i, i + 1) for i in range(29)]
        g = Dag.from_edge_list(60, edges)  # 30-chain + 30 isolated
        inst = SweepInstance(60, [g])
        assignment = np.arange(60) % 2
        b = blevel_schedule(inst, 2, assignment=assignment)
        f = ALGORITHMS["fifo"](inst, 2, assignment=assignment)
        assert b.makespan <= f.makespan

    @given(sweep_instances(max_n=12, max_k=3))
    @settings(max_examples=15, deadline=None)
    def test_always_feasible(self, inst):
        blevel_schedule(inst, 2, seed=0).validate()
