"""Tests for the level / descendant / DFDS / FIFO heuristics."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core import Dag, SweepInstance
from repro.heuristics import (
    ALGORITHMS,
    algorithm_names,
    descendant_counts_per_task,
    descendant_priority_schedule,
    dfds_priorities,
    dfds_schedule,
    fifo_schedule,
    get_algorithm,
    graham_relaxed_schedule,
    level_priority_schedule,
)
from repro.util.errors import ReproError

from .strategies import sweep_instances


class TestLevelPriority:
    def test_feasible(self, tet_instance):
        s = level_priority_schedule(tet_instance, 4, seed=0)
        s.validate()
        assert s.meta["algorithm"] == "level"

    def test_with_delays_is_algorithm2(self, tet_instance):
        """level+delays must produce exactly Algorithm 2's schedule for
        the same randomness."""
        from repro.core import random_delay_priority_schedule

        rng = np.random.default_rng(0)
        delays = rng.integers(0, tet_instance.k, size=tet_instance.k)
        assignment = rng.integers(0, 4, size=tet_instance.n_cells)
        a = level_priority_schedule(
            tet_instance, 4, assignment=assignment, with_delays=True, delays=delays
        )
        b = random_delay_priority_schedule(
            tet_instance, 4, assignment=assignment, delays=delays
        )
        assert np.array_equal(a.start, b.start)

    def test_no_delay_meta(self, chain_instance):
        s = level_priority_schedule(chain_instance, 2, seed=0)
        assert list(s.meta["delays"]) == [0, 0]


class TestDescendantPriority:
    def test_counts_per_task_match_dags(self, chain_instance):
        counts = descendant_counts_per_task(chain_instance, exact=True)
        assert list(counts[:4]) == [3, 2, 1, 0]
        assert list(counts[4:]) == [0, 1, 2, 3]

    def test_feasible(self, tet_instance):
        s = descendant_priority_schedule(tet_instance, 4, seed=0)
        s.validate()

    def test_with_delays_feasible(self, tet_instance):
        s = descendant_priority_schedule(tet_instance, 4, seed=0, with_delays=True)
        s.validate()
        assert s.meta["algorithm"] == "descendant_delays"

    def test_many_descendants_run_first_on_one_proc(self):
        """On 1 processor with no precedence among some tasks, the task
        with the most descendants runs first."""
        g = Dag.from_edge_list(3, [(0, 2)])  # 0 has 1 descendant, 1 has 0
        inst = SweepInstance(3, [g])
        s = descendant_priority_schedule(
            inst, 1, assignment=np.zeros(3, dtype=int), seed=0
        )
        assert s.start[0] < s.start[1]


class TestDFDS:
    def test_priorities_hand_example(self):
        """Chain 0->1->2 split across two processors at the 1|2 boundary.

        b-levels: [3, 2, 1]; K = num_levels = 3.
        Task 1 has an off-processor child (2): priority = b(2) + K = 4.
        Task 0 has no off-proc children, child priority 4: priority 3.
        Task 2 is a leaf with no off-proc descendants: priority 0.
        """
        g = Dag.from_edge_list(3, [(0, 1), (1, 2)])
        inst = SweepInstance(3, [g])
        pr = dfds_priorities(inst, np.array([0, 0, 1]))
        assert list(pr) == [3, 4, 0]

    def test_priorities_zero_when_no_cross_edges(self):
        g = Dag.from_edge_list(3, [(0, 1), (1, 2)])
        inst = SweepInstance(3, [g])
        pr = dfds_priorities(inst, np.zeros(3, dtype=int))
        assert list(pr) == [0, 0, 0]

    def test_feasible(self, tet_instance):
        s = dfds_schedule(tet_instance, 4, seed=0)
        s.validate()
        assert s.meta["algorithm"] == "dfds"

    def test_with_delays_feasible(self, tet_instance):
        s = dfds_schedule(tet_instance, 4, seed=0, with_delays=True)
        s.validate()

    def test_off_proc_feeder_prioritised(self):
        """A root feeding another processor beats a root feeding no one."""
        # Direction DAG: 0 -> 1 (cross-proc), 2 isolated; all on proc 0
        # except cell 1.
        g = Dag.from_edge_list(3, [(0, 1)])
        inst = SweepInstance(3, [g])
        assignment = np.array([0, 1, 0])
        s = dfds_schedule(inst, 2, assignment=assignment, seed=0)
        assert s.start[0] < s.start[2]


class TestBaselines:
    def test_fifo_feasible(self, tet_instance):
        s = fifo_schedule(tet_instance, 4, seed=0)
        s.validate()
        assert s.meta["algorithm"] == "fifo"

    def test_graham_relaxed_width(self, tet_instance):
        r = graham_relaxed_schedule(tet_instance, 4)
        assert np.bincount(r.start).max() <= 4


class TestRegistry:
    def test_all_names_resolve(self):
        for name in algorithm_names():
            assert callable(get_algorithm(name))

    def test_unknown_name_raises_with_hint(self):
        with pytest.raises(ReproError, match="known:"):
            get_algorithm("nope")

    def test_registry_covers_paper_algorithms(self):
        for required in (
            "random_delay",
            "random_delay_priority",
            "improved_random_delay",
            "level",
            "descendant",
            "dfds",
        ):
            assert required in ALGORITHMS

    @pytest.mark.parametrize("name", sorted(ALGORITHMS))
    def test_every_algorithm_feasible_on_mesh(self, tet_instance, name):
        s = ALGORITHMS[name](tet_instance, 8, seed=0)
        s.validate()
        assert s.makespan >= 1

    @given(sweep_instances(max_n=10, max_k=3))
    @settings(max_examples=10, deadline=None)
    def test_all_algorithms_feasible_on_random_instances(self, inst):
        for name in ALGORITHMS:
            s = ALGORITHMS[name](inst, 2, seed=0)
            s.validate()
