"""Tests for Algorithm 3 (Improved Random Delay)."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.core import (
    improved_random_delay_schedule,
    preprocess_levels,
)
from repro.util.errors import InvalidScheduleError

from .strategies import sweep_instances


class TestPreprocessing:
    def test_width_at_most_m(self, tet_instance):
        """The whole point of step 1: every preprocessed layer holds at
        most m tasks (over all directions combined)."""
        m = 4
        levels = preprocess_levels(tet_instance, m)
        counts = np.bincount(levels)
        assert counts.max() <= m

    def test_precedence_respected_within_directions(self, tet_instance):
        levels = preprocess_levels(tet_instance, 4)
        union = tet_instance.union_dag()
        src, dst = union.edges[:, 0], union.edges[:, 1]
        assert np.all(levels[src] < levels[dst])

    def test_deterministic(self, tet_instance):
        a = preprocess_levels(tet_instance, 4)
        b = preprocess_levels(tet_instance, 4)
        assert np.array_equal(a, b)


class TestAlgorithm3:
    def test_feasible(self, tet_instance):
        s = improved_random_delay_schedule(tet_instance, 8, seed=0)
        s.validate()

    def test_priorities_variant_feasible_and_compact(self, tet_instance):
        layered = improved_random_delay_schedule(tet_instance, 8, seed=5)
        compact = improved_random_delay_schedule(
            tet_instance, 8, seed=5, priorities=True
        )
        compact.validate()
        assert compact.makespan <= layered.makespan
        assert compact.meta["algorithm"] == "improved_random_delay_priority"

    def test_meta_records_preprocess_makespan(self, tet_instance):
        s = improved_random_delay_schedule(tet_instance, 8, seed=0)
        t = s.meta["preprocess_makespan"]
        assert t == int(preprocess_levels(tet_instance, 8).max()) + 1

    def test_reuse_preprocessed_levels(self, tet_instance):
        pre = preprocess_levels(tet_instance, 8)
        a = improved_random_delay_schedule(
            tet_instance, 8, seed=9, preprocessed=pre
        )
        b = improved_random_delay_schedule(tet_instance, 8, seed=9)
        assert np.array_equal(a.start, b.start)

    def test_rejects_bad_preprocessed_shape(self, chain_instance):
        with pytest.raises(InvalidScheduleError, match="preprocessed"):
            improved_random_delay_schedule(
                chain_instance, 2, seed=0, preprocessed=np.zeros(3, dtype=int)
            )

    def test_explicit_delays_and_assignment(self, chain_instance):
        s = improved_random_delay_schedule(
            chain_instance,
            2,
            delays=np.array([0, 1]),
            assignment=np.array([0, 0, 1, 1]),
        )
        s.validate()
        assert list(s.meta["delays"]) == [0, 1]

    @given(sweep_instances())
    @settings(max_examples=20, deadline=None)
    def test_always_feasible(self, inst):
        s = improved_random_delay_schedule(inst, 2, seed=0)
        s.validate()

    @given(sweep_instances(max_n=12, max_k=3))
    @settings(max_examples=15, deadline=None)
    def test_preprocess_width_property(self, inst):
        m = 2
        levels = preprocess_levels(inst, m)
        assert np.bincount(levels).max() <= m
