"""Tests for the PartGraph container."""

import numpy as np
import pytest

from repro.partition import PartGraph
from repro.util.errors import PartitionError


class TestFromEdges:
    def test_symmetric_csr(self):
        g = PartGraph.from_edges(3, np.array([[0, 1], [1, 2]]))
        assert sorted(g.neighbors(1).tolist()) == [0, 2]
        assert g.neighbors(0).tolist() == [1]
        assert g.num_undirected_edges == 2

    def test_parallel_edges_merge_weights(self):
        g = PartGraph.from_edges(2, np.array([[0, 1], [1, 0], [0, 1]]))
        assert g.num_undirected_edges == 1
        assert g.edge_weights_of(0).tolist() == [3]

    def test_self_loops_dropped(self):
        g = PartGraph.from_edges(2, np.array([[0, 0], [0, 1]]))
        assert g.num_undirected_edges == 1

    def test_custom_weights(self):
        g = PartGraph.from_edges(
            3,
            np.array([[0, 1], [1, 2]]),
            edge_weights=np.array([5, 7]),
            node_weights=np.array([1, 2, 3]),
        )
        assert g.total_vertex_weight == 6
        idx = g.neighbors(1).tolist().index(2)
        assert g.edge_weights_of(1)[idx] == 7

    def test_degree(self):
        g = PartGraph.from_edges(3, np.array([[0, 1], [0, 2]]))
        assert g.degree(0) == 2
        assert g.degree(1) == 1

    def test_empty_graph(self):
        g = PartGraph.from_edges(4, np.empty((0, 2)))
        assert g.num_undirected_edges == 0
        assert g.total_vertex_weight == 4

    def test_rejects_out_of_range(self):
        with pytest.raises(PartitionError, match="endpoints"):
            PartGraph.from_edges(2, np.array([[0, 5]]))

    def test_rejects_bad_weight_shapes(self):
        with pytest.raises(PartitionError, match="edge_weights"):
            PartGraph.from_edges(2, np.array([[0, 1]]), edge_weights=np.array([1, 2]))
        with pytest.raises(PartitionError, match="node_weights"):
            PartGraph.from_edges(2, np.array([[0, 1]]), node_weights=np.array([1]))

    def test_repr(self):
        g = PartGraph.from_edges(3, np.array([[0, 1]]))
        assert "n=3" in repr(g)
