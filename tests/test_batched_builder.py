"""Equivalence lockdown for the batched instance builder.

``build_instance_batched`` must be **bit-identical** to the seed
per-direction path (``build_instance``) — same edge arrays in the same
order, same CSR, same levels/topo orders, same ``task_levels`` — while
skipping the Tarjan SCC pass whenever the acyclicity fast-path
predicate holds.  This battery locks that contract three ways:

* exhaustive structural comparison on every mesh family (plus frozen
  golden checksums, so drift against *history* is caught even if both
  paths drift together);
* a hypothesis property over random Delaunay meshes and direction sets;
* a mutation test: breaking the fast-path predicate (the
  ``_MUTATION = "skip_cycle_check"`` seam) on a cyclic mesh must be
  caught by the builder's post-check — if that tripwire ever goes
  quiet, the fast path could silently ship cyclic "DAGs".
"""

from __future__ import annotations

import zlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.mesh import Mesh
from repro.mesh.generators import MESH_GENERATORS, make_mesh, mesh_dim
from repro.sweeps import (
    build_instance,
    build_instance_batched,
    directions_for_mesh,
)
from repro.sweeps import dag_builder
from repro.util.errors import InvalidInstanceError, MeshError

#: Frozen golden checksums (crc32 over concatenated per-direction edge
#: arrays + task_levels) at 200 target cells, seed 0, k=8 directions.
#: Both construction paths must reproduce these exactly.
_INSTANCE_GOLD = {
    "graded": 3233559384,
    "long": 3042950856,
    "prismtet": 412897267,
    "square2d": 1934557786,
    "tetonly": 1530540627,
    "well_logging": 3202847548,
}


def _instance_blob(inst) -> bytes:
    return (
        b"".join(g.edges.tobytes() for g in inst.dags)
        + inst.task_levels().tobytes()
    )


def _assert_instances_identical(a, b) -> None:
    """Structural bit-identity: edges, CSR, levels, topo, task_levels."""
    assert a.n_cells == b.n_cells and a.k == b.k
    for ga, gb in zip(a.dags, b.dags):
        assert np.array_equal(ga.edges, gb.edges)
        off_a, tgt_a = ga.successor_csr()
        off_b, tgt_b = gb.successor_csr()
        assert np.array_equal(off_a, off_b)
        assert np.array_equal(tgt_a, tgt_b)
        assert ga.num_levels() == gb.num_levels()
        assert np.array_equal(ga.level_of(), gb.level_of())
        assert np.array_equal(ga.topological_order(), gb.topological_order())
    assert np.array_equal(a.task_levels(), b.task_levels())


def cyclic_triangle_mesh() -> Mesh:
    """Three cells in a rotational flow: every +x face normal has a
    positive x-component, so direction ``(1, 0)`` induces the 3-cycle
    ``0 -> 1 -> 2 -> 0`` and forces the cycle-breaking fallback."""
    angles = np.deg2rad([10.0, 20.0, 30.0])
    normals = np.stack([np.cos(angles), np.sin(angles)], axis=1)
    mesh = Mesh(
        points=np.empty((0, 2)),
        cells=None,
        adjacency=np.array([[0, 1], [1, 2], [2, 0]], dtype=np.int64),
        face_normals=normals,
        centroids=np.array([[0.0, 0.0], [1.0, 0.0], [0.5, 1.0]]),
        name="cyclic_triangle",
    )
    mesh.validate()
    return mesh


class TestFamilyEquivalence:
    @pytest.mark.parametrize("family", sorted(MESH_GENERATORS))
    def test_bit_identical_to_seed_path(self, family):
        mesh = make_mesh(family, target_cells=200, seed=0)
        dirs = directions_for_mesh(mesh_dim(family), 8)
        _assert_instances_identical(
            build_instance(mesh, dirs), build_instance_batched(mesh, dirs)
        )

    @pytest.mark.parametrize("family", sorted(_INSTANCE_GOLD))
    def test_golden_instance_checksum(self, family):
        mesh = make_mesh(family, target_cells=200, seed=0)
        dirs = directions_for_mesh(mesh_dim(family), 8)
        inst = build_instance_batched(mesh, dirs)
        assert zlib.crc32(_instance_blob(inst)) == _INSTANCE_GOLD[family]

    def test_prebuilt_task_levels_match_lazy(self):
        """The batched builder's pre-installed task_levels equal what the
        lazy per-dag path would have computed from scratch."""
        mesh = make_mesh("tetonly", target_cells=200, seed=0)
        dirs = directions_for_mesh(3, 8)
        batched = build_instance_batched(mesh, dirs)
        assert batched._task_level is not None
        lazy = build_instance(mesh, dirs)
        assert lazy._task_level is None
        assert np.array_equal(batched.task_levels(), lazy.task_levels())

    def test_name_and_cell_graph(self):
        mesh = make_mesh("tetonly", target_cells=120, seed=0)
        dirs = directions_for_mesh(3, 4)
        inst = build_instance_batched(mesh, dirs)
        assert inst.name.endswith("_k4")
        assert np.array_equal(inst.cell_graph_edges, mesh.adjacency)
        named = build_instance_batched(mesh, dirs, name="custom")
        assert named.name == "custom"

    def test_rejects_wrong_direction_dim(self):
        mesh = make_mesh("tetonly", target_cells=120, seed=0)
        with pytest.raises(MeshError, match="directions"):
            build_instance_batched(mesh, np.ones((4, 2)))

    def test_zero_directions_rejected_like_seed_path(self):
        mesh = make_mesh("tetonly", target_cells=120, seed=0)
        with pytest.raises(InvalidInstanceError, match="at least one"):
            build_instance(mesh, np.empty((0, 3)))
        with pytest.raises(InvalidInstanceError, match="at least one"):
            build_instance_batched(mesh, np.empty((0, 3)))


class TestRandomEquivalence:
    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(0, 2**16 - 1),
        n_pts=st.integers(12, 60),
        k=st.integers(1, 6),
        dim=st.sampled_from([2, 3]),
    )
    def test_random_delaunay_bit_identical(self, seed, n_pts, k, dim):
        rng = np.random.default_rng(seed)
        mesh = Mesh.from_delaunay(rng.random((n_pts, dim)), name="rand")
        dirs = directions_for_mesh(dim, 2 * ((k + 1) // 2) * (dim - 1))[:k]
        if dirs.shape[0] == 0:
            return
        _assert_instances_identical(
            build_instance(mesh, dirs), build_instance_batched(mesh, dirs)
        )


class TestCycleFallback:
    def test_cyclic_mesh_matches_seed_path(self):
        """A mesh that defeats the fast path falls back to break_cycles
        and still matches the per-direction reference bit-for-bit."""
        mesh = cyclic_triangle_mesh()
        dirs = np.array([[1.0, 0.0], [-1.0, 0.0], [0.0, 1.0]])
        _assert_instances_identical(
            build_instance(mesh, dirs), build_instance_batched(mesh, dirs)
        )

    def test_cyclic_direction_is_acyclic_after_fallback(self):
        mesh = cyclic_triangle_mesh()
        inst = build_instance_batched(mesh, np.array([[1.0, 0.0]]))
        assert inst.dags[0].num_levels() >= 1
        # break_cycles dropped at least one of the three cycle edges.
        assert inst.dags[0].edges.shape[0] < 3

    def test_mutation_breaking_fast_path_is_caught(self, monkeypatch):
        """The mutation battery's tripwire: force every direction down
        the skip-Tarjan path on a cyclic mesh; the builder's post-check
        must refuse to return a cyclic 'DAG'."""
        monkeypatch.setattr(dag_builder, "_MUTATION", "skip_cycle_check")
        with pytest.raises(InvalidInstanceError, match="cycle-check"):
            build_instance_batched(
                cyclic_triangle_mesh(), np.array([[1.0, 0.0]])
            )

    def test_mutation_is_inert_on_acyclic_meshes(self, monkeypatch):
        """Armed on a genuinely acyclic mesh the mutation changes
        nothing: the fast path was going to be taken anyway."""
        mesh = make_mesh("square2d", target_cells=60, seed=0)
        dirs = directions_for_mesh(2, 4)
        reference = build_instance_batched(mesh, dirs)
        monkeypatch.setattr(dag_builder, "_MUTATION", "skip_cycle_check")
        _assert_instances_identical(
            reference, build_instance_batched(mesh, dirs)
        )


class TestObsInstrumentation:
    @pytest.fixture
    def traced(self):
        was = obs.tracing_enabled()
        obs.enable_tracing()
        obs.reset()
        yield
        obs.reset()
        if not was:
            obs.disable_tracing()

    def test_tarjan_skipped_counter(self, traced):
        mesh = make_mesh("tetonly", target_cells=120, seed=0)
        dirs = directions_for_mesh(3, 8)
        build_instance_batched(mesh, dirs)
        metrics = obs.drain_metrics()
        # Delaunay meshes are acyclic in every direction: all k skip.
        assert metrics["counters"]["build.tarjan_skipped"] == dirs.shape[0]

    def test_build_spans_emitted(self, traced):
        mesh = make_mesh("tetonly", target_cells=120, seed=0)
        build_instance_batched(mesh, directions_for_mesh(3, 4))
        names = {s.name for s in obs.drain_spans()}
        assert {
            "build.edges", "build.cycle_check", "build.csr", "build.levels"
        } <= names
