"""Tests for coarsening, initial bisection, FM refinement, and k-way."""

import numpy as np
import pytest

from repro.mesh import Mesh
from repro.partition import (
    PartGraph,
    balance,
    bisection_cut,
    block_sizes,
    contract,
    edge_cut,
    fm_refine,
    greedy_graph_growing,
    heavy_edge_matching,
    multilevel_bisect,
    partition_graph,
    partition_mesh_blocks,
    random_blocks,
)
from repro.util.errors import PartitionError
from repro.util.rng import as_rng


def grid_graph(nx_, ny_):
    """nx_ x ny_ grid as a PartGraph."""
    mesh = Mesh.structured_grid((nx_, ny_))
    return PartGraph.from_edges(mesh.n_cells, mesh.adjacency), mesh


class TestMatching:
    def test_matching_is_symmetric_involution(self, rng):
        g, _ = grid_graph(6, 6)
        match = heavy_edge_matching(g, rng)
        for v in range(g.n):
            assert match[match[v]] == v

    def test_matched_pairs_are_adjacent(self, rng):
        g, _ = grid_graph(5, 5)
        match = heavy_edge_matching(g, rng)
        for v in range(g.n):
            if match[v] != v:
                assert match[v] in g.neighbors(v)

    def test_prefers_heavy_edges(self):
        """Path 0-1-2 with weights 1 / 100.  Whenever vertex 1 or 2 is
        visited first the heavy pair (1,2) forms; only a first visit to
        vertex 0 can steal 1.  So (1,2) should dominate across seeds."""
        g = PartGraph.from_edges(
            3, np.array([[0, 1], [1, 2]]), edge_weights=np.array([1, 100])
        )
        heavy = sum(
            heavy_edge_matching(g, as_rng(seed))[1] == 2 for seed in range(60)
        )
        assert heavy > 30  # expectation is ~40 of 60


class TestContraction:
    def test_preserves_total_vertex_weight(self, rng):
        g, _ = grid_graph(6, 4)
        match = heavy_edge_matching(g, rng)
        level = contract(g, match)
        assert level.graph.total_vertex_weight == g.total_vertex_weight

    def test_shrinks_graph(self, rng):
        g, _ = grid_graph(8, 8)
        match = heavy_edge_matching(g, rng)
        level = contract(g, match)
        assert level.graph.n < g.n

    def test_fine_to_coarse_consistent_with_match(self, rng):
        g, _ = grid_graph(5, 5)
        match = heavy_edge_matching(g, rng)
        level = contract(g, match)
        f2c = level.fine_to_coarse
        for v in range(g.n):
            assert f2c[v] == f2c[match[v]]

    def test_cut_weight_preserved_under_projection(self, rng):
        """Any coarse bisection has the same cut as its fine projection."""
        g, _ = grid_graph(6, 6)
        match = heavy_edge_matching(g, rng)
        level = contract(g, match)
        coarse_side = np.zeros(level.graph.n, dtype=bool)
        coarse_side[: level.graph.n // 2] = True
        fine_side = coarse_side[level.fine_to_coarse]
        assert bisection_cut(level.graph, coarse_side) == bisection_cut(g, fine_side)


class TestInitialBisection:
    def test_reaches_target_weight(self, rng):
        g, _ = grid_graph(8, 8)
        side = greedy_graph_growing(g, 32, rng)
        w = int(g.vwgt[side].sum())
        assert 32 <= w <= 33  # may overshoot by one vertex

    def test_cut_on_grid_is_reasonable(self, rng):
        # An 8x8 grid's balanced bisection has an optimal cut of 8.
        g, _ = grid_graph(8, 8)
        side = greedy_graph_growing(g, 32, rng, tries=8)
        assert bisection_cut(g, side) <= 16

    def test_zero_target_keeps_everything_off(self, rng):
        g, _ = grid_graph(3, 3)
        side = greedy_graph_growing(g, 0, rng)
        assert not side.any()

    def test_handles_disconnected_graph(self, rng):
        g = PartGraph.from_edges(4, np.array([[0, 1]]))  # 2,3 isolated
        side = greedy_graph_growing(g, 2, rng)
        assert int(side.sum()) == 2


class TestFMRefine:
    def test_never_worsens_cut(self, rng):
        g, _ = grid_graph(8, 8)
        raw = rng.random(g.n) < 0.5
        before = bisection_cut(g, raw)
        refined = fm_refine(g, raw, target_weight=int(raw.sum()))
        assert bisection_cut(g, refined) <= before

    def test_fixes_obviously_bad_bisection(self, rng):
        """A checkerboard split of a grid has a terrible cut; FM must
        improve it massively."""
        g, mesh = grid_graph(8, 8)
        checker = (mesh.cell_coords.sum(axis=1) % 2).astype(bool)
        before = bisection_cut(g, checker)
        refined = fm_refine(g, checker, target_weight=32)
        assert bisection_cut(g, refined) < before / 2

    def test_respects_balance_window(self, rng):
        g, _ = grid_graph(6, 6)
        side = np.zeros(g.n, dtype=bool)
        side[:18] = True
        refined = fm_refine(g, side, target_weight=18, imbalance=0.1)
        w = int(g.vwgt[refined].sum())
        assert 18 * 0.9 - 1 <= w <= 18 * 1.1 + 1

    def test_input_not_mutated(self, rng):
        g, _ = grid_graph(5, 5)
        side = np.zeros(g.n, dtype=bool)
        side[:12] = True
        copy = side.copy()
        fm_refine(g, side, target_weight=12)
        assert np.array_equal(side, copy)

    def test_single_vertex_graph(self):
        g = PartGraph.from_edges(1, np.empty((0, 2)))
        side = np.array([False])
        assert not fm_refine(g, side, 0).any()


class TestMultilevel:
    def test_bisect_grid_quality(self):
        g, _ = grid_graph(16, 16)
        side = multilevel_bisect(g, g.n // 2, seed=0)
        # Optimal cut is 16; multilevel should get within 2x.
        assert bisection_cut(g, side) <= 32
        w = int(side.sum())
        assert abs(w - 128) <= 16

    def test_partition_labels_complete(self):
        g, _ = grid_graph(10, 10)
        labels = partition_graph(g, 5, seed=0)
        assert labels.shape == (100,)
        assert set(labels.tolist()) == {0, 1, 2, 3, 4}

    def test_partition_balanced(self):
        g, _ = grid_graph(12, 12)
        labels = partition_graph(g, 4, seed=0)
        assert balance(labels) < 1.35

    def test_beats_random_on_grid(self):
        g, mesh = grid_graph(12, 12)
        ml = partition_graph(g, 6, seed=0)
        rnd = random_blocks(g.n, g.n // 6, seed=0)
        assert edge_cut(ml, mesh.adjacency) < edge_cut(rnd, mesh.adjacency) / 2

    def test_deterministic(self):
        g, _ = grid_graph(8, 8)
        a = partition_graph(g, 4, seed=3)
        b = partition_graph(g, 4, seed=3)
        assert np.array_equal(a, b)

    def test_k_equals_one(self):
        g, _ = grid_graph(4, 4)
        labels = partition_graph(g, 1, seed=0)
        assert set(labels.tolist()) == {0}

    def test_k_not_power_of_two(self):
        g, _ = grid_graph(9, 9)
        labels = partition_graph(g, 3, seed=0)
        assert set(labels.tolist()) == {0, 1, 2}
        assert balance(labels) < 1.4

    def test_rejects_bad_k(self):
        g, _ = grid_graph(3, 3)
        with pytest.raises(PartitionError, match="n_parts"):
            partition_graph(g, 0)


class TestPartitionMeshBlocks:
    def test_block_size_one_is_identity(self):
        blocks = partition_mesh_blocks(5, np.empty((0, 2)), 1)
        assert blocks.tolist() == [0, 1, 2, 3, 4]

    def test_block_size_covers_all(self, tet_mesh):
        blocks = partition_mesh_blocks(tet_mesh.n_cells, tet_mesh.adjacency, 32, seed=0)
        sizes = block_sizes(blocks)
        assert sizes.sum() == tet_mesh.n_cells
        assert blocks.min() == 0

    def test_huge_block_size_single_block(self):
        blocks = partition_mesh_blocks(10, np.empty((0, 2)), 100)
        assert set(blocks.tolist()) == {0}

    def test_zero_cells(self):
        assert partition_mesh_blocks(0, np.empty((0, 2)), 4).size == 0

    def test_rejects_bad_block_size(self):
        with pytest.raises(PartitionError, match="block_size"):
            partition_mesh_blocks(10, np.empty((0, 2)), 0)


class TestWeightedBlocks:
    def test_weighted_partition_balances_work(self):
        """Cells with 10x weight pull block boundaries: weighted blocks
        should balance total weight better than unweighted blocks do."""
        import numpy as np

        from repro.mesh import Mesh
        from repro.partition.multilevel import partition_mesh_blocks

        mesh = Mesh.structured_grid((12, 12))
        rng = np.random.default_rng(0)
        weights = np.ones(mesh.n_cells, dtype=np.int64)
        heavy = rng.choice(mesh.n_cells, size=mesh.n_cells // 8, replace=False)
        weights[heavy] = 10

        def weight_std(blocks):
            totals = np.zeros(int(blocks.max()) + 1)
            np.add.at(totals, blocks, weights.astype(float))
            return float(totals.std())

        plain = partition_mesh_blocks(mesh.n_cells, mesh.adjacency, 18, seed=0)
        weighted = partition_mesh_blocks(
            mesh.n_cells, mesh.adjacency, 18, seed=0, cell_weights=weights
        )
        assert weight_std(weighted) < weight_std(plain)

    def test_weight_validation(self):
        import numpy as np
        import pytest as _pytest

        from repro.partition.multilevel import partition_mesh_blocks
        from repro.util.errors import PartitionError

        edges = np.array([[0, 1], [1, 2], [2, 3]])
        with _pytest.raises(PartitionError, match="one entry per cell"):
            partition_mesh_blocks(4, edges, 2, cell_weights=np.ones(3, dtype=int))
        with _pytest.raises(PartitionError, match="integers"):
            partition_mesh_blocks(4, edges, 2, cell_weights=np.ones(4))
        with _pytest.raises(PartitionError, match="positive"):
            partition_mesh_blocks(4, edges, 2, cell_weights=np.zeros(4, dtype=int))
