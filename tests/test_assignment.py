"""Tests for cell->processor assignment strategies."""

import numpy as np
import pytest

from repro.core import (
    balanced_random_assignment,
    block_assignment,
    random_cell_assignment,
    round_robin_assignment,
)
from repro.util.errors import InvalidScheduleError


class TestRandomCellAssignment:
    def test_range_and_shape(self):
        a = random_cell_assignment(100, 7, seed=0)
        assert a.shape == (100,)
        assert a.min() >= 0 and a.max() < 7

    def test_deterministic(self):
        assert np.array_equal(
            random_cell_assignment(50, 4, seed=3),
            random_cell_assignment(50, 4, seed=3),
        )

    def test_roughly_uniform(self):
        a = random_cell_assignment(10_000, 4, seed=0)
        counts = np.bincount(a, minlength=4)
        assert counts.min() > 2000  # each proc within ~20% of 2500

    def test_rejects_nonpositive_m(self):
        with pytest.raises(InvalidScheduleError, match="positive"):
            random_cell_assignment(10, 0)

    def test_zero_cells(self):
        assert random_cell_assignment(0, 3, seed=0).shape == (0,)


class TestBlockAssignment:
    def test_cells_of_one_block_share_processor(self):
        blocks = np.array([0, 0, 1, 1, 2, 2])
        a = block_assignment(blocks, 4, seed=0)
        assert a[0] == a[1] and a[2] == a[3] and a[4] == a[5]

    def test_noncontiguous_block_ids_accepted(self):
        blocks = np.array([10, 10, 99, 99])
        a = block_assignment(blocks, 2, seed=0)
        assert a[0] == a[1] and a[2] == a[3]

    def test_balanced_mode_spreads_blocks(self):
        blocks = np.arange(8)  # 8 singleton blocks
        a = block_assignment(blocks, 4, seed=0, balanced=True)
        counts = np.bincount(a, minlength=4)
        assert list(counts) == [2, 2, 2, 2]

    def test_random_mode_range(self):
        blocks = np.arange(100) % 10
        a = block_assignment(blocks, 3, seed=1)
        assert a.min() >= 0 and a.max() < 3

    def test_deterministic(self):
        blocks = np.arange(20) % 5
        assert np.array_equal(
            block_assignment(blocks, 3, seed=2),
            block_assignment(blocks, 3, seed=2),
        )


class TestDeterministicAssignments:
    def test_round_robin(self):
        assert list(round_robin_assignment(5, 2)) == [0, 1, 0, 1, 0]

    def test_balanced_random_loads_differ_by_at_most_one(self):
        a = balanced_random_assignment(10, 3, seed=0)
        counts = np.bincount(a, minlength=3)
        assert counts.max() - counts.min() <= 1

    def test_balanced_random_is_random(self):
        a = balanced_random_assignment(30, 3, seed=0)
        b = balanced_random_assignment(30, 3, seed=1)
        assert not np.array_equal(a, b)
