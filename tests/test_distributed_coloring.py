"""Tests for the randomized distributed edge coloring ([11])."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.comm import distributed_edge_coloring, max_degree
from repro.util.errors import ReproError


def assert_proper(edges, colors):
    for i in range(len(edges)):
        for j in range(i + 1, len(edges)):
            if set(edges[i]) & set(edges[j]):
                assert colors[i] != colors[j]


class TestBasics:
    def test_triangle(self):
        edges = np.array([[0, 1], [1, 2], [0, 2]])
        res = distributed_edge_coloring(edges, 3, seed=0)
        assert_proper(edges.tolist(), res.colors)
        assert res.palette_size == 4  # 2 * Delta

    def test_star(self):
        edges = np.array([[0, i] for i in range(1, 8)])
        res = distributed_edge_coloring(edges, 8, seed=0)
        assert np.unique(res.colors).size == 7  # all distinct at the hub

    def test_parallel_edges(self):
        edges = np.array([[0, 1], [0, 1], [0, 1]])
        res = distributed_edge_coloring(edges, 2, seed=0)
        assert np.unique(res.colors).size == 3

    def test_empty(self):
        res = distributed_edge_coloring(np.empty((0, 2)), 4, seed=0)
        assert res.colors.size == 0
        assert res.rounds == 0

    def test_deterministic_given_seed(self):
        rng = np.random.default_rng(1)
        edges = rng.integers(0, 12, size=(40, 2))
        edges = edges[edges[:, 0] != edges[:, 1]]
        a = distributed_edge_coloring(edges, 12, seed=5)
        b = distributed_edge_coloring(edges, 12, seed=5)
        assert np.array_equal(a.colors, b.colors)
        assert a.rounds == b.rounds

    def test_rejects_self_loop(self):
        with pytest.raises(ReproError, match="self-loop"):
            distributed_edge_coloring(np.array([[2, 2]]), 3)

    def test_rejects_tiny_palette_factor(self):
        with pytest.raises(ReproError, match="palette_factor"):
            distributed_edge_coloring(np.array([[0, 1]]), 2, palette_factor=0.9)


class TestConvergence:
    def test_rounds_logarithmic_empirically(self):
        """A 300-edge random multigraph should color in ~O(log E) rounds
        (the [11] result); allow a generous constant."""
        rng = np.random.default_rng(0)
        edges = rng.integers(0, 40, size=(300, 2))
        edges = edges[edges[:, 0] != edges[:, 1]]
        res = distributed_edge_coloring(edges, 40, seed=0)
        assert res.rounds <= 40  # log2(300) ~ 8; huge slack for safety
        assert_proper(edges[:60].tolist(), res.colors[:60])

    def test_colors_within_palette(self):
        rng = np.random.default_rng(2)
        edges = rng.integers(0, 15, size=(80, 2))
        edges = edges[edges[:, 0] != edges[:, 1]]
        res = distributed_edge_coloring(edges, 15, seed=0)
        assert res.colors.max() < res.palette_size
        assert res.palette_size <= 2 * max_degree(edges, 15)

    @given(st.integers(0, 10**6))
    @settings(max_examples=20, deadline=None)
    def test_always_proper_random_graphs(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(3, 15))
        e = int(rng.integers(1, 40))
        edges = rng.integers(0, n, size=(e, 2))
        edges = edges[edges[:, 0] != edges[:, 1]]
        if edges.shape[0] == 0:
            return
        res = distributed_edge_coloring(edges, n, seed=seed)
        assert_proper(edges.tolist(), res.colors)
