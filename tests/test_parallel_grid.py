"""Tests for the locality-aware parallel grid dispatcher.

End-to-end coverage of ``run_grid(workers=N)``: bit-identical
equivalence with the serial runner (including communication metrics and
blocked assignment), shared-memory leak checks for both the normal-exit
and worker-crash paths, chunk-planning invariants, and the keyed
aggregation's fail-loudly contract.  The equivalence and leak tests are
marked ``grid_smoke`` so CI runs them as a dedicated job:

    python -m pytest -q -m grid_smoke
"""

import pytest

import repro.parallel.dispatcher as dispatcher_mod
from repro.experiments.configs import ExperimentConfig
from repro.experiments.runner import resolve_workers, run_grid
from repro.parallel import (
    DispatchStats,
    grid_cells,
    list_orphan_segments,
    plan_batches,
    plan_chunks,
)
from repro.util.errors import ReproError

#: Two small presets for the equivalence lockdown: one exercising the
#: communication metrics + blocked assignment on a 3-D mesh, one
#: exercising a cache-heavy priority family (dfds) on a second mesh.
PRESET_COMM = ExperimentConfig(
    mesh="tetonly", target_cells=250, k=4,
    m_values=(4, 16), block_sizes=(1, 8),
    algorithms=("random_delay_priority",),
    seeds=(0, 1), name="grid-comm",
)
PRESET_PRIORITY = ExperimentConfig(
    mesh="long", target_cells=250, k=4,
    m_values=(8,), block_sizes=(1,),
    algorithms=("dfds", "descendant_delays"),
    seeds=(0, 1, 2), name="grid-priority",
)


@pytest.mark.grid_smoke
class TestEquivalence:
    def test_with_comm_preset_bit_identical(self):
        serial = run_grid(PRESET_COMM, with_comm=True, workers=1)
        parallel = run_grid(PRESET_COMM, with_comm=True, workers=2)
        assert serial == parallel

    def test_priority_preset_bit_identical(self):
        serial = run_grid(PRESET_PRIORITY, with_comm=False, workers=1)
        parallel = run_grid(PRESET_PRIORITY, with_comm=False, workers=2)
        assert serial == parallel

    def test_config_workers_field_is_honoured(self):
        from dataclasses import replace

        parallel_cfg = replace(PRESET_PRIORITY, workers=2)
        assert run_grid(parallel_cfg, with_comm=False) == run_grid(
            PRESET_PRIORITY, with_comm=False
        )


@pytest.mark.grid_smoke
class TestLeaks:
    def test_no_segments_after_normal_run(self):
        run_grid(PRESET_COMM, with_comm=False, workers=2)
        assert list_orphan_segments() == []

    def test_no_segments_after_worker_crash(self):
        # The parent never resolves algorithm names (only warm_instance
        # peeks at prefixes), so the unknown name detonates inside a
        # worker mid-grid — the dispatcher must still unlink the store.
        crash = ExperimentConfig(
            mesh="square2d", target_cells=120, k=2,
            m_values=(4,), algorithms=("no_such_algorithm",),
            seeds=(0, 1), name="grid-crash",
        )
        with pytest.raises(ReproError, match="unknown algorithm"):
            run_grid(crash, workers=2)
        assert list_orphan_segments() == []


class TestResolveWorkers:
    def test_explicit_wins_over_config(self):
        cfg = ExperimentConfig(workers=4)
        assert resolve_workers(2, cfg) == 2

    def test_none_defers_to_config(self):
        assert resolve_workers(None, ExperimentConfig(workers=3)) == 3

    def test_zero_means_cpu_count(self):
        import os

        assert resolve_workers(0, ExperimentConfig()) == (os.cpu_count() or 1)

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="workers must be >= 0"):
            resolve_workers(-1, ExperimentConfig())


class TestChunkPlanning:
    CONFIG = ExperimentConfig(
        m_values=(2, 4, 8), block_sizes=(1, 8, 32),
        algorithms=("random_delay", "level"),
        seeds=(0, 1, 2), name="plan",
    )

    def test_grid_cells_is_row_major_and_indexed(self):
        cells = grid_cells(self.CONFIG)
        assert [c.index for c in cells] == list(range(len(cells)))
        n_seeds = len(self.CONFIG.seeds)
        for row_start in range(0, len(cells), n_seeds):
            row = cells[row_start : row_start + n_seeds]
            assert len({(c.algorithm, c.m, c.block_size) for c in row}) == 1
            assert [c.seed for c in row] == list(self.CONFIG.seeds)

    def test_batches_cover_rows_exactly(self):
        batches = plan_batches(self.CONFIG)
        cells = grid_cells(self.CONFIG)
        n_seeds = len(self.CONFIG.seeds)
        assert len(batches) == len(cells) // n_seeds
        covered = [c.index for b in batches for c in b.cells]
        assert sorted(covered) == list(range(len(cells)))

    @pytest.mark.parametrize("workers", [1, 2, 4, 16])
    def test_chunks_never_mix_block_sizes_or_split_batches(self, workers):
        batches = plan_batches(self.CONFIG)
        chunks = plan_chunks(batches, workers, cell_cost=1000)
        seen_rows = []
        for chunk in chunks:
            assert len({b.block_size for b in chunk}) == 1
            seen_rows.extend(b.row for b in chunk)
        assert sorted(seen_rows) == [b.row for b in batches]

    def test_chunk_count_tracks_worker_count(self):
        batches = plan_batches(self.CONFIG)
        few = plan_chunks(batches, 1, cell_cost=1000)
        many = plan_chunks(batches, 8, cell_cost=1000)
        assert len(few) <= len(many)
        # Never more chunks than batches, never fewer than block sizes.
        assert len(many) <= len(batches)
        assert len(few) >= len(set(b.block_size for b in batches))

    def test_planning_is_deterministic(self):
        batches = plan_batches(self.CONFIG)
        a = plan_chunks(batches, 4, cell_cost=7)
        b = plan_chunks(batches, 4, cell_cost=7)
        assert a == b

    def test_empty_grid_plans_empty(self):
        assert plan_chunks([], 4, cell_cost=1) == []


class TestDispatchStats:
    def test_stats_populated_on_parallel_run(self):
        stats = DispatchStats()
        run_grid(PRESET_PRIORITY, with_comm=False, workers=2, stats=stats)
        assert stats.workers == 2
        assert stats.n_chunks >= 1
        assert sum(stats.chunk_cells) == stats.n_cells == len(
            grid_cells(PRESET_PRIORITY)
        )
        assert stats.peak_worker_rss_mb > 0


class TestKeyedAggregationFailsLoudly:
    """The sink contract: unknown, duplicate, or missing cell indices are
    structural dispatcher bugs and must raise, never mis-assign rows."""

    CONFIG = ExperimentConfig(
        mesh="square2d", target_cells=120, k=2, m_values=(4,),
        algorithms=("fifo",), seeds=(0, 1), workers=2, name="keyed",
    )

    def _run_with_fake_dispatch(self, monkeypatch, fake):
        monkeypatch.setattr(dispatcher_mod, "run_dispatch", fake)
        return run_grid(self.CONFIG, with_comm=False)

    def test_unknown_index_raises(self, monkeypatch):
        def fake(config, with_comm, workers, sink, stats=None):
            sink(999, object())

        with pytest.raises(RuntimeError, match="unknown cell index"):
            self._run_with_fake_dispatch(monkeypatch, fake)

    def test_duplicate_index_raises(self, monkeypatch):
        def fake(config, with_comm, workers, sink, stats=None):
            sink(0, object())
            sink(0, object())

        with pytest.raises(RuntimeError, match="twice"):
            self._run_with_fake_dispatch(monkeypatch, fake)

    def test_dropped_rows_raise(self, monkeypatch):
        def fake(config, with_comm, workers, sink, stats=None):
            pass  # deliver nothing

        with pytest.raises(RuntimeError, match="lost"):
            self._run_with_fake_dispatch(monkeypatch, fake)
