"""Hypothesis properties: engine determinism and the Graham relaxation.

Two invariant classes the fuzzing subsystem leans on:

* **determinism** — identical inputs produce bit-identical schedules
  (same ``start`` and ``assignment`` arrays, element for element), for
  the core list scheduler and for every registry algorithm under an
  identical ``(instance, seed)`` pair.  The differential runner's
  ``determinism`` oracle assumes this; these tests pin it at the source.
* **relaxation soundness** — the naive claim "``list_schedule_unassigned``
  makespan never exceeds the assigned variant" is *false*: greedy may
  pick poorly among more than ``m`` ready tasks (see the pinned
  counterexample below, where the relaxation yields 4 but an assignment
  achieves 3).  The sound statement divides by Graham's ``(2 - 1/m)``
  factor — ``ceil(T_unassigned / (2 - 1/m)) <= T_assigned`` for *every*
  assignment — which is exactly :func:`graham_relaxation_lb`, the bound
  the fuzz oracle pack enforces.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Dag,
    SweepInstance,
    list_schedule,
    list_schedule_unassigned,
)
from repro.core.lower_bounds import graham_relaxation_lb
from repro.heuristics import ALGORITHMS, algorithm_names

from .strategies import sweep_instances

_NAMES = algorithm_names()


def _random_assignment(inst, m, seed):
    return np.random.default_rng(seed).integers(0, m, size=inst.n_cells)


class TestDeterminism:
    @given(sweep_instances(max_n=14, max_k=3), st.integers(1, 6),
           st.integers(0, 2**31 - 1))
    @settings(max_examples=40, deadline=None)
    def test_list_schedule_bit_identical(self, inst, m, seed):
        """Same instance + assignment + priority -> bit-identical output."""
        assignment = _random_assignment(inst, m, seed)
        priority = np.random.default_rng(seed + 1).integers(
            0, 100, size=inst.n_tasks
        )
        a = list_schedule(inst, m, assignment, priority=priority)
        b = list_schedule(inst, m, assignment, priority=priority)
        np.testing.assert_array_equal(a.start, b.start)
        np.testing.assert_array_equal(a.assignment, b.assignment)

    @given(sweep_instances(max_n=12, max_k=3), st.integers(1, 5),
           st.integers(0, 2**31 - 1),
           st.integers(0, len(_NAMES) - 1))
    @settings(max_examples=60, deadline=None)
    def test_registry_algorithm_bit_identical(self, inst, m, seed, which):
        """Every registry algorithm: identical (instance, seed) pair gives
        bit-identical schedules, not merely equal makespans."""
        fn = ALGORITHMS[_NAMES[which]]
        a = fn(inst, m, seed=seed)
        b = fn(inst, m, seed=seed)
        np.testing.assert_array_equal(a.start, b.start)
        np.testing.assert_array_equal(a.assignment, b.assignment)

    @given(sweep_instances(max_n=14, max_k=3), st.integers(1, 6))
    @settings(max_examples=40, deadline=None)
    def test_unassigned_deterministic(self, inst, m):
        a = list_schedule_unassigned(inst, m)
        b = list_schedule_unassigned(inst, m)
        np.testing.assert_array_equal(a.start, b.start)


class TestGrahamRelaxation:
    def test_naive_unassigned_vs_assigned_counterexample(self):
        """Pin why the tests below carry the (2 - 1/m) factor: greedy on
        the relaxation can LOSE to an assigned schedule.  Chain 2->3->4
        plus isolated cells {0, 1} on m=2: tie-by-id greedy burns step 0
        on {0, 1} and takes 4 steps; assigning the chain to its own
        processor takes 3."""
        inst = SweepInstance(
            5, [Dag(5, np.array([[2, 3], [3, 4]], dtype=np.int64))]
        )
        relaxed = list_schedule_unassigned(inst, 2).makespan
        assigned = list_schedule(inst, 2, np.array([1, 1, 0, 0, 0])).makespan
        assert relaxed == 4 and assigned == 3

    @given(sweep_instances(max_n=16, max_k=3), st.integers(1, 6),
           st.integers(0, 2**31 - 1))
    @settings(max_examples=60, deadline=None)
    def test_discounted_relaxation_never_exceeds_assigned(self, inst, m, seed):
        """ceil(T_unassigned / (2 - 1/m)) <= T_assigned for any assignment:
        the relaxed OPT lower-bounds the constrained OPT, and greedy is a
        (2 - 1/m)-approximation on the relaxation."""
        assignment = _random_assignment(inst, m, seed)
        assigned = list_schedule(inst, m, assignment).makespan
        assert graham_relaxation_lb(inst, m) <= assigned

    @given(sweep_instances(max_n=16, max_k=3), st.integers(1, 6))
    @settings(max_examples=40, deadline=None)
    def test_unassigned_between_serial_and_trivial_bounds(self, inst, m):
        """The relaxation is itself a feasible unit-task schedule: never
        shorter than the critical path, never longer than serial."""
        t = list_schedule_unassigned(inst, m).makespan
        depth = max(g.critical_path_length() for g in inst.dags)
        assert depth <= t <= inst.n_tasks
