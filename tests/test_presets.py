"""Tests for experiment presets and the full-scale driver wiring."""

import pytest

from repro.experiments.configs import ExperimentConfig
from repro.experiments.presets import CI_SCALE, PAPER_SCALE, get_preset


class TestPresets:
    def test_paper_scale_matches_paper_meshes(self):
        assert PAPER_SCALE["fig2a"].target_cells == 31481
        assert PAPER_SCALE["fig2c"].target_cells == 61737
        assert PAPER_SCALE["fig3c"].target_cells == 43012
        assert PAPER_SCALE["headline"].target_cells == 118211

    def test_paper_block_sizes(self):
        assert PAPER_SCALE["fig2a"].block_sizes == (1, 64, 256)
        assert PAPER_SCALE["fig3c"].block_sizes == (128,)

    def test_all_presets_are_configs(self):
        for table in (CI_SCALE, PAPER_SCALE):
            for config in table.values():
                assert isinstance(config, ExperimentConfig)
                assert config.seeds

    def test_get_preset(self):
        assert get_preset("paper", "fig2c").mesh == "long"
        assert get_preset("ci", "fig2c").target_cells < 10_000
        with pytest.raises(KeyError, match="no paper preset"):
            get_preset("paper", "nope")

    def test_ci_preset_runs(self):
        """The CI preset must actually execute end to end (scaled down)."""
        from dataclasses import replace

        from repro.experiments.runner import run_grid

        config = replace(
            get_preset("ci", "fig2c"), target_cells=300, m_values=(4,), seeds=(0,)
        )
        rows = run_grid(config, with_comm=False)
        assert len(rows) == 2
