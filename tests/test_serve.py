"""Lifecycle battery for the ``repro serve`` daemon.

Three layers, mirroring the subsystem's planes:

* **In-process** — protocol framing/validation, admission gate
  semantics, and the pin-aware LRU registry (eviction must *never*
  touch an instance with in-flight leases).
* **Daemon subprocess** — a real ``python -m repro serve`` process
  driven over its unix socket: 50 pipelined schedule requests must come
  back bit-identical to a serial ``run_grid`` over the same cells
  (checksum-locked per cell *and* after row aggregation), deadlines
  must expire into typed errors instead of stale results, and a
  saturated admission queue must refuse with ``overloaded``.
* **Drain** — SIGTERM on a daemon with resident instances must exit 0
  and leave zero orphan shm segments (the subprocess-kill pattern of
  ``tests/test_campaign_resume.py``), with the socket file removed.
"""

import os
import signal
import socket as socket_mod
import subprocess
import sys
from pathlib import Path

import pytest

from repro.parallel import list_orphan_segments
from repro.serve import protocol
from repro.serve.admission import AdmissionController
from repro.serve.client import ServeClient, parse_address
from repro.serve.instances import InstanceRegistry, InstanceSpec
from repro.util.errors import ServeError

ROOT = Path(__file__).resolve().parent.parent

#: The instance every daemon test schedules against (small and 2-D so
#: a chunk of 50 cells stays in smoke territory).
INSTANCE = {"mesh": "square2d", "target_cells": 120, "mesh_seed": 0, "k": 2}


# ---------------------------------------------------------------------------
# Protocol
# ---------------------------------------------------------------------------


class TestProtocol:
    def test_frame_roundtrip(self):
        payload = {"v": 1, "id": 3, "kind": "status"}
        data = protocol.encode_frame(payload)
        assert protocol.frame_length(data[:4]) == len(data) - 4
        assert protocol.decode_frame(data[4:]) == payload

    def test_oversized_length_prefix_refused(self):
        import struct

        prefix = struct.pack("<I", protocol.MAX_FRAME_BYTES + 1)
        with pytest.raises(ServeError) as err:
            protocol.frame_length(prefix)
        assert err.value.code == protocol.E_BAD_REQUEST

    def test_undecodable_frame_refused(self):
        with pytest.raises(ServeError):
            protocol.decode_frame(b"\xff\xfe not json")
        with pytest.raises(ServeError):
            protocol.decode_frame(b"[1, 2]")  # not an object

    def test_validate_rejects_wrong_version_and_kind(self):
        with pytest.raises(ServeError) as err:
            protocol.validate_request({"v": 99, "id": 1, "kind": "status"})
        assert err.value.code == protocol.E_UNSUPPORTED_VERSION
        with pytest.raises(ServeError) as err:
            protocol.validate_request({"v": 1, "id": 1, "kind": "dance"})
        assert err.value.code == protocol.E_UNKNOWN_KIND

    def test_validate_schedule_needs_typed_fields(self):
        base = {
            "v": 1, "id": 1, "kind": "schedule", "instance": dict(INSTANCE),
            "algorithm": "fifo", "m": 4, "block_size": 1, "seed": 0,
        }
        assert protocol.validate_request(dict(base)) is not None
        for broken in (
            {**base, "m": "four"},
            {**base, "m": True},  # bools must not pass as ints
            {**base, "instance": {**INSTANCE, "k": None}},
            {**base, "deadline_s": -1.0},
        ):
            with pytest.raises(ServeError) as err:
                protocol.validate_request(broken)
            assert err.value.code == protocol.E_BAD_REQUEST

    def test_error_payload_roundtrip(self):
        response = protocol.error_response(
            7, protocol.E_OVERLOADED, "queue full", retry_after=0.25
        )
        err = protocol.error_from_payload(response)
        assert err.code == protocol.E_OVERLOADED
        assert err.retry_after == 0.25

    def test_parse_address(self):
        assert parse_address("/tmp/x.sock") == ("unix", "/tmp/x.sock")
        assert parse_address("tcp:127.0.0.1:900") == (
            "tcp", ("127.0.0.1", 900)
        )
        with pytest.raises(ServeError):
            parse_address("tcp:no-port")


# ---------------------------------------------------------------------------
# Admission
# ---------------------------------------------------------------------------


def _controller(max_pending=2, max_bytes=1 << 30):
    return AdmissionController(
        InstanceRegistry(max_bytes=max_bytes), max_pending=max_pending
    )


class TestAdmission:
    def test_bounded_queue_refuses_with_retry_after(self):
        gate = _controller(max_pending=2)
        gate.admit("schedule")
        gate.admit("schedule")
        with pytest.raises(ServeError) as err:
            gate.admit("schedule")
        assert err.value.code == protocol.E_OVERLOADED
        assert err.value.retry_after is not None
        gate.release()
        gate.admit("schedule")  # a slot freed; admission resumes

    def test_drain_refuses_new_work(self):
        gate = _controller()
        gate.begin_drain()
        with pytest.raises(ServeError) as err:
            gate.admit("schedule")
        assert err.value.code == protocol.E_SHUTTING_DOWN

    def test_expired_deadline_raises_typed_error(self):
        gate = _controller()
        assert gate.stamp_deadline(None) is None
        deadline = gate.stamp_deadline(1e-9)
        with pytest.raises(ServeError) as err:
            gate.check_deadline(deadline)
        assert err.value.code == protocol.E_DEADLINE_EXCEEDED


# ---------------------------------------------------------------------------
# Registry: pinned LRU
# ---------------------------------------------------------------------------


def _spec(seed: int) -> InstanceSpec:
    return InstanceSpec(
        mesh="square2d", target_cells=120, mesh_seed=seed, k=2
    )


class TestRegistry:
    def test_hit_miss_counters_and_identity(self):
        registry = InstanceRegistry()
        try:
            a1 = registry.get_or_publish(_spec(0))
            a2 = registry.get_or_publish(_spec(0))
            assert a1 is a2
            assert registry.counters == {
                "hits": 1, "misses": 1, "evictions": 0,
            }
        finally:
            registry.close_all()
        assert list_orphan_segments() == []

    def test_eviction_never_touches_pinned_entries(self):
        # Budget of one byte: every publish is over budget, so any
        # unpinned resident entry is immediately evictable.
        registry = InstanceRegistry(max_bytes=1)
        try:
            a = registry.get_or_publish(_spec(0))
            lease = registry.pin(a)

            b = registry.get_or_publish(_spec(1))
            keys = {e["key"] for e in registry.snapshot()["instances"]}
            # A is pinned by an in-flight request: still resident even
            # though the registry is far over budget.
            assert a.key in keys and b.key in keys
            assert registry.counters["evictions"] == 0

            lease.release()
            c = registry.get_or_publish(_spec(2))
            keys = {e["key"] for e in registry.snapshot()["instances"]}
            # Unpinned now: the LRU pass reclaims A and B; the entry
            # being published is exempt.
            assert a.key not in keys and b.key not in keys
            assert c.key in keys
            assert registry.counters["evictions"] == 2
        finally:
            registry.close_all()
        assert list_orphan_segments() == []

    def test_block_extension_retires_leased_segment(self):
        registry = InstanceRegistry()
        try:
            entry = registry.get_or_publish(_spec(0), block_sizes=(2,))
            lease = registry.pin(entry)
            old_segment = lease.manifest.segment

            extended = registry.get_or_publish(_spec(0), block_sizes=(4,))
            assert extended is entry
            assert entry.block_sizes == (2, 4)
            assert entry.manifest.segment != old_segment
            # The old segment is retired, not unlinked: the in-flight
            # lease still reads from it.
            assert any(
                h.manifest.segment == old_segment for h in entry.retired
            )
            lease.release()
            assert entry.retired == []
        finally:
            registry.close_all()
        assert list_orphan_segments() == []

    def test_budget_shedding_predicate(self):
        registry = InstanceRegistry(max_bytes=1)
        try:
            entry = registry.get_or_publish(_spec(0))
            assert not registry.would_exceed_budget()  # evictable, not pinned
            lease = registry.pin(entry)
            assert registry.would_exceed_budget()  # every byte is pinned
            lease.release()
        finally:
            registry.close_all()

    def test_close_all_with_live_lease_fails_loudly(self):
        registry = InstanceRegistry()
        entry = registry.get_or_publish(_spec(0))
        lease = registry.pin(entry)
        with pytest.raises(ServeError, match="live leases"):
            registry.close_all()
        lease.release()
        # Entries were detached from the registry before the check; the
        # segment itself is only reclaimed here.
        entry.handle.store.close()
        assert list_orphan_segments() == []


# ---------------------------------------------------------------------------
# Daemon subprocess battery
# ---------------------------------------------------------------------------


def _spawn_daemon(tmp_path: Path, *extra: str):
    """Start ``python -m repro serve`` and wait for its ready line."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    sock = tmp_path / "serve.sock"
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--socket", str(sock), *extra],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
    )
    line = proc.stdout.readline()
    if "ready" not in line:
        proc.kill()
        raise RuntimeError(f"daemon failed to start: {proc.stderr.read()}")
    return proc, str(sock)


def _terminate(proc) -> int:
    proc.send_signal(signal.SIGTERM)
    proc.communicate(timeout=120)
    return proc.returncode


@pytest.mark.grid_smoke
class TestDaemonBattery:
    def test_fifty_pipelined_requests_bit_identical_to_run_grid(
        self, tmp_path
    ):
        from repro.experiments.runner import (
            aggregate_row,
            clear_caches,
            run_grid,
        )

        algorithms = ("fifo", "random_delay_priority")
        seeds = tuple(range(25))
        proc, sock = _spawn_daemon(tmp_path, "--workers", "2")
        try:
            with ServeClient.wait_ready(sock) as client:
                requests = [
                    {
                        "instance": dict(INSTANCE),
                        "algorithm": algorithm,
                        "m": 4,
                        "block_size": 1,
                        "seed": seed,
                        "engine": "auto",
                        "with_comm": True,
                    }
                    for algorithm in algorithms
                    for seed in seeds
                ]
                assert len(requests) == 50
                summaries = client.schedule_many(requests)
                status = client.status()
        finally:
            assert _terminate(proc) == 0

        # The daemon actually batched: 50 cells in far fewer chunks.
        batcher = status["batcher"]
        assert batcher["cells_dispatched"] == 50
        assert batcher["chunks_dispatched"] < 50

        # Bit-identity against the serial runner: fold the daemon's
        # per-cell summaries (request order == the canonical grid_cells
        # order) through the same row aggregation run_grid uses.
        from dataclasses import replace

        spec = InstanceSpec.from_payload(INSTANCE)
        config = replace(
            spec.config(), algorithms=algorithms, m_values=(4,), seeds=seeds,
        )
        clear_caches()
        rows = run_grid(config, with_comm=True)
        served_rows = [
            aggregate_row(
                summaries[i * len(seeds):(i + 1) * len(seeds)],
                algorithm, 4, 1,
            )
            for i, algorithm in enumerate(algorithms)
        ]
        assert served_rows == rows
        assert list_orphan_segments() == []

    def test_deadline_expires_into_typed_error_not_stale_result(
        self, tmp_path
    ):
        # A coalescing window much longer than the deadline guarantees
        # expiry while queued — the daemon must answer with the typed
        # error, never block or return a stale result.
        proc, sock = _spawn_daemon(
            tmp_path, "--workers", "1", "--max-delay-ms", "400"
        )
        try:
            with ServeClient.wait_ready(sock) as client:
                client.publish(dict(INSTANCE))  # isolate queueing time
                with pytest.raises(ServeError) as err:
                    client.schedule(
                        dict(INSTANCE), "fifo", 4, 1, 0, deadline_s=0.05
                    )
                assert err.value.code == protocol.E_DEADLINE_EXCEEDED
                # The daemon survives and still answers.
                assert client.status()["pid"] == proc.pid
        finally:
            assert _terminate(proc) == 0
        assert list_orphan_segments() == []

    def test_saturated_queue_refuses_overloaded(self, tmp_path):
        proc, sock = _spawn_daemon(
            tmp_path, "--workers", "1",
            "--max-pending", "1", "--max-delay-ms", "300",
        )
        try:
            with ServeClient.wait_ready(sock) as client:
                client.publish(dict(INSTANCE))
                results = client.schedule_many(
                    [
                        {
                            "instance": dict(INSTANCE),
                            "algorithm": "fifo",
                            "m": 4,
                            "block_size": 1,
                            "seed": seed,
                        }
                        for seed in range(4)
                    ],
                    on_error="return",
                )
            refused = [r for r in results if isinstance(r, ServeError)]
            served = [r for r in results if not isinstance(r, ServeError)]
            assert served, "the admitted request must still be answered"
            assert refused, "a saturated queue must shed load"
            assert all(
                r.code == protocol.E_OVERLOADED and r.retry_after is not None
                for r in refused
            )
        finally:
            assert _terminate(proc) == 0
        assert list_orphan_segments() == []

    def test_sigterm_drain_leaves_zero_orphans(self, tmp_path):
        proc, sock = _spawn_daemon(tmp_path, "--workers", "2")
        try:
            with ServeClient.wait_ready(sock) as client:
                # Resident state to clean up: a published instance with
                # block labellings, plus completed schedule traffic.
                client.publish(dict(INSTANCE), block_sizes=[4])
                client.schedule(dict(INSTANCE), "fifo", 4, 1, 0)
                assert client.status()["registry"]["resident_bytes"] > 0
        finally:
            returncode = _terminate(proc)
        assert returncode == 0
        assert list_orphan_segments() == []
        assert not os.path.exists(sock)
        # And a refused-after-drain connection fails cleanly rather
        # than hanging.
        with pytest.raises((FileNotFoundError, ConnectionError, OSError)):
            sock_obj = socket_mod.socket(
                socket_mod.AF_UNIX, socket_mod.SOCK_STREAM
            )
            try:
                sock_obj.connect(sock)
            finally:
                sock_obj.close()
