"""Run experiments at the paper's actual mesh sizes.

Usage:

    python scripts/run_full_scale.py [fig2a|fig2c|fig3c|headline|all] [--workers N]

At 31k–118k cells this takes minutes, not seconds; results are printed
as figure-shaped tables with per-grid wall time.  ``--workers`` fans the
grid cells over a process pool (bit-identical results).
"""

from __future__ import annotations

import sys


def main(argv=None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    workers = 1
    if "--workers" in argv:
        i = argv.index("--workers")
        workers = int(argv[i + 1])
        del argv[i : i + 2]
    which = argv[0] if argv else "all"

    from repro.experiments.presets import PAPER_SCALE
    from repro.experiments.report import format_series
    from repro.experiments.runner import run_grid
    from repro.util.timing import Timer

    names = sorted(PAPER_SCALE) if which == "all" else [which]
    for name in names:
        config = PAPER_SCALE[name]
        print(
            f"== {name}: {config.mesh} ~{config.target_cells} cells, "
            f"k={config.k}, m={config.m_values}, blocks={config.block_sizes}"
        )
        with Timer() as t:
            rows = run_grid(
                config, with_comm=(name in ("fig2a",)), workers=workers
            )
        for row in rows:
            row["series"] = f"{row['algorithm']},block={row['block_size']}"
        print(format_series(rows, x="m", y="ratio", group_by="series",
                            title=f"{name} — ratio to nk/m"))
        print(f"[{t.elapsed:.0f}s]\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
