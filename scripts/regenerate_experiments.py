"""Regenerate every experiment table in one run.

Produces the raw material for EXPERIMENTS.md: runs each benchmark's
underlying experiment function directly (no pytest) and prints every
table, with timing.  Usage:

    python scripts/regenerate_experiments.py [--cells 2000]
"""

from __future__ import annotations

import argparse
import sys


def main(argv=None) -> int:
    parser = argparse.ArgumentParser()
    parser.add_argument("--cells", type=int, default=2000)
    args = parser.parse_args(argv)

    # The bench modules read their scale from the environment at import
    # time, so set it before importing them.
    import os

    os.environ["REPRO_BENCH_CELLS"] = str(args.cells)
    sys.path.insert(0, os.path.join(os.path.dirname(__file__), ".."))

    from repro.experiments import paper
    from repro.util.timing import Timer

    figures = [
        ("Fig 2(a)", lambda: paper.fig2a(target_cells=args.cells)),
        ("Fig 2(b)", lambda: paper.fig2b(target_cells=args.cells)),
        ("Fig 2(c)", lambda: paper.fig2c(target_cells=args.cells)),
        ("Fig 3(a)", lambda: paper.fig3a(target_cells=args.cells)),
        ("Fig 3(b)", lambda: paper.fig3b(target_cells=args.cells)),
        ("Fig 3(c)", lambda: paper.fig3c(target_cells=args.cells)),
        ("Headline", lambda: paper.headline_bounds(target_cells=args.cells)),
    ]
    for name, fn in figures:
        with Timer() as t:
            _rows, text = fn()
        print(text)
        print(f"[{name}: {t.elapsed:.1f}s]\n")

    # Extension tables, via the bench modules' sweep functions.
    from benchmarks import (
        bench_ablation_blocksize,
        bench_ablation_delays,
        bench_ablation_partitioner,
        bench_alg3_improved,
        bench_hetero_costs,
        bench_latency_tradeoff,
        bench_mesh_inventory,
        bench_speedup,
        bench_theory_bounds,
        bench_transport_solve,
    )
    from repro.experiments import format_table

    extensions = [
        ("E8 lemmas", bench_theory_bounds._lemma_rows,
         ["m", "lemma2_max_copies", "lemma2_bound_logn",
          "lemma3_max_per_proc", "lemma3_bound"]),
        ("E8 balls-in-bins", bench_theory_bounds._ballsbins_rows,
         ["balls_t", "bins_m", "E_max_load", "corollary2_bound"]),
        ("E9 block size", bench_ablation_blocksize._sweep,
         ["block_size", "makespan", "ratio", "c1", "c1_fraction", "c2"]),
        ("E10 partitioners", bench_ablation_partitioner._compare,
         ["mesh", "partitioner", "cut", "balance", "c1"]),
        ("E11 Alg 3", bench_alg3_improved._sweep,
         ["m"] + list(bench_alg3_improved.ALGOS)),
        ("E13 delay distributions", bench_ablation_delays._sweep,
         ["delays", "ratio_mean", "ratio_max"]),
        ("E14 mesh inventory", bench_mesh_inventory._inventory,
         ["mesh", "n_cells", "n_tasks", "depth", "max_parallelism",
          "intrinsic_parallelism"]),
        ("E15 transport", bench_transport_solve._solve_suite,
         ["case", "iterations", "converged", "phi_mean", "exact", "max_err"]),
        ("E16 latency", bench_latency_tradeoff._sweep,
         ["latency", "per_cell", "blocks", "blocks_win"]),
        ("E17 speedup", bench_speedup._sweep,
         ["m", "speedup", "efficiency"]),
        ("E18 hetero costs", bench_hetero_costs._sweep,
         ["cost_sigma", "ratio_mean", "ratio_max"]),
    ]
    for name, fn, cols in extensions:
        with Timer() as t:
            rows = fn()
        print(format_table(rows, cols, title=name))
        print(f"[{name}: {t.elapsed:.1f}s]\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
