#!/usr/bin/env python
"""Regenerate the benchmark baseline (``BENCH_7.json``).

Thin wrapper over ``repro bench`` so CI and docs have a stable script
path.  Run from the repo root:

    PYTHONPATH=src python scripts/run_bench.py            # full, ~a minute
    PYTHONPATH=src python scripts/run_bench.py --smoke    # CI schema check

Mesh size follows ``REPRO_BENCH_CELLS`` (default 2000) unless ``--cells``
overrides it.  The full run is what the committed baseline at the repo
root comes from; regenerate it on the same class of machine before
comparing numbers.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.cli import main  # noqa: E402


if __name__ == "__main__":
    sys.exit(main(["bench", *sys.argv[1:]]))
