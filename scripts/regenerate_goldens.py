"""Regenerate (or check) the registry golden snapshots.

``tests/goldens/registry_goldens.json`` pins makespan / C1 / C2 for
every registered scheduler on three small fixed-seed instances.  The
golden test (``tests/test_goldens.py``) fails on any drift, which turns
silent behaviour changes — a reordered heap, a changed tie-break, an
RNG-stream shift — into explicit, reviewable diffs.

Usage::

    PYTHONPATH=src python scripts/regenerate_goldens.py          # check only
    PYTHONPATH=src python scripts/regenerate_goldens.py --write  # rewrite

Run with ``--write`` only when a behaviour change is *intended*, and
commit the JSON diff alongside the code that caused it.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
if str(ROOT / "src") not in sys.path:
    sys.path.insert(0, str(ROOT / "src"))

GOLDEN_PATH = ROOT / "tests" / "goldens" / "registry_goldens.json"

#: (label, family, kwargs, m) — three small, structurally distinct cases.
GOLDEN_CASES = [
    ("rotated_chains_n12_k3_m3", "rotated_chains", {"n": 12, "k": 3, "seed": 7}, 3),
    ("fork_join_n16_k2_m4", "fork_join", {"n": 16, "k": 2, "seed": 1}, 4),
    ("wide_shallow_n18_k4_m4", "wide_shallow", {"n": 18, "k": 4, "seed": 5}, 4),
]

#: Seed handed to every algorithm (the registry contract is that equal
#: seeds give bit-identical schedules; see tests/test_determinism_properties.py).
ALGO_SEED = 0


def compute_goldens() -> dict:
    """Run every registry algorithm on every golden case; return the table."""
    from repro.comm.cost import c2_cost, interprocessor_edges
    from repro.heuristics import ALGORITHMS
    from repro.instances import make_instance

    table: dict = {}
    for label, family, kwargs, m in GOLDEN_CASES:
        inst = make_instance(family, **kwargs)
        row = {}
        for name, fn in sorted(ALGORITHMS.items()):
            sched = fn(inst, m, seed=ALGO_SEED)
            row[name] = {
                "makespan": int(sched.makespan),
                "c1": int(interprocessor_edges(inst, sched.assignment)),
                "c2": int(c2_cost(sched)),
            }
        table[label] = row
    return table


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--write", action="store_true",
        help="rewrite the golden file instead of checking against it",
    )
    args = parser.parse_args(argv)

    goldens = compute_goldens()
    if args.write:
        GOLDEN_PATH.parent.mkdir(parents=True, exist_ok=True)
        GOLDEN_PATH.write_text(json.dumps(goldens, indent=2, sort_keys=True) + "\n")
        print(f"wrote {GOLDEN_PATH.relative_to(ROOT)}")
        return 0

    if not GOLDEN_PATH.exists():
        print(f"missing {GOLDEN_PATH.relative_to(ROOT)} — run with --write")
        return 1
    stored = json.loads(GOLDEN_PATH.read_text())
    if stored == goldens:
        print("goldens match current code")
        return 0
    for case, row in goldens.items():
        for algo, vals in row.items():
            old = stored.get(case, {}).get(algo)
            if old != vals:
                print(f"DRIFT {case} / {algo}: stored={old} current={vals}")
    print("goldens differ — rerun with --write if the change is intended")
    return 1


if __name__ == "__main__":
    raise SystemExit(main())
