"""Regenerate (or check) the golden snapshots.

``tests/goldens/registry_goldens.json`` pins makespan / C1 / C2 for
every registered scheduler on three small fixed-seed instances.  The
golden test (``tests/test_goldens.py``) fails on any drift, which turns
silent behaviour changes — a reordered heap, a changed tie-break, an
RNG-stream shift — into explicit, reviewable diffs.

``tests/goldens/callgraph_edges.json`` pins the resolved call-graph
edges (``[caller, callee, kind]`` triples) that ``repro lint --deep``
builds for the fixture package under
``tests/lint_fixtures/deep/callgraph/``.  Any change to symbol
resolution, registry fan-out, instantiation edges, or fallback dispatch
shows up as a reviewable diff here before it silently changes what the
RPL101+ rules can see.

Usage::

    PYTHONPATH=src python scripts/regenerate_goldens.py          # check only
    PYTHONPATH=src python scripts/regenerate_goldens.py --write  # rewrite

Run with ``--write`` only when a behaviour change is *intended*, and
commit the JSON diff alongside the code that caused it.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
if str(ROOT / "src") not in sys.path:
    sys.path.insert(0, str(ROOT / "src"))

GOLDEN_PATH = ROOT / "tests" / "goldens" / "registry_goldens.json"
CALLGRAPH_GOLDEN_PATH = ROOT / "tests" / "goldens" / "callgraph_edges.json"
CALLGRAPH_FIXTURE_DIR = ROOT / "tests" / "lint_fixtures" / "deep" / "callgraph"

#: (label, family, kwargs, m) — three small, structurally distinct cases.
GOLDEN_CASES = [
    ("rotated_chains_n12_k3_m3", "rotated_chains", {"n": 12, "k": 3, "seed": 7}, 3),
    ("fork_join_n16_k2_m4", "fork_join", {"n": 16, "k": 2, "seed": 1}, 4),
    ("wide_shallow_n18_k4_m4", "wide_shallow", {"n": 18, "k": 4, "seed": 5}, 4),
]

#: Seed handed to every algorithm (the registry contract is that equal
#: seeds give bit-identical schedules; see tests/test_determinism_properties.py).
ALGO_SEED = 0


def compute_goldens() -> dict:
    """Run every registry algorithm on every golden case; return the table."""
    from repro.comm.cost import c2_cost, interprocessor_edges
    from repro.heuristics import ALGORITHMS
    from repro.instances import make_instance

    table: dict = {}
    for label, family, kwargs, m in GOLDEN_CASES:
        inst = make_instance(family, **kwargs)
        row = {}
        for name, fn in sorted(ALGORITHMS.items()):
            sched = fn(inst, m, seed=ALGO_SEED)
            row[name] = {
                "makespan": int(sched.makespan),
                "c1": int(interprocessor_edges(inst, sched.assignment)),
                "c2": int(c2_cost(sched)),
            }
        table[label] = row
    return table


def compute_callgraph_edges() -> list:
    """Resolved edges of the call-graph fixture package."""
    from repro.lint import build_program, iter_python_files

    files = iter_python_files([str(CALLGRAPH_FIXTURE_DIR)])
    return build_program(files).edges_json()


def _sync(path: Path, current, write: bool) -> int:
    """Write or check one golden file; returns a shell status."""
    if write:
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(current, indent=2, sort_keys=True) + "\n")
        print(f"wrote {path.relative_to(ROOT)}")
        return 0
    if not path.exists():
        print(f"missing {path.relative_to(ROOT)} — run with --write")
        return 1
    stored = json.loads(path.read_text())
    if stored == current:
        print(f"{path.name} matches current code")
        return 0
    if isinstance(current, dict):
        for case, row in current.items():
            for algo, vals in row.items():
                old = stored.get(case, {}).get(algo)
                if old != vals:
                    print(f"DRIFT {case} / {algo}: stored={old} current={vals}")
    else:
        stored_set = {tuple(e) for e in stored}
        current_set = {tuple(e) for e in current}
        for edge in sorted(current_set - stored_set):
            print(f"DRIFT new edge: {edge}")
        for edge in sorted(stored_set - current_set):
            print(f"DRIFT lost edge: {edge}")
    print(f"{path.name} differs — rerun with --write if the change is intended")
    return 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--write", action="store_true",
        help="rewrite the golden files instead of checking against them",
    )
    args = parser.parse_args(argv)

    status = _sync(GOLDEN_PATH, compute_goldens(), args.write)
    status |= _sync(
        CALLGRAPH_GOLDEN_PATH, compute_callgraph_edges(), args.write
    )
    return status


if __name__ == "__main__":
    raise SystemExit(main())
