"""Rigorous algorithm comparison: seed-paired trials with bootstrap CIs.

Single-seed comparisons of randomized schedulers are noise; this example
shows the statistically sound workflow — pair the seeds, bootstrap the
paired differences, report win/loss records — across the three central
match-ups of the paper:

1. Algorithm 2 vs Algorithm 1 (compaction: should be a uniform win),
2. DFDS vs Algorithm 2 (the paper's closest contest),
3. descendant vs level priorities (two classic orderings).

Run:  python examples/statistical_comparison.py
"""

from repro.analysis import compare_pair, sample_algorithm
from repro.mesh import well_logging_like
from repro.sweeps import build_instance, level_symmetric

M = 32
TRIALS = 12


def main() -> None:
    mesh = well_logging_like(target_cells=2500, seed=1)
    inst = build_instance(mesh, level_symmetric(2))  # 8 directions
    print(
        f"{mesh.name}: {inst.n_cells} cells, k={inst.k}, m={M}, "
        f"{TRIALS} paired trials\n"
    )

    # Per-algorithm spread first: means over independent seeds.
    print(f"{'algorithm':24s} {'mean ratio':>10s}")
    for name in ("random_delay", "random_delay_priority", "dfds", "descendant"):
        sample = sample_algorithm(inst, name, M, n_seeds=TRIALS, seed=0)
        print(f"{name:24s} {sample.mean_ratio:10.3f}")
    print()

    matchups = [
        ("random_delay_priority", "random_delay"),
        ("dfds", "random_delay_priority"),
        ("descendant", "level"),
    ]
    for a, b in matchups:
        r = compare_pair(inst, a, b, m=M, n_seeds=TRIALS, seed=0)
        verdict = "SIGNIFICANT" if r["significant"] else "not significant"
        print(f"{a} vs {b}:")
        print(
            f"  paired makespan diff {r['mean_diff']:+8.1f}  "
            f"95% CI [{r['diff_ci_low']:+.1f}, {r['diff_ci_high']:+.1f}]  "
            f"({verdict})"
        )
        print(
            f"  record: {r['a_wins']} wins / {r['ties']} ties / "
            f"{r['b_wins']} losses\n"
        )


if __name__ == "__main__":
    main()
