"""Block-partitioning trade-off study (the paper's Section 5.1 insight).

Choosing a processor per *cell* balances load beautifully but puts
(m-1)/m of all DAG edges across processors; choosing per *block* (METIS
partition) keeps edges internal at a small makespan cost.  This example
sweeps block sizes and partitioners and prints the trade-off table.

Run:  python examples/partitioning_study.py
"""

import numpy as np

from repro.analysis import summarize_schedule
from repro.core import block_assignment, random_delay_priority_schedule
from repro.mesh import tetonly_like
from repro.partition import (
    bfs_blocks,
    edge_cut,
    geometric_blocks,
    partition_mesh_blocks,
    random_blocks,
)
from repro.sweeps import build_instance, level_symmetric

# Keep the block count comfortably above m (the paper's meshes are 10-50x
# larger, so its 64-256 block sizes leave >= 1 block per processor; at this
# scale the same ratios need smaller blocks).
M = 16
SEED = 5
BLOCK_SIZES = (16, 32, 64)
ABLATION_BS = 32


def run(inst, mesh, blocks, label):
    assignment = block_assignment(blocks, M, seed=SEED)
    sched = random_delay_priority_schedule(inst, M, seed=SEED, assignment=assignment)
    s = summarize_schedule(sched)
    cut = edge_cut(blocks, mesh.adjacency)
    print(
        f"{label:32s} {cut:8d} {s.makespan:9d} {s.ratio:6.2f} "
        f"{s.c1:9d} {s.c1_fraction:7.0%} {s.c2:8d}"
    )


def main() -> None:
    mesh = tetonly_like(target_cells=3000, seed=1)
    inst = build_instance(mesh, level_symmetric(4))
    print(f"mesh {mesh.name}: {mesh.n_cells} cells, m = {M}, k = {inst.k}\n")
    header = (
        f"{'partitioning':32s} {'cut':>8s} {'makespan':>9s} {'ratio':>6s} "
        f"{'C1':>9s} {'C1 frac':>7s} {'C2':>8s}"
    )
    print(header)
    print("-" * len(header))

    # Per-cell random assignment = block size 1.
    run(inst, mesh, np.arange(mesh.n_cells), "per-cell (block size 1)")

    # Multilevel partitioner across block sizes (the paper's sweep).
    for bs in BLOCK_SIZES:
        blocks = partition_mesh_blocks(mesh.n_cells, mesh.adjacency, bs, seed=SEED)
        run(inst, mesh, blocks, f"multilevel, block size {bs}")

    # Partitioner ablation at a fixed block size.
    bs = ABLATION_BS
    run(inst, mesh, random_blocks(mesh.n_cells, bs, seed=SEED), f"random blocks, size {bs}")
    run(inst, mesh, bfs_blocks(mesh.n_cells, mesh.adjacency, bs, seed=SEED), f"BFS blocks, size {bs}")
    run(inst, mesh, geometric_blocks(mesh.centroids, bs), f"geometric blocks, size {bs}")


if __name__ == "__main__":
    main()
