"""Radiation-transport scenario: S_n source iteration on a well-logging mesh.

A discrete-ordinates transport solve repeats full mesh sweeps (one per
direction) until the scattering source converges — so the *same*
schedule is reused every iteration and its quality multiplies.  This
example mimics that loop on the well-logging geometry (cylinder with an
instrument bore), compares the scheduling algorithms that would drive it,
and charges communication with both of the paper's cost models.

Run:  python examples/radiation_transport.py
"""

from repro.analysis import summarize_schedule
from repro.comm import rounds_cost
from repro.core import average_load_lb
from repro.heuristics import get_algorithm
from repro.mesh import well_logging_like
from repro.sweeps import build_instance, level_symmetric

#: Computation/communication weights for the wall-clock model: each task
#: costs one unit; each C2 communication round costs COMM_WEIGHT units.
COMM_WEIGHT = 0.1
#: Source-iteration count typical for an optically thin problem.
N_ITERATIONS = 12


def main() -> None:
    mesh = well_logging_like(target_cells=3000, seed=3)
    inst = build_instance(mesh, level_symmetric(4))  # 24 directions
    m = 64
    lb = average_load_lb(inst, m)
    print(
        f"well-logging transport solve: {inst.n_cells} cells x {inst.k} "
        f"directions on {m} processors ({N_ITERATIONS} source iterations)"
    )
    print(f"per-iteration lower bound nk/m = {lb}\n")

    header = (
        f"{'algorithm':28s} {'makespan':>9s} {'ratio':>6s} "
        f"{'C2':>7s} {'1-port rounds':>13s} {'est. solve time':>15s}"
    )
    print(header)
    print("-" * len(header))
    for name in ("random_delay", "random_delay_priority", "dfds", "descendant"):
        sched = get_algorithm(name)(inst, m, seed=11)
        sched.validate()
        s = summarize_schedule(sched)
        rounds = rounds_cost(sched)
        # Wall-clock estimate over the whole solve: compute + comm per
        # iteration, times the iteration count.
        solve = N_ITERATIONS * (s.makespan + COMM_WEIGHT * s.c2)
        print(
            f"{name:28s} {s.makespan:9d} {s.ratio:6.2f} "
            f"{s.c2:7d} {rounds:13d} {solve:15.0f}"
        )

    print(
        "\nNote: C2 charges each step the max per-processor send count "
        "(optimistic); 1-port rounds is the edge-colored schedule that "
        "actually achieves conflict-free delivery."
    )


if __name__ == "__main__":
    main()
