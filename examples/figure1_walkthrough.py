"""Walk through the paper's Figure 1 on a tiny 2-D mesh.

Figure 1 shows (a) an unstructured 2-D mesh with the digraph one sweep
direction induces, and (b) the levels of that digraph.  This example
rebuilds the construction step by step on a small triangle mesh and
prints everything a reader needs to connect the code to the figure:
the upwind test per face, the induced edges, the level decomposition,
and how two different directions induce different DAGs over the same
cells.

Run:  python examples/figure1_walkthrough.py
"""

import numpy as np

from repro.core import SweepInstance
from repro.mesh import unit_square_tri
from repro.sweeps import build_instance, circle_directions, sweep_dag, sweep_edges


def main() -> None:
    mesh = unit_square_tri(target_cells=14, seed=3)
    print(f"mesh: {mesh.n_cells} triangular cells, "
          f"{mesh.n_faces} interior faces\n")

    # Direction i (like the arrow in Figure 1(a)).
    direction = np.array([1.0, 0.35])
    direction /= np.linalg.norm(direction)
    print(f"sweep direction: ({direction[0]:.3f}, {direction[1]:.3f})")

    # The upwind test on each shared face: sign of (normal . direction).
    dots = mesh.face_normals @ direction
    print("\nper-face upwind test (adjacency pair, n.w, induced edge):")
    for (u, v), d in list(zip(mesh.adjacency, dots))[:8]:
        arrow = f"{u} -> {v}" if d > 0 else f"{v} -> {u}" if d < 0 else "none"
        print(f"  cells ({u:2d},{v:2d})   n.w = {d:+.3f}   edge: {arrow}")
    if mesh.n_faces > 8:
        print(f"  ... {mesh.n_faces - 8} more faces")

    # The induced DAG and its levels (Figure 1(b)).
    dag = sweep_dag(mesh, direction)
    print(f"\ninduced DAG: {dag.num_edges} edges, {dag.num_levels()} levels")
    for j, level in enumerate(dag.levels()):
        print(f"  L{j + 1}: cells {sorted(level.tolist())}")

    # A second direction induces a *different* DAG on the same cells.
    other = -direction
    other_dag = sweep_dag(mesh, other)
    shared = set(map(tuple, dag.edges.tolist())) & set(
        map(tuple, other_dag.edges.tolist())
    )
    print(f"\nopposite direction: every edge reverses "
          f"(shared edges: {len(shared)})")

    # Assemble the full instance for a 4-direction fan and show that the
    # schedule must respect all of them at once.
    inst: SweepInstance = build_instance(mesh, circle_directions(4, offset=0.3))
    print(f"\nfull instance: k={inst.k} directions x {inst.n_cells} cells = "
          f"{inst.n_tasks} tasks, depth D = {inst.depth()}")
    print("each cell's k copies must share a processor — the constraint that")
    print("separates sweep scheduling from classical precedence scheduling.")


if __name__ == "__main__":
    main()
