"""End-to-end physics: solve a real S_n transport problem in schedule order.

The schedules this library produces are not an abstract benchmark — they
order the cell updates of a discrete-ordinates radiation solve.  This
example builds the well-logging geometry, schedules its sweeps with
Algorithm 2, and runs source iteration to convergence twice:

1. a *white-boundary* problem whose exact solution is known
   (``phi = q / (sigma_t - sigma_s)``), verifying the whole pipeline, and
2. a *vacuum* problem showing the physical flux shape (peak in the bulk,
   depressed near the leaky boundary and the bore).

Run:  python examples/transport_solve.py
"""

import numpy as np

from repro.core import random_delay_priority_schedule
from repro.mesh import well_logging_like
from repro.sweeps import build_instance
from repro.transport import Quadrature, TransportProblem, solve_with_schedule


def main() -> None:
    mesh = well_logging_like(target_cells=1200, seed=4)
    quad = Quadrature.sn(2)  # 8 directions
    inst = build_instance(mesh, quad.directions)
    sched = random_delay_priority_schedule(inst, m=16, seed=0)
    sched.validate()
    print(
        f"{mesh.name}: {mesh.n_cells} cells, k={quad.k}, schedule makespan "
        f"{sched.makespan} on 16 processors\n"
    )

    # 1. Verification: infinite-medium limit, exact answer 2.0/(1.0-0.6)=5.
    p = TransportProblem(
        mesh, quad, sigma_t=1.0, sigma_s=0.6, source=2.0, boundary="white"
    )
    res = solve_with_schedule(p, sched, tol=1e-10)
    err = float(np.abs(res.phi - 5.0).max())
    print(
        f"white boundary (infinite medium): {res.iterations} iterations, "
        f"max |phi - 5.0| = {err:.2e}"
    )

    # 2. Physics: vacuum boundaries, scattering medium.
    p = TransportProblem(
        mesh, quad, sigma_t=1.0, sigma_s=0.6, source=2.0, boundary="vacuum"
    )
    res = solve_with_schedule(p, sched, tol=1e-8)
    r = np.hypot(mesh.centroids[:, 0], mesh.centroids[:, 1])
    inner = res.phi[r < 0.5].mean()
    outer = res.phi[r > 0.85].mean()
    print(
        f"vacuum boundary: {res.iterations} iterations, "
        f"phi in [{res.phi.min():.3f}, {res.phi.max():.3f}]"
    )
    print(
        f"  mean flux near bore (r<0.5): {inner:.3f}, "
        f"near outer skin (r>0.85): {outer:.3f}  "
        f"(boundary depression: {outer / inner:.2f}x)"
    )


if __name__ == "__main__":
    main()
