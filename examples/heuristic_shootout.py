"""Every registered algorithm on every paper-like mesh, one table.

The closest thing to the paper's Figure 3 panels in a single run: the
full registry (Algorithms 1–3 and the level/descendant/DFDS heuristics,
each ± random delays) across the four mesh geometries.

Run:  python examples/heuristic_shootout.py
"""

from repro.core import average_load_lb
from repro.heuristics import ALGORITHMS
from repro.mesh import make_mesh
from repro.sweeps import build_instance, level_symmetric

M = 64
CELLS = 1500
SEEDS = (0, 1)


def main() -> None:
    meshes = ("tetonly", "well_logging", "long", "prismtet")
    names = list(ALGORITHMS)
    col = max(len(n) for n in names) + 2

    instances = {}
    for mesh_name in meshes:
        mesh = make_mesh(mesh_name, target_cells=CELLS, seed=0)
        instances[mesh_name] = build_instance(mesh, level_symmetric(2))  # 8 dirs

    print(f"makespan / (nk/m) at m = {M}, k = 8, ~{CELLS} cells, "
          f"mean over {len(SEEDS)} seeds\n")
    print(" " * col + "  ".join(f"{m:>13s}" for m in meshes))
    for name in names:
        algo = ALGORITHMS[name]
        cells = []
        for mesh_name in meshes:
            inst = instances[mesh_name]
            lb = average_load_lb(inst, M)
            ratios = []
            for seed in SEEDS:
                sched = algo(inst, M, seed=seed)
                sched.validate()
                ratios.append(sched.makespan / lb)
            cells.append(sum(ratios) / len(ratios))
        print(f"{name:{col}s}" + "  ".join(f"{c:13.2f}" for c in cells))


if __name__ == "__main__":
    main()
