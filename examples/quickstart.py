"""Quickstart: build a mesh, induce sweep DAGs, schedule, and inspect.

Run:  python examples/quickstart.py
"""

from repro.analysis import summarize_schedule
from repro.core import (
    average_load_lb,
    random_delay_priority_schedule,
    random_delay_schedule,
)
from repro.mesh import tetonly_like
from repro.sweeps import build_instance, level_symmetric


def main() -> None:
    # 1. An unstructured tetrahedral mesh (~2000 cells in a unit cube).
    mesh = tetonly_like(target_cells=2000, seed=0)
    print(f"mesh: {mesh.name}, {mesh.n_cells} cells, {mesh.n_faces} interior faces")

    # 2. The S4 level-symmetric direction set (24 directions) induces one
    #    dependency DAG per direction over the same cells.
    directions = level_symmetric(4)
    inst = build_instance(mesh, directions)
    print(f"instance: {inst.n_tasks} tasks, depth D = {inst.depth()}")

    # 3. Schedule on m processors with the paper's two algorithms.
    m = 32
    lb = average_load_lb(inst, m)
    for name, algo in [
        ("Algorithm 1 (Random Delay)", random_delay_schedule),
        ("Algorithm 2 (Random Delays with Priorities)", random_delay_priority_schedule),
    ]:
        sched = algo(inst, m, seed=42)
        sched.validate()  # independent feasibility check
        print(
            f"{name}: makespan {sched.makespan} "
            f"(lower bound nk/m = {lb}, ratio {sched.makespan / lb:.2f})"
        )

    # 4. Full metrics row, including communication costs C1 / C2.
    sched = random_delay_priority_schedule(inst, m, seed=42)
    summary = summarize_schedule(sched)
    print(
        f"C1 (interprocessor edges) = {summary.c1} "
        f"({summary.c1_fraction:.0%} of all DAG edges), C2 = {summary.c2}, "
        f"idle fraction = {summary.idle_fraction:.0%}"
    )


if __name__ == "__main__":
    main()
