"""Shared-memory instance plane + locality-aware parallel grid dispatch.

Two cooperating pieces make multi-worker experiment grids scale on real
hardware instead of multiplying work:

* :class:`SharedInstanceStore` (:mod:`repro.parallel.shm_store`) — the
  parent serialises one sweep instance (edge/CSR arrays, materialised DAG
  memo caches, partition labellings) into a single
  ``multiprocessing.shared_memory`` segment; workers attach read-only
  zero-copy numpy views, so W workers share one copy instead of
  rebuilding and holding W.
* the dispatcher (:mod:`repro.parallel.dispatcher`) — batches all seeds
  of a grid row into one task, groups tasks by block size, packs them
  into cost-balanced chunks, and streams keyed ``(cell index, summary)``
  results back while guaranteeing segment cleanup even when a worker
  crashes mid-grid.

``repro.experiments.runner.run_grid(workers=N)`` is the front door; the
output is bit-identical to the serial run for any worker count.
"""

from repro.parallel.dispatcher import (
    CellBatch,
    DispatchStats,
    GridCell,
    grid_cells,
    plan_batches,
    plan_chunks,
    process_peak_rss_mb,
    run_dispatch,
)
from repro.parallel.sanitize import sanitize_enabled
from repro.parallel.shm_store import (
    SHM_PREFIX,
    ArraySpec,
    SharedInstanceStore,
    StoreManifest,
    attach,
    detach_all,
    list_orphan_segments,
    verify_attached,
)
from repro.parallel.worker import warm_instance

__all__ = [
    "SHM_PREFIX",
    "ArraySpec",
    "CellBatch",
    "DispatchStats",
    "GridCell",
    "SharedInstanceStore",
    "StoreManifest",
    "attach",
    "detach_all",
    "grid_cells",
    "list_orphan_segments",
    "plan_batches",
    "plan_chunks",
    "process_peak_rss_mb",
    "run_dispatch",
    "sanitize_enabled",
    "verify_attached",
    "warm_instance",
]
