"""Worker-process side of the parallel grid plane.

Top-level (picklable) functions the dispatcher runs inside pool workers,
plus :func:`warm_instance` — the parent-side cache warm-up that decides
which :class:`~repro.core.dag.Dag` memo caches get materialised before
the instance is published to shared memory.  Workers attach zero-copy and
inherit exactly those caches, so the expensive per-instance
precomputations (union CSR, padded successor matrix, level structure,
b-levels, descendant counts) happen once per grid instead of once per
worker.
"""

from __future__ import annotations

import atexit
from typing import TYPE_CHECKING, Iterable, Sequence

if TYPE_CHECKING:  # annotation-only imports; runtime imports stay lazy
    from repro.analysis.metrics import ScheduleSummary
    from repro.core.instance import SweepInstance
    from repro.parallel.dispatcher import GridCell
    from repro.parallel.shm_store import StoreManifest

__all__ = ["warm_instance", "init_worker", "run_chunk"]


def warm_instance(
    inst: "SweepInstance",
    algorithms: Iterable[str] = (),
    engine: str = "auto",
) -> None:
    """Materialise the memo caches the given workload will need.

    Always warmed (every list-scheduling engine touches them): the union
    DAG, its successor CSR, indegree/outdegree, and level structure, plus
    the per-direction levels behind ``task_levels`` (the priority basis
    of the random-delay family).  Warmed per engine: the dense padded
    successor matrix only when the bucket engine's sorted pool can run
    (``engine`` in ``("bucket", "auto")``) — the heap and vector engines
    never touch it, and on wide shallow instances its build dwarfs the
    structural warm.  Warmed on demand: per-direction descendant counts
    (``descendant*``), b-levels and successor CSR (``dfds*`` /
    ``blevel*``).  T-levels are supported by the cache wire format but
    warmed only here if an algorithm family starts using them — nothing
    in the registry does today.

    Everything warmed here ships to attached workers through the
    shared-memory cache wire format, so a worker running the same engine
    performs zero cache rebuilds (``dag.cache.rebuild`` stays 0 — pinned
    by ``tests/test_parallel_rss.py`` for the vector engine, whose caches
    are all numpy arrays; the heap engine's Python-list conversions are
    per-process by nature).
    """
    union = inst.union_dag()
    union.successor_csr()
    union.indegree()
    union.outdegree()
    union.num_levels()
    union.topological_order()
    if engine in ("bucket", "auto"):
        union.padded_successors()
    inst.task_levels()
    for g in inst.dags:
        g.num_levels()
        g.indegree()
        g.outdegree()
    names = set(algorithms)
    if any(n.startswith("descendant") for n in names):
        for g in inst.dags:
            g.descendant_counts()
    if any(n.startswith(("dfds", "blevel")) for n in names):
        for g in inst.dags:
            g.b_levels()
            g.successor_csr()


def _die_with_parent() -> None:
    """Arm ``PR_SET_PDEATHSIG`` so a dead driver takes its pool down.

    A driver that dies without cleanup (``SIGKILL``, OOM kill, a hard
    crash — exactly what the campaign plane's resume contract covers)
    would otherwise orphan every pool worker on its call-queue read
    forever.  Linux-only and best-effort: anywhere ``prctl`` is missing
    the workers keep today's behaviour.  If the parent died in the
    window before the flag was armed, exit immediately — the new parent
    (init) will never die for us.
    """
    import signal

    try:
        import ctypes

        libc = ctypes.CDLL("libc.so.6", use_errno=True)
        libc.prctl(1, signal.SIGKILL)  # 1 = PR_SET_PDEATHSIG
    except Exception:
        return
    import os

    if os.getppid() == 1:
        os.kill(os.getpid(), signal.SIGKILL)


def init_worker(manifest: "StoreManifest", trace: bool = False) -> None:
    """Pool initializer: attach to the shared store before the first task.

    Attachment is memoised per process, so this only front-loads the
    (tiny) mapping cost; :func:`run_chunk` would attach lazily anyway.
    Registers an exit hook that drops the mapping when the worker dies,
    and ties the worker's lifetime to the driver's
    (:func:`_die_with_parent`) so a SIGKILL'd campaign or grid run
    never strands orphan workers.

    ``trace`` mirrors the parent's tracing switch explicitly (env
    inheritance is not enough when the parent enabled tracing
    programmatically, and spawn-context workers inherit no module
    state).  The buffers are reset either way so a fork-started worker
    never re-ships spans it inherited from the parent's buffer.
    """
    from repro import obs
    from repro.parallel.shm_store import attach, detach_all

    _die_with_parent()
    if trace:
        obs.enable_tracing()
    else:
        obs.disable_tracing()
    obs.reset()
    atexit.register(detach_all)
    attach(manifest)


def run_chunk(
    manifest: "StoreManifest",
    cells: Sequence["GridCell"],
    with_comm: bool,
    engine: str,
) -> tuple[list[tuple[int, "ScheduleSummary"]], float, dict | None]:
    """Execute one chunk of grid cells against the shared instance.

    Returns ``(pairs, peak_rss_mb, obs_payload)`` where ``pairs`` is a
    list of ``(cell index, ScheduleSummary)`` — keyed results, so the
    dispatcher aggregates by cell index and a transport reordering
    cannot silently mis-assign rows — ``peak_rss_mb`` is this worker's
    peak RSS (the bench harness's flat-memory evidence), and
    ``obs_payload`` carries this worker's buffered spans/metrics back
    over the result channel (``None`` when tracing is disabled).

    On failure the drained payload is attached to the raised exception
    (:func:`repro.obs.attach_payload_to_exception`), so even a
    :class:`~repro.util.errors.SanitizerError` mid-chunk loses no trace
    data — the dispatcher recovers it in the parent.
    """
    from repro import obs
    from repro.experiments.runner import run_cell_on
    from repro.parallel.dispatcher import process_peak_rss_mb
    from repro.parallel.shm_store import attach, verify_attached
    from repro.util.timing import Timer

    try:
        with obs.span(
            "worker.chunk",
            cat="parallel",
            args_fn=lambda: {"cells": len(cells)},
        ):
            with obs.span("worker.attach", cat="parallel"), Timer() as t_at:
                inst, blocks = attach(manifest)
            obs.gauge_max("parallel.attach_s", t_at.elapsed)
            pairs = []
            for cell in cells:
                with obs.span(
                    "worker.cell",
                    cat="parallel",
                    args_fn=lambda cell=cell: {
                        "index": cell.index,
                        "algorithm": cell.algorithm,
                        "m": cell.m,
                    },
                ):
                    summary = run_cell_on(
                        inst,
                        cell.algorithm,
                        cell.m,
                        cell.block_size,
                        cell.seed,
                        with_comm=with_comm,
                        engine=engine,
                        blocks=blocks.get(cell.block_size)
                        if cell.block_size > 1
                        else None,
                    )
                pairs.append((cell.index, summary))
            # Under REPRO_SANITIZE=1 pin any stray segment write to the
            # chunk that made it (no-op otherwise).
            with obs.span("sanitize.verify_chunk", cat="sanitize"):
                verify_attached(manifest)
    except BaseException as exc:
        obs.attach_payload_to_exception(exc)
        raise
    return pairs, process_peak_rss_mb(), obs.export_payload()
