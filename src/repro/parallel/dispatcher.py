"""Locality-aware parallel dispatch of experiment grids.

Replaces the old flat ``ProcessPoolExecutor.map(..., chunksize=1)`` fan-out
(one IPC round trip per cell, every worker rebuilding the instance) with a
three-stage plan:

1. **Batch** — the grid's cells are grouped into :class:`CellBatch`\\ es,
   one per output row (all seeds of one ``(algorithm, block size, m)``
   config), so a row's seeds never straddle workers and each batch is one
   IPC round trip.
2. **Chunk** — batches are grouped by block size (locality: one partition
   labelling per chunk) and packed into chunks sized by a cheap cost
   model (``n_tasks`` work units per cell) so the pool sees
   ``~_CHUNKS_PER_WORKER`` chunks per worker: few enough to amortise
   dispatch overhead, many enough to load-balance.
3. **Dispatch** — chunks run on a pool whose workers :func:`attach
   <repro.parallel.shm_store.attach>` to the parent's
   :class:`~repro.parallel.shm_store.SharedInstanceStore` (zero-copy, no
   rebuild).  Results stream back as ``(cell index, summary)`` pairs the
   moment each chunk completes — keyed, not positional, so a reordering
   bug mis-assigning rows is structurally impossible — and the store is
   unlinked in a ``finally`` even when a worker raises mid-grid.

Every cell's randomness is a function of its seed alone, so the output is
bit-identical to the serial runner's no matter how cells land on workers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "GridCell",
    "CellBatch",
    "DispatchStats",
    "grid_cells",
    "plan_batches",
    "plan_chunks",
    "run_dispatch",
    "process_peak_rss_mb",
]

#: Chunk-count target per worker: the adaptive chunk size aims for this
#: many chunks on each worker — oversubscription for load balance without
#: per-cell IPC.
_CHUNKS_PER_WORKER = 4


@dataclass(frozen=True)
class GridCell:
    """One (algorithm, m, block size, seed) cell, tagged with its grid index."""

    index: int
    algorithm: str
    m: int
    block_size: int
    seed: object


@dataclass(frozen=True)
class CellBatch:
    """All seed-cells of one output row (one ``(algorithm, block, m)``)."""

    row: int
    block_size: int
    cells: tuple


@dataclass
class DispatchStats:
    """Observability counters for one dispatched grid.

    The ``*_s`` fields are the per-phase wall-clock breakdown the bench
    schema (v4) records per grid run: ``warm_s`` (parent-side cache
    warm-up), ``plan_s`` (batch/chunk planning), ``publish_s`` (shared
    segment publish), ``dispatch_s`` (pool lifetime: submit through last
    result), and ``wait_s`` — the portion of ``dispatch_s`` the parent
    spent blocked on ``wait()`` with no finished chunk to ingest, i.e.
    aggregation stalls.
    """

    workers: int = 0
    n_cells: int = 0
    n_chunks: int = 0
    peak_worker_rss_mb: float = 0.0
    chunk_cells: list = field(default_factory=list)
    warm_s: float = 0.0
    plan_s: float = 0.0
    publish_s: float = 0.0
    dispatch_s: float = 0.0
    wait_s: float = 0.0

    def phases(self) -> dict:
        """The per-phase breakdown as the bench schema's ``phases`` dict."""
        return {
            "warm_s": self.warm_s,
            "plan_s": self.plan_s,
            "publish_s": self.publish_s,
            "dispatch_s": self.dispatch_s,
            "wait_s": self.wait_s,
        }


def grid_cells(config) -> list:
    """Enumerate the grid in the canonical (row-major) serial order.

    The index of each cell is its position in this enumeration; rows are
    consecutive runs of ``len(config.seeds)`` cells.  This order is the
    determinism contract: serial and parallel runs aggregate by these
    indices, never by arrival order.
    """
    cells = []
    index = 0
    for algorithm in config.algorithms:
        for block_size in config.block_sizes:
            for m in config.m_values:
                for seed in config.seeds:
                    cells.append(
                        GridCell(index, algorithm, m, block_size, seed)
                    )
                    index += 1
    return cells


def plan_batches(config, cells: list | None = None) -> list:
    """Group cells into one :class:`CellBatch` per output row.

    With ``cells=None`` the full grid of ``config`` is enumerated and
    rows are the consecutive ``len(config.seeds)``-cell runs.  An
    explicit ``cells`` list (the campaign plane's resume path, where
    only *unfinished* cells are dispatched) is instead split on row
    identity — maximal consecutive runs sharing
    ``(algorithm, block size, m)`` — so partial rows batch correctly.
    """
    if cells is None:
        cells = grid_cells(config)
        n_seeds = max(len(config.seeds), 1)
        batches = []
        for row, i in enumerate(range(0, len(cells), n_seeds)):
            group = tuple(cells[i : i + n_seeds])
            batches.append(CellBatch(row, group[0].block_size, group))
        return batches
    batches = []
    group: list = []
    for cell in cells:
        identity = (cell.algorithm, cell.block_size, cell.m)
        if group and identity != (
            group[0].algorithm, group[0].block_size, group[0].m
        ):
            batches.append(CellBatch(len(batches), group[0].block_size,
                                     tuple(group)))
            group = []
        group.append(cell)
    if group:
        batches.append(CellBatch(len(batches), group[0].block_size,
                                 tuple(group)))
    return batches


def plan_chunks(batches: list, workers: int, cell_cost: int) -> list:
    """Pack row-batches into locality-aware, cost-balanced chunks.

    Batches are ordered by block size (so a chunk touches one partition
    labelling) and greedily packed until a chunk reaches the adaptive
    cost target ``total_cost / (workers * _CHUNKS_PER_WORKER)``.  A chunk
    never mixes block sizes and never splits a batch.
    """
    if not batches:
        return []
    cell_cost = max(int(cell_cost), 1)
    total = sum(len(b.cells) for b in batches) * cell_cost
    target = max(total // max(workers * _CHUNKS_PER_WORKER, 1), 1)
    ordered = sorted(batches, key=lambda b: b.block_size)  # stable: row order kept
    chunks: list[list] = []
    current: list = []
    current_cost = 0
    current_block = None
    for batch in ordered:
        cost = len(batch.cells) * cell_cost
        if current and (
            batch.block_size != current_block or current_cost + cost > target
        ):
            chunks.append(current)
            current, current_cost = [], 0
        current.append(batch)
        current_cost += cost
        current_block = batch.block_size
    if current:
        chunks.append(current)
    return chunks


def process_peak_rss_mb() -> float:
    """This process's peak resident set size in MiB (``VmHWM``).

    Reads ``/proc/self/status`` where available and falls back to
    ``resource.getrusage``; returns 0.0 if neither works.
    """
    try:
        with open("/proc/self/status") as fh:
            for line in fh:
                if line.startswith("VmHWM:"):
                    return int(line.split()[1]) / 1024.0
    except OSError:
        pass
    try:
        import resource

        peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        # ru_maxrss is KiB on Linux, bytes on macOS.
        return peak / 1024.0 if peak < 1 << 40 else peak / (1 << 20)
    except Exception:
        return 0.0


def run_dispatch(
    config,
    with_comm: bool,
    workers: int,
    sink,
    stats: DispatchStats | None = None,
    cells: list | None = None,
) -> None:
    """Run a grid on ``workers`` processes over a shared store.

    ``sink(index, summary)`` is called for every cell as its chunk
    completes (arrival order; the keyed index carries the determinism).
    The shared segment is unlinked before returning, on success and on
    failure alike — a worker exception propagates *after* cleanup.

    By default the full grid of ``config`` runs; ``cells`` dispatches an
    explicit :class:`GridCell` list instead (the campaign executor's
    streaming hook: only unfinished cells, pre-indexed by the caller,
    while ``config`` still provides the instance, block sizes, engine,
    and warm-up algorithm set).
    """
    from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
    from multiprocessing import get_context

    from repro import obs
    from repro.experiments.runner import get_blocks, get_instance
    from repro.parallel.shm_store import SharedInstanceStore
    from repro.parallel.worker import init_worker, run_chunk, warm_instance
    from repro.util.timing import Timer

    if stats is None:
        stats = DispatchStats()
    with obs.span(
        "grid.dispatch",
        cat="parallel",
        args_fn=lambda: {"workers": workers, "n_chunks": stats.n_chunks},
    ):
        inst = get_instance(config)
        with obs.span("grid.warm", cat="parallel"), Timer() as t_warm:
            warm_instance(inst, config.algorithms, engine=config.engine)
            blocks = {
                size: get_blocks(config, size)
                for size in config.block_sizes
                if size > 1
            }
        stats.warm_s = t_warm.elapsed
        with obs.span("grid.plan", cat="parallel"), Timer() as t_plan:
            batches = plan_batches(config, cells=cells)
            chunks = plan_chunks(batches, workers, cell_cost=inst.n_tasks)
        stats.plan_s = t_plan.elapsed
        stats.workers = workers
        stats.n_cells = sum(len(b.cells) for b in batches)
        stats.n_chunks = len(chunks)
        stats.chunk_cells = [sum(len(b.cells) for b in c) for c in chunks]

        with obs.span("grid.publish", cat="parallel"), Timer() as t_pub:
            store = SharedInstanceStore.publish(inst, blocks=blocks)
        stats.publish_s = t_pub.elapsed
        obs.gauge_max("parallel.publish_s", t_pub.elapsed)
        with store:
            manifest = store.manifest
            # Spawn-context workers: a fresh interpreter per worker maps
            # the shared segment and nothing else, so worker peak RSS is
            # the attach cost instead of a copy-on-write snapshot of the
            # parent's whole heap (fork inherited ~860 MB of parent pages
            # into every worker's VmHWM on the bench grid; spawn stays
            # under the committed bench worker-RSS ceiling).
            with Timer() as t_disp, ProcessPoolExecutor(
                max_workers=workers,
                mp_context=get_context("spawn"),
                initializer=init_worker,
                initargs=(manifest, obs.tracing_enabled()),
            ) as pool:
                pending = {
                    pool.submit(
                        run_chunk,
                        manifest,
                        tuple(c for b in chunk for c in b.cells),
                        with_comm,
                        config.engine,
                    )
                    for chunk in chunks
                }
                try:
                    while pending:
                        with Timer() as t_wait:
                            done, pending = wait(
                                pending, return_when=FIRST_COMPLETED
                            )
                        stats.wait_s += t_wait.elapsed
                        for future in done:
                            pairs, worker_rss, payload = future.result()
                            obs.ingest_payload(payload)
                            stats.peak_worker_rss_mb = max(
                                stats.peak_worker_rss_mb, worker_rss
                            )
                            for index, summary in pairs:
                                sink(index, summary)
                except BaseException as exc:
                    # A failing worker drains its span buffer onto the
                    # exception before it pickles back; rescue it so the
                    # failure path loses no trace data.
                    obs.recover_payload_from_exception(exc)
                    for future in pending:
                        future.cancel()
                    raise
            stats.dispatch_s = t_disp.elapsed
        obs.gauge_max("parallel.peak_worker_rss_mb", stats.peak_worker_rss_mb)
