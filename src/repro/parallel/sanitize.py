"""Runtime shared-memory sanitizer — the dynamic twin of lint rule RPL003.

The static rule (:mod:`repro.lint.rules.shm_lifecycle`) proves that every
attached numpy view *is built* read-only; it cannot prove that nothing
writes to the underlying segment through some other alias (a raw
``shm.buf`` memoryview, ctypes, a future refactor).  Setting
``REPRO_SANITIZE=1`` closes that gap at runtime:

* :meth:`~repro.parallel.shm_store.SharedInstanceStore.publish` stamps a
  content digest of the full segment into the manifest;
* :func:`~repro.parallel.shm_store.attach` verifies the digest on entry
  (torn or corrupt publication) and **poisons** the views — asserting
  every one is non-writable, so any task-level write raises numpy's
  ``ValueError: assignment destination is read-only`` immediately;
* workers re-verify the digest after each chunk, and the owning store
  re-verifies on ``close()`` before unlinking — a stray write anywhere in
  between surfaces as :class:`~repro.util.errors.SanitizerError` naming
  the stage that caught it, instead of as a silently-corrupted schedule.

The checks cost one hash of the segment per stage, so the flag is meant
for CI smoke jobs and debugging sessions, not production grids.
"""

from __future__ import annotations

import hashlib
import os
from typing import Mapping

import numpy as np

from repro.util.errors import SanitizerError

__all__ = [
    "sanitize_enabled",
    "segment_digest",
    "poison_views",
    "check_digest",
]


def sanitize_enabled() -> bool:
    """True when ``REPRO_SANITIZE`` is set to anything but ``""``/``0``."""
    return os.environ.get("REPRO_SANITIZE", "0") not in ("", "0")


def segment_digest(buf: memoryview) -> str:
    """Content digest of a shared segment (16-byte blake2b, hex)."""
    return hashlib.blake2b(bytes(buf), digest_size=16).hexdigest()


def poison_views(views: Mapping[str, np.ndarray], where: str) -> None:
    """Assert every attached view is read-only; writes then raise in numpy.

    "Poisoning" here means enforcing the read-only flag so the very first
    write attempt through any of these views fails loudly — there is no
    deferred detection to wait for.  A view that is already writable
    means the attach path itself is broken; that is reported immediately.
    """
    for key, view in views.items():
        if view.flags.writeable:
            raise SanitizerError(
                f"{where}: attached view {key!r} is writable — zero-copy "
                "attachments must be read-only outside the owning store"
            )


def check_digest(buf: memoryview, expected: str | None, where: str) -> None:
    """Verify segment contents still match the published digest."""
    if expected is None:
        return
    actual = segment_digest(buf)
    if actual != expected:
        raise SanitizerError(
            f"{where}: shared segment contents changed after publication "
            f"(digest {actual} != published {expected}) — something wrote "
            "to the segment through a non-view alias"
        )
