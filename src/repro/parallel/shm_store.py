"""Zero-copy shared-memory publication of sweep instances.

The grid runner's old parallel path had every worker process rebuild the
mesh, all ``k`` sweep DAGs, cycle breaking, and the block partitions from
scratch — ``W`` workers paid the instance-build cost ``W`` times and held
``W`` full copies in RAM.  This module replaces the rebuild with a
publish/attach protocol:

* the parent flattens one :class:`~repro.core.instance.SweepInstance`
  (plus any materialised memo caches and the per-block-size partition
  labellings) into a **single** ``multiprocessing.shared_memory`` segment
  via :meth:`SharedInstanceStore.publish`;
* workers :func:`attach` to the segment by name and get back a fully
  functional instance whose arrays are **read-only zero-copy views** of
  the shared pages — no deserialisation, no per-worker copy, RSS flat in
  the worker count;
* the parent guarantees cleanup: context-manager exit, an ``atexit``
  backstop, and unlink-on-crash (the dispatcher unlinks in a ``finally``
  even when a worker raised mid-grid).

The wire format is ``SweepInstance.export_arrays()``: a JSON-able meta
dict plus named numpy arrays, laid out back to back (64-byte aligned) in
the segment and described by an :class:`ArraySpec` table in the picklable
:class:`StoreManifest` that travels to workers with each task.
"""

from __future__ import annotations

import atexit
import os
import secrets
from dataclasses import dataclass, field
from multiprocessing import shared_memory

import numpy as np

from repro.core.instance import SweepInstance
from repro.parallel import sanitize
from repro.util.errors import StoreError

__all__ = [
    "SHM_PREFIX",
    "ArraySpec",
    "StoreManifest",
    "SharedInstanceStore",
    "attach",
    "detach_all",
    "verify_attached",
    "list_orphan_segments",
]

#: Every segment this module creates is named ``reproshm_<hex>`` so leak
#: checks (tests, CI) can scan ``/dev/shm`` for survivors unambiguously.
SHM_PREFIX = "reproshm_"

#: Segment offsets are rounded up to this many bytes so every attached
#: view is at least cache-line (and numpy default) aligned.
_ALIGN = 64


@dataclass(frozen=True)
class ArraySpec:
    """Location of one named array inside the shared segment."""

    key: str
    dtype: str
    shape: tuple
    offset: int


@dataclass(frozen=True)
class StoreManifest:
    """Everything a worker needs to attach: segment name + array table.

    Picklable and small (no array data), so shipping it with every task
    is free.  ``meta`` is the instance's JSON-able metadata from
    :meth:`repro.core.instance.SweepInstance.export_arrays`;
    ``block_sizes`` lists the partition labellings published alongside
    the instance (array keys ``blocks/<size>``).
    """

    segment: str
    meta: dict
    specs: tuple = field(default_factory=tuple)
    block_sizes: tuple = field(default_factory=tuple)
    #: Content digest of the published segment, stamped only when the
    #: ``REPRO_SANITIZE=1`` sanitizer is active (else ``None``).  Workers
    #: and the owning store re-verify it to catch stray writes.
    digest: str | None = None


def _layout(arrays: dict) -> tuple[tuple, int]:
    """Compute (specs, total_bytes) for a name→array dict."""
    specs = []
    offset = 0
    for key in sorted(arrays):
        arr = np.ascontiguousarray(arrays[key])
        specs.append(ArraySpec(key, arr.dtype.str, tuple(arr.shape), offset))
        offset += (arr.nbytes + _ALIGN - 1) // _ALIGN * _ALIGN
    return tuple(specs), max(offset, 1)


def _views(specs: tuple, buf, writeable: bool) -> dict:
    """Build (optionally read-only) ndarray views over a segment buffer."""
    out = {}
    for spec in specs:
        view = np.ndarray(spec.shape, dtype=np.dtype(spec.dtype),
                          buffer=buf, offset=spec.offset)
        view.flags.writeable = writeable
        out[spec.key] = view
    return out


def _untrack(shm: shared_memory.SharedMemory) -> None:
    """Drop a segment from this process's resource tracker.

    ``SharedMemory`` registers every handle — attach included — and the
    tracker unlinks whatever is still registered at interpreter exit.
    Workers only *attach*; if their handles stayed registered the tracker
    would race the parent's unlink and spam "leaked shared_memory"
    warnings.  Ownership lives with the publishing parent alone.
    """
    try:  # pragma: no cover - tracker layout is a CPython internal
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:
        pass


class SharedInstanceStore:
    """One published instance (plus partitions) in shared memory.

    Use as a context manager in the parent::

        with SharedInstanceStore.publish(inst, blocks={64: labels}) as store:
            pool.submit(work, store.manifest, ...)

    Exit closes *and unlinks* the segment; an ``atexit`` hook covers
    abnormal parent exits.  Workers never unlink — they :func:`attach`
    and the views die with the process.
    """

    def __init__(self, shm: shared_memory.SharedMemory, manifest: StoreManifest):
        self._shm = shm
        self._closed = False
        self.manifest = manifest
        atexit.register(self._cleanup)

    @classmethod
    def publish(
        cls,
        inst: SweepInstance,
        blocks: dict | None = None,
    ) -> "SharedInstanceStore":
        """Serialise ``inst`` (and cell→block labellings) into one segment.

        ``blocks`` maps block size → ``(n_cells,)`` labelling array.  Memo
        caches are included exactly as materialised on ``inst`` — warm
        them first (see :func:`repro.parallel.warm_instance`) so workers
        inherit the expensive precomputations instead of redoing them.
        """
        meta, arrays = inst.export_arrays()
        return cls.publish_arrays(meta, arrays, blocks=blocks)

    @classmethod
    def publish_arrays(
        cls,
        meta: dict,
        arrays: dict,
        blocks: dict | None = None,
    ) -> "SharedInstanceStore":
        """Publish an already-exported instance payload into one segment.

        ``(meta, arrays)`` is the
        :meth:`~repro.core.instance.SweepInstance.export_arrays` wire
        format — exactly what :func:`repro.cache.load_arrays` returns on
        a build-cache hit, so a cached instance can be published to
        workers without ever rehydrating per-direction ``Dag`` objects
        in the parent.  :meth:`publish` is a thin wrapper that exports
        a live instance first.
        """
        arrays = dict(arrays)
        block_sizes = tuple(sorted(blocks)) if blocks else ()
        if blocks:
            for size in block_sizes:
                arrays[f"blocks/{size}"] = np.asarray(
                    blocks[size], dtype=np.int64
                )
        specs, total = _layout(arrays)
        name = f"{SHM_PREFIX}{secrets.token_hex(8)}"
        views: dict | None = None
        shm = shared_memory.SharedMemory(name=name, create=True, size=total)
        try:
            views = _views(specs, shm.buf, writeable=True)
            for spec in specs:
                np.copyto(
                    views[spec.key],
                    np.ascontiguousarray(arrays[spec.key]),
                    casting="no",
                )
            digest = (
                sanitize.segment_digest(shm.buf)
                if sanitize.sanitize_enabled() else None
            )
            manifest = StoreManifest(
                segment=shm.name, meta=meta, specs=specs,
                block_sizes=block_sizes, digest=digest,
            )
        except BaseException:
            # A dtype-cast failure (or KeyboardInterrupt) before the
            # handle reaches its owner would otherwise leak a named
            # segment until reboot.
            views = None  # drop buffer views so close() can release the map
            shm.close()
            shm.unlink()
            raise
        return cls(shm, manifest)

    # -- lifecycle -----------------------------------------------------

    def _cleanup(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            # Fork-started workers share this process's resource tracker;
            # their attach-time unregister (see _untrack) may have removed
            # our registration, making unlink()'s own unregister a KeyError
            # inside the tracker daemon.  Re-registering first keeps the
            # tracker's cache consistent either way (it is a set).
            try:
                from multiprocessing import resource_tracker

                resource_tracker.register(self._shm._name, "shared_memory")
            except Exception:  # pragma: no cover - CPython internal
                pass
            self._shm.close()
            self._shm.unlink()
        except FileNotFoundError:  # already unlinked elsewhere
            pass

    def close(self) -> None:
        """Close and unlink the segment (idempotent).

        Under ``REPRO_SANITIZE=1`` the segment's contents are verified
        against the published digest first, so a stray write anywhere in
        the grid run fails the owning store's shutdown loudly.
        """
        if not self._closed:
            sanitize.check_digest(
                self._shm.buf, self.manifest.digest, "store close"
            )
        self._cleanup()
        atexit.unregister(self._cleanup)

    def __enter__(self) -> "SharedInstanceStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return f"SharedInstanceStore({self.manifest.segment!r}, {state})"


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------

#: Per-process attachment cache: segment name -> (shm, instance, blocks).
#: A worker typically serves one grid at a time, so only the most recent
#: attachment is kept; older segments are closed when evicted.
_ATTACHED: dict = {}


def attach(
    manifest: StoreManifest,
) -> tuple[SweepInstance, dict[int, np.ndarray]]:
    """Attach to a published store; returns ``(instance, blocks)``.

    Zero-copy: the instance's arrays are read-only views of the shared
    segment.  Attachments are memoised per process and per segment, so a
    pool worker pays the (microsecond) mapping cost once no matter how
    many task chunks it executes.
    """
    cached = _ATTACHED.get(manifest.segment)
    if cached is not None:
        return cached[1], cached[2]
    # Attach-only handle: ownership (and unlinking) stays with the
    # publishing parent; detach_all() closes this mapping on eviction
    # and at worker exit.
    try:
        shm = shared_memory.SharedMemory(  # repro-lint: disable=RPL003 -- worker attach never owns the segment; the publishing SharedInstanceStore holds the close+unlink paths and detach_all() closes this handle
            name=manifest.segment
        )
    except FileNotFoundError as exc:
        raise StoreError(
            f"shared-memory segment {manifest.segment!r} no longer exists; "
            "the publishing process likely unlinked it (daemon restarted, "
            "instance evicted, or the owning store was closed) — "
            "re-publish the instance and retry with a fresh manifest"
        ) from exc
    _untrack(shm)
    views = _views(manifest.specs, shm.buf, writeable=False)
    if manifest.digest is not None:
        sanitize.check_digest(shm.buf, manifest.digest, "attach")
        sanitize.poison_views(views, "attach")
    blocks = {
        size: views.pop(f"blocks/{size}") for size in manifest.block_sizes
    }
    inst = SweepInstance.from_arrays(manifest.meta, views)
    detach_all()  # evict any previous grid's segment
    _ATTACHED[manifest.segment] = (shm, inst, blocks)
    return inst, blocks


def verify_attached(manifest: StoreManifest) -> None:
    """Re-verify a memoised attachment against its published digest.

    No-op unless the manifest carries a sanitizer digest and this process
    is currently attached to the segment.  Workers call this after every
    chunk so a stray write is pinned to the chunk that made it.
    """
    entry = _ATTACHED.get(manifest.segment)
    if entry is not None and manifest.digest is not None:
        sanitize.check_digest(entry[0].buf, manifest.digest, "worker chunk")


def detach_all() -> None:
    """Close every memoised attachment (worker exit / store eviction)."""
    while _ATTACHED:
        _, entry = _ATTACHED.popitem()
        try:
            entry[0].close()
        except BufferError:  # live views still reference the buffer
            pass


def list_orphan_segments() -> list[str]:
    """Names of store segments still present in ``/dev/shm``.

    Cleanup verification for tests and the CI leak check: after a grid —
    even one aborted by a worker crash — this must be empty.  Returns
    ``[]`` on platforms without a scannable ``/dev/shm``.
    """
    try:
        return sorted(
            name for name in os.listdir("/dev/shm")
            if name.startswith(SHM_PREFIX)
        )
    except (FileNotFoundError, NotADirectoryError, PermissionError):
        return []
