"""Content-addressed on-disk cache of built sweep instances.

Instance construction (mesh → per-direction edge induction → cycle
check → CSR → levels) is deterministic in ``(mesh family, params, seed,
direction set, tol)``, so its output can be cached across *processes* —
every bench, grid, and campaign rerun on the same configuration is a
warm start.  This module persists the
:meth:`~repro.core.instance.SweepInstance.export_arrays` wire format
(the same flat arrays the shared-memory plane publishes) under
:data:`DIR_ENV`, keyed by a blake2b content hash.

Design contract
---------------
* **Disabled by default.** The cache is active only when the
  :data:`DIR_ENV` environment variable names a directory; every entry
  point degrades to a no-op miss otherwise, so tests and one-shot runs
  stay hermetic.
* **Atomic writes.** Entries are written to a same-directory temp file
  and ``os.replace``-d into place, so a ``SIGKILL`` mid-write can only
  leave a stray ``*.tmp`` (reported by :func:`list_corrupt_entries`,
  never loaded) — a visible entry is always complete.
* **Fail-loud verification.** Every load re-hashes the payload against
  the stored blake2b digest and checks magic/version/key; any mismatch
  raises :class:`~repro.util.errors.CacheError` instead of silently
  rebuilding, so corruption surfaces where it happened.
* **Size-bounded LRU.** After each store, oldest-``mtime`` entries are
  evicted until the directory fits :data:`MAX_MB_ENV` (default
  :data:`DEFAULT_MAX_MB`); loads touch ``mtime`` so hot entries stay.

Session counters (:data:`COUNTERS` — hit/miss/store/evict) are plain
ints so CI can assert a warm rerun actually hit (``counter > 0``)
without enabling tracing; the same events are mirrored onto the
:mod:`repro.obs` metrics plane (``cache.hit`` etc.) when tracing is on.

Crash injection (test hook)
---------------------------
``REPRO_CACHE_FAULT=sigkill:before_rename`` arms an env-gated fault that
SIGKILLs the process after the temp file is fully written but before the
atomic rename — the window an unsafe writer would corrupt.  The cache
battery (``tests/test_cache.py``) uses it to prove the atomicity
contract above; inert unless armed, mirroring
:data:`repro.campaign.executor.FAULT_ENV`.
"""

from __future__ import annotations

import hashlib
import json
import os
import signal
import struct
from contextlib import contextmanager
from pathlib import Path
from typing import TYPE_CHECKING, Iterator

import numpy as np

from repro import obs
from repro.util.errors import CacheError

if TYPE_CHECKING:  # annotation-only; keeps import cost near zero
    from repro.core.instance import SweepInstance

__all__ = [
    "CACHE_VERSION",
    "DIR_ENV",
    "MAX_MB_ENV",
    "FAULT_ENV",
    "DEFAULT_MAX_MB",
    "ENTRY_SUFFIX",
    "COUNTERS",
    "cache_dir",
    "override_dir",
    "instance_key",
    "entry_path",
    "store_arrays",
    "load_arrays",
    "store_instance",
    "load_instance",
    "list_entries",
    "list_corrupt_entries",
    "cache_stats",
    "clear_cache",
    "reset_counters",
]

#: Bump on any wire-format or key-derivation change; part of both the
#: content key and the entry header, so stale entries miss (key) and
#: tampered headers fail loudly (header check).
CACHE_VERSION = 1

#: Environment variable naming the cache directory (unset = disabled).
DIR_ENV = "REPRO_CACHE_DIR"

#: Environment variable bounding the cache size in MiB.
MAX_MB_ENV = "REPRO_CACHE_MAX_MB"

#: Env var arming the crash-injection hook (``sigkill:before_rename``).
FAULT_ENV = "REPRO_CACHE_FAULT"

#: Default size bound (MiB) when :data:`MAX_MB_ENV` is unset.
DEFAULT_MAX_MB = 512.0

#: Filename suffix of every committed cache entry.
ENTRY_SUFFIX = ".rpc"

_MAGIC = b"REPROCACHE\n"
_ALIGN = 64

#: Per-process event counters (independent of the obs tracing switch).
COUNTERS: dict[str, int] = {"hit": 0, "miss": 0, "store": 0, "evict": 0}


def reset_counters() -> None:
    """Zero the per-process :data:`COUNTERS` (test/bench isolation)."""
    for key in COUNTERS:
        COUNTERS[key] = 0


def cache_dir() -> Path | None:
    """The active cache directory, or ``None`` when the cache is off.

    Reads :data:`DIR_ENV` on every call (so tests and the CLI can retarget
    it) and creates the directory on first use.
    """
    value = os.environ.get(DIR_ENV)
    if not value:
        return None
    root = Path(value)
    root.mkdir(parents=True, exist_ok=True)
    return root


@contextmanager
def override_dir(path: str | os.PathLike | None) -> Iterator[Path | None]:
    """Temporarily point :data:`DIR_ENV` at ``path`` (``None`` disables).

    Yields the resulting :func:`cache_dir` and restores the previous
    environment on exit — the bench harness's cold/warm construction row
    and the test battery both run against throwaway directories.
    """
    previous = os.environ.get(DIR_ENV)
    if path is None:
        os.environ.pop(DIR_ENV, None)
    else:
        os.environ[DIR_ENV] = os.fspath(path)
    try:
        yield cache_dir()
    finally:
        if previous is None:
            os.environ.pop(DIR_ENV, None)
        else:
            os.environ[DIR_ENV] = previous


def instance_key(
    mesh: str,
    target_cells: int,
    mesh_seed: int,
    k: int,
    tol: float,
    directions: np.ndarray,
) -> str:
    """Blake2b content key of one instance-construction configuration.

    Covers everything construction output depends on: the mesh family
    and its parameters/seed, the direction count *and* the direction
    vectors themselves (hashed bit-exact), the edge-induction tolerance,
    and :data:`CACHE_VERSION`.  Deterministic across processes and
    platforms with identical float semantics.
    """
    dirs = np.ascontiguousarray(np.asarray(directions, dtype=np.float64))
    payload = {
        "cache_version": CACHE_VERSION,
        "mesh": str(mesh),
        "target_cells": int(target_cells),
        "mesh_seed": int(mesh_seed),
        "k": int(k),
        "tol": float(tol),
        "directions": hashlib.blake2b(dirs.tobytes(), digest_size=16).hexdigest(),
        "directions_shape": list(dirs.shape),
    }
    blob = json.dumps(payload, sort_keys=True).encode()
    return hashlib.blake2b(blob, digest_size=16).hexdigest()


def entry_path(key: str) -> Path | None:
    """Filesystem path of ``key``'s entry (``None`` when disabled)."""
    root = cache_dir()
    if root is None:
        return None
    return root / f"{key}{ENTRY_SUFFIX}"


def _maybe_fault(stage: str) -> None:
    """Env-gated crash injection (see module docstring)."""
    spec = os.environ.get(FAULT_ENV)
    if not spec:
        return
    kind, _, when = spec.partition(":")
    if kind != "sigkill" or not when:
        raise CacheError(
            f"malformed {FAULT_ENV}={spec!r} (expected 'sigkill:<stage>')"
        )
    if when == stage:
        os.kill(os.getpid(), signal.SIGKILL)


def store_arrays(
    key: str, meta: dict, arrays: dict[str, np.ndarray]
) -> Path | None:
    """Persist one exported-instance payload under ``key`` (atomic).

    No-op (returns ``None``) when the cache is disabled.  The entry file
    is ``magic | header_len | header JSON | 64-byte-aligned payload``;
    the header records every array's dtype/shape/offset plus a blake2b
    digest of the payload that :func:`load_arrays` re-verifies.
    """
    root = cache_dir()
    if root is None:
        return None
    specs = []
    offset = 0
    chunks: list[bytes] = []
    for name in sorted(arrays):
        arr = np.ascontiguousarray(arrays[name])
        specs.append(
            {
                "key": name,
                "dtype": arr.dtype.str,
                "shape": list(arr.shape),
                "offset": offset,
            }
        )
        data = arr.tobytes()
        padded = (len(data) + _ALIGN - 1) // _ALIGN * _ALIGN
        chunks.append(data)
        chunks.append(b"\x00" * (padded - len(data)))
        offset += padded
    payload = b"".join(chunks)
    header = json.dumps(
        {
            "cache_version": CACHE_VERSION,
            "key": key,
            "meta": meta,
            "specs": specs,
            "payload_bytes": len(payload),
            "digest": hashlib.blake2b(payload, digest_size=32).hexdigest(),
        },
        sort_keys=True,
    ).encode()
    final = root / f"{key}{ENTRY_SUFFIX}"
    tmp = root / f"{key}.{os.getpid()}.tmp"
    with open(tmp, "wb") as fh:
        fh.write(_MAGIC)
        fh.write(struct.pack("<Q", len(header)))
        fh.write(header)
        fh.write(payload)
        fh.flush()
        os.fsync(fh.fileno())
    _maybe_fault("before_rename")
    os.replace(tmp, final)
    COUNTERS["store"] += 1
    obs.inc("cache.store")
    _evict(root)
    return final


def _parse_entry(blob: bytes, where: str) -> tuple[dict, memoryview]:
    """Split one entry file into (header, payload); fail loudly."""
    if not blob.startswith(_MAGIC):
        raise CacheError(f"{where}: bad magic (not a repro cache entry)")
    head_at = len(_MAGIC)
    if len(blob) < head_at + 8:
        raise CacheError(f"{where}: truncated header length")
    (header_len,) = struct.unpack_from("<Q", blob, head_at)
    payload_at = head_at + 8 + header_len
    if len(blob) < payload_at:
        raise CacheError(f"{where}: truncated header")
    try:
        header = json.loads(blob[head_at + 8 : payload_at])
    except ValueError as exc:
        raise CacheError(f"{where}: unparseable header ({exc})") from exc
    if header.get("cache_version") != CACHE_VERSION:
        raise CacheError(
            f"{where}: cache_version {header.get('cache_version')!r} != "
            f"{CACHE_VERSION}"
        )
    payload = memoryview(blob)[payload_at:]
    if len(payload) != header.get("payload_bytes"):
        raise CacheError(
            f"{where}: payload is {len(payload)} bytes, header says "
            f"{header.get('payload_bytes')}"
        )
    digest = hashlib.blake2b(payload, digest_size=32).hexdigest()
    if digest != header.get("digest"):
        raise CacheError(f"{where}: payload digest mismatch")
    return header, payload


def load_arrays(key: str) -> tuple[dict, dict[str, np.ndarray]] | None:
    """Load ``key``'s entry; ``None`` on miss (or when disabled).

    Returns ``(meta, arrays)`` in the
    :meth:`~repro.core.instance.SweepInstance.export_arrays` wire format.
    Arrays are read-only zero-copy views over the entry's payload bytes.
    Raises :class:`~repro.util.errors.CacheError` on any verification
    failure — a corrupt entry is never reported as a miss.
    """
    path = entry_path(key)
    if path is None:
        return None
    try:
        blob = path.read_bytes()
    except FileNotFoundError:
        COUNTERS["miss"] += 1
        obs.inc("cache.miss")
        return None
    header, payload = _parse_entry(blob, path.name)
    if header.get("key") != key:
        raise CacheError(
            f"{path.name}: stored key {header.get('key')!r} != {key!r}"
        )
    arrays = {}
    for spec in header["specs"]:
        view = np.ndarray(
            tuple(spec["shape"]),
            dtype=np.dtype(spec["dtype"]),
            buffer=payload,
            offset=spec["offset"],
        )
        view.flags.writeable = False  # entry bytes are shared, never mutated
        arrays[spec["key"]] = view
    try:
        os.utime(path)  # LRU recency touch
    except OSError:
        pass
    COUNTERS["hit"] += 1
    obs.inc("cache.hit")
    return header["meta"], arrays


def store_instance(key: str, inst: "SweepInstance") -> Path | None:
    """Persist an instance (with its materialised caches) under ``key``."""
    meta, arrays = inst.export_arrays()
    return store_arrays(key, meta, arrays)


def load_instance(key: str) -> "SweepInstance | None":
    """Rehydrate the instance stored under ``key`` (``None`` on miss).

    Zero-copy over the entry payload, no validation or cache
    recomputation — every memo cache materialised at store time (levels,
    CSR, ``task_levels``) comes back adopted.  For publishing straight to
    shared memory without building Python DAG objects at all, pair
    :func:`load_arrays` with
    :meth:`repro.parallel.SharedInstanceStore.publish_arrays` instead.
    """
    hit = load_arrays(key)
    if hit is None:
        return None
    from repro.core.instance import SweepInstance

    meta, arrays = hit
    return SweepInstance.from_arrays(meta, arrays, adopted=False)


def _entry_files(root: Path) -> list[Path]:
    return sorted(root.glob(f"*{ENTRY_SUFFIX}"))


def _max_bytes() -> int:
    return int(float(os.environ.get(MAX_MB_ENV, DEFAULT_MAX_MB)) * 2**20)


def _evict(root: Path) -> None:
    """Delete oldest entries until the directory fits the size bound.

    The most recently touched entry is never evicted, so a single entry
    larger than the bound does not delete itself.
    """
    stats = []
    for path in _entry_files(root):
        try:
            st = path.stat()
        except FileNotFoundError:
            continue
        stats.append((st.st_mtime_ns, st.st_size, path))
    total = sum(size for _, size, _ in stats)
    limit = _max_bytes()
    for _, size, path in sorted(stats)[:-1]:
        if total <= limit:
            break
        try:
            path.unlink()
        except FileNotFoundError:
            continue
        total -= size
        COUNTERS["evict"] += 1
        obs.inc("cache.evict")


def list_entries() -> list[dict]:
    """Summaries of every committed entry (empty when disabled).

    Each dict carries ``key``, ``bytes``, ``mtime`` and — when the header
    parses — the instance ``name``/``n_cells``/``k``.  Corrupt entries
    appear with an ``error`` field instead of raising, so ``repro cache
    ls`` can display a damaged directory.
    """
    root = cache_dir()
    if root is None:
        return []
    out = []
    for path in _entry_files(root):
        try:
            st = path.stat()
        except FileNotFoundError:
            continue
        entry: dict = {
            "key": path.name[: -len(ENTRY_SUFFIX)],
            "bytes": int(st.st_size),
            "mtime": float(st.st_mtime),
        }
        try:
            header, _ = _parse_entry(path.read_bytes(), path.name)
            meta = header.get("meta", {})
            entry["name"] = meta.get("name")
            entry["n_cells"] = meta.get("n_cells")
            entry["k"] = meta.get("k")
        except (CacheError, OSError) as exc:
            entry["error"] = str(exc)
        out.append(entry)
    return out


def list_corrupt_entries() -> list[str]:
    """Filenames of damaged or leaked files in the cache directory.

    The cache's leak/corruption probe, mirroring
    :func:`repro.parallel.list_orphan_segments`: committed entries whose
    magic/header/digest fail verification, plus stray ``*.tmp`` files
    left by a writer that died before its atomic rename.  Empty when the
    cache is healthy (or disabled) — tests and CI assert exactly that.
    """
    root = cache_dir()
    if root is None:
        return []
    bad = []
    for path in _entry_files(root):
        try:
            _parse_entry(path.read_bytes(), path.name)
        except (CacheError, OSError):
            bad.append(path.name)
    bad.extend(p.name for p in root.glob("*.tmp"))
    return sorted(bad)


def cache_stats() -> dict:
    """One status dict: directory, entry census, bound, session counters."""
    root = cache_dir()
    entries = list_entries()
    return {
        "dir": str(root) if root is not None else None,
        "enabled": root is not None,
        "entries": len(entries),
        "total_bytes": int(sum(e["bytes"] for e in entries)),
        "max_bytes": _max_bytes(),
        "corrupt": list_corrupt_entries(),
        "counters": dict(COUNTERS),
    }


def clear_cache() -> int:
    """Delete every entry (and stray temp file); returns the count."""
    root = cache_dir()
    if root is None:
        return 0
    removed = 0
    for path in list(_entry_files(root)) + list(root.glob("*.tmp")):
        try:
            path.unlink()
        except FileNotFoundError:
            continue
        removed += 1
    return removed
