"""Experiment configuration dataclasses.

One :class:`ExperimentConfig` describes a full grid: a mesh, a direction
count, processor counts, block sizes, algorithms, and seeds.  The
defaults are scaled-down versions of the paper's setups (Section 5) so
they run in seconds; pass larger ``target_cells`` to approach the paper's
31k–118k-cell meshes.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

__all__ = ["ExperimentConfig", "scaled"]

#: Processor counts mirroring the paper's sweep (it goes to 128–512).
DEFAULT_M_VALUES = (2, 4, 8, 16, 32, 64, 128)


@dataclass(frozen=True)
class ExperimentConfig:
    """A full experiment grid.

    Attributes
    ----------
    mesh:
        Generator name from :data:`repro.mesh.MESH_GENERATORS`.
    target_cells:
        Approximate cell count of the generated mesh.
    k:
        Number of sweep directions (24 = the S4 set used in Fig. 2(a,b)).
    m_values:
        Processor counts to sweep.
    block_sizes:
        Block sizes for the METIS-style partitioning; 1 = per-cell
        assignment (the pure algorithm).
    algorithms:
        Registry names (see :mod:`repro.heuristics.registry`).
    seeds:
        Random seeds; results are averaged over them.
    mesh_seed:
        Seed for mesh generation (kept separate so the mesh stays fixed
        while scheduling randomness varies).
    engine:
        List-scheduling engine forwarded to every algorithm
        (``"heap"``, ``"bucket"``, or ``"auto"`` — see
        :mod:`repro.core.list_scheduler`).
    workers:
        Default process count for :func:`repro.experiments.runner.run_grid`:
        ``1`` runs serially, ``N > 1`` dispatches over ``N`` workers
        sharing the instance via :mod:`repro.parallel`, and ``0`` means
        one worker per CPU (``os.cpu_count()``).  Output is bit-identical
        across all settings.
    """

    mesh: str = "tetonly"
    target_cells: int = 2000
    k: int = 24
    m_values: tuple = DEFAULT_M_VALUES
    block_sizes: tuple = (1,)
    algorithms: tuple = ("random_delay_priority",)
    seeds: tuple = (0, 1, 2)
    mesh_seed: int = 0
    engine: str = "auto"
    name: str = "experiment"
    workers: int = 1


def scaled(config: ExperimentConfig, factor: float) -> ExperimentConfig:
    """Scale a config's mesh size by ``factor`` (for quick CI runs)."""
    return replace(config, target_cells=max(64, int(config.target_cells * factor)))
