"""Experiment runner: builds instances, sweeps grids, collects rows.

Meshes, instances, and block partitions are memoised per process — the
grid sweeps in the figure reproductions reuse one instance across dozens
of (algorithm, m, seed) cells, and the partitioner output across all
seeds, exactly like the paper's setup ("we first do the same block
assignment").
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.analysis.metrics import ScheduleSummary, summarize_schedule
from repro.core.assignment import block_assignment
from repro.experiments.configs import ExperimentConfig
from repro.heuristics.registry import get_algorithm
from repro.mesh.generators import make_mesh
from repro.partition.multilevel import partition_mesh_blocks
from repro.sweeps.dag_builder import build_instance
from repro.sweeps.directions import directions_for_mesh
from repro.util.rng import spawn_rngs

__all__ = [
    "get_instance",
    "get_blocks",
    "run_cell",
    "run_grid",
    "clear_caches",
]


@lru_cache(maxsize=32)
def _mesh_cache(mesh: str, target_cells: int, mesh_seed: int):
    return make_mesh(mesh, target_cells=target_cells, seed=mesh_seed)


@lru_cache(maxsize=32)
def _instance_cache(mesh: str, target_cells: int, mesh_seed: int, k: int):
    m = _mesh_cache(mesh, target_cells, mesh_seed)
    dirs = directions_for_mesh(m.dim, k)
    return build_instance(m, dirs)


@lru_cache(maxsize=64)
def _blocks_cache(mesh: str, target_cells: int, mesh_seed: int, block_size: int):
    m = _mesh_cache(mesh, target_cells, mesh_seed)
    return partition_mesh_blocks(m.n_cells, m.adjacency, block_size, seed=mesh_seed)


def clear_caches() -> None:
    """Drop all memoised meshes/instances/partitions."""
    _mesh_cache.cache_clear()
    _instance_cache.cache_clear()
    _blocks_cache.cache_clear()


def get_instance(config: ExperimentConfig):
    """The (memoised) sweep instance of a config."""
    return _instance_cache(
        config.mesh, config.target_cells, config.mesh_seed, config.k
    )


def get_blocks(config: ExperimentConfig, block_size: int) -> np.ndarray:
    """The (memoised) cell→block labelling for one block size."""
    return _blocks_cache(
        config.mesh, config.target_cells, config.mesh_seed, block_size
    )


def run_cell(
    config: ExperimentConfig,
    algorithm: str,
    m: int,
    block_size: int,
    seed,
    with_comm: bool = True,
) -> ScheduleSummary:
    """Run one (algorithm, m, block size, seed) cell of the grid."""
    inst = get_instance(config)
    algo = get_algorithm(algorithm)
    rngs = spawn_rngs(seed, 2)
    if block_size > 1:
        blocks = get_blocks(config, block_size)
        assignment = block_assignment(blocks, m, seed=rngs[0])
        schedule = algo(
            inst, m, seed=rngs[1], assignment=assignment, engine=config.engine
        )
    else:
        schedule = algo(inst, m, seed=rngs[1], engine=config.engine)
    summary = summarize_schedule(schedule, with_comm=with_comm)
    return summary


def _run_cell_task(args):
    """Top-level (picklable) worker for parallel grids.

    Each worker process keeps its own memoised mesh/instance/blocks via
    the module-level lru caches, so the per-process build cost amortises
    across the cells the pool hands it.
    """
    config, algorithm, m, block_size, seed, with_comm = args
    return run_cell(config, algorithm, m, block_size, seed, with_comm)


def run_grid(
    config: ExperimentConfig, with_comm: bool = True, workers: int = 1
) -> list[dict]:
    """Run the full grid; one averaged row per (algorithm, m, block size).

    Each row carries the mean over seeds of makespan / ratio / C1 / C2,
    plus the max ratio (the worst-case view the guarantees are about).

    ``workers > 1`` fans the grid cells over a process pool — results
    are bit-identical to the serial run (each cell's randomness is a
    function of its seed alone), so parallelism is purely a wall-clock
    lever for full-scale grids.
    """
    cells = [
        (config, algorithm, m, block_size, seed, with_comm)
        for algorithm in config.algorithms
        for block_size in config.block_sizes
        for m in config.m_values
        for seed in config.seeds
    ]
    if workers > 1 and len(cells) > 1:
        from concurrent.futures import ProcessPoolExecutor

        with ProcessPoolExecutor(max_workers=workers) as pool:
            summaries = list(pool.map(_run_cell_task, cells, chunksize=1))
    else:
        summaries = [_run_cell_task(c) for c in cells]

    rows: list[dict] = []
    i = 0
    n_seeds = len(config.seeds)
    for algorithm in config.algorithms:
        for block_size in config.block_sizes:
            for m in config.m_values:
                chunk = summaries[i : i + n_seeds]
                i += n_seeds
                rows.append(_aggregate(chunk, algorithm, m, block_size))
    return rows


def _aggregate(summaries: list[ScheduleSummary], algorithm, m, block_size) -> dict:
    def mean(attr):
        return float(np.mean([getattr(s, attr) for s in summaries]))

    first = summaries[0]
    return {
        "algorithm": algorithm,
        "mesh": first.mesh,
        "n_cells": first.n_cells,
        "k": first.k,
        "m": m,
        "block_size": block_size,
        "lower_bound": first.lower_bound,
        "makespan": mean("makespan"),
        "makespan_max": float(max(s.makespan for s in summaries)),
        "ratio": mean("ratio"),
        "ratio_max": float(max(s.ratio for s in summaries)),
        "c1": mean("c1"),
        "c1_fraction": mean("c1_fraction"),
        "c2": mean("c2"),
        "idle_fraction": mean("idle_fraction"),
        "seeds": len(summaries),
    }
