"""Experiment runner: builds instances, sweeps grids, collects rows.

Meshes, instances, and block partitions are memoised per process — the
grid sweeps in the figure reproductions reuse one instance across dozens
of (algorithm, m, seed) cells, and the partitioner output across all
seeds, exactly like the paper's setup ("we first do the same block
assignment").  Instances are built through the batched fast path
(:func:`repro.sweeps.dag_builder.build_instance_batched`) and — when
``REPRO_CACHE_DIR`` is set — cached *across* processes by the
content-addressed build cache (:mod:`repro.cache`), so bench, grid, and
campaign reruns warm-start construction.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.analysis.metrics import ScheduleSummary, summarize_schedule
from repro.core.assignment import block_assignment
from repro.experiments.configs import ExperimentConfig
from repro.heuristics.registry import get_algorithm
from repro.mesh.generators import make_mesh, mesh_dim
from repro.partition.multilevel import partition_mesh_blocks
from repro.sweeps.dag_builder import DEFAULT_TOL, build_instance_batched
from repro.sweeps.directions import directions_for_mesh
from repro.util.rng import spawn_rngs

__all__ = [
    "get_instance",
    "get_blocks",
    "run_cell",
    "run_cell_on",
    "run_grid",
    "row_key",
    "aggregate_row",
    "resolve_workers",
    "clear_caches",
]


def row_key(algorithm: str, m: int, block_size: int) -> str:
    """Stable identity of one output row of a grid.

    Positional cell indices are an artifact of one enumeration; this key
    is a function of the row's parameters alone, so the grid runner, the
    parallel dispatcher's keyed aggregation, and the campaign result
    store (:mod:`repro.campaign`) all name the same row the same way.
    Every ``run_grid`` row carries it as ``row["row_key"]``.
    """
    return f"{algorithm}/b{block_size}/m{m}"


@lru_cache(maxsize=32)
def _mesh_cache(mesh: str, target_cells: int, mesh_seed: int):
    return make_mesh(mesh, target_cells=target_cells, seed=mesh_seed)


@lru_cache(maxsize=32)
def _instance_cache(mesh: str, target_cells: int, mesh_seed: int, k: int):
    # Consult the content-addressed disk cache (repro.cache) before
    # building: the key is derivable without constructing the mesh, so a
    # warm process skips mesh generation entirely.  Disabled (pure
    # build) unless $REPRO_CACHE_DIR is set.
    from repro import cache as build_cache

    key = None
    if build_cache.cache_dir() is not None:
        dirs = directions_for_mesh(mesh_dim(mesh), k)
        key = build_cache.instance_key(
            mesh, target_cells, mesh_seed, k, DEFAULT_TOL, dirs
        )
        inst = build_cache.load_instance(key)
        if inst is not None:
            return inst
    m = _mesh_cache(mesh, target_cells, mesh_seed)
    dirs = directions_for_mesh(m.dim, k)
    inst = build_instance_batched(m, dirs)
    if key is not None:
        build_cache.store_instance(key, inst)
    return inst


@lru_cache(maxsize=64)
def _blocks_cache(mesh: str, target_cells: int, mesh_seed: int, block_size: int):
    m = _mesh_cache(mesh, target_cells, mesh_seed)
    return partition_mesh_blocks(m.n_cells, m.adjacency, block_size, seed=mesh_seed)


def clear_caches() -> None:
    """Drop all memoised meshes/instances/partitions."""
    _mesh_cache.cache_clear()
    _instance_cache.cache_clear()
    _blocks_cache.cache_clear()


def get_instance(config: ExperimentConfig):
    """The (memoised) sweep instance of a config."""
    return _instance_cache(
        config.mesh, config.target_cells, config.mesh_seed, config.k
    )


def get_blocks(config: ExperimentConfig, block_size: int) -> np.ndarray:
    """The (memoised) cell→block labelling for one block size."""
    return _blocks_cache(
        config.mesh, config.target_cells, config.mesh_seed, block_size
    )


def run_cell_on(
    inst,
    algorithm: str,
    m: int,
    block_size: int,
    seed,
    with_comm: bool = True,
    engine: str = "auto",
    blocks: np.ndarray | None = None,
) -> ScheduleSummary:
    """Run one grid cell against an already-built instance.

    The cell-execution core shared by the serial runner (which feeds it
    the memoised instance/blocks) and the parallel workers (which feed it
    zero-copy shared-memory views).  Randomness is a function of ``seed``
    alone, so both paths are bit-identical by construction.
    """
    algo = get_algorithm(algorithm)
    rngs = spawn_rngs(seed, 2)
    if block_size > 1:
        if blocks is None:
            raise ValueError(
                f"block_size={block_size} cell needs its cell->block labelling"
            )
        assignment = block_assignment(blocks, m, seed=rngs[0])
        schedule = algo(inst, m, seed=rngs[1], assignment=assignment, engine=engine)
    else:
        schedule = algo(inst, m, seed=rngs[1], engine=engine)
    return summarize_schedule(schedule, with_comm=with_comm)


def run_cell(
    config: ExperimentConfig,
    algorithm: str,
    m: int,
    block_size: int,
    seed,
    with_comm: bool = True,
) -> ScheduleSummary:
    """Run one (algorithm, m, block size, seed) cell of the grid."""
    return run_cell_on(
        get_instance(config),
        algorithm,
        m,
        block_size,
        seed,
        with_comm=with_comm,
        engine=config.engine,
        blocks=get_blocks(config, block_size) if block_size > 1 else None,
    )


def resolve_workers(workers: int | None, config: ExperimentConfig) -> int:
    """Effective worker count: explicit argument > config > serial.

    ``None`` defers to ``config.workers``; ``0`` (from either source)
    means "one worker per CPU" (``os.cpu_count()``).
    """
    import os

    if workers is None:
        workers = config.workers
    if workers == 0:
        workers = os.cpu_count() or 1
    if workers < 0:
        raise ValueError(f"workers must be >= 0, got {workers}")
    return workers


def run_grid(
    config: ExperimentConfig,
    with_comm: bool = True,
    workers: int | None = None,
    stats=None,
) -> list[dict]:
    """Run the full grid; one averaged row per (algorithm, m, block size).

    Each row carries the mean over seeds of makespan / ratio / C1 / C2,
    plus the max ratio (the worst-case view the guarantees are about).

    ``workers > 1`` dispatches the grid over a process pool that shares
    the instance through :mod:`repro.parallel` (zero-copy shared memory,
    row-batched tasks) instead of rebuilding it per worker; ``workers=0``
    uses every CPU; ``None`` defers to ``config.workers``.  Results are
    bit-identical to the serial run for any worker count: every cell's
    randomness is a function of its seed alone, and aggregation is keyed
    by cell index — a dispatcher that reordered or dropped results fails
    loudly instead of mis-assigning rows.  ``stats`` (a
    :class:`repro.parallel.DispatchStats`, optional) is filled in on the
    parallel path for observability (chunk plan, peak worker RSS).
    """
    from repro.parallel.dispatcher import grid_cells

    workers = resolve_workers(workers, config)
    cells = grid_cells(config)
    n_seeds = len(config.seeds)
    n_rows = len(cells) // n_seeds if n_seeds else 0

    # Streaming keyed aggregation: buffer summaries per row, fold a row
    # the moment its last seed arrives, and free the buffer.  Row order
    # in the output is fixed by the cell indices, never arrival order.
    rows: list[dict | None] = [None] * n_rows
    pending: dict[int, dict[int, ScheduleSummary]] = {}

    def sink(index: int, summary: ScheduleSummary) -> None:
        row = index // n_seeds
        if not 0 <= row < n_rows:
            raise RuntimeError(f"dispatcher returned unknown cell index {index}")
        bucket = pending.setdefault(row, {})
        if index in bucket or rows[row] is not None:
            raise RuntimeError(f"dispatcher returned cell index {index} twice")
        bucket[index] = summary
        if len(bucket) == n_seeds:
            cell = cells[row * n_seeds]
            rows[row] = aggregate_row(
                [bucket[i] for i in sorted(bucket)],
                cell.algorithm,
                cell.m,
                cell.block_size,
            )
            del pending[row]

    if workers > 1 and len(cells) > 1:
        from repro.parallel.dispatcher import run_dispatch

        run_dispatch(config, with_comm, workers, sink, stats=stats)
    else:
        from repro import obs

        with obs.span(
            "grid.serial",
            cat="parallel",
            args_fn=lambda: {"cells": len(cells)},
        ):
            for cell in cells:
                sink(
                    cell.index,
                    run_cell(
                        config, cell.algorithm, cell.m, cell.block_size,
                        cell.seed, with_comm,
                    ),
                )

    missing = [row for row, agg in enumerate(rows) if agg is None]
    if missing:
        raise RuntimeError(
            f"grid dispatch lost {len(missing)} of {n_rows} rows "
            f"(first missing row {missing[0]})"
        )
    return rows


def aggregate_row(
    summaries: list[ScheduleSummary], algorithm, m, block_size
) -> dict:
    """Fold one row's per-seed summaries into the grid's output row.

    The one aggregation used by every results plane: the serial runner,
    the parallel dispatcher's keyed sink, and the campaign report
    (:mod:`repro.campaign.report`) all call it, so a stored campaign is
    byte-identical to a fresh ``run_grid`` by construction.  Each row
    carries its stable :func:`row_key` next to the parameters.
    """

    def mean(attr):
        return float(np.mean([getattr(s, attr) for s in summaries]))

    first = summaries[0]
    return {
        "row_key": row_key(algorithm, m, block_size),
        "algorithm": algorithm,
        "mesh": first.mesh,
        "n_cells": first.n_cells,
        "k": first.k,
        "m": m,
        "block_size": block_size,
        "lower_bound": first.lower_bound,
        "makespan": mean("makespan"),
        "makespan_max": float(max(s.makespan for s in summaries)),
        "ratio": mean("ratio"),
        "ratio_max": float(max(s.ratio for s in summaries)),
        "c1": mean("c1"),
        "c1_fraction": mean("c1_fraction"),
        "c2": mean("c2"),
        "idle_fraction": mean("idle_fraction"),
        "seeds": len(summaries),
    }
