"""Per-figure reproduction drivers (paper Section 5).

One function per paper artifact; each builds the matching experiment
grid, runs it, and returns ``(rows, text)`` where ``text`` is the
figure-shaped series table.  Default mesh sizes are scaled down from the
paper's 31k–118k cells so every figure regenerates in seconds; pass a
larger ``target_cells`` to approach paper scale.

Shape expectations (what reproduction success means; absolute numbers
differ because the meshes are synthetic stand-ins — see DESIGN.md):

* Fig. 2(a): block assignment costs a little makespan over per-cell.
* Fig. 2(b): block assignment slashes C1; C2 is far below C1 and barely
  moves.
* Fig. 2(c): priorities beat plain Random Delay, growing with m.
* Fig. 3(a–c): all heuristics tie at small m; delays help at large m.
* Headline: makespan <= 3 nk/m everywhere the paper claims it.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.experiments.configs import ExperimentConfig
from repro.experiments.report import format_series, format_table
from repro.experiments.runner import run_grid

__all__ = [
    "fig2a",
    "fig2b",
    "fig2c",
    "fig3a",
    "fig3b",
    "fig3c",
    "headline_bounds",
]

_SMALL_M = (2, 4, 8, 16, 32, 64)


def fig2a(
    target_cells: int = 4000,
    m_values=(2, 4, 8, 16, 32),
    block_sizes=(1, 16, 64),
    seeds=(0, 1, 2),
    workers: int | None = None,
):
    """Fig. 2(a): Random Delay makespan vs m, per-cell vs block assignment.

    Paper setup: mesh ``tetonly`` (31k cells), 24 directions, block sizes
    up to 256.  At reduced mesh size the faithful quantity is the
    *blocks-per-processor ratio* — the paper's 31k cells / 256-cell blocks
    / 128 procs gives ~1 block per processor at the top of its sweep —
    so the default block sizes here scale down with the mesh.
    """
    config = ExperimentConfig(
        mesh="tetonly",
        target_cells=target_cells,
        k=24,
        m_values=tuple(m_values),
        block_sizes=tuple(block_sizes),
        algorithms=("random_delay",),
        seeds=tuple(seeds),
        name="fig2a",
    )
    rows = run_grid(config, with_comm=False, workers=workers)
    for row in rows:
        row["series"] = f"block={row['block_size']}"
    text = format_series(
        rows, x="m", y="makespan", group_by="series",
        title="Fig 2(a) — Random Delay makespan vs m (tetonly-like, k=24)",
    )
    return rows, text


def fig2b(
    target_cells: int = 4000,
    m_values=(2, 4, 8, 16, 32),
    block_sizes=(1, 16, 64),
    seeds=(0, 1, 2),
    workers: int | None = None,
):
    """Fig. 2(b): C1 and C2 vs m, per-cell vs block assignment.

    Block sizes scale with the mesh as in :func:`fig2a`.
    """
    config = ExperimentConfig(
        mesh="tetonly",
        target_cells=target_cells,
        k=24,
        m_values=tuple(m_values),
        block_sizes=tuple(block_sizes),
        algorithms=("random_delay",),
        seeds=tuple(seeds),
        name="fig2b",
    )
    rows = run_grid(config, with_comm=True, workers=workers)
    for row in rows:
        row["series"] = f"block={row['block_size']}"
    text_c1 = format_series(
        rows, x="m", y="c1", group_by="series",
        title="Fig 2(b) — interprocessor edges C1 vs m (tetonly-like, k=24)",
    )
    text_c2 = format_series(
        rows, x="m", y="c2", group_by="series",
        title="Fig 2(b) — max-send cost C2 vs m (tetonly-like, k=24)",
    )
    return rows, text_c1 + "\n\n" + text_c2


def fig2c(
    target_cells: int = 2000,
    m_values=(8, 16, 32, 64, 128, 256),
    k_values=(8, 24),
    seeds=(0, 1, 2),
    workers: int | None = None,
):
    """Fig. 2(c): Random Delays vs Random Delays with Priorities (long)."""
    rows = []
    for k in k_values:
        config = ExperimentConfig(
            mesh="long",
            target_cells=target_cells,
            k=k,
            m_values=tuple(m_values),
            block_sizes=(1,),
            algorithms=("random_delay", "random_delay_priority"),
            seeds=tuple(seeds),
            name="fig2c",
        )
        rows.extend(run_grid(config, with_comm=False, workers=workers))
    for row in rows:
        row["series"] = f"{row['algorithm']},k={row['k']}"
    text = format_series(
        rows, x="m", y="ratio", group_by="series",
        title="Fig 2(c) — makespan / (nk/m): Random Delays vs +Priorities (long-like)",
    )
    return rows, text


def _fig3(
    mesh: str,
    block_size: int,
    algorithms: tuple,
    target_cells: int,
    m_values,
    k_values,
    seeds,
    title: str,
    workers: int | None = None,
):
    rows = []
    for k in k_values:
        config = ExperimentConfig(
            mesh=mesh,
            target_cells=target_cells,
            k=k,
            m_values=tuple(m_values),
            block_sizes=(block_size,),
            algorithms=algorithms,
            seeds=tuple(seeds),
        )
        rows.extend(run_grid(config, with_comm=False, workers=workers))
    for row in rows:
        row["series"] = f"{row['algorithm']},k={row['k']}"
    text = format_series(rows, x="m", y="ratio", group_by="series", title=title)
    return rows, text


def fig3a(
    target_cells: int = 2000,
    m_values=_SMALL_M,
    k_values=(8, 24),
    seeds=(0, 1, 2),
    block_size: int = 16,
    workers: int | None = None,
):
    """Fig. 3(a): level priorities without delays vs Algorithm 2.

    Paper setup: mesh ``long`` (61k cells), block size 64 — roughly 1000
    blocks, i.e. ~8 blocks per processor at its largest m.  The default
    ``block_size`` here preserves that blocks-per-processor ratio at the
    reduced mesh size (see :func:`fig2a`).
    """
    return _fig3(
        "long", block_size,
        ("level", "random_delay_priority"),
        target_cells, m_values, k_values, seeds,
        f"Fig 3(a) — ratio to nk/m: level vs random delays (long-like, block {block_size})",
        workers=workers,
    )


def fig3b(
    target_cells: int = 2000,
    m_values=_SMALL_M,
    k_values=(8, 24),
    seeds=(0, 1, 2),
    block_size: int = 16,
    workers: int | None = None,
):
    """Fig. 3(b): descendant priorities ± delays vs Algorithm 2.

    Paper setup: mesh ``tetonly`` (31k cells), block size 256; block size
    scaled down as in :func:`fig3a`.
    """
    return _fig3(
        "tetonly", block_size,
        ("random_delay_priority", "descendant", "descendant_delays"),
        target_cells, m_values, k_values, seeds,
        f"Fig 3(b) — ratio to nk/m: descendant ± delays (tetonly-like, block {block_size})",
        workers=workers,
    )


def fig3c(
    target_cells: int = 2000,
    m_values=_SMALL_M,
    k_values=(8, 24),
    seeds=(0, 1, 2),
    block_size: int = 16,
    workers: int | None = None,
):
    """Fig. 3(c): DFDS priorities ± delays vs Algorithm 2.

    Paper setup: mesh ``well_logging`` (43k cells), block size 128; block
    size scaled down as in :func:`fig3a`.
    """
    return _fig3(
        "well_logging", block_size,
        ("random_delay_priority", "dfds", "dfds_delays"),
        target_cells, m_values, k_values, seeds,
        f"Fig 3(c) — ratio to nk/m: DFDS ± delays (well_logging-like, block {block_size})",
        workers=workers,
    )


def headline_bounds(
    target_cells: int = 1500,
    meshes=("tetonly", "well_logging", "long", "prismtet"),
    m_values=(4, 16, 64, 128),
    k_values=(8, 24),
    seeds=(0, 1),
    workers: int | None = None,
):
    """Headline claim: Algorithm 2's makespan <= 3 nk/m on every run.

    Returns rows plus a table with the worst observed ratio per mesh.
    """
    rows = []
    for mesh in meshes:
        for k in k_values:
            config = ExperimentConfig(
                mesh=mesh,
                target_cells=target_cells,
                k=k,
                m_values=tuple(m_values),
                block_sizes=(1, 16),
                algorithms=("random_delay_priority",),
                seeds=tuple(seeds),
                name="headline",
            )
            rows.extend(run_grid(config, with_comm=False, workers=workers))
    summary = []
    for mesh in meshes:
        mesh_rows = [r for r in rows if r["mesh"].startswith(mesh)]
        summary.append(
            {
                "mesh": mesh,
                "runs": len(mesh_rows),
                "worst_ratio": max(r["ratio_max"] for r in mesh_rows),
                "mean_ratio": float(np.mean([r["ratio"] for r in mesh_rows])),
                "within_3x": all(r["ratio_max"] <= 3.0 for r in mesh_rows),
            }
        )
    text = format_table(
        summary,
        ["mesh", "runs", "mean_ratio", "worst_ratio", "within_3x"],
        title="Headline — Algorithm 2 makespan vs 3*nk/m bound",
    )
    return rows, text
