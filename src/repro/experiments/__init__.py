"""Experiment harness: configs, grid runner, reporting, figure drivers."""

from repro.experiments.configs import ExperimentConfig, scaled
from repro.experiments.runner import (
    run_cell,
    run_grid,
    get_instance,
    get_blocks,
    clear_caches,
)
from repro.experiments.report import format_table, format_series, pick
from repro.experiments.ascii_plot import ascii_chart
from repro.experiments.export import rows_to_csv, rows_to_json, load_rows_json
from repro.experiments.presets import CI_SCALE, PAPER_SCALE, get_preset
from repro.experiments import paper

__all__ = [
    "ExperimentConfig",
    "scaled",
    "run_cell",
    "run_grid",
    "get_instance",
    "get_blocks",
    "clear_caches",
    "format_table",
    "format_series",
    "pick",
    "ascii_chart",
    "rows_to_csv",
    "rows_to_json",
    "load_rows_json",
    "CI_SCALE",
    "PAPER_SCALE",
    "get_preset",
    "paper",
]
