"""Export experiment rows to CSV or JSON.

The grid runner returns plain list-of-dicts rows; these helpers persist
them for external analysis (spreadsheets, plotting environments) without
adding dependencies — stdlib ``csv``/``json`` only.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

from repro.util.errors import ReproError

__all__ = ["rows_to_csv", "rows_to_json", "load_rows_json"]


def _check_rows(rows) -> list[dict]:
    rows = list(rows)
    if not rows:
        raise ReproError("no rows to export")
    if not all(isinstance(r, dict) for r in rows):
        raise ReproError("rows must be dicts")
    return rows


def rows_to_csv(rows, path, columns=None) -> None:
    """Write rows as CSV; columns default to the union of keys, in
    first-appearance order."""
    rows = _check_rows(rows)
    if columns is None:
        columns = []
        for row in rows:
            for key in row:
                if key not in columns:
                    columns.append(key)
    with Path(path).open("w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=list(columns), extrasaction="ignore")
        writer.writeheader()
        for row in rows:
            writer.writerow(row)


def rows_to_json(rows, path) -> None:
    """Write rows as a JSON array (numpy scalars coerced to Python)."""
    rows = _check_rows(rows)

    def coerce(value):
        if hasattr(value, "item"):
            return value.item()
        return value

    payload = [{k: coerce(v) for k, v in row.items()} for row in rows]
    Path(path).write_text(json.dumps(payload, indent=1))


def load_rows_json(path) -> list[dict]:
    """Read rows written by :func:`rows_to_json`."""
    path = Path(path)
    if not path.exists():
        raise ReproError(f"rows file not found: {path}")
    return json.loads(path.read_text())
