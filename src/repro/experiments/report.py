"""Plain-text tables and series for experiment rows.

The paper reports figures; we regenerate the underlying series as aligned
text tables (one per figure), which is what the benchmark harness prints
and EXPERIMENTS.md records.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = ["format_table", "format_series", "pick"]


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:.0f}"
        return f"{value:.3g}" if abs(value) < 10 else f"{value:.1f}"
    return str(value)


def format_table(rows: Sequence[dict], columns: Sequence[str], title: str = "") -> str:
    """Aligned text table of selected columns."""
    header = [c for c in columns]
    body = [[_fmt(row.get(c, "")) for c in columns] for row in rows]
    widths = [
        max(len(header[i]), *(len(r[i]) for r in body)) if body else len(header[i])
        for i in range(len(columns))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for r in body:
        lines.append("  ".join(v.rjust(w) for v, w in zip(r, widths)))
    return "\n".join(lines)


def pick(rows: Iterable[dict], **filters) -> list[dict]:
    """Rows matching all key=value filters."""
    out = []
    for row in rows:
        if all(row.get(k) == v for k, v in filters.items()):
            out.append(row)
    return out


def format_series(
    rows: Sequence[dict],
    x: str,
    y: str,
    group_by: str,
    title: str = "",
) -> str:
    """Pivot rows into one column per ``group_by`` value, indexed by ``x``.

    This is the figure-shaped view: x-axis values down the side, one
    series per group (e.g. one per algorithm), y values in the cells.
    """
    groups = sorted({row[group_by] for row in rows}, key=str)
    xs = sorted({row[x] for row in rows})
    table_rows = []
    for xv in xs:
        row = {x: xv}
        for g in groups:
            match = [r for r in rows if r[x] == xv and r[group_by] == g]
            row[str(g)] = match[0][y] if match else ""
        table_rows.append(row)
    return format_table(table_rows, [x] + [str(g) for g in groups], title=title)
