"""Engine benchmark harness (``repro bench`` / ``scripts/run_bench.py``).

Times the heap and bucket list-scheduling engines on a fixed set of case
families and writes a schema-versioned JSON report (``BENCH_2.json`` at
the repo root).  The committed report is the perf-regression baseline:
the bucket engine must stay at least :data:`TARGET_SPEEDUP` times the
heap engine's tasks/second on the large mesh family, and the makespan
checksums pin that both engines still produce identical schedules on the
benchmark cases.

Families
--------
* ``mesh_large`` — the paper's S4 setting (tetrahedral mesh, k=24) at the
  top of its processor sweep (m=512).  Wide wavefronts; the bucket
  engine's sorted-pool path dominates here.  **This is the family the
  ≥1.5x acceptance gate applies to.**
* ``mesh_standard`` — same mesh at k=8, m=32: the narrow regime where
  ``engine="auto"`` keeps the heap.  Benchmarked so the crossover stays
  visible in the report.
* ``chain`` — identical chains (depth = n, width = k): worst case for
  any batched engine, pure pipeline.
* ``wide_layer`` — wide shallow DAGs: best case for the vectorised pool.

Mesh size scales with the ``REPRO_BENCH_CELLS`` environment variable
(default 2000, the paper-scaled default of
:class:`~repro.experiments.configs.ExperimentConfig`); ``--smoke`` runs a
tiny grid in a couple of seconds for CI schema validation.
"""

from __future__ import annotations

import json
import os
import time
import zlib

import numpy as np

from repro.core.assignment import random_cell_assignment
from repro.core.list_scheduler import list_schedule
from repro.core.random_delay import delayed_task_layers, draw_delays
from repro.util.rng import as_rng

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "DEFAULT_BENCH_CELLS",
    "TARGET_SPEEDUP",
    "bench_cases",
    "run_bench",
    "validate_bench",
    "write_bench",
]

#: Bump when the report layout changes; the filename tracks it
#: (``BENCH_<version>.json``) so stale baselines cannot be misread.
BENCH_SCHEMA_VERSION = 2

#: Mesh size when ``REPRO_BENCH_CELLS`` is unset.
DEFAULT_BENCH_CELLS = 2000

#: Required bucket/heap tasks-per-second ratio on the ``mesh_large``
#: family (the PR's acceptance gate; measured ~2x on the default size).
TARGET_SPEEDUP = 1.5

_REQUIRED_CASE_KEYS = {
    "family",
    "n_tasks",
    "m",
    "k",
    "makespan",
    "checksum",
    "engines",
}
_REQUIRED_ENGINE_KEYS = {"wall_time_s", "tasks_per_sec"}


def _mesh_instance(cells: int, k: int):
    from repro.experiments.configs import ExperimentConfig
    from repro.experiments.runner import get_instance

    return get_instance(
        ExperimentConfig(mesh="tetonly", target_cells=cells, k=k)
    )


def bench_cases(smoke: bool = False, cells: int | None = None) -> list[dict]:
    """The benchmark grid: ``{"family", "instance", "m"}`` dicts."""
    if cells is None:
        cells = int(os.environ.get("REPRO_BENCH_CELLS", DEFAULT_BENCH_CELLS))
    if smoke:
        cells = min(cells, 120)
    from repro.instances.families import identical_chains, wide_shallow

    mesh_m = 64 if smoke else 512
    return [
        {
            "family": "mesh_large",
            "instance": _mesh_instance(cells, k=24),
            "m": mesh_m,
            "k": 24,
        },
        {
            "family": "mesh_standard",
            "instance": _mesh_instance(cells, k=8),
            "m": 32,
            "k": 8,
        },
        {
            "family": "chain",
            "instance": identical_chains(max(cells // 4, 16), 8),
            "m": 8,
            "k": 8,
        },
        {
            "family": "wide_layer",
            "instance": wide_shallow(4 * cells, 4, seed=0),
            "m": mesh_m,
            "k": 4,
        },
    ]


def _time_engine(inst, m, assignment, priority, engine, repeats):
    best = float("inf")
    schedule = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        schedule = list_schedule(
            inst, m, assignment, priority=priority, engine=engine
        )
        best = min(best, time.perf_counter() - t0)
    return best, schedule


def run_bench(
    smoke: bool = False,
    cells: int | None = None,
    repeats: int | None = None,
    seed: int = 0,
) -> dict:
    """Run the full benchmark grid; returns the schema-v2 report dict.

    Each case times both engines on Algorithm 2's delayed-level
    priorities (best wall time over ``repeats`` runs, caches warmed
    beforehand) and cross-checks that the two schedules are identical —
    a benchmark that silently compared different schedules would be
    meaningless.
    """
    if repeats is None:
        repeats = 1 if smoke else 5
    cases_out = []
    for case in bench_cases(smoke=smoke, cells=cells):
        inst = case["instance"]
        m = case["m"]
        rng = as_rng(seed)
        delays = draw_delays(inst.k, rng)
        assignment = random_cell_assignment(inst.n_cells, m, rng)
        priority = delayed_task_layers(inst, delays)
        # Warm the per-instance caches (CSR lists, padded matrix, levels)
        # so both engines are timed on scheduling work alone.
        union = inst.union_dag()
        union.successor_lists()
        union.padded_successors()
        union.num_levels()

        engines = {}
        schedules = {}
        for engine in ("heap", "bucket"):
            wall, sched = _time_engine(
                inst, m, assignment, priority, engine, repeats
            )
            engines[engine] = {
                "wall_time_s": wall,
                "tasks_per_sec": inst.n_tasks / wall if wall > 0 else 0.0,
            }
            schedules[engine] = sched
        if not np.array_equal(
            schedules["heap"].start, schedules["bucket"].start
        ):
            raise AssertionError(
                f"engines disagree on bench family {case['family']!r} — "
                "benchmark aborted"
            )
        start = np.ascontiguousarray(schedules["heap"].start, dtype=np.int64)
        cases_out.append(
            {
                "family": case["family"],
                "n_tasks": int(inst.n_tasks),
                "m": int(m),
                "k": int(case["k"]),
                "makespan": int(schedules["heap"].makespan),
                "checksum": int(zlib.crc32(start.tobytes())),
                "engines": engines,
                "speedup": engines["heap"]["wall_time_s"]
                / max(engines["bucket"]["wall_time_s"], 1e-12),
            }
        )
    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "smoke": bool(smoke),
        "repeats": int(repeats),
        "seed": int(seed),
        "cells": int(
            cells
            if cells is not None
            else int(os.environ.get("REPRO_BENCH_CELLS", DEFAULT_BENCH_CELLS))
        ),
        "cases": cases_out,
    }


def validate_bench(report: dict) -> list[str]:
    """Schema check for a bench report; returns a list of problems."""
    problems = []
    if not isinstance(report, dict):
        return ["report is not a dict"]
    if report.get("schema_version") != BENCH_SCHEMA_VERSION:
        problems.append(
            f"schema_version is {report.get('schema_version')!r}, "
            f"expected {BENCH_SCHEMA_VERSION}"
        )
    cases = report.get("cases")
    if not isinstance(cases, list) or not cases:
        return problems + ["cases is missing or empty"]
    families = set()
    for i, case in enumerate(cases):
        missing = _REQUIRED_CASE_KEYS - set(case)
        if missing:
            problems.append(f"case {i} missing keys: {sorted(missing)}")
            continue
        families.add(case["family"])
        for eng in ("heap", "bucket"):
            entry = case["engines"].get(eng)
            if entry is None:
                problems.append(f"case {i} ({case['family']}) lacks {eng}")
                continue
            missing = _REQUIRED_ENGINE_KEYS - set(entry)
            if missing:
                problems.append(
                    f"case {i} engine {eng} missing keys: {sorted(missing)}"
                )
            elif entry["wall_time_s"] <= 0 or entry["tasks_per_sec"] <= 0:
                problems.append(
                    f"case {i} engine {eng} has non-positive timings"
                )
    for fam in ("mesh_large", "mesh_standard", "chain", "wide_layer"):
        if fam not in families:
            problems.append(f"family {fam!r} missing from report")
    return problems


def write_bench(report: dict, path: str) -> None:
    """Validate and write a report (sorted keys, trailing newline)."""
    problems = validate_bench(report)
    if problems:
        raise ValueError("invalid bench report: " + "; ".join(problems))
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
