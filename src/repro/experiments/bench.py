"""Engine + grid benchmark harness (``repro bench`` / ``scripts/run_bench.py``).

Times the heap, bucket, and vector list-scheduling engines on a fixed
set of case families, benchmarks the parallel grid dispatcher, and
writes a schema-versioned JSON report (``BENCH_5.json`` at the repo
root).  The committed report is the perf-regression baseline: the bucket
engine must stay at least :data:`TARGET_SPEEDUP` times the heap engine's
tasks/second on the large mesh family, ``engine="auto"`` must resolve to
(within 10% of) the fastest engine on every family (the per-case
``auto_engine`` field pins the routing), and the makespan checksums pin
that all three engines still produce identical schedules on the
benchmark cases.  Schema v4 added per-phase wall-clock breakdowns
(``phases``) to every case and grid run.  Schema v5 times three engines
per case, slims the timed warm phase to the structural caches every
engine shares (CSR, in-degrees, levels — engine-specific caches are
built by an untimed warm-up run instead, so ``warm_s`` no longer hides a
padded-matrix build), and gates worker memory: every parallel grid run
must keep peak worker RSS under :data:`WORKER_RSS_CEILING_MB` (spawn
workers attach to the shared store instead of inheriting the parent
heap) and the best parallel run on a ``cpu_count >= 4`` machine must
sustain :data:`TARGET_GRID_ROWS_FACTOR` times the committed v4 serial
baseline of :data:`BASELINE_SERIAL_ROWS_PER_SEC` rows/second.

Engine families
---------------
* ``mesh_large`` — the paper's S4 setting (tetrahedral mesh, k=24) at the
  top of its processor sweep (m=512).  Wide wavefronts; the bucket
  engine's sorted-pool path dominates here.  **This is the family the
  ≥1.5x acceptance gate applies to.**
* ``mesh_standard`` — same mesh at k=8, m=32: the narrow regime where
  ``engine="auto"`` keeps the heap.  Benchmarked so the crossover stays
  visible in the report.
* ``chain`` — identical chains (depth = n, width = k): worst case for
  any batched engine, pure pipeline.
* ``wide_layer`` — wide shallow DAGs: best case for frontier batching;
  ``engine="auto"`` routes this family to the vector engine.

Grid family
-----------
The report's ``grid`` section times :func:`repro.experiments.runner.run_grid`
on one experiment grid at each worker count in :data:`GRID_WORKERS`
(``(1, 2)`` in smoke mode), recording rows/second, the dispatcher's chunk
plan, and each worker's peak RSS — the zero-copy shared-instance plane's
evidence that worker memory stays flat in the worker count.  Every
parallel run is cross-checked bit-identical against the serial rows.
``cpu_count`` is recorded alongside because wall-clock speedup is only
meaningful when the machine actually has the cores: the
:data:`TARGET_GRID_SPEEDUP` gate applies where ``cpu_count >= 4``.

Mesh size scales with the ``REPRO_BENCH_CELLS`` environment variable
(default 2000, the paper-scaled default of
:class:`~repro.experiments.configs.ExperimentConfig`); ``--smoke`` runs a
tiny grid in a couple of seconds for CI schema validation.
"""

from __future__ import annotations

import json
import os
import zlib

import numpy as np

from repro.core.assignment import random_cell_assignment
from repro.core.list_scheduler import list_schedule
from repro.core.random_delay import delayed_task_layers, draw_delays
from repro.util.rng import as_rng
from repro.util.timing import Timer

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "BASELINE_SERIAL_ROWS_PER_SEC",
    "BENCH_ENGINES",
    "DEFAULT_BENCH_CELLS",
    "GRID_WORKERS",
    "TARGET_SPEEDUP",
    "TARGET_GRID_SPEEDUP",
    "TARGET_GRID_ROWS_FACTOR",
    "WORKER_RSS_CEILING_MB",
    "bench_cases",
    "grid_bench",
    "grid_bench_config",
    "run_bench",
    "validate_bench",
    "write_bench",
]

#: Bump when the report layout changes; the filename tracks it
#: (``BENCH_<version>.json``) so stale baselines cannot be misread.
#: v5: three timed engines per case, structural-only ``warm_s``, worker
#: RSS ceiling and absolute grid-throughput gates.
BENCH_SCHEMA_VERSION = 5

#: Engines every bench case times and cross-checks.
BENCH_ENGINES = ("heap", "bucket", "vector")

#: Mesh size when ``REPRO_BENCH_CELLS`` is unset.
DEFAULT_BENCH_CELLS = 2000

#: Required bucket/heap tasks-per-second ratio on the ``mesh_large``
#: family (the PR's acceptance gate; measured ~2x on the default size).
TARGET_SPEEDUP = 1.5

#: Required grid rows/second ratio, 4 workers vs serial — gated on the
#: machine reporting ``cpu_count >= 4`` (a 1-core container cannot show
#: wall-clock parallel speedup no matter how good the dispatcher is).
TARGET_GRID_SPEEDUP = 1.5

#: Peak worker RSS (MiB) no parallel grid run may exceed.  Spawn-context
#: workers map the shared segment into a fresh interpreter, so their
#: high-water mark is attach + scheduling working set — the fork-era
#: copy-on-write snapshot of the parent heap put this near 860 MiB.
WORKER_RSS_CEILING_MB = 150.0

#: The committed schema-v4 serial grid throughput (rows/second) on the
#: reference container — the absolute baseline the parallel gate below
#: multiplies.  Frozen, not re-measured: re-deriving it each run would
#: let a serial regression silently lower the parallel bar.
BASELINE_SERIAL_ROWS_PER_SEC = 8.527

#: Required ratio of the best parallel run's rows/second over
#: :data:`BASELINE_SERIAL_ROWS_PER_SEC`, gated on ``cpu_count >= 4`` and
#: full (non-smoke) reports — smoke grids are too small for absolute
#: throughput to mean anything.
TARGET_GRID_ROWS_FACTOR = 3.0

#: Worker counts the grid family times in a full (non-smoke) run.
GRID_WORKERS = (1, 2, 4)

_REQUIRED_CASE_KEYS = {
    "family",
    "n_tasks",
    "m",
    "k",
    "makespan",
    "checksum",
    "engines",
    "auto_engine",
    "phases",
}
_REQUIRED_ENGINE_KEYS = {"wall_time_s", "tasks_per_sec"}
_REQUIRED_GRID_RUN_KEYS = {
    "workers",
    "wall_time_s",
    "rows_per_sec",
    "n_chunks",
    "peak_worker_rss_mb",
    "identical_to_serial",
    "phases",
}
#: Per-phase keys required in every engine case's ``phases`` dict.
_REQUIRED_CASE_PHASES = {"setup_s", "warm_s"}
#: Per-phase keys required in a parallel grid run's ``phases`` dict
#: (mirrors :meth:`repro.parallel.DispatchStats.phases`); the serial
#: baseline records ``{"run_s"}`` instead.
_REQUIRED_PARALLEL_PHASES = {"warm_s", "plan_s", "publish_s", "dispatch_s", "wait_s"}


def _mesh_instance(cells: int, k: int):
    from repro.experiments.configs import ExperimentConfig
    from repro.experiments.runner import get_instance

    return get_instance(
        ExperimentConfig(mesh="tetonly", target_cells=cells, k=k)
    )


def bench_cases(smoke: bool = False, cells: int | None = None) -> list[dict]:
    """The benchmark grid: ``{"family", "instance", "m"}`` dicts."""
    if cells is None:
        cells = int(os.environ.get("REPRO_BENCH_CELLS", DEFAULT_BENCH_CELLS))
    if smoke:
        cells = min(cells, 120)
    from repro.instances.families import identical_chains, wide_shallow

    mesh_m = 64 if smoke else 512
    return [
        {
            "family": "mesh_large",
            "instance": _mesh_instance(cells, k=24),
            "m": mesh_m,
            "k": 24,
        },
        {
            "family": "mesh_standard",
            "instance": _mesh_instance(cells, k=8),
            "m": 32,
            "k": 8,
        },
        {
            "family": "chain",
            "instance": identical_chains(max(cells // 4, 16), 8),
            "m": 8,
            "k": 8,
        },
        {
            "family": "wide_layer",
            "instance": wide_shallow(4 * cells, 4, seed=0),
            "m": mesh_m,
            "k": 4,
        },
    ]


def _time_engine(inst, m, assignment, priority, engine, repeats):
    # One untimed warm-up run: the first run on an engine builds that
    # engine's private caches (heap: Python successor lists, bucket: the
    # padded successor matrix), so the timed repeats measure scheduling
    # work alone and the case's ``warm_s`` phase stays structural.
    schedule = list_schedule(
        inst, m, assignment, priority=priority, engine=engine
    )
    best = float("inf")
    for _ in range(repeats):
        with Timer() as t:
            schedule = list_schedule(
                inst, m, assignment, priority=priority, engine=engine
            )
        best = min(best, t.elapsed)
    return best, schedule


def run_bench(
    smoke: bool = False,
    cells: int | None = None,
    repeats: int | None = None,
    seed: int = 0,
    grid_workers: tuple | None = None,
) -> dict:
    """Run the full benchmark grid; returns the schema-v5 report dict.

    Each case times all of :data:`BENCH_ENGINES` on Algorithm 2's
    delayed-level priorities (best wall time over ``repeats`` runs,
    after one untimed warm-up run per engine) and cross-checks that the
    schedules are identical — a benchmark that silently compared
    different schedules would be meaningless.  The timed ``warm_s``
    phase covers only the structural caches every engine shares.  The
    ``grid`` section then times the parallel grid dispatcher at each
    count in ``grid_workers`` (default :data:`GRID_WORKERS`, or
    ``(1, 2)`` in smoke mode).
    """
    if repeats is None:
        repeats = 1 if smoke else 5
    cases_out = []
    for case in bench_cases(smoke=smoke, cells=cells):
        inst = case["instance"]
        m = case["m"]
        with Timer() as t_setup:
            rng = as_rng(seed)
            delays = draw_delays(inst.k, rng)
            assignment = random_cell_assignment(inst.n_cells, m, rng)
            priority = delayed_task_layers(inst, delays)
        # Warm only the structural caches shared by every engine (CSR,
        # in-degrees, level structure); engine-private caches are built
        # by each engine's untimed warm-up run in ``_time_engine``, so
        # ``warm_s`` no longer charges a padded-matrix build to families
        # whose winning engine never touches it.
        with Timer() as t_warm:
            union = inst.union_dag()
            union.successor_csr()
            union.indegree()
            union.num_levels()

        engines = {}
        schedules = {}
        for engine in BENCH_ENGINES:
            wall, sched = _time_engine(
                inst, m, assignment, priority, engine, repeats
            )
            engines[engine] = {
                "wall_time_s": wall,
                "tasks_per_sec": inst.n_tasks / wall if wall > 0 else 0.0,
            }
            schedules[engine] = sched
        for engine in BENCH_ENGINES[1:]:
            if not np.array_equal(
                schedules["heap"].start, schedules[engine].start
            ):
                raise AssertionError(
                    f"heap and {engine} engines disagree on bench family "
                    f"{case['family']!r} — benchmark aborted"
                )
        from repro.core.list_scheduler import resolve_engine

        start = np.ascontiguousarray(schedules["heap"].start, dtype=np.int64)
        cases_out.append(
            {
                "family": case["family"],
                "n_tasks": int(inst.n_tasks),
                "m": int(m),
                "k": int(case["k"]),
                "makespan": int(schedules["heap"].makespan),
                "checksum": int(zlib.crc32(start.tobytes())),
                "engines": engines,
                "auto_engine": resolve_engine("auto", priority, inst, m),
                "speedup": engines["heap"]["wall_time_s"]
                / max(engines["bucket"]["wall_time_s"], 1e-12),
                "phases": {
                    "setup_s": t_setup.elapsed,
                    "warm_s": t_warm.elapsed,
                },
            }
        )
    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "smoke": bool(smoke),
        "repeats": int(repeats),
        "seed": int(seed),
        "cpu_count": int(os.cpu_count() or 1),
        "cells": int(
            cells
            if cells is not None
            else int(os.environ.get("REPRO_BENCH_CELLS", DEFAULT_BENCH_CELLS))
        ),
        "cases": cases_out,
        "grid": grid_bench(smoke=smoke, cells=cells, workers_list=grid_workers),
    }


def grid_bench_config(smoke: bool = False, cells: int | None = None):
    """The experiment grid the ``grid`` bench family times.

    Sized so a full run exercises both block regimes (per-cell and
    blocked) and two algorithm families over a few thousand cells; smoke
    mode shrinks it to seconds for CI schema validation.
    """
    from repro.experiments.configs import ExperimentConfig

    if cells is None:
        cells = int(os.environ.get("REPRO_BENCH_CELLS", DEFAULT_BENCH_CELLS))
    if smoke:
        return ExperimentConfig(
            mesh="tetonly",
            target_cells=min(cells, 120),
            k=4,
            m_values=(8,),
            block_sizes=(1,),
            algorithms=("random_delay_priority",),
            seeds=(0, 1),
            name="bench_grid",
        )
    return ExperimentConfig(
        mesh="tetonly",
        target_cells=cells,
        k=8,
        m_values=(16, 64),
        block_sizes=(1, 16),
        algorithms=("random_delay_priority", "dfds"),
        seeds=(0, 1, 2),
        name="bench_grid",
    )


def grid_bench(
    smoke: bool = False,
    cells: int | None = None,
    workers_list: tuple | None = None,
) -> dict:
    """Time ``run_grid`` at each worker count; returns the ``grid`` section.

    Every parallel run's rows are compared against the serial rows and
    must match bit-for-bit (``identical_to_serial``); worker peak RSS
    comes from each worker's ``VmHWM`` via the dispatcher's chunk
    results, so flat memory across worker counts is directly visible in
    the report.
    """
    from repro.experiments.runner import run_grid
    from repro.parallel import DispatchStats, list_orphan_segments

    if workers_list is None:
        workers_list = (1, 2) if smoke else GRID_WORKERS
    # The serial run is the correctness baseline — always measure it, first.
    workers_list = (1,) + tuple(w for w in workers_list if w != 1)
    config = grid_bench_config(smoke=smoke, cells=cells)
    n_rows = (
        len(config.algorithms) * len(config.block_sizes) * len(config.m_values)
    )
    runs = []
    serial_rows = None
    for workers in workers_list:
        stats = DispatchStats()
        with Timer() as t_run:
            rows = run_grid(
                config, with_comm=True, workers=workers, stats=stats
            )
        wall = t_run.elapsed
        if workers == 1:
            serial_rows = rows
        # The serial path never enters the dispatcher, so its breakdown
        # is the single phase it has; parallel runs record the
        # dispatcher's full warm/plan/publish/dispatch/wait split.
        phases = (
            {"run_s": wall}
            if workers == 1
            else {k: float(v) for k, v in stats.phases().items()}
        )
        runs.append(
            {
                "workers": int(workers),
                "wall_time_s": wall,
                "rows_per_sec": n_rows / wall if wall > 0 else 0.0,
                "n_chunks": int(stats.n_chunks),
                "chunk_cells": list(stats.chunk_cells),
                "peak_worker_rss_mb": float(stats.peak_worker_rss_mb),
                "identical_to_serial": bool(
                    serial_rows is not None and rows == serial_rows
                ),
                "phases": phases,
            }
        )
    serial = next(r for r in runs if r["workers"] == 1)
    return {
        "config": {
            "mesh": config.mesh,
            "cells": int(config.target_cells),
            "k": int(config.k),
            "m_values": list(config.m_values),
            "block_sizes": list(config.block_sizes),
            "algorithms": list(config.algorithms),
            "seeds": list(config.seeds),
            "n_rows": int(n_rows),
        },
        "runs": runs,
        "speedups": {
            str(r["workers"]): serial["wall_time_s"]
            / max(r["wall_time_s"], 1e-12)
            for r in runs
            if r["workers"] != 1
        },
        "leaked_segments": list_orphan_segments(),
    }


def validate_bench(report: dict) -> list[str]:
    """Schema check for a bench report; returns a list of problems."""
    problems = []
    if not isinstance(report, dict):
        return ["report is not a dict"]
    if report.get("schema_version") != BENCH_SCHEMA_VERSION:
        problems.append(
            f"schema_version is {report.get('schema_version')!r}, "
            f"expected {BENCH_SCHEMA_VERSION}"
        )
    if not isinstance(report.get("cpu_count"), int) or report.get(
        "cpu_count", 0
    ) < 1:
        problems.append("cpu_count is missing or not a positive int")
    cases = report.get("cases")
    if not isinstance(cases, list) or not cases:
        return problems + ["cases is missing or empty"]
    families = set()
    for i, case in enumerate(cases):
        missing = _REQUIRED_CASE_KEYS - set(case)
        if missing:
            problems.append(f"case {i} missing keys: {sorted(missing)}")
            continue
        families.add(case["family"])
        if case["auto_engine"] not in BENCH_ENGINES:
            problems.append(
                f"case {i} auto_engine is {case['auto_engine']!r}, "
                f"expected one of {BENCH_ENGINES}"
            )
        problems.extend(
            _validate_phases(
                case["phases"], _REQUIRED_CASE_PHASES, f"case {i}"
            )
        )
        for eng in BENCH_ENGINES:
            entry = case["engines"].get(eng)
            if entry is None:
                problems.append(f"case {i} ({case['family']}) lacks {eng}")
                continue
            missing = _REQUIRED_ENGINE_KEYS - set(entry)
            if missing:
                problems.append(
                    f"case {i} engine {eng} missing keys: {sorted(missing)}"
                )
            elif entry["wall_time_s"] <= 0 or entry["tasks_per_sec"] <= 0:
                problems.append(
                    f"case {i} engine {eng} has non-positive timings"
                )
    for fam in ("mesh_large", "mesh_standard", "chain", "wide_layer"):
        if fam not in families:
            problems.append(f"family {fam!r} missing from report")
    problems.extend(
        _validate_grid(
            report.get("grid"),
            smoke=bool(report.get("smoke")),
            cpu_count=report.get("cpu_count", 0),
        )
    )
    return problems


def _validate_phases(phases, required: set, where: str) -> list[str]:
    """Check one ``phases`` dict: required keys, non-negative numbers."""
    if not isinstance(phases, dict) or not phases:
        return [f"{where} phases is missing or empty"]
    problems = []
    missing = required - set(phases)
    if missing:
        problems.append(f"{where} phases missing keys: {sorted(missing)}")
    for key, value in phases.items():
        if not isinstance(value, (int, float)) or value < 0:
            problems.append(
                f"{where} phase {key!r} is not a non-negative number"
            )
    return problems


def _validate_grid(grid, smoke: bool = True, cpu_count: int = 0) -> list[str]:
    """Schema + gate check for the report's ``grid`` section.

    Beyond the per-run schema, parallel runs must keep peak worker RSS
    under :data:`WORKER_RSS_CEILING_MB`, and a full (non-smoke) report
    on a ``cpu_count >= 4`` machine must show at least one parallel run
    sustaining :data:`TARGET_GRID_ROWS_FACTOR` times
    :data:`BASELINE_SERIAL_ROWS_PER_SEC` rows/second.
    """
    if not isinstance(grid, dict):
        return ["grid section is missing or not a dict"]
    problems = []
    runs = grid.get("runs")
    if not isinstance(runs, list) or not runs:
        return ["grid.runs is missing or empty"]
    worker_counts = set()
    best_parallel_rows = 0.0
    for i, run in enumerate(runs):
        missing = _REQUIRED_GRID_RUN_KEYS - set(run)
        if missing:
            problems.append(f"grid run {i} missing keys: {sorted(missing)}")
            continue
        worker_counts.add(run["workers"])
        if run["wall_time_s"] <= 0 or run["rows_per_sec"] <= 0:
            problems.append(f"grid run {i} has non-positive timings")
        required_phases = (
            {"run_s"} if run["workers"] == 1 else _REQUIRED_PARALLEL_PHASES
        )
        problems.extend(
            _validate_phases(
                run["phases"], required_phases, f"grid run {i}"
            )
        )
        if not run["identical_to_serial"]:
            problems.append(
                f"grid run {i} (workers={run['workers']}) rows differ "
                "from the serial baseline"
            )
        if run["workers"] > 1:
            best_parallel_rows = max(best_parallel_rows, run["rows_per_sec"])
            if run["peak_worker_rss_mb"] <= 0:
                problems.append(
                    f"grid run {i} (workers={run['workers']}) lacks worker RSS"
                )
            elif run["peak_worker_rss_mb"] >= WORKER_RSS_CEILING_MB:
                problems.append(
                    f"grid run {i} (workers={run['workers']}) peak worker "
                    f"RSS {run['peak_worker_rss_mb']:.1f} MiB breaches the "
                    f"{WORKER_RSS_CEILING_MB:.0f} MiB ceiling"
                )
    if 1 not in worker_counts:
        problems.append("grid section lacks the serial (workers=1) baseline")
    if len(worker_counts) < 2:
        problems.append("grid section needs at least one parallel run")
    target_rows = TARGET_GRID_ROWS_FACTOR * BASELINE_SERIAL_ROWS_PER_SEC
    if (
        not smoke
        and cpu_count >= 4
        and worker_counts - {1}
        and best_parallel_rows < target_rows
    ):
        problems.append(
            f"best parallel grid throughput {best_parallel_rows:.2f} rows/s "
            f"is below the {target_rows:.2f} rows/s gate "
            f"({TARGET_GRID_ROWS_FACTOR}x the v4 serial baseline)"
        )
    if grid.get("leaked_segments"):
        problems.append(
            f"grid run leaked shm segments: {grid['leaked_segments']}"
        )
    return problems


def write_bench(report: dict, path: str) -> None:
    """Validate and write a report (sorted keys, trailing newline)."""
    problems = validate_bench(report)
    if problems:
        raise ValueError("invalid bench report: " + "; ".join(problems))
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
