"""Engine + grid benchmark harness (``repro bench`` / ``scripts/run_bench.py``).

Times the heap, bucket, and vector list-scheduling engines on a fixed
set of case families, benchmarks the parallel grid dispatcher, and
writes a schema-versioned JSON report (``BENCH_7.json`` at the repo
root).  The committed report is the perf-regression baseline: the bucket
engine must stay at least :data:`TARGET_SPEEDUP` times the heap engine's
tasks/second on the large mesh family, ``engine="auto"`` must resolve to
(within 10% of) the fastest engine on every family (the per-case
``auto_engine`` field pins the routing), and the makespan checksums pin
that all three engines still produce identical schedules on the
benchmark cases.  Schema v4 added per-phase wall-clock breakdowns
(``phases``) to every case and grid run.  Schema v5 times three engines
per case, slims the timed warm phase to the structural caches every
engine shares, and gates worker memory: every parallel grid run must
keep peak worker RSS under :data:`WORKER_RSS_CEILING_MB` and the best
parallel run on a ``cpu_count >= 4`` machine must sustain
:data:`TARGET_GRID_ROWS_FACTOR` times the committed v4 serial baseline
of :data:`BASELINE_SERIAL_ROWS_PER_SEC` rows/second.

Schema v6 makes *construction* a first-class timed phase: every case's
``phases`` dict splits instance acquisition into ``mesh_s`` (mesh
generation, memoised), ``build_s`` (batched DAG construction via
:func:`repro.sweeps.dag_builder.build_instance_batched`, which
pre-materialises per-direction levels), and ``cache_s`` (time spent in
the content-addressed build cache, 0 unless ``REPRO_CACHE_DIR`` is
set), alongside the v5 ``setup_s``/``warm_s``.  Because the batched
builder pre-pays the level structure, ``setup_s`` (rng + delays +
assignment + priorities) must now beat the frozen v5 values in
:data:`V5_SETUP_S` by :data:`TARGET_SETUP_SPEEDUP` on the gated
families, and the per-family schedule checksums must equal the frozen
v5 values in :data:`V5_CASE_CHECKSUMS` — construction got faster, the
schedules did not change.  A new ``construction`` section times one
cold build (mesh + batched build + cache store) against a warm
cache-hit load of the same instance and must show byte-identical arrays
at :data:`TARGET_WARM_CONSTRUCTION_SPEEDUP` or better; ``repro bench
--families chain,mesh_large`` writes a partial report (case subset, no
grid section) for hot-path iteration.

Schema v7 adds the ``serve`` section: the resident ``repro serve``
daemon (:mod:`repro.serve`) against cold one-shot process startup.  One
``cold`` row times a fresh interpreter running a single grid cell end
to end (imports + mesh + DAG build + schedule); then, at each worker
count in :data:`SERVE_WORKERS` (``(1, 2)`` in smoke mode), a real
daemon subprocess serves the same cell family both *unbatched* (one
request per round trip, recording p50/p95 latency) and *batched* (all
requests pipelined on one connection so the daemon's coalescing window
folds them into grid chunks).  Every served summary is cross-checked
bit-identical to the serial :func:`repro.experiments.runner.run_cell`
result, every daemon must drain cleanly on SIGTERM (exit 0, zero
orphan segments), and a full report must show warm p50 latency at
least :data:`TARGET_WARM_SERVE_SPEEDUP` times better than the cold
one-shot — the daemon's reason to exist, gated.

Engine families
---------------
* ``mesh_large`` — the paper's S4 setting (tetrahedral mesh, k=24) at the
  top of its processor sweep (m=512).  Wide wavefronts; the bucket
  engine's sorted-pool path dominates here.  **This is the family the
  ≥1.5x acceptance gate applies to.**
* ``mesh_standard`` — same mesh at k=8, m=32: the narrow regime where
  ``engine="auto"`` keeps the heap.  Benchmarked so the crossover stays
  visible in the report.
* ``chain`` — identical chains (depth = n, width = k): worst case for
  any batched engine, pure pipeline.
* ``wide_layer`` — wide shallow DAGs: best case for frontier batching;
  ``engine="auto"`` routes this family to the vector engine.

Grid family
-----------
The report's ``grid`` section times :func:`repro.experiments.runner.run_grid`
on one experiment grid at each worker count in :data:`GRID_WORKERS`
(``(1, 2)`` in smoke mode), recording rows/second, the dispatcher's chunk
plan, and each worker's peak RSS — the zero-copy shared-instance plane's
evidence that worker memory stays flat in the worker count.  Every
parallel run is cross-checked bit-identical against the serial rows.
``cpu_count`` is recorded alongside because wall-clock speedup is only
meaningful when the machine actually has the cores: the
:data:`TARGET_GRID_SPEEDUP` gate applies where ``cpu_count >= 4``.

Mesh size scales with the ``REPRO_BENCH_CELLS`` environment variable
(default 2000, the paper-scaled default of
:class:`~repro.experiments.configs.ExperimentConfig`); ``--smoke`` runs a
tiny grid in a couple of seconds for CI schema validation.
"""

from __future__ import annotations

import json
import os
import zlib

import numpy as np

from repro.core.assignment import random_cell_assignment
from repro.core.list_scheduler import list_schedule
from repro.core.random_delay import delayed_task_layers, draw_delays
from repro.util.rng import as_rng
from repro.util.timing import Timer

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "BASELINE_SERIAL_ROWS_PER_SEC",
    "BENCH_ENGINES",
    "BENCH_FAMILIES",
    "DEFAULT_BENCH_CELLS",
    "GRID_WORKERS",
    "SERVE_WORKERS",
    "TARGET_SPEEDUP",
    "TARGET_GRID_SPEEDUP",
    "TARGET_GRID_ROWS_FACTOR",
    "TARGET_SETUP_SPEEDUP",
    "TARGET_WARM_CONSTRUCTION_SPEEDUP",
    "TARGET_WARM_SERVE_SPEEDUP",
    "V5_SETUP_S",
    "V5_CASE_CHECKSUMS",
    "WORKER_RSS_CEILING_MB",
    "bench_cases",
    "construction_bench",
    "grid_bench",
    "grid_bench_config",
    "run_bench",
    "serve_bench",
    "validate_bench",
    "write_bench",
]

#: Bump when the report layout changes; the filename tracks it
#: (``BENCH_<version>.json``) so stale baselines cannot be misread.
#: v6: mesh/build/cache construction phases per case, the cold-vs-warm
#: ``construction`` section, frozen-v5 setup and checksum gates, and
#: partial (``--families``) reports.  v7: the ``serve`` section — cold
#: one-shot process startup vs warm daemon p50/p95 latency, batched vs
#: unbatched throughput at each :data:`SERVE_WORKERS` count.
BENCH_SCHEMA_VERSION = 7

#: Engines every bench case times and cross-checks.
BENCH_ENGINES = ("heap", "bucket", "vector")

#: Mesh size when ``REPRO_BENCH_CELLS`` is unset.
DEFAULT_BENCH_CELLS = 2000

#: Required bucket/heap tasks-per-second ratio on the ``mesh_large``
#: family (the PR's acceptance gate; measured ~2x on the default size).
TARGET_SPEEDUP = 1.5

#: Required grid rows/second ratio, 4 workers vs serial — gated on the
#: machine reporting ``cpu_count >= 4`` (a 1-core container cannot show
#: wall-clock parallel speedup no matter how good the dispatcher is).
TARGET_GRID_SPEEDUP = 1.5

#: Peak worker RSS (MiB) no parallel grid run may exceed.  Spawn-context
#: workers map the shared segment into a fresh interpreter, so their
#: high-water mark is attach + scheduling working set — the fork-era
#: copy-on-write snapshot of the parent heap put this near 860 MiB.
WORKER_RSS_CEILING_MB = 150.0

#: The committed schema-v4 serial grid throughput (rows/second) on the
#: reference container — the absolute baseline the parallel gate below
#: multiplies.  Frozen, not re-measured: re-deriving it each run would
#: let a serial regression silently lower the parallel bar.
BASELINE_SERIAL_ROWS_PER_SEC = 8.527

#: Required ratio of the best parallel run's rows/second over
#: :data:`BASELINE_SERIAL_ROWS_PER_SEC`, gated on ``cpu_count >= 4`` and
#: full (non-smoke) reports — smoke grids are too small for absolute
#: throughput to mean anything.
TARGET_GRID_ROWS_FACTOR = 3.0

#: Worker counts the grid family times in a full (non-smoke) run.
GRID_WORKERS = (1, 2, 4)

#: Every case family a full report must cover (``--families`` subsets).
BENCH_FAMILIES = ("mesh_large", "mesh_standard", "chain", "wide_layer")

#: Frozen schema-v5 ``setup_s`` values (reference container, default
#: cells, seed 0) for the families the v6 construction gate covers.
#: Frozen, not re-measured: the gate is "v6 setup beats what v5 paid",
#: and re-deriving the baseline each run would erase the comparison.
V5_SETUP_S = {"chain": 0.0988072, "mesh_large": 0.0013544}

#: Required ratio of frozen v5 ``setup_s`` over the v6 value on the
#: :data:`V5_SETUP_S` families — the batched builder pre-materialises
#: the level structure, so priority setup must get >= 3x cheaper.
TARGET_SETUP_SPEEDUP = 3.0

#: Frozen schema-v5 per-family schedule checksums (default cells, seed
#: 0).  Construction got faster; the schedules must not change — a v6
#: full report with a different checksum is a regression, not noise.
V5_CASE_CHECKSUMS = {
    "mesh_large": 2811619235,
    "mesh_standard": 3513323258,
    "chain": 4141441418,
    "wide_layer": 3530932037,
}

#: Required cold/warm ratio in the ``construction`` section: loading a
#: cache hit must be >= 5x faster than mesh + batched build + store.
TARGET_WARM_CONSTRUCTION_SPEEDUP = 5.0

#: Worker counts the ``serve`` section spins a daemon up at in a full
#: (non-smoke) run; smoke runs ``(1, 2)``.
SERVE_WORKERS = (1, 2, 4)

#: Required cold-one-shot / warm-daemon-p50 latency ratio on full
#: reports (the serve subsystem's acceptance gate): a resident daemon
#: that cannot beat fresh-process startup by 5x is not paying rent.
TARGET_WARM_SERVE_SPEEDUP = 5.0

_REQUIRED_CASE_KEYS = {
    "family",
    "n_tasks",
    "m",
    "k",
    "makespan",
    "checksum",
    "engines",
    "auto_engine",
    "phases",
}
_REQUIRED_ENGINE_KEYS = {"wall_time_s", "tasks_per_sec"}
_REQUIRED_GRID_RUN_KEYS = {
    "workers",
    "wall_time_s",
    "rows_per_sec",
    "n_chunks",
    "peak_worker_rss_mb",
    "identical_to_serial",
    "phases",
}
#: Per-phase keys required in every engine case's ``phases`` dict.
#: v6 splits instance acquisition into mesh/build/cache next to the v5
#: setup/warm pair.
_REQUIRED_CASE_PHASES = {"mesh_s", "build_s", "cache_s", "setup_s", "warm_s"}
#: Keys required in the report's ``construction`` section.
_REQUIRED_CONSTRUCTION_KEYS = {
    "family",
    "cells",
    "k",
    "cold_s",
    "warm_s",
    "speedup",
    "cache_hits",
    "byte_identical",
}
#: Per-phase keys required in a parallel grid run's ``phases`` dict
#: (mirrors :meth:`repro.parallel.DispatchStats.phases`); the serial
#: baseline records ``{"run_s"}`` instead.
_REQUIRED_PARALLEL_PHASES = {"warm_s", "plan_s", "publish_s", "dispatch_s", "wait_s"}
#: Keys required in the report's v7 ``serve`` section.
_REQUIRED_SERVE_KEYS = {
    "config",
    "cold",
    "runs",
    "warm_vs_cold_speedup",
    "leaked_segments",
}
#: Keys required in every per-worker-count serve run.
_REQUIRED_SERVE_RUN_KEYS = {
    "workers",
    "n_requests",
    "warm_p50_ms",
    "warm_p95_ms",
    "unbatched_wall_s",
    "unbatched_requests_per_sec",
    "batched_wall_s",
    "batched_requests_per_sec",
    "chunks_dispatched",
    "identical_to_serial",
    "clean_exit",
}


def _mesh_instance_timed(cells: int, k: int) -> tuple[object, dict]:
    """Build (or cache-load) one mesh-family instance with phase timings.

    Returns ``(instance, phases)`` where ``phases`` splits acquisition
    into ``mesh_s`` (memoised mesh generation), ``build_s`` (batched DAG
    construction), and ``cache_s`` (build-cache load/store; 0.0 when
    ``REPRO_CACHE_DIR`` is unset).  A cache hit skips the build entirely
    (``build_s == 0``); either way the instance arrives with its level
    structure pre-materialised.
    """
    from repro import cache as build_cache
    from repro.experiments.runner import _mesh_cache
    from repro.sweeps.dag_builder import DEFAULT_TOL, build_instance_batched
    from repro.sweeps.directions import directions_for_mesh

    cache_s = 0.0
    key = None
    if build_cache.cache_dir() is not None:
        dirs = directions_for_mesh(3, k)
        key = build_cache.instance_key(
            "tetonly", cells, 0, k, DEFAULT_TOL, dirs
        )
        with Timer() as t_load:
            inst = build_cache.load_instance(key)
        cache_s += t_load.elapsed
        if inst is not None:
            return inst, {
                "mesh_s": 0.0,
                "build_s": 0.0,
                "cache_s": cache_s,
            }
    with Timer() as t_mesh:
        mesh = _mesh_cache("tetonly", cells, 0)
    dirs = directions_for_mesh(mesh.dim, k)
    with Timer() as t_build:
        inst = build_instance_batched(mesh, dirs)
    if key is not None:
        with Timer() as t_store:
            build_cache.store_instance(key, inst)
        cache_s += t_store.elapsed
    return inst, {
        "mesh_s": t_mesh.elapsed,
        "build_s": t_build.elapsed,
        "cache_s": cache_s,
    }


def _family_instance_timed(builder) -> tuple[object, dict]:
    """Build one synthetic-family instance; levels warmed inside ``build_s``."""
    with Timer() as t_build:
        inst = builder()
        inst.warm_levels()
    return inst, {"mesh_s": 0.0, "build_s": t_build.elapsed, "cache_s": 0.0}


def bench_cases(
    smoke: bool = False,
    cells: int | None = None,
    families: list | tuple | None = None,
) -> list[dict]:
    """The benchmark grid: ``{"family", "m", "k", "build"}`` dicts.

    ``build()`` constructs the case's instance on demand and returns
    ``(instance, phases)`` with the v6 ``mesh_s/build_s/cache_s``
    breakdown — construction is part of what the bench measures now, so
    cases must not pre-build.  ``families`` (names from
    :data:`BENCH_FAMILIES`) selects a subset for hot-path iteration.
    """
    if cells is None:
        cells = int(os.environ.get("REPRO_BENCH_CELLS", DEFAULT_BENCH_CELLS))
    if smoke:
        cells = min(cells, 120)
    from repro.instances.families import identical_chains, wide_shallow

    mesh_m = 64 if smoke else 512
    n = cells
    cases = [
        {
            "family": "mesh_large",
            "m": mesh_m,
            "k": 24,
            "build": lambda: _mesh_instance_timed(n, k=24),
        },
        {
            "family": "mesh_standard",
            "m": 32,
            "k": 8,
            "build": lambda: _mesh_instance_timed(n, k=8),
        },
        {
            "family": "chain",
            "m": 8,
            "k": 8,
            "build": lambda: _family_instance_timed(
                lambda: identical_chains(max(n // 4, 16), 8)
            ),
        },
        {
            "family": "wide_layer",
            "m": mesh_m,
            "k": 4,
            "build": lambda: _family_instance_timed(
                lambda: wide_shallow(4 * n, 4, seed=0)
            ),
        },
    ]
    if families is None:
        return cases
    unknown = set(families) - set(BENCH_FAMILIES)
    if unknown:
        raise ValueError(
            f"unknown bench families {sorted(unknown)}; "
            f"known: {list(BENCH_FAMILIES)}"
        )
    return [c for c in cases if c["family"] in set(families)]


def _time_engine(inst, m, assignment, priority, engine, repeats):
    # One untimed warm-up run: the first run on an engine builds that
    # engine's private caches (heap: Python successor lists, bucket: the
    # padded successor matrix), so the timed repeats measure scheduling
    # work alone and the case's ``warm_s`` phase stays structural.
    schedule = list_schedule(
        inst, m, assignment, priority=priority, engine=engine
    )
    best = float("inf")
    for _ in range(repeats):
        with Timer() as t:
            schedule = list_schedule(
                inst, m, assignment, priority=priority, engine=engine
            )
        best = min(best, t.elapsed)
    return best, schedule


def construction_bench(smoke: bool = False, cells: int | None = None) -> dict:
    """Cold-vs-warm instance construction through the build cache.

    Cold = mesh generation + batched DAG build + cache store; warm = one
    :func:`repro.cache.load_instance` hit on the same content key,
    inside a throwaway cache directory (the caller's ``REPRO_CACHE_DIR``
    is untouched).  The loaded instance's exported arrays are compared
    byte-for-byte against the cold build's — the cache must be an exact
    substitute, not an approximation — and the hit is confirmed via the
    :data:`repro.cache.COUNTERS` delta so a silent rebuild cannot
    masquerade as a warm load.
    """
    import tempfile

    from repro import cache as build_cache
    from repro.mesh.generators import make_mesh
    from repro.sweeps.dag_builder import DEFAULT_TOL, build_instance_batched
    from repro.sweeps.directions import directions_for_mesh

    if cells is None:
        cells = int(os.environ.get("REPRO_BENCH_CELLS", DEFAULT_BENCH_CELLS))
    if smoke:
        cells = min(cells, 120)
    k = 8 if smoke else 24
    with tempfile.TemporaryDirectory(prefix="repro_bench_cache_") as tmp:
        with build_cache.override_dir(tmp):
            dirs = directions_for_mesh(3, k)
            key = build_cache.instance_key(
                "tetonly", cells, 0, k, DEFAULT_TOL, dirs
            )
            before_hits = build_cache.COUNTERS["hit"]
            with Timer() as t_cold:
                mesh = make_mesh("tetonly", target_cells=cells, seed=0)
                inst = build_instance_batched(mesh, dirs)
                build_cache.store_instance(key, inst)
            with Timer() as t_warm:
                warm = build_cache.load_instance(key)
            hits = build_cache.COUNTERS["hit"] - before_hits
            cold_meta, cold_arrays = inst.export_arrays()
            warm_meta, warm_arrays = (
                warm.export_arrays() if warm is not None else (None, {})
            )
            identical = (
                warm is not None
                and cold_meta == warm_meta
                and set(cold_arrays) == set(warm_arrays)
                and all(
                    cold_arrays[name].dtype == warm_arrays[name].dtype
                    and cold_arrays[name].shape == warm_arrays[name].shape
                    and cold_arrays[name].tobytes()
                    == warm_arrays[name].tobytes()
                    for name in cold_arrays
                )
            )
    return {
        "family": "tetonly",
        "cells": int(cells),
        "k": int(k),
        "cold_s": t_cold.elapsed,
        "warm_s": t_warm.elapsed,
        "speedup": t_cold.elapsed / max(t_warm.elapsed, 1e-12),
        "cache_hits": int(hits),
        "byte_identical": bool(identical),
    }


def _serve_case(smoke: bool, cells: int | None) -> tuple[dict, int, int]:
    """The one grid cell the serve section times: ``(instance, m, n)``."""
    if cells is None:
        cells = int(os.environ.get("REPRO_BENCH_CELLS", DEFAULT_BENCH_CELLS))
    if smoke:
        cells = min(cells, 120)
    instance = {
        "mesh": "tetonly",
        "target_cells": int(cells),
        "mesh_seed": 0,
        "k": 4 if smoke else 8,
    }
    return instance, (8 if smoke else 32), (6 if smoke else 24)


def _percentile_ms(samples: list, q: float) -> float:
    """Nearest-rank percentile of a list of seconds, in milliseconds."""
    ordered = sorted(samples)
    idx = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[idx] * 1e3


def serve_bench(
    smoke: bool = False,
    cells: int | None = None,
    workers_list: tuple | None = None,
) -> dict:
    """Cold one-shot process vs the resident daemon; the ``serve`` section.

    ``cold`` times a fresh interpreter running one grid cell end to end
    (the price every daemon-less invocation pays).  Each run then
    drives a real ``python -m repro serve`` subprocess over its unix
    socket at one worker count: the instance is pre-published, the same
    cell family is served once sequentially (per-request p50/p95
    latency, unbatched throughput) and once fully pipelined on a single
    connection (batched throughput through the coalescing window), and
    every summary is compared against the serial
    :func:`repro.experiments.runner.run_cell` result — the daemon must
    be bit-identical, not merely fast.  Each daemon is drained with
    SIGTERM (``clean_exit``) and the section records any orphaned shm
    segments left behind.
    """
    import signal
    import subprocess
    import sys
    import tempfile

    import repro
    from repro.experiments.configs import ExperimentConfig
    from repro.experiments.runner import run_cell
    from repro.parallel import list_orphan_segments
    from repro.serve.client import ServeClient

    instance, m, n_requests = _serve_case(smoke, cells)
    if workers_list is None:
        workers_list = (1, 2) if smoke else SERVE_WORKERS
    algorithm = "random_delay_priority"
    seeds = list(range(n_requests))

    config = ExperimentConfig(
        mesh=instance["mesh"],
        target_cells=instance["target_cells"],
        k=instance["k"],
        m_values=(m,),
        block_sizes=(1,),
        algorithms=(algorithm,),
        seeds=tuple(seeds),
        mesh_seed=instance["mesh_seed"],
        name="serve_bench",
    )
    serial = [
        run_cell(config, algorithm, m, 1, seed).as_dict() for seed in seeds
    ]

    src_root = os.path.dirname(
        os.path.dirname(os.path.abspath(repro.__file__))
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = src_root + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )

    # Cold = what a daemon-less caller pays per cell: interpreter start,
    # imports, mesh generation, DAG build, one schedule.  The printed
    # makespan is checked against the serial baseline so a crashed or
    # short-circuited one-shot cannot pose as a fast cold path.
    cold_script = (
        "from repro.experiments.configs import ExperimentConfig\n"
        "from repro.experiments.runner import run_cell\n"
        f"config = ExperimentConfig(mesh={instance['mesh']!r}, "
        f"target_cells={instance['target_cells']}, k={instance['k']}, "
        f"m_values=({m},), block_sizes=(1,), "
        f"algorithms=({algorithm!r},), seeds=(0,), "
        f"mesh_seed={instance['mesh_seed']}, name='serve_cold')\n"
        f"print(run_cell(config, {algorithm!r}, {m}, 1, 0).makespan)\n"
    )
    with Timer() as t_cold:
        cold_proc = subprocess.run(
            [sys.executable, "-c", cold_script],
            env=env, capture_output=True, text=True,
        )
    cold_ok = (
        cold_proc.returncode == 0
        and cold_proc.stdout.strip() == str(serial[0]["makespan"])
    )

    runs = []
    best_warm_p50_s = float("inf")
    with tempfile.TemporaryDirectory(prefix="repro_serve_bench_") as tmp:
        for workers in workers_list:
            sock = os.path.join(tmp, f"serve_{workers}.sock")
            proc = subprocess.Popen(
                [sys.executable, "-m", "repro", "serve",
                 "--socket", sock, "--workers", str(workers)],
                env=env, stdout=subprocess.PIPE,
                stderr=subprocess.PIPE, text=True,
            )
            try:
                if "ready" not in (proc.stdout.readline() or ""):
                    raise RuntimeError(
                        "serve daemon failed to start: " + proc.stderr.read()
                    )
                with ServeClient(sock) as client:
                    client.publish(instance)
                    latencies = []
                    sequential = []
                    for seed in seeds:
                        with Timer() as t_req:
                            summary = client.schedule(
                                instance, algorithm, m, 1, seed
                            )
                        latencies.append(t_req.elapsed)
                        sequential.append(summary.as_dict())
                    requests = [
                        {
                            "instance": instance,
                            "algorithm": algorithm,
                            "m": m,
                            "block_size": 1,
                            "seed": seed,
                        }
                        for seed in seeds
                    ]
                    with Timer() as t_batch:
                        batched = [
                            s.as_dict()
                            for s in client.schedule_many(requests)
                        ]
                    chunks = client.status()["batcher"]["chunks_dispatched"]
            finally:
                try:
                    proc.send_signal(signal.SIGTERM)
                    proc.communicate(timeout=120)
                except Exception:
                    proc.kill()
                    proc.communicate()
            unbatched_wall = sum(latencies)
            p50_ms = _percentile_ms(latencies, 0.50)
            best_warm_p50_s = min(best_warm_p50_s, p50_ms / 1e3)
            runs.append(
                {
                    "workers": int(workers),
                    "n_requests": int(n_requests),
                    "warm_p50_ms": p50_ms,
                    "warm_p95_ms": _percentile_ms(latencies, 0.95),
                    "unbatched_wall_s": unbatched_wall,
                    "unbatched_requests_per_sec": (
                        n_requests / unbatched_wall
                        if unbatched_wall > 0
                        else 0.0
                    ),
                    "batched_wall_s": t_batch.elapsed,
                    "batched_requests_per_sec": (
                        n_requests / t_batch.elapsed
                        if t_batch.elapsed > 0
                        else 0.0
                    ),
                    "chunks_dispatched": int(chunks),
                    "identical_to_serial": bool(
                        sequential == serial and batched == serial
                    ),
                    "clean_exit": proc.returncode == 0,
                }
            )
    return {
        "config": {
            "mesh": instance["mesh"],
            "cells": int(instance["target_cells"]),
            "k": int(instance["k"]),
            "algorithm": algorithm,
            "m": int(m),
            "block_size": 1,
        },
        "cold": {"wall_time_s": t_cold.elapsed, "ok": bool(cold_ok)},
        "runs": runs,
        "warm_vs_cold_speedup": (
            t_cold.elapsed / max(best_warm_p50_s, 1e-12)
        ),
        "leaked_segments": list_orphan_segments(),
    }


def run_bench(
    smoke: bool = False,
    cells: int | None = None,
    repeats: int | None = None,
    seed: int = 0,
    grid_workers: tuple | None = None,
    families: list | tuple | None = None,
) -> dict:
    """Run the full benchmark grid; returns the schema-v6 report dict.

    Each case builds its instance through the timed v6 construction
    phases, then times all of :data:`BENCH_ENGINES` on Algorithm 2's
    delayed-level priorities (best wall time over ``repeats`` runs,
    after one untimed warm-up run per engine) and cross-checks that the
    schedules are identical — a benchmark that silently compared
    different schedules would be meaningless.  The timed ``warm_s``
    phase covers only the structural caches every engine shares.  The
    ``grid`` section then times the parallel grid dispatcher at each
    count in ``grid_workers`` (default :data:`GRID_WORKERS`, or
    ``(1, 2)`` in smoke mode), the ``construction`` section times one
    cold-vs-warm build through the content-addressed cache, and the v7
    ``serve`` section races the resident daemon against cold one-shot
    process startup at each :data:`SERVE_WORKERS` count.

    ``families`` (a subset of :data:`BENCH_FAMILIES`) produces a
    *partial* report for hot-path iteration: only the selected case
    families run, the grid and construction sections are omitted
    (``None``), and ``partial: true`` is stamped so the validator skips
    the full-report completeness checks.
    """
    if repeats is None:
        repeats = 1 if smoke else 5
    partial = families is not None
    cases_out = []
    for case in bench_cases(smoke=smoke, cells=cells, families=families):
        inst, build_phases = case["build"]()
        m = case["m"]
        with Timer() as t_setup:
            rng = as_rng(seed)
            delays = draw_delays(inst.k, rng)
            assignment = random_cell_assignment(inst.n_cells, m, rng)
            priority = delayed_task_layers(inst, delays)
        # Warm only the structural caches shared by every engine (CSR,
        # in-degrees, level structure); engine-private caches are built
        # by each engine's untimed warm-up run in ``_time_engine``, so
        # ``warm_s`` no longer charges a padded-matrix build to families
        # whose winning engine never touches it.
        with Timer() as t_warm:
            union = inst.union_dag()
            union.successor_csr()
            union.indegree()
            union.num_levels()

        engines = {}
        schedules = {}
        for engine in BENCH_ENGINES:
            wall, sched = _time_engine(
                inst, m, assignment, priority, engine, repeats
            )
            engines[engine] = {
                "wall_time_s": wall,
                "tasks_per_sec": inst.n_tasks / wall if wall > 0 else 0.0,
            }
            schedules[engine] = sched
        for engine in BENCH_ENGINES[1:]:
            if not np.array_equal(
                schedules["heap"].start, schedules[engine].start
            ):
                raise AssertionError(
                    f"heap and {engine} engines disagree on bench family "
                    f"{case['family']!r} — benchmark aborted"
                )
        from repro.core.list_scheduler import resolve_engine

        start = np.ascontiguousarray(schedules["heap"].start, dtype=np.int64)
        cases_out.append(
            {
                "family": case["family"],
                "n_tasks": int(inst.n_tasks),
                "m": int(m),
                "k": int(case["k"]),
                "makespan": int(schedules["heap"].makespan),
                "checksum": int(zlib.crc32(start.tobytes())),
                "engines": engines,
                "auto_engine": resolve_engine("auto", priority, inst, m),
                "speedup": engines["heap"]["wall_time_s"]
                / max(engines["bucket"]["wall_time_s"], 1e-12),
                "phases": {
                    **build_phases,
                    "setup_s": t_setup.elapsed,
                    "warm_s": t_warm.elapsed,
                },
            }
        )
    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "smoke": bool(smoke),
        "partial": partial,
        "families": [c["family"] for c in cases_out],
        "repeats": int(repeats),
        "seed": int(seed),
        "cpu_count": int(os.cpu_count() or 1),
        "cells": int(
            cells
            if cells is not None
            else int(os.environ.get("REPRO_BENCH_CELLS", DEFAULT_BENCH_CELLS))
        ),
        "cases": cases_out,
        "grid": (
            None
            if partial
            else grid_bench(smoke=smoke, cells=cells, workers_list=grid_workers)
        ),
        "construction": (
            None if partial else construction_bench(smoke=smoke, cells=cells)
        ),
        "serve": (None if partial else serve_bench(smoke=smoke, cells=cells)),
    }


def grid_bench_config(smoke: bool = False, cells: int | None = None):
    """The experiment grid the ``grid`` bench family times.

    Sized so a full run exercises both block regimes (per-cell and
    blocked) and two algorithm families over a few thousand cells; smoke
    mode shrinks it to seconds for CI schema validation.
    """
    from repro.experiments.configs import ExperimentConfig

    if cells is None:
        cells = int(os.environ.get("REPRO_BENCH_CELLS", DEFAULT_BENCH_CELLS))
    if smoke:
        return ExperimentConfig(
            mesh="tetonly",
            target_cells=min(cells, 120),
            k=4,
            m_values=(8,),
            block_sizes=(1,),
            algorithms=("random_delay_priority",),
            seeds=(0, 1),
            name="bench_grid",
        )
    return ExperimentConfig(
        mesh="tetonly",
        target_cells=cells,
        k=8,
        m_values=(16, 64),
        block_sizes=(1, 16),
        algorithms=("random_delay_priority", "dfds"),
        seeds=(0, 1, 2),
        name="bench_grid",
    )


def grid_bench(
    smoke: bool = False,
    cells: int | None = None,
    workers_list: tuple | None = None,
) -> dict:
    """Time ``run_grid`` at each worker count; returns the ``grid`` section.

    Every parallel run's rows are compared against the serial rows and
    must match bit-for-bit (``identical_to_serial``); worker peak RSS
    comes from each worker's ``VmHWM`` via the dispatcher's chunk
    results, so flat memory across worker counts is directly visible in
    the report.
    """
    from repro.experiments.runner import run_grid
    from repro.parallel import DispatchStats, list_orphan_segments

    if workers_list is None:
        workers_list = (1, 2) if smoke else GRID_WORKERS
    # The serial run is the correctness baseline — always measure it, first.
    workers_list = (1,) + tuple(w for w in workers_list if w != 1)
    config = grid_bench_config(smoke=smoke, cells=cells)
    n_rows = (
        len(config.algorithms) * len(config.block_sizes) * len(config.m_values)
    )
    runs = []
    serial_rows = None
    for workers in workers_list:
        stats = DispatchStats()
        with Timer() as t_run:
            rows = run_grid(
                config, with_comm=True, workers=workers, stats=stats
            )
        wall = t_run.elapsed
        if workers == 1:
            serial_rows = rows
        # The serial path never enters the dispatcher, so its breakdown
        # is the single phase it has; parallel runs record the
        # dispatcher's full warm/plan/publish/dispatch/wait split.
        phases = (
            {"run_s": wall}
            if workers == 1
            else {k: float(v) for k, v in stats.phases().items()}
        )
        runs.append(
            {
                "workers": int(workers),
                "wall_time_s": wall,
                "rows_per_sec": n_rows / wall if wall > 0 else 0.0,
                "n_chunks": int(stats.n_chunks),
                "chunk_cells": list(stats.chunk_cells),
                "peak_worker_rss_mb": float(stats.peak_worker_rss_mb),
                "identical_to_serial": bool(
                    serial_rows is not None and rows == serial_rows
                ),
                "phases": phases,
            }
        )
    serial = next(r for r in runs if r["workers"] == 1)
    return {
        "config": {
            "mesh": config.mesh,
            "cells": int(config.target_cells),
            "k": int(config.k),
            "m_values": list(config.m_values),
            "block_sizes": list(config.block_sizes),
            "algorithms": list(config.algorithms),
            "seeds": list(config.seeds),
            "n_rows": int(n_rows),
        },
        "runs": runs,
        "speedups": {
            str(r["workers"]): serial["wall_time_s"]
            / max(r["wall_time_s"], 1e-12)
            for r in runs
            if r["workers"] != 1
        },
        "leaked_segments": list_orphan_segments(),
    }


def validate_bench(report: dict) -> list[str]:
    """Schema + perf-gate check for a bench report; returns problems.

    A *partial* report (``partial: true``, from ``--families``) skips
    the family-completeness, grid, and construction checks — its cases
    are still schema-checked and, at the reference size, still held to
    the frozen-v5 setup and checksum gates.  The v5 gates apply only to
    full-fidelity reports (non-smoke, default cells, seed 0): the frozen
    numbers mean nothing at other sizes.
    """
    problems = []
    if not isinstance(report, dict):
        return ["report is not a dict"]
    if report.get("schema_version") != BENCH_SCHEMA_VERSION:
        problems.append(
            f"schema_version is {report.get('schema_version')!r}, "
            f"expected {BENCH_SCHEMA_VERSION}"
        )
    if not isinstance(report.get("cpu_count"), int) or report.get(
        "cpu_count", 0
    ) < 1:
        problems.append("cpu_count is missing or not a positive int")
    partial = bool(report.get("partial"))
    gate_v5 = (
        not report.get("smoke")
        and report.get("cells") == DEFAULT_BENCH_CELLS
        and report.get("seed") == 0
    )
    cases = report.get("cases")
    if not isinstance(cases, list) or not cases:
        return problems + ["cases is missing or empty"]
    families = set()
    for i, case in enumerate(cases):
        missing = _REQUIRED_CASE_KEYS - set(case)
        if missing:
            problems.append(f"case {i} missing keys: {sorted(missing)}")
            continue
        fam = case["family"]
        families.add(fam)
        if case["auto_engine"] not in BENCH_ENGINES:
            problems.append(
                f"case {i} auto_engine is {case['auto_engine']!r}, "
                f"expected one of {BENCH_ENGINES}"
            )
        problems.extend(
            _validate_phases(
                case["phases"], _REQUIRED_CASE_PHASES, f"case {i}"
            )
        )
        if gate_v5 and fam in V5_SETUP_S:
            setup_s = case["phases"].get("setup_s")
            ceiling = V5_SETUP_S[fam] / TARGET_SETUP_SPEEDUP
            if isinstance(setup_s, (int, float)) and setup_s > ceiling:
                problems.append(
                    f"case {i} ({fam}) setup_s {setup_s:.6f}s misses the "
                    f"{TARGET_SETUP_SPEEDUP:g}x gate vs the frozen v5 "
                    f"{V5_SETUP_S[fam]:.6f}s (ceiling {ceiling:.6f}s)"
                )
        if gate_v5 and fam in V5_CASE_CHECKSUMS:
            if case["checksum"] != V5_CASE_CHECKSUMS[fam]:
                problems.append(
                    f"case {i} ({fam}) checksum {case['checksum']} differs "
                    f"from the frozen v5 value {V5_CASE_CHECKSUMS[fam]} — "
                    "construction changed the schedules"
                )
        for eng in BENCH_ENGINES:
            entry = case["engines"].get(eng)
            if entry is None:
                problems.append(f"case {i} ({fam}) lacks {eng}")
                continue
            missing = _REQUIRED_ENGINE_KEYS - set(entry)
            if missing:
                problems.append(
                    f"case {i} engine {eng} missing keys: {sorted(missing)}"
                )
            elif entry["wall_time_s"] <= 0 or entry["tasks_per_sec"] <= 0:
                problems.append(
                    f"case {i} engine {eng} has non-positive timings"
                )
    if partial:
        unknown = families - set(BENCH_FAMILIES)
        if unknown:
            problems.append(
                f"partial report has unknown families {sorted(unknown)}"
            )
        return problems
    for fam in BENCH_FAMILIES:
        if fam not in families:
            problems.append(f"family {fam!r} missing from report")
    problems.extend(
        _validate_grid(
            report.get("grid"),
            smoke=bool(report.get("smoke")),
            cpu_count=report.get("cpu_count", 0),
        )
    )
    problems.extend(
        _validate_construction(
            report.get("construction"), smoke=bool(report.get("smoke"))
        )
    )
    problems.extend(
        _validate_serve(report.get("serve"), smoke=bool(report.get("smoke")))
    )
    return problems


def _validate_serve(section, smoke: bool = True) -> list[str]:
    """Schema + gate check for the report's v7 ``serve`` section.

    Every run must be bit-identical to the serial baseline, have served
    at least one dispatched chunk, and have drained to exit 0; full
    (non-smoke) reports must additionally cover every
    :data:`SERVE_WORKERS` count and beat cold process startup by
    :data:`TARGET_WARM_SERVE_SPEEDUP` on warm p50 latency.
    """
    if not isinstance(section, dict):
        return ["serve section is missing or not a dict"]
    missing = _REQUIRED_SERVE_KEYS - set(section)
    if missing:
        return [f"serve missing keys: {sorted(missing)}"]
    problems = []
    cold = section["cold"]
    if not isinstance(cold, dict) or not isinstance(
        cold.get("wall_time_s"), (int, float)
    ) or cold["wall_time_s"] <= 0:
        problems.append("serve cold run is missing or has non-positive timing")
    elif not cold.get("ok"):
        problems.append(
            "serve cold one-shot run failed or returned the wrong makespan"
        )
    runs = section["runs"]
    if not isinstance(runs, list) or not runs:
        return problems + ["serve.runs is missing or empty"]
    worker_counts = set()
    for i, run in enumerate(runs):
        missing = _REQUIRED_SERVE_RUN_KEYS - set(run)
        if missing:
            problems.append(f"serve run {i} missing keys: {sorted(missing)}")
            continue
        worker_counts.add(run["workers"])
        for key in (
            "warm_p50_ms",
            "warm_p95_ms",
            "unbatched_wall_s",
            "unbatched_requests_per_sec",
            "batched_wall_s",
            "batched_requests_per_sec",
        ):
            value = run[key]
            if not isinstance(value, (int, float)) or value <= 0:
                problems.append(
                    f"serve run {i} {key} is not a positive number"
                )
        if run["n_requests"] < 1:
            problems.append(f"serve run {i} made no requests")
        if run["chunks_dispatched"] < 1:
            problems.append(f"serve run {i} dispatched no chunks")
        if not run["identical_to_serial"]:
            problems.append(
                f"serve run {i} (workers={run['workers']}) summaries "
                "differ from the serial run_cell baseline"
            )
        if not run["clean_exit"]:
            problems.append(
                f"serve run {i} (workers={run['workers']}) daemon did "
                "not drain to exit 0 on SIGTERM"
            )
    if not smoke:
        missing_workers = set(SERVE_WORKERS) - worker_counts
        if missing_workers:
            problems.append(
                f"serve section lacks worker counts {sorted(missing_workers)}"
            )
        speedup = section["warm_vs_cold_speedup"]
        if not isinstance(speedup, (int, float)):
            problems.append("serve warm_vs_cold_speedup is not a number")
        elif speedup < TARGET_WARM_SERVE_SPEEDUP:
            problems.append(
                f"warm serve speedup {speedup:.1f}x is below the "
                f"{TARGET_WARM_SERVE_SPEEDUP:g}x gate vs cold process startup"
            )
    if section.get("leaked_segments"):
        problems.append(
            f"serve run leaked shm segments: {section['leaked_segments']}"
        )
    return problems


def _validate_construction(section, smoke: bool = True) -> list[str]:
    """Schema + gate check for the report's ``construction`` section.

    The warm load must be a *proven* cache hit (``cache_hits >= 1``)
    with byte-identical arrays in every report; the
    :data:`TARGET_WARM_CONSTRUCTION_SPEEDUP` ratio gate applies to full
    (non-smoke) reports, where the cold build is big enough to measure.
    """
    if not isinstance(section, dict):
        return ["construction section is missing or not a dict"]
    missing = _REQUIRED_CONSTRUCTION_KEYS - set(section)
    if missing:
        return [f"construction missing keys: {sorted(missing)}"]
    problems = []
    if section["cold_s"] <= 0 or section["warm_s"] <= 0:
        problems.append("construction has non-positive timings")
    if not section["byte_identical"]:
        problems.append(
            "construction warm load is not byte-identical to the cold build"
        )
    if section["cache_hits"] < 1:
        problems.append(
            "construction recorded no cache hit on the warm load"
        )
    if not smoke and section["speedup"] < TARGET_WARM_CONSTRUCTION_SPEEDUP:
        problems.append(
            f"warm construction speedup {section['speedup']:.1f}x is below "
            f"the {TARGET_WARM_CONSTRUCTION_SPEEDUP:g}x gate"
        )
    return problems


def _validate_phases(phases, required: set, where: str) -> list[str]:
    """Check one ``phases`` dict: required keys, non-negative numbers."""
    if not isinstance(phases, dict) or not phases:
        return [f"{where} phases is missing or empty"]
    problems = []
    missing = required - set(phases)
    if missing:
        problems.append(f"{where} phases missing keys: {sorted(missing)}")
    for key, value in phases.items():
        if not isinstance(value, (int, float)) or value < 0:
            problems.append(
                f"{where} phase {key!r} is not a non-negative number"
            )
    return problems


def _validate_grid(grid, smoke: bool = True, cpu_count: int = 0) -> list[str]:
    """Schema + gate check for the report's ``grid`` section.

    Beyond the per-run schema, parallel runs must keep peak worker RSS
    under :data:`WORKER_RSS_CEILING_MB`, and a full (non-smoke) report
    on a ``cpu_count >= 4`` machine must show at least one parallel run
    sustaining :data:`TARGET_GRID_ROWS_FACTOR` times
    :data:`BASELINE_SERIAL_ROWS_PER_SEC` rows/second.
    """
    if not isinstance(grid, dict):
        return ["grid section is missing or not a dict"]
    problems = []
    runs = grid.get("runs")
    if not isinstance(runs, list) or not runs:
        return ["grid.runs is missing or empty"]
    worker_counts = set()
    best_parallel_rows = 0.0
    for i, run in enumerate(runs):
        missing = _REQUIRED_GRID_RUN_KEYS - set(run)
        if missing:
            problems.append(f"grid run {i} missing keys: {sorted(missing)}")
            continue
        worker_counts.add(run["workers"])
        if run["wall_time_s"] <= 0 or run["rows_per_sec"] <= 0:
            problems.append(f"grid run {i} has non-positive timings")
        required_phases = (
            {"run_s"} if run["workers"] == 1 else _REQUIRED_PARALLEL_PHASES
        )
        problems.extend(
            _validate_phases(
                run["phases"], required_phases, f"grid run {i}"
            )
        )
        if not run["identical_to_serial"]:
            problems.append(
                f"grid run {i} (workers={run['workers']}) rows differ "
                "from the serial baseline"
            )
        if run["workers"] > 1:
            best_parallel_rows = max(best_parallel_rows, run["rows_per_sec"])
            if run["peak_worker_rss_mb"] <= 0:
                problems.append(
                    f"grid run {i} (workers={run['workers']}) lacks worker RSS"
                )
            elif run["peak_worker_rss_mb"] >= WORKER_RSS_CEILING_MB:
                problems.append(
                    f"grid run {i} (workers={run['workers']}) peak worker "
                    f"RSS {run['peak_worker_rss_mb']:.1f} MiB breaches the "
                    f"{WORKER_RSS_CEILING_MB:.0f} MiB ceiling"
                )
    if 1 not in worker_counts:
        problems.append("grid section lacks the serial (workers=1) baseline")
    if len(worker_counts) < 2:
        problems.append("grid section needs at least one parallel run")
    target_rows = TARGET_GRID_ROWS_FACTOR * BASELINE_SERIAL_ROWS_PER_SEC
    if (
        not smoke
        and cpu_count >= 4
        and worker_counts - {1}
        and best_parallel_rows < target_rows
    ):
        problems.append(
            f"best parallel grid throughput {best_parallel_rows:.2f} rows/s "
            f"is below the {target_rows:.2f} rows/s gate "
            f"({TARGET_GRID_ROWS_FACTOR}x the v4 serial baseline)"
        )
    if grid.get("leaked_segments"):
        problems.append(
            f"grid run leaked shm segments: {grid['leaked_segments']}"
        )
    return problems


def write_bench(report: dict, path: str) -> None:
    """Validate and write a report (sorted keys, trailing newline)."""
    problems = validate_bench(report)
    if problems:
        raise ValueError("invalid bench report: " + "; ".join(problems))
    with open(path, "w") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
