"""Named experiment presets, including paper-scale configurations.

``PAPER_SCALE`` mirrors the evaluation section's actual setups: the real
mesh sizes (31k–118k cells), the paper's block sizes, and processor
counts to 512.  At these sizes a full grid takes minutes (pure Python),
so they are exposed as presets for deliberate runs rather than CI
defaults — `scripts/run_full_scale.py` drives them.
"""

from __future__ import annotations

from repro.experiments.configs import ExperimentConfig

__all__ = ["CI_SCALE", "PAPER_SCALE", "get_preset"]

#: Fast grids used by tests and default benchmarks.
CI_SCALE: dict[str, ExperimentConfig] = {
    "fig2c": ExperimentConfig(
        mesh="long",
        target_cells=2000,
        k=8,
        m_values=(8, 32, 128),
        algorithms=("random_delay", "random_delay_priority"),
        seeds=(0, 1),
        name="fig2c-ci",
    ),
}

#: The paper's own scales.  Cell counts follow Section 5's meshes;
#: block sizes are the paper's 64/128/256.
PAPER_SCALE: dict[str, ExperimentConfig] = {
    "fig2a": ExperimentConfig(
        mesh="tetonly",
        target_cells=31481,
        k=24,
        m_values=(2, 8, 32, 128),
        block_sizes=(1, 64, 256),
        algorithms=("random_delay",),
        seeds=(0,),
        name="fig2a-paper",
    ),
    "fig2c": ExperimentConfig(
        mesh="long",
        target_cells=61737,
        k=8,
        m_values=(32, 128, 512),
        algorithms=("random_delay", "random_delay_priority"),
        seeds=(0,),
        name="fig2c-paper",
    ),
    "fig3c": ExperimentConfig(
        mesh="well_logging",
        target_cells=43012,
        k=8,
        m_values=(32, 128),
        block_sizes=(128,),
        algorithms=("random_delay_priority", "dfds", "dfds_delays"),
        seeds=(0,),
        name="fig3c-paper",
    ),
    "headline": ExperimentConfig(
        mesh="prismtet",
        target_cells=118211,
        k=8,
        m_values=(128,),
        algorithms=("random_delay_priority",),
        seeds=(0,),
        name="headline-paper",
    ),
}


def get_preset(scale: str, name: str) -> ExperimentConfig:
    """Look up a preset by scale ("ci" or "paper") and figure name."""
    table = CI_SCALE if scale == "ci" else PAPER_SCALE
    if name not in table:
        raise KeyError(f"no {scale} preset named {name!r}; known: {sorted(table)}")
    return table[name]
