"""Terminal line charts — figures without a plotting stack.

The figure drivers print series tables; this renders the same rows as a
dotted ASCII chart (one marker per series) so the *shape* of each paper
figure — crossovers, divergence with m, flat lines — is visible at a
glance in a terminal-only environment.  No dependencies; pure string
assembly; deterministic output pinned by tests.
"""

from __future__ import annotations

from typing import Sequence

from repro.util.errors import ReproError

__all__ = ["ascii_chart"]

_MARKERS = "ox+*#@%&"


def ascii_chart(
    rows: Sequence[dict],
    x: str,
    y: str,
    group_by: str,
    width: int = 60,
    height: int = 16,
    title: str = "",
) -> str:
    """Render rows as an ASCII scatter/line chart.

    Parameters mirror :func:`repro.experiments.report.format_series`:
    ``x`` and ``y`` name numeric columns, ``group_by`` splits rows into
    series (each gets its own marker, shown in the legend).  X positions
    use the *rank* of each distinct x value (figure axes in the paper
    are log-spaced in m; rank spacing matches that reading).
    """
    rows = [r for r in rows if r.get(y) not in (None, "")]
    if not rows:
        raise ReproError("no rows to plot")
    if width < 10 or height < 4:
        raise ReproError("chart needs width >= 10 and height >= 4")
    xs = sorted({r[x] for r in rows})
    groups = sorted({r[group_by] for r in rows}, key=str)
    if len(groups) > len(_MARKERS):
        raise ReproError(f"at most {len(_MARKERS)} series supported")
    ys = [float(r[y]) for r in rows]
    y_lo, y_hi = min(ys), max(ys)
    if y_hi == y_lo:
        y_hi = y_lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    x_pos = {v: int(round(i * (width - 1) / max(len(xs) - 1, 1)))
             for i, v in enumerate(xs)}

    def y_row(value: float) -> int:
        frac = (value - y_lo) / (y_hi - y_lo)
        return (height - 1) - int(round(frac * (height - 1)))

    for gi, g in enumerate(groups):
        marker = _MARKERS[gi]
        for r in rows:
            if r[group_by] != g:
                continue
            col = x_pos[r[x]]
            row = y_row(float(r[y]))
            cell = grid[row][col]
            # Collisions show as '!' so overplotting is visible.
            grid[row][col] = marker if cell == " " else "!"

    axis_w = max(len(f"{y_hi:.3g}"), len(f"{y_lo:.3g}"))
    lines = []
    if title:
        lines.append(title)
    for i, row in enumerate(grid):
        if i == 0:
            label = f"{y_hi:.3g}".rjust(axis_w)
        elif i == height - 1:
            label = f"{y_lo:.3g}".rjust(axis_w)
        else:
            label = " " * axis_w
        lines.append(f"{label} |" + "".join(row))
    lines.append(" " * axis_w + " +" + "-" * width)
    # X tick labels at first/mid/last rank; the last label right-aligns
    # so it never truncates at the chart edge.
    ticks = [" "] * width
    for i in (0, len(xs) // 2, len(xs) - 1):
        pos = x_pos[xs[i]]
        text = f"{xs[i]}"
        if pos + len(text) > width:
            pos = max(0, width - len(text))
        for j, ch in enumerate(text):
            ticks[pos + j] = ch
    lines.append(" " * axis_w + "  " + "".join(ticks))
    legend = "   ".join(
        f"{_MARKERS[i]} = {g}" for i, g in enumerate(groups)
    )
    lines.append(" " * axis_w + "  " + f"[x: {x}, y: {y}]  {legend}")
    return "\n".join(lines)
