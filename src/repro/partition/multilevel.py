"""Multilevel k-way partitioning by recursive bisection (METIS stand-in).

Pipeline per bisection: coarsen with heavy-edge matching until the graph
is small (or stops shrinking), bisect the coarsest graph with greedy
graph growing, then uncoarsen — projecting the bisection up one level at
a time and running FM refinement at every level.  k-way partitions come
from recursive bisection with proportional weight targets, which handles
any k (not just powers of two).

The paper uses METIS to partition meshes into blocks of a given size
before assigning blocks to processors; :func:`partition_mesh_blocks` is
that entry point.
"""

from __future__ import annotations

import math

import numpy as np

from repro.partition.coarsen import contract, heavy_edge_matching
from repro.partition.graph import PartGraph
from repro.partition.initial import greedy_graph_growing
from repro.partition.refine import fm_refine
from repro.util.errors import PartitionError
from repro.util.rng import as_rng

__all__ = ["multilevel_bisect", "partition_graph", "partition_mesh_blocks"]

#: Stop coarsening below this many vertices.
COARSEST_SIZE = 64
#: Stop coarsening when a level shrinks the graph by less than this factor.
MIN_SHRINK = 0.95


def multilevel_bisect(
    g: PartGraph,
    target_weight: int,
    seed=None,
    imbalance: float = 0.05,
) -> np.ndarray:
    """Bisect ``g``; returns bool array (True = side 1 of ~target_weight)."""
    rng = as_rng(seed)
    # Coarsening phase.
    levels = []
    current = g
    while current.n > COARSEST_SIZE:
        match = heavy_edge_matching(current, rng)
        level = contract(current, match)
        if level.graph.n >= current.n * MIN_SHRINK:
            break  # matching stalled (e.g. star graphs); give up coarsening
        levels.append(level)
        current = level.graph

    side = greedy_graph_growing(current, target_weight, rng)
    side = fm_refine(current, side, target_weight, imbalance=imbalance)

    # Uncoarsening with per-level refinement.
    for li in range(len(levels) - 1, -1, -1):
        side = side[levels[li].fine_to_coarse]
        finer = levels[li - 1].graph if li > 0 else g
        side = fm_refine(finer, side, target_weight, imbalance=imbalance)
    return side


def partition_graph(
    g: PartGraph,
    n_parts: int,
    seed=None,
    imbalance: float = 0.05,
) -> np.ndarray:
    """k-way partition by recursive bisection; returns part id per vertex."""
    if n_parts <= 0:
        raise PartitionError(f"n_parts must be positive, got {n_parts}")
    rng = as_rng(seed)
    out = np.zeros(g.n, dtype=np.int64)
    _recurse(g, np.arange(g.n, dtype=np.int64), n_parts, 0, out, rng, imbalance)
    return out


def _recurse(
    g: PartGraph,
    vertices: np.ndarray,
    n_parts: int,
    first_part: int,
    out: np.ndarray,
    rng,
    imbalance: float,
) -> None:
    if n_parts == 1 or vertices.size == 0:
        out[vertices] = first_part
        return
    sub = _subgraph(g, vertices)
    left_parts = n_parts // 2
    right_parts = n_parts - left_parts
    # Proportional target: the right side receives right/total of the weight.
    target = int(round(sub.total_vertex_weight * right_parts / n_parts))
    side = multilevel_bisect(sub, target, seed=rng, imbalance=imbalance)
    _recurse(g, vertices[~side], left_parts, first_part, out, rng, imbalance)
    _recurse(g, vertices[side], right_parts, first_part + left_parts, out, rng, imbalance)


def _subgraph(g: PartGraph, vertices: np.ndarray) -> PartGraph:
    """Induced subgraph on ``vertices`` (relabelled 0..len-1)."""
    remap = np.full(g.n, -1, dtype=np.int64)
    remap[vertices] = np.arange(vertices.size, dtype=np.int64)
    src = np.repeat(np.arange(g.n, dtype=np.int64), np.diff(g.xadj))
    keep = (remap[src] >= 0) & (remap[g.adjncy] >= 0) & (src < g.adjncy)
    edges = np.stack([remap[src[keep]], remap[g.adjncy[keep]]], axis=1)
    return PartGraph.from_edges(
        vertices.size, edges, edge_weights=g.adjwgt[keep], node_weights=g.vwgt[vertices]
    )


def partition_mesh_blocks(
    n_cells: int,
    cell_edges: np.ndarray,
    block_size: int,
    seed=None,
    imbalance: float = 0.05,
    cell_weights: np.ndarray | None = None,
) -> np.ndarray:
    """Partition a cell graph into blocks of roughly ``block_size`` cells.

    The paper's experiments sweep block sizes 64/128/256; a block size of
    1 degenerates to one cell per block (i.e. the per-cell assignment of
    Algorithms 1–3).  Returns the cell→block labelling to feed
    :func:`repro.core.assignment.block_assignment`.

    ``cell_weights`` balances blocks by *work* instead of cell count —
    pass per-cell sweep costs (or volumes) for heterogeneous meshes; the
    block count still comes from ``n_cells / block_size``.  Weights must
    be positive integers (scale floats before quantising).
    """
    if block_size <= 0:
        raise PartitionError(f"block_size must be positive, got {block_size}")
    if n_cells == 0:
        return np.empty(0, dtype=np.int64)
    if block_size == 1:
        return np.arange(n_cells, dtype=np.int64)
    n_blocks = max(1, math.ceil(n_cells / block_size))
    if n_blocks == 1:
        return np.zeros(n_cells, dtype=np.int64)
    if cell_weights is not None:
        cell_weights = np.asarray(cell_weights)
        if cell_weights.shape != (n_cells,):
            raise PartitionError("cell_weights must have one entry per cell")
        if not np.issubdtype(cell_weights.dtype, np.integer):
            raise PartitionError("cell_weights must be integers (quantise first)")
        if n_cells and cell_weights.min() <= 0:
            raise PartitionError("cell_weights must be positive")
    g = PartGraph.from_edges(n_cells, cell_edges, node_weights=cell_weights)
    return partition_graph(g, n_blocks, seed=seed, imbalance=imbalance)
