"""Recursive coordinate bisection (RCB) — the geometric workhorse.

Splits the cell set at the median along its longest coordinate axis,
recursively.  The standard partitioner of early parallel transport codes
(and what Plimpton et al. build on): perfectly balanced, extremely fast,
topology-blind — a natural midpoint between :mod:`geometric_blocks`
(one global sort) and the multilevel pipeline.
"""

from __future__ import annotations

import math

import numpy as np

from repro.util.errors import PartitionError

__all__ = ["rcb_partition", "rcb_blocks"]


def rcb_partition(centroids: np.ndarray, n_parts: int) -> np.ndarray:
    """Partition points into ``n_parts`` by recursive median splits."""
    centroids = np.asarray(centroids, dtype=np.float64)
    if n_parts <= 0:
        raise PartitionError(f"n_parts must be positive, got {n_parts}")
    if centroids.ndim != 2:
        raise PartitionError("centroids must be a 2-D array")
    out = np.zeros(centroids.shape[0], dtype=np.int64)
    _recurse(centroids, np.arange(centroids.shape[0], dtype=np.int64), n_parts, 0, out)
    return out


def _recurse(points, idx, n_parts, first, out):
    if n_parts == 1 or idx.size == 0:
        out[idx] = first
        return
    sub = points[idx]
    extent = sub.max(axis=0) - sub.min(axis=0) if idx.size else None
    axis = int(np.argmax(extent))
    lp = n_parts // 2
    rp = n_parts - lp
    # Proportional split position (handles n_parts not a power of two).
    split = idx.size * lp // n_parts
    order = np.lexsort((idx, sub[:, axis]))  # deterministic ties
    left = idx[order[:split]]
    right = idx[order[split:]]
    _recurse(points, left, lp, first, out)
    _recurse(points, right, rp, first + lp, out)


def rcb_blocks(centroids: np.ndarray, block_size: int) -> np.ndarray:
    """RCB with a target block size instead of a part count."""
    if block_size <= 0:
        raise PartitionError(f"block_size must be positive, got {block_size}")
    n = np.asarray(centroids).shape[0]
    if n == 0:
        return np.empty(0, dtype=np.int64)
    return rcb_partition(centroids, max(1, math.ceil(n / block_size)))
