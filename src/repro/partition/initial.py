"""Initial bisection of the coarsest graph: greedy graph growing (GGGP).

Grow one side from a random seed, always absorbing the frontier vertex
whose move improves the cut most (max gain), until the side reaches its
target weight.  Several seeds are tried and the best cut wins.  On the
~100-vertex coarsest graphs this is both fast and close to optimal, and
FM refinement cleans up the rest during uncoarsening.
"""

from __future__ import annotations

from heapq import heappush, heappop

import numpy as np

from repro.partition.graph import PartGraph
from repro.util.rng import as_rng

__all__ = ["greedy_graph_growing", "bisection_cut"]


def bisection_cut(g: PartGraph, side: np.ndarray) -> int:
    """Total weight of edges crossing the bisection ``side`` (bool array)."""
    src = np.repeat(np.arange(g.n, dtype=np.int64), np.diff(g.xadj))
    cross = side[src] != side[g.adjncy]
    # CSR stores each undirected edge twice.
    return int(g.adjwgt[cross].sum() // 2)


def greedy_graph_growing(
    g: PartGraph,
    target_weight: int,
    rng,
    tries: int = 4,
) -> np.ndarray:
    """Bisect ``g``; returns a bool array, True = side 1.

    Side 1 is grown to weight ``>= target_weight`` (but a single vertex
    never splits, so the achieved weight can overshoot by one vertex).
    """
    best_side = None
    best_cut = None
    total = g.total_vertex_weight
    target_weight = int(min(max(target_weight, 0), total))
    for _ in range(max(tries, 1)):
        side = _grow_once(g, target_weight, rng)
        cut = bisection_cut(g, side)
        if best_cut is None or cut < best_cut:
            best_side, best_cut = side, cut
    return best_side


def _grow_once(g: PartGraph, target_weight: int, rng) -> np.ndarray:
    side = np.zeros(g.n, dtype=bool)
    if g.n == 0 or target_weight == 0:
        return side
    grown = 0
    # gain[v] = (weight to side 1) - (weight to side 0); larger = better.
    gain = np.zeros(g.n, dtype=np.int64)
    in_heap = np.zeros(g.n, dtype=bool)
    heap: list = []

    def push(v):
        heappush(heap, (-int(gain[v]), int(v)))
        in_heap[v] = True

    seed = int(rng.integers(g.n))
    push(seed)
    while grown < target_weight:
        v = None
        while heap:
            negg, cand = heappop(heap)
            if not side[cand] and -negg == gain[cand]:
                v = cand
                break
        if v is None:
            # Disconnected remainder: restart from an unabsorbed vertex.
            left = np.flatnonzero(~side)
            if left.size == 0:
                break
            v = int(left[rng.integers(left.size)])
        side[v] = True
        grown += int(g.vwgt[v])
        lo, hi = g.xadj[v], g.xadj[v + 1]
        for u, w in zip(g.adjncy[lo:hi].tolist(), g.adjwgt[lo:hi].tolist()):
            if not side[u]:
                gain[u] += 2 * w  # u's edge to v flips from cut to internal
                push(u)
    return side
