"""Baseline block partitioners used in the partitioner ablation (E10).

The multilevel partitioner is the METIS stand-in the paper's experiments
rely on; these baselines bracket it:

* :func:`random_blocks` — cells dealt to blocks at random (no locality at
  all; the worst sensible cut);
* :func:`bfs_blocks` — breadth-first strips from a random start (decent
  locality, no refinement);
* :func:`geometric_blocks` — sort cells along a space-filling-ish axis
  ordering and chop into equal chunks (pure geometry, ignores topology).
"""

from __future__ import annotations

import math
from collections import deque

import numpy as np

from repro.util.errors import PartitionError
from repro.util.rng import as_rng

__all__ = ["random_blocks", "bfs_blocks", "geometric_blocks"]


def _n_blocks(n_cells: int, block_size: int) -> int:
    if block_size <= 0:
        raise PartitionError(f"block_size must be positive, got {block_size}")
    return max(1, math.ceil(n_cells / block_size))


def random_blocks(n_cells: int, block_size: int, seed=None) -> np.ndarray:
    """Random balanced blocks of ``block_size`` cells."""
    nb = _n_blocks(n_cells, block_size)
    rng = as_rng(seed)
    out = np.empty(n_cells, dtype=np.int64)
    out[rng.permutation(n_cells)] = np.arange(n_cells, dtype=np.int64) % nb
    return out


def bfs_blocks(
    n_cells: int, cell_edges: np.ndarray, block_size: int, seed=None
) -> np.ndarray:
    """BFS strip blocks: fill block 0 with a BFS ball, then block 1, ...

    Disconnected components restart BFS from a fresh unvisited cell.
    """
    nb = _n_blocks(n_cells, block_size)
    rng = as_rng(seed)
    # Adjacency lists (undirected).
    adj: list[list[int]] = [[] for _ in range(n_cells)]
    for u, v in np.asarray(cell_edges, dtype=np.int64).reshape(-1, 2).tolist():
        adj[u].append(v)
        adj[v].append(u)
    blocks = np.full(n_cells, -1, dtype=np.int64)
    queue: deque[int] = deque()
    filled = 0
    current = 0
    order = rng.permutation(n_cells).tolist()
    restart = iter(order)
    while filled < n_cells:
        if not queue:
            for cand in restart:
                if blocks[cand] < 0:
                    queue.append(cand)
                    break
        v = queue.popleft()
        if blocks[v] >= 0:
            continue
        blocks[v] = current
        filled += 1
        if filled % block_size == 0 and current < nb - 1:
            current += 1
        for u in adj[v]:
            if blocks[u] < 0:
                queue.append(u)
    return blocks


def geometric_blocks(centroids: np.ndarray, block_size: int) -> np.ndarray:
    """Axis-sort blocks: order cells along the longest bounding-box axis
    (ties broken by the remaining coordinates) and chop into chunks."""
    centroids = np.asarray(centroids)
    n_cells = centroids.shape[0]
    nb = _n_blocks(n_cells, block_size)
    if n_cells == 0:
        return np.empty(0, dtype=np.int64)
    extent = centroids.max(axis=0) - centroids.min(axis=0)
    axes = np.argsort(extent)[::-1]  # longest axis is primary sort key
    order = np.lexsort(tuple(centroids[:, a] for a in axes[::-1]))
    blocks = np.empty(n_cells, dtype=np.int64)
    blocks[order] = np.minimum(
        np.arange(n_cells, dtype=np.int64) // block_size, nb - 1
    )
    return blocks
