"""Undirected weighted graph container for partitioning.

Partitioning operates on the *cell graph* of the mesh (vertices = cells,
edges = shared faces).  The container is METIS-style CSR: ``xadj`` /
``adjncy`` / ``adjwgt`` plus vertex weights ``vwgt``.  Construction
symmetrises the input edge list, merges parallel edges (summing weights),
and drops self-loops — the invariants every downstream pass relies on.
"""

from __future__ import annotations

import numpy as np

from repro.util.errors import PartitionError

__all__ = ["PartGraph"]


class PartGraph:
    """CSR undirected weighted graph.

    Attributes
    ----------
    n:
        Vertex count.
    xadj, adjncy:
        CSR offsets and neighbor lists; every undirected edge appears in
        both endpoints' lists.
    adjwgt:
        Edge weights aligned with ``adjncy``.
    vwgt:
        Vertex weights (coarse vertices accumulate the weights of the
        fine vertices they contract).
    """

    __slots__ = ("n", "xadj", "adjncy", "adjwgt", "vwgt")

    def __init__(self, n, xadj, adjncy, adjwgt, vwgt):
        self.n = int(n)
        self.xadj = xadj
        self.adjncy = adjncy
        self.adjwgt = adjwgt
        self.vwgt = vwgt

    @classmethod
    def from_edges(
        cls,
        n: int,
        edges: np.ndarray,
        edge_weights: np.ndarray | None = None,
        node_weights: np.ndarray | None = None,
    ) -> "PartGraph":
        """Build from an undirected edge list (any orientation, dups ok)."""
        if n < 0:
            raise PartitionError(f"vertex count must be >= 0, got {n}")
        edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
        if edges.size and (edges.min() < 0 or edges.max() >= n):
            raise PartitionError(f"edge endpoints must lie in [0, {n})")
        if edge_weights is None:
            edge_weights = np.ones(edges.shape[0], dtype=np.int64)
        else:
            edge_weights = np.asarray(edge_weights, dtype=np.int64)
            if edge_weights.shape != (edges.shape[0],):
                raise PartitionError("edge_weights must match the edge count")
        if node_weights is None:
            node_weights = np.ones(n, dtype=np.int64)
        else:
            node_weights = np.asarray(node_weights, dtype=np.int64)
            if node_weights.shape != (n,):
                raise PartitionError("node_weights must have one entry per vertex")

        keep = edges[:, 0] != edges[:, 1]
        edges = edges[keep]
        edge_weights = edge_weights[keep]

        # Canonicalise (lo, hi), merge parallel edges by summing weights.
        lo = np.minimum(edges[:, 0], edges[:, 1])
        hi = np.maximum(edges[:, 0], edges[:, 1])
        if lo.size:
            key = lo * n + hi
            uniq, inv = np.unique(key, return_inverse=True)
            w = np.zeros(uniq.size, dtype=np.int64)
            np.add.at(w, inv, edge_weights)
            lo, hi = uniq // n, uniq % n
        else:
            w = edge_weights

        # Symmetric CSR: each edge contributes both (lo→hi) and (hi→lo).
        src = np.concatenate([lo, hi])
        dst = np.concatenate([hi, lo])
        ww = np.concatenate([w, w])
        order = np.argsort(src, kind="stable")
        adjncy = dst[order]
        adjwgt = ww[order]
        counts = np.bincount(src, minlength=n)
        xadj = np.empty(n + 1, dtype=np.int64)
        xadj[0] = 0
        np.cumsum(counts, out=xadj[1:])
        return cls(n, xadj, adjncy, adjwgt, node_weights)

    def neighbors(self, v: int) -> np.ndarray:
        return self.adjncy[self.xadj[v] : self.xadj[v + 1]]

    def edge_weights_of(self, v: int) -> np.ndarray:
        return self.adjwgt[self.xadj[v] : self.xadj[v + 1]]

    def degree(self, v: int) -> int:
        return int(self.xadj[v + 1] - self.xadj[v])

    @property
    def total_vertex_weight(self) -> int:
        return int(self.vwgt.sum())

    @property
    def num_undirected_edges(self) -> int:
        return int(self.adjncy.size // 2)

    def __repr__(self) -> str:
        return f"PartGraph(n={self.n}, edges={self.num_undirected_edges})"
