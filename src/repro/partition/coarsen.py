"""Coarsening via randomized heavy-edge matching (the METIS recipe).

One coarsening level = (i) a maximal matching preferring heavy edges,
(ii) contraction of matched pairs into coarse vertices whose weights add
and whose parallel edges merge.  Heavy-edge matching keeps large edge
weights *inside* coarse vertices, so the coarse graph's cuts track the
fine graph's cuts — the property multilevel partitioning rests on.
"""

from __future__ import annotations

import numpy as np

from repro.partition.graph import PartGraph
from repro.util.rng import as_rng

__all__ = ["heavy_edge_matching", "contract", "CoarseLevel"]


class CoarseLevel:
    """One level of the coarsening hierarchy: the coarse graph plus the
    fine→coarse vertex map needed to project partitions back down."""

    __slots__ = ("graph", "fine_to_coarse")

    def __init__(self, graph: PartGraph, fine_to_coarse: np.ndarray):
        self.graph = graph
        self.fine_to_coarse = fine_to_coarse


def heavy_edge_matching(g: PartGraph, rng) -> np.ndarray:
    """Maximal matching; ``match[v]`` is v's partner (or v if unmatched).

    Vertices are visited in random order; each unmatched vertex grabs its
    heaviest unmatched neighbor.  Random visiting order is what makes
    repeated multilevel runs explore different hierarchies.
    """
    match = np.arange(g.n, dtype=np.int64)
    visited = np.zeros(g.n, dtype=bool)
    order = rng.permutation(g.n)
    xadj = g.xadj
    adjncy = g.adjncy
    adjwgt = g.adjwgt
    for v in order.tolist():
        if visited[v]:
            continue
        visited[v] = True
        best, best_w = -1, -1
        for idx in range(xadj[v], xadj[v + 1]):
            u = adjncy[idx]
            if not visited[u]:
                w = adjwgt[idx]
                if w > best_w:
                    best, best_w = u, w
        if best >= 0:
            visited[best] = True
            match[v] = best
            match[best] = v
    return match


def contract(g: PartGraph, match: np.ndarray) -> CoarseLevel:
    """Contract matched pairs into a coarse :class:`PartGraph`."""
    # Coarse id: pairs share the id of their smaller endpoint.
    rep = np.minimum(np.arange(g.n, dtype=np.int64), match)
    uniq, fine_to_coarse = np.unique(rep, return_inverse=True)
    nc = uniq.size

    # Coarse vertex weights: sum of constituents.
    cvwgt = np.zeros(nc, dtype=np.int64)
    np.add.at(cvwgt, fine_to_coarse, g.vwgt)

    # Coarse edges: map every fine directed CSR entry, drop intra-pair
    # entries, merge the rest.  PartGraph.from_edges handles merging, but
    # the CSR holds each edge twice; halve by keeping src < dst.
    src = np.repeat(np.arange(g.n, dtype=np.int64), np.diff(g.xadj))
    csrc = fine_to_coarse[src]
    cdst = fine_to_coarse[g.adjncy]
    keep = csrc < cdst
    edges = np.stack([csrc[keep], cdst[keep]], axis=1)
    weights = g.adjwgt[keep]
    coarse = PartGraph.from_edges(nc, edges, edge_weights=weights, node_weights=cvwgt)
    return CoarseLevel(coarse, fine_to_coarse)
