"""Spectral bisection (Fiedler vector) — the classic partitioner.

Splits a graph at the median of the second-smallest eigenvector of its
Laplacian.  Included as a second serious partitioner beside the
multilevel pipeline: spectral cuts are globally informed (no coarsening
artifacts) but ignore balance constraints beyond the median split and
cost an eigensolve.  Recursive application yields k-way partitions.

Uses ``scipy.sparse.linalg.eigsh`` on the shifted Laplacian, with a
dense ``numpy.linalg.eigh`` fallback for tiny or ill-conditioned
subproblems — robust across the disconnected subgraphs recursion can
produce.
"""

from __future__ import annotations

import numpy as np
from scipy.sparse import coo_matrix
from scipy.sparse.csgraph import connected_components

from repro.partition.graph import PartGraph
from repro.partition.refine import fm_refine
from repro.util.errors import PartitionError

__all__ = ["fiedler_vector", "spectral_bisect", "spectral_partition"]


def _laplacian(g: PartGraph):
    src = np.repeat(np.arange(g.n, dtype=np.int64), np.diff(g.xadj))
    data = g.adjwgt.astype(np.float64)
    adj = coo_matrix((data, (src, g.adjncy)), shape=(g.n, g.n)).tocsr()
    deg = np.asarray(adj.sum(axis=1)).ravel()
    from scipy.sparse import diags

    return diags(deg) - adj


def fiedler_vector(g: PartGraph) -> np.ndarray:
    """Second-smallest Laplacian eigenvector.

    For disconnected graphs the algebraic connectivity is 0 and the
    "Fiedler" vector separates components, which is exactly the split a
    partitioner wants, so no special-casing is needed.
    """
    if g.n < 2:
        raise PartitionError("Fiedler vector needs at least 2 vertices")
    lap = _laplacian(g)
    if g.n <= 64:
        _vals, vecs = np.linalg.eigh(lap.toarray())
        return vecs[:, 1]
    from scipy.sparse.linalg import eigsh

    try:
        # Shift-invert around 0 converges fast for the smallest modes.
        _vals, vecs = eigsh(lap, k=2, sigma=-1e-3, which="LM")
    except Exception:
        _vals, vecs = np.linalg.eigh(lap.toarray())
        return vecs[:, 1]
    order = np.argsort(_vals)
    return vecs[:, order[1]]


def spectral_bisect(g: PartGraph, refine: bool = True) -> np.ndarray:
    """Median split along the Fiedler vector (optionally FM-polished)."""
    fied = fiedler_vector(g)
    # Median split with deterministic tie-breaking by vertex id.
    order = np.lexsort((np.arange(g.n), fied))
    side = np.zeros(g.n, dtype=bool)
    side[order[g.n // 2 :]] = True
    if refine:
        target = int(g.vwgt[side].sum())
        side = fm_refine(g, side, target)
    return side


def spectral_partition(g: PartGraph, n_parts: int, refine: bool = True) -> np.ndarray:
    """k-way partition by recursive spectral bisection."""
    if n_parts <= 0:
        raise PartitionError(f"n_parts must be positive, got {n_parts}")
    out = np.zeros(g.n, dtype=np.int64)
    _recurse(g, np.arange(g.n, dtype=np.int64), n_parts, 0, out, refine)
    return out


def _recurse(g, vertices, n_parts, first, out, refine):
    if n_parts == 1 or vertices.size <= 1:
        out[vertices] = first
        return
    from repro.partition.multilevel import _subgraph

    sub = _subgraph(g, vertices)
    if sub.num_undirected_edges == 0:
        # No structure to cut: split by count.
        half = vertices.size * (n_parts // 2) // n_parts
        left, right = vertices[: vertices.size - half], vertices[vertices.size - half :]
    else:
        side = spectral_bisect(sub, refine=refine)
        # Proportional target: put ~right/total weight on side True.
        left, right = vertices[~side], vertices[side]
    lp = n_parts // 2
    rp = n_parts - lp
    _recurse(g, left, lp, first, out, refine)
    _recurse(g, right, rp, first + lp, out, refine)
