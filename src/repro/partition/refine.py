"""Fiduccia–Mattheyses boundary refinement for a bisection.

Each pass tentatively moves unlocked vertices one at a time — always the
best-gain move that keeps the bisection inside the balance tolerance —
recording the cumulative cut after every move, then rolls back to the
best prefix.  Passes repeat until a pass fails to improve the cut.

Gains update incrementally (only a moved vertex's neighbors change), and
an early-exit counter abandons a pass after a long non-improving streak,
which keeps refinement near-linear per level in practice.
"""

from __future__ import annotations

from heapq import heappush, heappop

import numpy as np

from repro.partition.graph import PartGraph
from repro.partition.initial import bisection_cut

__all__ = ["fm_refine"]


def fm_refine(
    g: PartGraph,
    side: np.ndarray,
    target_weight: int,
    imbalance: float = 0.05,
    max_passes: int = 8,
) -> np.ndarray:
    """Refine bisection ``side`` in place-ish; returns the improved array.

    Parameters
    ----------
    side:
        Bool array, ``True`` = side 1.  Not mutated; a copy is returned.
    target_weight:
        Desired total vertex weight of side 1.
    imbalance:
        Allowed relative deviation of side 1 from ``target_weight``.
    """
    side = side.copy()
    if g.n <= 1:
        return side
    total = g.total_vertex_weight
    max_vw = int(g.vwgt.max())
    # Side-1 weight must stay inside [lo, hi]; a single heavy vertex can
    # force overshoot, so widen by the largest vertex weight.
    lo = max(0, int(target_weight * (1 - imbalance)) - max_vw)
    hi = min(total, int(target_weight * (1 + imbalance)) + max_vw)

    for _ in range(max_passes):
        improved = _one_pass(g, side, lo, hi)
        if not improved:
            break
    return side


def _gains(g: PartGraph, side: np.ndarray) -> np.ndarray:
    """gain[v] = (cut weight removed) - (cut weight added) if v moves."""
    src = np.repeat(np.arange(g.n, dtype=np.int64), np.diff(g.xadj))
    cross = side[src] != side[g.adjncy]
    ext = np.zeros(g.n, dtype=np.int64)
    np.add.at(ext, src, np.where(cross, g.adjwgt, 0))
    internal = np.zeros(g.n, dtype=np.int64)
    np.add.at(internal, src, np.where(cross, 0, g.adjwgt))
    return ext - internal


def _one_pass(g: PartGraph, side: np.ndarray, lo: int, hi: int) -> bool:
    gain = _gains(g, side)
    locked = np.zeros(g.n, dtype=bool)
    w1 = int(g.vwgt[side].sum())
    heaps = {False: [], True: []}  # keyed by current side of the vertex
    for v in range(g.n):
        heappush(heaps[bool(side[v])], (-int(gain[v]), v))

    moves: list[int] = []
    cum = 0
    best_cum = 0
    best_len = 0
    stall = 0
    stall_limit = 64 + g.n // 16

    while stall < stall_limit:
        v = _pop_feasible(g, heaps, gain, locked, side, w1, lo, hi)
        if v is None:
            break
        from_side = bool(side[v])
        locked[v] = True
        cum += int(gain[v])
        side[v] = not from_side
        w1 += -int(g.vwgt[v]) if from_side else int(g.vwgt[v])
        moves.append(v)
        # Incremental gain update: v's own gain flips sign; each unlocked
        # neighbor's gain shifts by ±2w depending on whether it now shares
        # v's side.
        gain[v] = -gain[v]
        s, e = g.xadj[v], g.xadj[v + 1]
        for u, w in zip(g.adjncy[s:e].tolist(), g.adjwgt[s:e].tolist()):
            if locked[u]:
                continue
            if side[u] == side[v]:
                gain[u] -= 2 * w
            else:
                gain[u] += 2 * w
            heappush(heaps[bool(side[u])], (-int(gain[u]), u))
        if cum > best_cum:
            best_cum = cum
            best_len = len(moves)
            stall = 0
        else:
            stall += 1

    # Roll back moves past the best prefix.
    for v in moves[best_len:]:
        side[v] = not side[v]
    return best_cum > 0


def _pop_feasible(g, heaps, gain, locked, side, w1, lo, hi):
    """Best-gain unlocked vertex whose move keeps side-1 weight in [lo, hi].

    Moving from side 1 shrinks w1; from side 0 grows it.  Tries both heaps
    and returns the better feasible candidate (lazy-invalidation pops).
    """
    candidates = []
    for from_side in (True, False):
        heap = heaps[from_side]
        while heap:
            negg, v = heap[0]
            if locked[v] or bool(side[v]) != from_side or -negg != gain[v]:
                heappop(heap)
                continue
            vw = int(g.vwgt[v])
            new_w1 = w1 - vw if from_side else w1 + vw
            if lo <= new_w1 <= hi:
                candidates.append((-negg, v))
            break
    if not candidates:
        return None
    candidates.sort(reverse=True)
    best_gain, v = candidates[0]
    # Remove it from its heap (it is at the top).
    heappop(heaps[bool(side[v])])
    return v
