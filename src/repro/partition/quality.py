"""Partition quality metrics: edge cut and balance."""

from __future__ import annotations

import numpy as np

from repro.util.errors import PartitionError

__all__ = ["edge_cut", "balance", "block_sizes"]


def edge_cut(labels: np.ndarray, edges: np.ndarray) -> int:
    """Number of undirected edges whose endpoints carry different labels."""
    labels = np.asarray(labels)
    edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
    if edges.size == 0:
        return 0
    return int((labels[edges[:, 0]] != labels[edges[:, 1]]).sum())


def block_sizes(labels: np.ndarray) -> np.ndarray:
    """Cell count of every block (dense over the label range)."""
    labels = np.asarray(labels)
    if labels.size == 0:
        return np.zeros(0, dtype=np.int64)
    if labels.min() < 0:
        raise PartitionError("labels must be nonnegative")
    return np.bincount(labels)


def balance(labels: np.ndarray) -> float:
    """Max block size divided by the mean (1.0 = perfectly balanced).

    Only blocks that actually occur count toward the mean.
    """
    sizes = block_sizes(labels)
    sizes = sizes[sizes > 0]
    if sizes.size == 0:
        return 1.0
    return float(sizes.max() / sizes.mean())
