"""Graph partitioning: multilevel METIS stand-in plus baselines.

The paper partitions meshes into blocks with METIS before assigning each
block a random processor; this package reimplements the multilevel
pipeline (heavy-edge matching → greedy growing → FM refinement →
recursive bisection) from scratch, plus simpler baselines for ablation.
"""

from repro.partition.graph import PartGraph
from repro.partition.multilevel import (
    multilevel_bisect,
    partition_graph,
    partition_mesh_blocks,
)
from repro.partition.baselines import random_blocks, bfs_blocks, geometric_blocks
from repro.partition.spectral import fiedler_vector, spectral_bisect, spectral_partition
from repro.partition.rcb import rcb_partition, rcb_blocks
from repro.partition.quality import edge_cut, balance, block_sizes
from repro.partition.coarsen import heavy_edge_matching, contract, CoarseLevel
from repro.partition.initial import greedy_graph_growing, bisection_cut
from repro.partition.refine import fm_refine

__all__ = [
    "PartGraph",
    "multilevel_bisect",
    "partition_graph",
    "partition_mesh_blocks",
    "random_blocks",
    "bfs_blocks",
    "geometric_blocks",
    "fiedler_vector",
    "spectral_bisect",
    "spectral_partition",
    "rcb_partition",
    "rcb_blocks",
    "edge_cut",
    "balance",
    "block_sizes",
    "heavy_edge_matching",
    "contract",
    "CoarseLevel",
    "greedy_graph_growing",
    "bisection_cut",
    "fm_refine",
]
