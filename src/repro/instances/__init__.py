"""Synthetic non-geometric sweep instances.

The paper stresses that its algorithms "assume no relation between the
DAGs in different directions, and thus are applicable even to
non-geometric instances".  These generators build such instances —
structured families with known properties (chains, rotations,
fork-joins) plus random layered DAGs — used by the robustness benchmark
E19 and as sharp-edged test inputs.
"""

from repro.instances.families import (
    identical_chains,
    rotated_chains,
    opposing_chains,
    fork_join,
    random_layered,
    wide_shallow,
    tree_sweeps,
    butterfly,
    INSTANCE_FAMILIES,
    make_instance,
)

__all__ = [
    "identical_chains",
    "rotated_chains",
    "opposing_chains",
    "fork_join",
    "random_layered",
    "wide_shallow",
    "tree_sweeps",
    "butterfly",
    "INSTANCE_FAMILIES",
    "make_instance",
]
