"""Non-geometric instance families with known structure.

Each family stresses a different regime of the scheduling problem:

* :func:`identical_chains` — every direction is the *same* chain.  The
  hardest same-processor contention: all k copies of a cell sit at the
  same level, so without staggering they all want the same processor at
  once.  The random delays are exactly the fix (Lemma 2's bad case).
* :func:`rotated_chains` — direction ``i`` sweeps the cyclically shifted
  order starting at cell ``i``.  Fronts are naturally staggered; a good
  scheduler pipelines them almost perfectly.
* :func:`opposing_chains` — two directions, forward and backward (the
  1-D transport pattern; generalises the test-suite's 4-cell fixture).
* :func:`fork_join` — repeated diamonds: serial bottleneck cells
  alternating with wide fans (mixed parallelism).
* :func:`wide_shallow` — random bipartite depth-2 DAGs (communication-
  heavy, trivially parallel).
* :func:`random_layered` — random DAGs with a given width profile.
"""

from __future__ import annotations

import numpy as np

from repro.core.dag import Dag
from repro.core.instance import SweepInstance
from repro.util.errors import ReproError
from repro.util.rng import as_rng

__all__ = [
    "identical_chains",
    "rotated_chains",
    "opposing_chains",
    "fork_join",
    "random_layered",
    "wide_shallow",
    "tree_sweeps",
    "butterfly",
    "INSTANCE_FAMILIES",
    "make_instance",
]


def _chain_edges(order: np.ndarray) -> np.ndarray:
    return np.stack([order[:-1], order[1:]], axis=1)


def identical_chains(n: int, k: int) -> SweepInstance:
    """All ``k`` directions share the chain ``0 -> 1 -> ... -> n-1``."""
    _check(n, k)
    order = np.arange(n, dtype=np.int64)
    dags = [Dag(n, _chain_edges(order), validate=False) for _ in range(k)]
    return SweepInstance(n, dags, name=f"identical_chains_n{n}_k{k}")


def rotated_chains(n: int, k: int) -> SweepInstance:
    """Direction ``i`` is the chain over the cyclic shift starting at
    ``(i * n) // k``, spreading the start points evenly."""
    _check(n, k)
    dags = []
    for i in range(k):
        shift = (i * n) // k
        order = (np.arange(n, dtype=np.int64) + shift) % n
        dags.append(Dag(n, _chain_edges(order), validate=False))
    return SweepInstance(n, dags, name=f"rotated_chains_n{n}_k{k}")


def opposing_chains(n: int, k: int = 2) -> SweepInstance:
    """Alternating forward/backward chains (k directions)."""
    _check(n, k)
    fwd = np.arange(n, dtype=np.int64)
    dags = []
    for i in range(k):
        order = fwd if i % 2 == 0 else fwd[::-1]
        dags.append(Dag(n, _chain_edges(order), validate=False))
    return SweepInstance(n, dags, name=f"opposing_chains_n{n}_k{k}")


def fork_join(n_stages: int, width: int, k: int) -> SweepInstance:
    """``n_stages`` fork-join diamonds per direction, rotated per direction.

    Each diamond: one source cell fans out to ``width`` parallel cells,
    which join into the next source.  Total cells
    ``n_stages * (width + 1) + 1``.  Direction ``i`` relabels cells by a
    cyclic shift so the bottleneck cells differ per direction.
    """
    if n_stages <= 0 or width <= 0:
        raise ReproError("n_stages and width must be positive")
    n = n_stages * (width + 1) + 1
    _check(n, k)
    edges = []
    for s in range(n_stages):
        src = s * (width + 1)
        fan = [src + 1 + j for j in range(width)]
        nxt = (s + 1) * (width + 1)
        for f in fan:
            edges.append((src, f))
            edges.append((f, nxt))
    base = np.array(edges, dtype=np.int64)
    dags = []
    for i in range(k):
        shift = (i * n) // k
        dags.append(Dag(n, (base + shift) % n, validate=False))
    # Shifted copies can collide into cycles only if shift maps an edge
    # onto a back edge; the diamond graph on distinct labels stays
    # acyclic under relabeling (it is a DAG on any injective relabeling).
    return SweepInstance(n, dags, name=f"fork_join_s{n_stages}_w{width}_k{k}")


def wide_shallow(n: int, k: int, seed=0, edge_prob: float = 0.1) -> SweepInstance:
    """Depth-2 random bipartite DAGs: half sources, half sinks."""
    _check(n, k)
    rng = as_rng(seed)
    half = n // 2
    dags = []
    for _ in range(k):
        mask = rng.random((half, n - half)) < edge_prob
        src, dst = np.nonzero(mask)
        edges = np.stack([src, dst + half], axis=1).astype(np.int64)
        dags.append(Dag(n, edges, validate=False))
    return SweepInstance(n, dags, name=f"wide_shallow_n{n}_k{k}")


def random_layered(
    n: int, k: int, n_layers: int, seed=0, edge_prob: float = 0.3
) -> SweepInstance:
    """Random DAGs with ``n_layers`` layers of near-equal width; each
    direction draws its own random layer assignment and edges between
    consecutive layers."""
    _check(n, k)
    if n_layers <= 0 or n_layers > n:
        raise ReproError(f"need 1 <= n_layers <= n, got {n_layers}")
    rng = as_rng(seed)
    dags = []
    for _ in range(k):
        layer = rng.permutation(n) % n_layers
        edges = []
        for l in range(n_layers - 1):
            cur = np.flatnonzero(layer == l)
            nxt = np.flatnonzero(layer == l + 1)
            if not cur.size or not nxt.size:
                continue
            mask = rng.random((cur.size, nxt.size)) < edge_prob
            a, b = np.nonzero(mask)
            edges.append(np.stack([cur[a], nxt[b]], axis=1))
        arr = (
            np.concatenate(edges, axis=0)
            if edges
            else np.empty((0, 2), dtype=np.int64)
        )
        dags.append(Dag(n, arr, validate=False))
    return SweepInstance(n, dags, name=f"random_layered_n{n}_k{k}_l{n_layers}")


def tree_sweeps(depth: int, k: int, branching: int = 2) -> SweepInstance:
    """Alternating out-tree / in-tree sweeps on a complete tree.

    Odd directions sweep root→leaves (an out-tree: maximal fan-out,
    trivially parallel after the root), even directions leaves→root (an
    in-tree: a reduction, serialising toward the root).  The classic
    reduction/broadcast pair of collective-communication scheduling.
    """
    if depth < 1 or branching < 2:
        raise ReproError("need depth >= 1 and branching >= 2")
    n = (branching ** (depth + 1) - 1) // (branching - 1)
    _check(n, k)
    # Parent of node v (heap layout): (v - 1) // branching.
    child = np.arange(1, n, dtype=np.int64)
    parent = (child - 1) // branching
    down = np.stack([parent, child], axis=1)  # root -> leaves
    up = down[:, ::-1].copy()  # leaves -> root
    dags = [
        Dag(n, down if i % 2 == 0 else up, validate=False) for i in range(k)
    ]
    return SweepInstance(n, dags, name=f"tree_d{depth}_b{branching}_k{k}")


def butterfly(stages: int, k: int) -> SweepInstance:
    """FFT-butterfly DAGs: ``stages + 1`` ranks of ``2**stages`` nodes.

    Every node at rank r feeds its straight and exchange partners at
    rank r+1 — uniform width, heavy regular communication.  Direction i
    relabels cells by a cyclic shift so bottlenecks rotate.
    """
    if stages < 1:
        raise ReproError("need at least one butterfly stage")
    width = 2 ** stages
    n = width * (stages + 1)
    _check(n, k)
    edges = []
    for r in range(stages):
        for j in range(width):
            src = r * width + j
            edges.append((src, (r + 1) * width + j))
            edges.append((src, (r + 1) * width + (j ^ (1 << r))))
    base = np.array(edges, dtype=np.int64)
    dags = []
    for i in range(k):
        shift = (i * n) // k
        dags.append(Dag(n, (base + shift) % n, validate=False))
    return SweepInstance(n, dags, name=f"butterfly_s{stages}_k{k}")


#: name -> zero-config builder at a standard test size.
INSTANCE_FAMILIES = {
    "identical_chains": lambda n=64, k=8, seed=0: identical_chains(n, k),
    "rotated_chains": lambda n=64, k=8, seed=0: rotated_chains(n, k),
    "opposing_chains": lambda n=64, k=8, seed=0: opposing_chains(n, k),
    "fork_join": lambda n=64, k=8, seed=0: fork_join(max(n // 9, 1), 8, k),
    "wide_shallow": lambda n=64, k=8, seed=0: wide_shallow(n, k, seed=seed),
    "random_layered": lambda n=64, k=8, seed=0: random_layered(
        n, k, max(n // 8, 2), seed=seed
    ),
    "tree_sweeps": lambda n=64, k=8, seed=0: tree_sweeps(
        max(int(np.log2(max(n, 4))) - 1, 1), k
    ),
    "butterfly": lambda n=64, k=8, seed=0: butterfly(
        max(int(np.log2(max(n, 8))) - 2, 1), k
    ),
}


def make_instance(family: str, n: int = 64, k: int = 8, seed=0) -> SweepInstance:
    """Build a named family instance (see :data:`INSTANCE_FAMILIES`)."""
    try:
        builder = INSTANCE_FAMILIES[family]
    except KeyError:
        raise ReproError(
            f"unknown family {family!r}; known: {', '.join(INSTANCE_FAMILIES)}"
        ) from None
    return builder(n=n, k=k, seed=seed)


def _check(n: int, k: int) -> None:
    if n <= 1:
        raise ReproError(f"need at least 2 cells, got {n}")
    if k <= 0:
        raise ReproError(f"need at least one direction, got {k}")
