"""Reproducible random-number-generator plumbing — the seeding chokepoint.

All randomized algorithms in this package accept a ``seed`` argument that
may be ``None`` (fresh entropy), an ``int``, or an existing
:class:`numpy.random.Generator`.  :func:`as_rng` normalises the three forms.

Randomised code that needs several independent streams uses
:func:`spawn_rngs` (a batch of children) or :func:`spawn_rng` (one named
child stream); both derive children through
:class:`numpy.random.SeedSequence` spawning so the streams are
statistically independent regardless of the root seed.

This module is the **only** place in ``src/repro`` allowed to call
``np.random.default_rng`` — the static linter (rule ``RPL001``, see
``docs/linting.md``) rejects direct calls anywhere else, so every draw
in the library is reachable from a caller-supplied seed.
"""

from __future__ import annotations

from typing import TypeAlias, Union

import numpy as np

#: Anything :func:`as_rng` accepts as a seed.
SeedLike: TypeAlias = Union[
    int, np.random.Generator, np.random.SeedSequence, None
]

__all__ = ["SeedLike", "as_rng", "spawn_rng", "spawn_rngs"]


def as_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Parameters
    ----------
    seed:
        ``None`` for OS entropy, an ``int`` seed, a ``SeedSequence``, or an
        existing ``Generator`` (returned unchanged so callers can share a
        stream).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: SeedLike, n: int) -> list[np.random.Generator]:
    """Derive ``n`` independent generators from ``seed``.

    Unlike ``[as_rng(seed + i) for i in range(n)]``, sequential integer
    seeds are not used; children are spawned through ``SeedSequence`` which
    guarantees independence.
    """
    if n < 0:
        raise ValueError(f"cannot spawn a negative number of rngs: {n}")
    if isinstance(seed, np.random.Generator):
        # Derive children from the generator's own bit stream.
        seeds = seed.integers(0, 2**63 - 1, size=n)
        return [np.random.default_rng(int(s)) for s in seeds]
    ss = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in ss.spawn(n)]


def spawn_rng(seed: SeedLike, stream: int) -> np.random.Generator:
    """One independent child generator: stream ``stream`` of root ``seed``.

    The named-stream form of :func:`spawn_rngs` for call sites that need
    a single derived stream (``spawn_rng(seed, 3)`` is
    ``spawn_rngs(seed, 4)[3]`` without building the other three).  Stream
    numbering is stable: the same ``(seed, stream)`` pair always yields
    the same generator, and distinct streams are independent.

    ``seed`` may not be a live ``Generator`` here — a generator's state
    advances as it draws, so "stream ``i`` of generator ``g``" would
    depend on how much ``g`` had already been used, silently breaking
    reproducibility.  Pass the root seed (or a ``SeedSequence``) instead.
    """
    if stream < 0:
        raise ValueError(f"stream index must be >= 0, got {stream}")
    if isinstance(seed, np.random.Generator):
        raise TypeError(
            "spawn_rng needs a replayable root seed (int / SeedSequence / "
            "None), not a live Generator whose state drifts as it draws; "
            "use spawn_rngs(generator, n) for one-shot batches"
        )
    ss = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return np.random.default_rng(ss.spawn(stream + 1)[stream])
