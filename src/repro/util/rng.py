"""Reproducible random-number-generator plumbing.

All randomized algorithms in this package accept a ``seed`` argument that
may be ``None`` (fresh entropy), an ``int``, or an existing
:class:`numpy.random.Generator`.  :func:`as_rng` normalises the three forms.

Randomised algorithms that need several independent streams (e.g. one per
repetition of an experiment) should use :func:`spawn_rngs`, which derives
child generators through :class:`numpy.random.SeedSequence` spawning so the
streams are statistically independent regardless of the root seed.
"""

from __future__ import annotations

import numpy as np

SeedLike = "int | np.random.Generator | np.random.SeedSequence | None"


def as_rng(seed=None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Parameters
    ----------
    seed:
        ``None`` for OS entropy, an ``int`` seed, a ``SeedSequence``, or an
        existing ``Generator`` (returned unchanged so callers can share a
        stream).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed, n: int) -> list[np.random.Generator]:
    """Derive ``n`` independent generators from ``seed``.

    Unlike ``[as_rng(seed + i) for i in range(n)]``, sequential integer
    seeds are not used; children are spawned through ``SeedSequence`` which
    guarantees independence.
    """
    if n < 0:
        raise ValueError(f"cannot spawn a negative number of rngs: {n}")
    if isinstance(seed, np.random.Generator):
        # Derive children from the generator's own bit stream.
        seeds = seed.integers(0, 2**63 - 1, size=n)
        return [np.random.default_rng(int(s)) for s in seeds]
    ss = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in ss.spawn(n)]
