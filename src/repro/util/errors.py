"""Exception hierarchy for the sweep-scheduling reproduction.

Every error raised deliberately by this package derives from
:class:`ReproError`, so callers can catch package failures without also
swallowing programming errors (``TypeError`` etc.).
"""


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class InvalidInstanceError(ReproError):
    """A sweep-scheduling instance violates its structural invariants.

    Examples: a DAG references a cell outside ``range(n_cells)``, a
    direction graph contains a cycle, or the processor count is not
    positive.
    """


class InvalidScheduleError(ReproError):
    """A schedule violates feasibility (precedence / capacity / same-proc)."""


class PartitionError(ReproError):
    """Graph partitioning failed or was given inconsistent arguments."""


class MeshError(ReproError):
    """Mesh construction or validation failed."""


class CampaignError(ReproError):
    """A campaign spec, store, or run violated the campaign plane's contract.

    Examples: a spec axis is malformed or names an unknown mesh/algorithm,
    a result is recorded for a cell hash the store never registered (or
    recorded twice), or the sqlite store file fails its integrity check.
    """


class CacheError(ReproError):
    """The content-addressed build cache detected a corrupt entry.

    Raised (fail-loud, never silently rebuilt) when a cache file's magic,
    header, schema version, or payload digest does not verify on load —
    a partially-written or bit-rotted entry must surface, not masquerade
    as a miss.  See :mod:`repro.cache`.
    """


class StoreError(ReproError):
    """A shared-memory instance store operation failed.

    The canonical case: attaching to a segment that no longer exists —
    the publishing daemon restarted, evicted the instance, or crashed
    and its cleanup unlinked the segment.  Raised instead of the bare
    ``FileNotFoundError`` from ``multiprocessing.shared_memory`` so the
    message names the segment and the likely cause.
    """


class ServeError(ReproError):
    """A scheduling-service request failed with a typed error payload.

    Raised by :class:`repro.serve.ServeClient` when the daemon answers
    with an error frame, and inside the daemon to signal admission
    decisions (overload, deadline expiry, resident-byte budget, drain).
    ``code`` is one of the :mod:`repro.serve.protocol` error codes;
    ``retry_after`` (seconds, optional) tells backpressured clients when
    to retry.
    """

    def __init__(self, code: str, message: str,
                 retry_after: float | None = None):
        super().__init__(message)
        self.code = code
        self.retry_after = retry_after


class SanitizerError(ReproError):
    """The ``REPRO_SANITIZE=1`` runtime sanitizer detected a violation.

    Raised when a shared-memory segment's contents changed after
    publication (a stray write through some writable alias) or when an
    attached view turned out to be writable outside the owning store.
    """
