"""Tiny wall-clock timing helper used by the experiment harness."""

from __future__ import annotations

import time


class Timer:
    """Context manager measuring elapsed wall-clock seconds.

    Usage::

        with Timer() as t:
            run_something()
        print(t.elapsed)
    """

    def __init__(self) -> None:
        self.elapsed: float = 0.0
        self._start: float | None = None

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        assert self._start is not None
        self.elapsed = time.perf_counter() - self._start
        self._start = None
