"""Wall-clock timing: the repo's single raw-clock chokepoint.

:func:`now` is the only place the package reads ``time.perf_counter``
directly (lint rule RPL006 enforces this outside :mod:`repro.obs`).
Everything that measures wall-clock time — :class:`Timer`, the bench
harness, and the :mod:`repro.obs` span tracer — goes through it, so
timestamps from different layers land on one comparable monotonic
timeline.  On Linux ``perf_counter`` is ``CLOCK_MONOTONIC``, which is
system-wide, so readings taken in different processes of one grid run
are directly comparable after a cross-process trace merge.
"""

from __future__ import annotations

import time

__all__ = ["now", "Timer"]


def now() -> float:
    """Current monotonic reading in seconds (the raw-clock chokepoint)."""
    return time.perf_counter()


class Timer:
    """Context manager measuring elapsed wall-clock seconds.

    Usage::

        with Timer() as t:
            run_something()
        print(t.elapsed)
    """

    def __init__(self) -> None:
        self.elapsed: float = 0.0
        self._start: float | None = None

    def __enter__(self) -> "Timer":
        self._start = now()
        return self

    def __exit__(self, *exc: object) -> None:
        assert self._start is not None
        self.elapsed = now() - self._start
        self._start = None
