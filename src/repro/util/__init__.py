"""Shared utilities: errors, RNG handling, timing, array helpers.

These modules are intentionally dependency-light; everything else in
:mod:`repro` builds on top of them.
"""

from repro.util.errors import (
    ReproError,
    InvalidInstanceError,
    InvalidScheduleError,
    PartitionError,
    MeshError,
)
# SeedLike (the seed-argument alias) lives in repro.util.rng; it is a
# typing construct, not a callable export, so it stays out of __all__.
from repro.util.rng import as_rng, spawn_rng, spawn_rngs
from repro.util.timing import Timer, now

__all__ = [
    "ReproError",
    "InvalidInstanceError",
    "InvalidScheduleError",
    "PartitionError",
    "MeshError",
    "as_rng",
    "spawn_rng",
    "spawn_rngs",
    "Timer",
    "now",
]
