"""Descendant-count priorities (paper Section 5.2, after [Plimpton et al.]).

Each task ``(v, i)`` is prioritized by the number of its descendants in
its own direction DAG ``G_i``; tasks with *more* descendants run first
(they unlock the most downstream work).

Random-delay combination
------------------------
The paper reports that "combining our random delays technique with some
of these heuristics performs even better" but does not spell out the
combination rule.  We use the natural lexicographic rule: the delayed
level ``level + X_i`` is the primary key (so whole directions are offset
against each other, exactly the contention-resolution effect of
Algorithm 2) and the descendant count breaks ties within a delayed level.
This reduces to the pure heuristic when all delays are forced to zero and
to Algorithm 2 when the secondary key is dropped — see DESIGN.md.
"""

from __future__ import annotations

import numpy as np

from repro.core.assignment import random_cell_assignment
from repro.core.instance import SweepInstance
from repro.core.list_scheduler import list_schedule
from repro.core.random_delay import draw_delays
from repro.core.schedule import Schedule
from repro.heuristics._combine import lex_delay_priority
from repro.util.rng import as_rng

__all__ = ["descendant_priority_schedule", "descendant_counts_per_task"]


def descendant_counts_per_task(inst: SweepInstance, exact: bool | None = None) -> np.ndarray:
    """Descendant count of every task within its own direction DAG."""
    out = np.empty(inst.n_tasks, dtype=np.int64)
    n = inst.n_cells
    for i, g in enumerate(inst.dags):
        out[i * n : (i + 1) * n] = g.descendant_counts(exact=exact)
    return out


def descendant_priority_schedule(
    inst: SweepInstance,
    m: int,
    seed=None,
    assignment: np.ndarray | None = None,
    with_delays: bool = False,
    delays: np.ndarray | None = None,
    exact_counts: bool | None = None,
    engine: str = "auto",
) -> Schedule:
    """List scheduling with descendant-count priorities (± random delays).

    Parameters
    ----------
    with_delays:
        Combine with random delays lexicographically (see module docs).
    exact_counts:
        Forwarded to :meth:`Dag.descendant_counts`; ``None`` auto-selects
        exact bitset counting for small graphs.
    """
    rng = as_rng(seed)
    desc = descendant_counts_per_task(inst, exact=exact_counts)
    if with_delays:
        if delays is None:
            delays = draw_delays(inst.k, rng)
        prio = lex_delay_priority(inst, delays, desc, higher_is_better=True)
    else:
        delays = np.zeros(inst.k, dtype=np.int64)
        prio = -desc  # more descendants == smaller key == runs first
    if assignment is None:
        assignment = random_cell_assignment(inst.n_cells, m, rng)
    return list_schedule(
        inst,
        m,
        assignment,
        priority=prio,
        meta={
            "algorithm": "descendant" + ("_delays" if with_delays else ""),
            "delays": np.asarray(delays).copy(),
        },
        engine=engine,
    )
