"""KBA-style scheduling for regular grids (Koch–Baker–Alcouffe [6]).

The KBA algorithm is the essentially-optimal sweep scheduler for
*structured* meshes: the processor array is laid out as a 2-D grid over
the (x, y) cell coordinates, every processor owns a full column of cells
in z, and wavefronts pipeline through the processor grid.

We reproduce it as a *columnar assignment* plus level-priority list
scheduling: the assignment captures the KBA domain decomposition, and the
wavefront order falls out of the level priorities.  This serves as the
related-work anchor the paper cites — on regular grids KBA should beat
the randomized algorithms, while on unstructured meshes it has no
analogue (there is no (x, y) grid to decompose).
"""

from __future__ import annotations

import numpy as np

from repro.core.instance import SweepInstance
from repro.core.list_scheduler import list_schedule
from repro.core.schedule import Schedule
from repro.util.errors import InvalidScheduleError

__all__ = ["kba_assignment", "kba_schedule"]


def kba_assignment(
    cell_coords: np.ndarray,
    proc_grid: tuple[int, int],
) -> np.ndarray:
    """Columnar KBA assignment from integer cell coordinates.

    Parameters
    ----------
    cell_coords:
        ``(n_cells, d)`` integer grid coordinates with ``d in (2, 3)``.
        For 3-D the decomposition is over (x, y) and columns run along z;
        for 2-D it is over x with columns along y (the 2-D KBA analogue).
    proc_grid:
        ``(px, py)`` processor-array shape; ``m = px * py``.  For 2-D
        meshes ``py`` must be 1.
    """
    coords = np.asarray(cell_coords)
    if coords.ndim != 2 or coords.shape[1] not in (2, 3):
        raise InvalidScheduleError(
            f"cell_coords must be (n, 2) or (n, 3); got {coords.shape}"
        )
    px, py = proc_grid
    if px <= 0 or py <= 0:
        raise InvalidScheduleError(f"processor grid must be positive, got {proc_grid}")
    if coords.shape[1] == 2 and py != 1:
        raise InvalidScheduleError("2-D meshes require a (px, 1) processor grid")

    x = coords[:, 0]
    bx = _block_index(x, px)
    if coords.shape[1] == 3:
        y = coords[:, 1]
        by = _block_index(y, py)
    else:
        by = np.zeros_like(bx)
    return bx * py + by


def _block_index(coord: np.ndarray, parts: int) -> np.ndarray:
    """Split a coordinate range into ``parts`` near-equal contiguous blocks."""
    lo = int(coord.min())
    hi = int(coord.max()) + 1
    extent = hi - lo
    # Proportional split: block = floor((c - lo) * parts / extent).
    return ((coord - lo).astype(np.int64) * parts) // max(extent, 1)


def kba_schedule(
    inst: SweepInstance,
    cell_coords: np.ndarray,
    proc_grid: tuple[int, int],
    engine: str = "auto",
) -> Schedule:
    """KBA wavefront schedule: columnar assignment + level priorities."""
    px, py = proc_grid
    assignment = kba_assignment(cell_coords, proc_grid)
    return list_schedule(
        inst,
        px * py,
        assignment,
        priority=inst.task_levels(),
        meta={"algorithm": "kba", "proc_grid": (px, py)},
        engine=engine,
    )
