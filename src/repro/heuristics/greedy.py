"""Graham-style greedy baselines.

Two baselines round out the comparison set:

* :func:`graham_relaxed_schedule` — classical greedy list scheduling on
  the union DAG with the same-processor constraint *dropped* (the
  ``(2 - 1/m)``-approximation of Graham et al. for ``P | prec | C_max``).
  Not a feasible sweep schedule; its makespan lower-bounds what any sweep
  scheduler could hope for, which makes it the natural x-axis anchor in
  comparison plots.

* :func:`fifo_schedule` — feasible sweep schedule with no priorities at
  all (ties broken by task id).  The weakest sensible feasible baseline:
  any heuristic that cannot beat FIFO is not pulling its weight.
"""

from __future__ import annotations

import numpy as np

from repro.core.assignment import random_cell_assignment
from repro.core.instance import SweepInstance
from repro.core.list_scheduler import (
    UnassignedSchedule,
    list_schedule,
    list_schedule_unassigned,
)
from repro.core.schedule import Schedule
from repro.util.rng import as_rng

__all__ = ["graham_relaxed_schedule", "fifo_schedule"]


def graham_relaxed_schedule(
    inst: SweepInstance, m: int, engine: str = "auto"
) -> UnassignedSchedule:
    """Greedy list scheduling ignoring the same-processor constraint."""
    return list_schedule_unassigned(inst, m, engine=engine)


def fifo_schedule(
    inst: SweepInstance,
    m: int,
    seed=None,
    assignment: np.ndarray | None = None,
    engine: str = "auto",
) -> Schedule:
    """Feasible list schedule with uniform priorities (task-id ties)."""
    rng = as_rng(seed)
    if assignment is None:
        assignment = random_cell_assignment(inst.n_cells, m, rng)
    return list_schedule(
        inst,
        m,
        assignment,
        priority=None,
        meta={"algorithm": "fifo"},
        engine=engine,
    )
