"""Comparison heuristics from the paper's experimental section.

* level priorities (wavefront order, ± random delays),
* descendant priorities (Plimpton et al. style, ± delays),
* DFDS (Pautz's Depth-First Descendant-Seeking, ± delays),
* Graham relaxed greedy and FIFO baselines,
* KBA for structured grids (related-work anchor),
* a name→callable registry consumed by the experiment harness.
"""

from repro.heuristics.level_priority import level_priority_schedule
from repro.heuristics.descendant_priority import (
    descendant_priority_schedule,
    descendant_counts_per_task,
)
from repro.heuristics.dfds import dfds_schedule, dfds_priorities
from repro.heuristics.blevel import blevel_schedule, blevel_priorities
from repro.heuristics.greedy import graham_relaxed_schedule, fifo_schedule
from repro.heuristics.kba import kba_schedule, kba_assignment
from repro.heuristics.registry import ALGORITHMS, get_algorithm, algorithm_names

__all__ = [
    "level_priority_schedule",
    "descendant_priority_schedule",
    "descendant_counts_per_task",
    "dfds_schedule",
    "dfds_priorities",
    "blevel_schedule",
    "blevel_priorities",
    "graham_relaxed_schedule",
    "fifo_schedule",
    "kba_schedule",
    "kba_assignment",
    "ALGORITHMS",
    "get_algorithm",
    "algorithm_names",
]
