"""Shared helper: combine a heuristic priority with random delays.

The paper combines its random-delays technique with the descendant and
DFDS heuristics but leaves the combination rule unspecified.  We use a
lexicographic key: the delayed level ``level + X_i`` is primary (the
contention-resolution mechanism of Algorithm 2) and the heuristic value
breaks ties within a delayed level.  Encoded as one integer so the list
scheduler's scalar heap keys stay cheap.
"""

from __future__ import annotations

import numpy as np

from repro.core.instance import SweepInstance
from repro.core.random_delay import delayed_task_layers

__all__ = ["lex_delay_priority"]


def lex_delay_priority(
    inst: SweepInstance,
    delays: np.ndarray,
    secondary: np.ndarray,
    higher_is_better: bool,
) -> np.ndarray:
    """Encode ``(level + X_i, secondary)`` as a single minimised key.

    Parameters
    ----------
    secondary:
        Heuristic value per task.
    higher_is_better:
        ``True`` if larger ``secondary`` should run first (descendants,
        DFDS); ``False`` if smaller should (levels).
    """
    primary = delayed_task_layers(inst, np.asarray(delays, dtype=np.int64))
    secondary = np.asarray(secondary, dtype=np.int64)
    lo = int(secondary.min()) if secondary.size else 0
    shifted = secondary - lo  # nonnegative
    span = int(shifted.max()) + 1 if shifted.size else 1
    if higher_is_better:
        shifted = (span - 1) - shifted
    return primary * span + shifted
