"""Named algorithm registry used by the experiment harness.

Every entry maps a stable string name to a callable
``f(inst, m, seed=None, assignment=None) -> Schedule``.  The registry is
the single list the comparison experiments (Fig. 3(a)–(c)) iterate over;
adding an algorithm here makes it appear in every shoot-out.
"""

from __future__ import annotations

from functools import partial
from typing import Callable

from repro.core.improved import improved_random_delay_schedule
from repro.core.priority_delay import random_delay_priority_schedule
from repro.core.random_delay import random_delay_schedule
from repro.heuristics.blevel import blevel_schedule
from repro.heuristics.descendant_priority import descendant_priority_schedule
from repro.heuristics.dfds import dfds_schedule
from repro.heuristics.greedy import fifo_schedule
from repro.heuristics.level_priority import level_priority_schedule
from repro.util.errors import ReproError

__all__ = ["ALGORITHMS", "get_algorithm", "algorithm_names"]

ALGORITHMS: dict[str, Callable] = {
    # Paper's provable algorithms.
    "random_delay": random_delay_schedule,                      # Algorithm 1
    "random_delay_priority": random_delay_priority_schedule,    # Algorithm 2
    "improved_random_delay": improved_random_delay_schedule,    # Algorithm 3
    "improved_random_delay_priority": partial(
        improved_random_delay_schedule, priorities=True
    ),
    # Comparison heuristics (Section 5.2).
    "level": level_priority_schedule,
    "level_delays": partial(level_priority_schedule, with_delays=True),
    "descendant": descendant_priority_schedule,
    "descendant_delays": partial(descendant_priority_schedule, with_delays=True),
    "dfds": dfds_schedule,
    "dfds_delays": partial(dfds_schedule, with_delays=True),
    # Classic list-scheduling baselines (extensions beyond the paper).
    "blevel": blevel_schedule,
    "blevel_delays": partial(blevel_schedule, with_delays=True),
    "fifo": fifo_schedule,
}


def algorithm_names() -> list[str]:
    """All registered algorithm names, in registry order."""
    return list(ALGORITHMS)


def get_algorithm(name: str) -> Callable:
    """Look up an algorithm by name, with a helpful error on typos."""
    try:
        return ALGORITHMS[name]
    except KeyError:
        raise ReproError(
            f"unknown algorithm {name!r}; known: {', '.join(ALGORITHMS)}"
        ) from None
