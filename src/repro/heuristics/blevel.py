"""Critical-path (b-level) priorities — the classic HLFET baseline.

Highest-Level-First with Estimated Times: each task is prioritized by
its b-level (longest chain of tasks below it in its direction DAG);
deeper tasks run first, keeping critical paths moving.  The paper does
not benchmark this classic, but it is the standard list-scheduling
yardstick and slots naturally between the level and descendant
heuristics: level priorities look *up* the DAG, b-levels look *down*
along the longest chain, descendant counts look down along *all* chains.
"""

from __future__ import annotations

import numpy as np

from repro.core.assignment import random_cell_assignment
from repro.core.instance import SweepInstance
from repro.core.list_scheduler import list_schedule
from repro.core.random_delay import draw_delays
from repro.core.schedule import Schedule
from repro.heuristics._combine import lex_delay_priority
from repro.util.rng import as_rng

__all__ = ["blevel_priorities", "blevel_schedule"]


def blevel_priorities(inst: SweepInstance) -> np.ndarray:
    """b-level of every task within its own direction DAG."""
    out = np.empty(inst.n_tasks, dtype=np.int64)
    n = inst.n_cells
    for i, g in enumerate(inst.dags):
        out[i * n : (i + 1) * n] = g.b_levels()
    return out


def blevel_schedule(
    inst: SweepInstance,
    m: int,
    seed=None,
    assignment: np.ndarray | None = None,
    with_delays: bool = False,
    delays: np.ndarray | None = None,
    engine: str = "auto",
) -> Schedule:
    """List scheduling with b-level priorities (higher runs first)."""
    rng = as_rng(seed)
    b = blevel_priorities(inst)
    if with_delays:
        if delays is None:
            delays = draw_delays(inst.k, rng)
        prio = lex_delay_priority(inst, delays, b, higher_is_better=True)
    else:
        delays = np.zeros(inst.k, dtype=np.int64)
        prio = -b
    if assignment is None:
        assignment = random_cell_assignment(inst.n_cells, m, rng)
    return list_schedule(
        inst,
        m,
        assignment,
        priority=prio,
        meta={
            "algorithm": "blevel" + ("_delays" if with_delays else ""),
            "delays": np.asarray(delays).copy(),
        },
        engine=engine,
    )
