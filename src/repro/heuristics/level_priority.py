"""Level-priority list scheduling (paper Section 5.2, "Level Priorities").

Task ``(v, i)`` in level ``L_{i,j}`` of its direction DAG gets priority
``j``; smaller runs first.  Without random delays this is the plain
wavefront heuristic the paper compares against in Fig. 3(a); *with*
delays it is exactly Algorithm 2 ("Random Delays with Priorities").
"""

from __future__ import annotations

import numpy as np

from repro.core.assignment import random_cell_assignment
from repro.core.instance import SweepInstance
from repro.core.list_scheduler import list_schedule
from repro.core.random_delay import delayed_task_layers, draw_delays
from repro.core.schedule import Schedule
from repro.util.rng import as_rng

__all__ = ["level_priority_schedule"]


def level_priority_schedule(
    inst: SweepInstance,
    m: int,
    seed=None,
    assignment: np.ndarray | None = None,
    with_delays: bool = False,
    delays: np.ndarray | None = None,
    engine: str = "auto",
) -> Schedule:
    """List scheduling with per-direction level priorities.

    Parameters
    ----------
    with_delays:
        Add the paper's random delays: priority becomes
        ``level + X_i`` (this is Algorithm 2).
    engine:
        List-scheduling engine (see :mod:`repro.core.list_scheduler`).
    """
    rng = as_rng(seed)
    if with_delays:
        if delays is None:
            delays = draw_delays(inst.k, rng)
        prio = delayed_task_layers(inst, np.asarray(delays, dtype=np.int64))
    else:
        delays = np.zeros(inst.k, dtype=np.int64)
        prio = inst.task_levels()
    if assignment is None:
        assignment = random_cell_assignment(inst.n_cells, m, rng)
    return list_schedule(
        inst,
        m,
        assignment,
        priority=prio,
        meta={
            "algorithm": "level" + ("_delays" if with_delays else ""),
            "delays": np.asarray(delays).copy(),
        },
        engine=engine,
    )
