"""Depth-First Descendant-Seeking (DFDS) priorities [Pautz 2002].

The paper's description (Section 5.2), which we follow literally:

* the *b-level* of a task is the number of nodes on the longest path from
  it to a leaf of its direction DAG;
* every task with **off-processor children** gets priority
  ``max(b-level of children) + K`` where ``K`` is a constant at least the
  number of levels in the DAG;
* every task with no off-processor children gets one less than the
  highest priority among its children;
* a task with no off-processor descendants gets priority 0;
* **higher** priority runs first.

The effect: work that feeds other processors is pulled forward
(depth-first along chains leading to off-processor edges), which keeps
downstream processors busy.  DFDS needs the processor assignment before
priorities can be computed, so the assignment is drawn (or passed in)
first.
"""

from __future__ import annotations

import numpy as np

from repro.core.assignment import random_cell_assignment
from repro.core.instance import SweepInstance
from repro.core.list_scheduler import list_schedule
from repro.core.random_delay import draw_delays
from repro.core.schedule import Schedule
from repro.heuristics._combine import lex_delay_priority
from repro.util.rng import as_rng

__all__ = ["dfds_priorities", "dfds_schedule"]


def dfds_priorities(inst: SweepInstance, assignment: np.ndarray) -> np.ndarray:
    """DFDS priority of every task (higher runs first).

    Computed independently per direction DAG in reverse topological
    order, as described above.
    """
    assignment = np.asarray(assignment)
    n = inst.n_cells
    out = np.zeros(inst.n_tasks, dtype=np.int64)
    for i, g in enumerate(inst.dags):
        if n == 0:
            continue
        b = g.b_levels()
        K = max(g.num_levels(), 1)
        off, tgt = g.successor_csr()
        off_l = off.tolist()
        tgt_l = tgt.tolist()
        proc = assignment.tolist()
        b_l = b.tolist()
        pr = [0] * n
        for v in g.topological_order().tolist()[::-1]:
            children = tgt_l[off_l[v] : off_l[v + 1]]
            if not children:
                continue
            my_proc = proc[v]
            if any(proc[c] != my_proc for c in children):
                pr[v] = max(b_l[c] for c in children) + K
            else:
                best = max(pr[c] for c in children)
                pr[v] = best - 1 if best > 0 else 0
        out[i * n : (i + 1) * n] = pr
    return out


def dfds_schedule(
    inst: SweepInstance,
    m: int,
    seed=None,
    assignment: np.ndarray | None = None,
    with_delays: bool = False,
    delays: np.ndarray | None = None,
    engine: str = "auto",
) -> Schedule:
    """List scheduling with DFDS priorities (± random delays).

    ``with_delays`` combines lexicographically with the delayed level, as
    for the descendant heuristic (see :mod:`repro.heuristics._combine`).
    """
    rng = as_rng(seed)
    if assignment is None:
        assignment = random_cell_assignment(inst.n_cells, m, rng)
    pr = dfds_priorities(inst, assignment)
    if with_delays:
        if delays is None:
            delays = draw_delays(inst.k, rng)
        prio = lex_delay_priority(inst, delays, pr, higher_is_better=True)
    else:
        delays = np.zeros(inst.k, dtype=np.int64)
        prio = -pr  # higher DFDS priority == smaller heap key
    return list_schedule(
        inst,
        m,
        assignment,
        priority=prio,
        meta={
            "algorithm": "dfds" + ("_delays" if with_delays else ""),
            "delays": np.asarray(delays).copy(),
        },
        engine=engine,
    )
