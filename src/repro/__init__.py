"""repro — reproduction of "Provable Algorithms for Parallel Sweep
Scheduling on Unstructured Meshes" (Anil Kumar, Marathe, Parthasarathy,
Srinivasan, Zust; IPDPS 2005).

Quickstart::

    from repro.mesh import tetonly_like
    from repro.sweeps import level_symmetric, build_instance
    from repro.core import random_delay_priority_schedule, average_load_lb

    mesh = tetonly_like(2000, seed=0)
    inst = build_instance(mesh, level_symmetric(4))   # 24 directions
    sched = random_delay_priority_schedule(inst, m=32, seed=0)
    sched.validate()
    print(sched.makespan / average_load_lb(inst, 32))  # ~1-2x the LB

Packages:

* :mod:`repro.core` — instance model, schedules, Algorithms 1–3;
* :mod:`repro.heuristics` — level/descendant/DFDS/FIFO/KBA baselines;
* :mod:`repro.mesh` — synthetic unstructured meshes;
* :mod:`repro.sweeps` — direction sets, sweep-DAG induction;
* :mod:`repro.partition` — multilevel METIS stand-in;
* :mod:`repro.comm` — C1/C2 communication costs, message rounds;
* :mod:`repro.analysis` — Chernoff/balls-in-bins toolkit, metrics;
* :mod:`repro.experiments` — figure-reproduction harness.
"""

__version__ = "1.0.0"

from repro.core import (
    Dag,
    SweepInstance,
    Schedule,
    random_delay_schedule,
    random_delay_priority_schedule,
    improved_random_delay_schedule,
)

__all__ = [
    "__version__",
    "Dag",
    "SweepInstance",
    "Schedule",
    "random_delay_schedule",
    "random_delay_priority_schedule",
    "improved_random_delay_schedule",
]
