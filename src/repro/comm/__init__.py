"""Communication-cost models: static C1, per-step C2, 1-port rounds."""

from repro.comm.cost import (
    interprocessor_edges,
    interprocessor_edge_fraction,
    c2_cost,
    per_step_send_counts,
)
from repro.comm.edge_coloring import greedy_edge_coloring, max_degree
from repro.comm.rounds import per_step_rounds, rounds_cost, step_message_graph
from repro.comm.simulator import (
    CommModel,
    WallClockEstimate,
    estimate_wall_clock,
    communication_profile,
)
from repro.comm.distributed_coloring import (
    distributed_edge_coloring,
    DistributedColoringResult,
)
from repro.comm.topology import TorusTopology, hop_weighted_c1, locality_mapping

__all__ = [
    "interprocessor_edges",
    "interprocessor_edge_fraction",
    "c2_cost",
    "per_step_send_counts",
    "greedy_edge_coloring",
    "max_degree",
    "per_step_rounds",
    "rounds_cost",
    "step_message_graph",
    "CommModel",
    "WallClockEstimate",
    "estimate_wall_clock",
    "communication_profile",
    "distributed_edge_coloring",
    "DistributedColoringResult",
    "TorusTopology",
    "hop_weighted_c1",
    "locality_mapping",
]
