"""Network-topology-aware communication cost.

C1 and C2 charge every message one unit; real interconnects charge by
distance.  This module adds the standard refinement: place processors on
a torus (the dominant HPC topology of the paper's era — and of the
machines KBA was designed for) and weight each cross-processor edge by
hop count.  It also provides locality-aware processor *mapping*: instead
of assigning blocks to random processors (the paper's choice), map
spatially nearby blocks to nearby torus nodes via recursive coordinate
bisection, and measure how much hop-weighted communication that saves.
"""

from __future__ import annotations

import numpy as np

from repro.core.instance import SweepInstance
from repro.partition.rcb import rcb_partition
from repro.util.errors import ReproError

__all__ = ["TorusTopology", "hop_weighted_c1", "locality_mapping"]


class TorusTopology:
    """A d-dimensional torus of processors.

    ``dims`` are the per-axis extents; ``m = prod(dims)``.  Hop distance
    between two processors is the sum over axes of the wrap-around
    (circular) distance.
    """

    def __init__(self, dims: tuple[int, ...]):
        dims = tuple(int(d) for d in dims)
        if not dims or any(d <= 0 for d in dims):
            raise ReproError(f"torus dims must be positive, got {dims}")
        self.dims = dims
        self.m = int(np.prod(dims))
        # Precompute each processor's coordinates.
        coords = np.unravel_index(np.arange(self.m), dims)
        self.coords = np.stack(coords, axis=1).astype(np.int64)

    def hops(self, a, b) -> np.ndarray:
        """Hop distance between processor ids (vectorised)."""
        ca = self.coords[np.asarray(a)]
        cb = self.coords[np.asarray(b)]
        diff = np.abs(ca - cb)
        dims = np.asarray(self.dims)
        return np.minimum(diff, dims - diff).sum(axis=-1)

    @property
    def diameter(self) -> int:
        return int(sum(d // 2 for d in self.dims))

    def __repr__(self) -> str:
        return f"TorusTopology(dims={self.dims})"


def hop_weighted_c1(
    inst: SweepInstance, assignment: np.ndarray, topology: TorusTopology
) -> int:
    """C1 with each cross edge weighted by its torus hop distance."""
    assignment = np.asarray(assignment)
    if inst.n_cells and assignment.max() >= topology.m:
        raise ReproError("assignment references a processor outside the torus")
    total = 0
    for g in inst.dags:
        if not g.num_edges:
            continue
        pa = assignment[g.edges[:, 0]]
        pb = assignment[g.edges[:, 1]]
        cross = pa != pb
        if cross.any():
            total += int(topology.hops(pa[cross], pb[cross]).sum())
    return total


def locality_mapping(
    block_centroids: np.ndarray, topology: TorusTopology, seed=None
) -> np.ndarray:
    """Map blocks to torus processors so nearby blocks land on nearby nodes.

    Recursive coordinate bisection splits the block centroids into
    ``m`` spatial groups; groups are then matched to processors in
    torus-coordinate lexicographic order (a snake-free but effective
    folding — the point is the contrast with random mapping, not an
    optimal embedding).  Returns ``block -> processor``.
    """
    block_centroids = np.asarray(block_centroids, dtype=np.float64)
    nb = block_centroids.shape[0]
    if nb < topology.m:
        raise ReproError(
            f"need at least one block per processor: {nb} blocks < {topology.m}"
        )
    groups = rcb_partition(block_centroids, topology.m)
    # Order spatial groups by their centroid along the sorted axes, and
    # processors by torus coordinates; pair them up rank-for-rank.
    group_centers = np.zeros((topology.m, block_centroids.shape[1]))
    counts = np.bincount(groups, minlength=topology.m).astype(np.float64)
    np.add.at(group_centers, groups, block_centroids)
    group_centers /= np.maximum(counts, 1)[:, None]
    group_order = np.lexsort(tuple(group_centers[:, a] for a in
                                   range(block_centroids.shape[1] - 1, -1, -1)))
    proc_order = np.lexsort(tuple(topology.coords[:, a] for a in
                                  range(topology.coords.shape[1] - 1, -1, -1)))
    group_to_proc = np.empty(topology.m, dtype=np.int64)
    group_to_proc[group_order] = proc_order
    return group_to_proc[groups]
