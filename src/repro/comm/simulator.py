"""Wall-clock estimation combining computation and communication.

The paper evaluates makespan and communication cost separately and notes
real cost lies between its two extremes.  This simulator composes them
into a single wall-clock estimate under a configurable model:

    time = p * makespan + c * (communication steps)

where the communication steps per computation step are, by accounting
mode:

* ``"max_send"`` — the paper's C2: max messages any processor sends;
* ``"rounds"`` — 1-port edge-colored rounds (strictly >= C2, <= C1);
* ``"total_edges"`` — C1 amortised as if all messages serialised
  (the pessimistic extreme);
* ``"none"`` — computation only.

``p`` and ``c`` are the per-task and per-message-round costs (the
paper's uniform ``p`` and ``c``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.comm.cost import c2_cost, interprocessor_edges, per_step_send_counts
from repro.comm.rounds import rounds_cost
from repro.core.schedule import Schedule
from repro.util.errors import ReproError

__all__ = ["CommModel", "WallClockEstimate", "estimate_wall_clock"]

_ACCOUNTINGS = ("max_send", "rounds", "total_edges", "none")


@dataclass(frozen=True)
class CommModel:
    """Cost model: unit task time ``p``, per-round message time ``c``."""

    p: float = 1.0
    c: float = 0.1
    accounting: str = "max_send"

    def __post_init__(self):
        if self.p <= 0:
            raise ReproError(f"task time p must be positive, got {self.p}")
        if self.c < 0:
            raise ReproError(f"message time c must be nonnegative, got {self.c}")
        if self.accounting not in _ACCOUNTINGS:
            raise ReproError(
                f"unknown accounting {self.accounting!r}; "
                f"known: {', '.join(_ACCOUNTINGS)}"
            )


@dataclass
class WallClockEstimate:
    """Breakdown of an estimated parallel execution time."""

    compute_time: float
    comm_steps: int
    comm_time: float

    @property
    def total(self) -> float:
        return self.compute_time + self.comm_time

    def comm_fraction(self) -> float:
        return self.comm_time / self.total if self.total else 0.0


def estimate_wall_clock(
    schedule: Schedule, model: CommModel = CommModel()
) -> WallClockEstimate:
    """Estimate wall-clock time of ``schedule`` under ``model``."""
    if model.accounting == "none":
        comm_steps = 0
    elif model.accounting == "max_send":
        comm_steps = c2_cost(schedule)
    elif model.accounting == "rounds":
        comm_steps = rounds_cost(schedule)
    else:  # total_edges
        comm_steps = interprocessor_edges(schedule.instance, schedule.assignment)
    return WallClockEstimate(
        compute_time=model.p * schedule.makespan,
        comm_steps=comm_steps,
        comm_time=model.c * comm_steps,
    )


def communication_profile(schedule: Schedule) -> dict:
    """All three communication accountings side by side."""
    return {
        "c1_total_edges": interprocessor_edges(
            schedule.instance, schedule.assignment
        ),
        "c2_max_send": c2_cost(schedule),
        "rounds_1port": rounds_cost(schedule),
        "c2_peak_step": int(per_step_send_counts(schedule).max())
        if schedule.makespan
        else 0,
    }


__all__.append("communication_profile")
