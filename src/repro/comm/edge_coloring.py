"""Greedy edge coloring for conflict-free message rounds.

The paper notes (Section 5) that achieving the C2 bound "requires some
extra coordination ... one way this can be done in a distributed manner
is to use an edge coloring algorithm [11]".  We implement the sequential
greedy coloring it reduces to: color each edge with the smallest color
free at both endpoints.  For a multigraph with maximum degree ``Δ`` the
greedy bound is ``2Δ - 1`` colors (Vizing-style algorithms reach
``Δ + 1`` but are overkill here — the *number of rounds*, not the exact
constant, is what the round-accounting experiments compare).
"""

from __future__ import annotations

import numpy as np

from repro.util.errors import ReproError

__all__ = ["greedy_edge_coloring", "max_degree"]


def max_degree(edges: np.ndarray, n: int) -> int:
    """Maximum (total) degree of the multigraph ``edges`` on ``n`` vertices."""
    edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
    if edges.size == 0:
        return 0
    deg = np.bincount(edges.ravel(), minlength=n)
    return int(deg.max())


def greedy_edge_coloring(edges: np.ndarray, n: int) -> np.ndarray:
    """Color every edge so no two edges sharing a vertex share a color.

    Parameters
    ----------
    edges:
        ``(E, 2)`` multigraph edges (parallel edges allowed; each needs
        its own color).  Self-loops are rejected — a processor does not
        message itself.
    n:
        Vertex count.

    Returns
    -------
    ``(E,)`` array of colors ``0..C-1`` with ``C <= 2Δ - 1``.
    """
    edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
    if edges.size and np.any(edges[:, 0] == edges[:, 1]):
        raise ReproError("self-loop message: a processor cannot send to itself")
    colors = np.empty(edges.shape[0], dtype=np.int64)
    used: list[set[int]] = [set() for _ in range(n)]
    # Color high-degree vertices' edges first: sort edges by the max
    # endpoint degree, descending, which tightens the greedy bound a bit.
    if edges.size:
        deg = np.bincount(edges.ravel(), minlength=n)
        order = np.argsort(
            -np.maximum(deg[edges[:, 0]], deg[edges[:, 1]]), kind="stable"
        )
    else:
        order = np.empty(0, dtype=np.int64)
    for e in order.tolist():
        u, v = int(edges[e, 0]), int(edges[e, 1])
        busy = used[u] | used[v]
        c = 0
        while c in busy:
            c += 1
        colors[e] = c
        used[u].add(c)
        used[v].add(c)
    return colors
