"""Communication-cost measures C1 and C2 (paper Section 5, "Objectives").

* **C1** — static: the number of DAG edges ``((u,i),(v,i))`` whose
  endpoints live on different processors, summed over all directions.
  Independent of the schedule; depends only on the assignment.

* **C2** — dynamic: assume a communication round after every computation
  step; the round costs the maximum number of messages any single
  processor must send.  ``C2 = sum_t max_P msgs(P, t)`` where a task
  executed at step ``t`` sends one message per cross-processor out-edge
  (the paper's "Max Off-Proc-Outdegree").  With ``dedup=True`` messages
  from one task to the same destination processor are batched into one.

The paper calls C2 "very optimistic": doing all messages in
max-out-degree time needs coordination such as edge coloring — see
:mod:`repro.comm.rounds` for the honest 1-port accounting.
"""

from __future__ import annotations

import numpy as np

from repro.core.instance import SweepInstance
from repro.core.schedule import Schedule

__all__ = [
    "interprocessor_edges",
    "interprocessor_edge_fraction",
    "c2_cost",
    "per_step_send_counts",
]


def interprocessor_edges(inst: SweepInstance, assignment: np.ndarray) -> int:
    """C1: DAG edges crossing processors, summed over every direction."""
    assignment = np.asarray(assignment)
    total = 0
    for g in inst.dags:
        if g.num_edges:
            total += int(
                (assignment[g.edges[:, 0]] != assignment[g.edges[:, 1]]).sum()
            )
    return total


def interprocessor_edge_fraction(inst: SweepInstance, assignment: np.ndarray) -> float:
    """C1 divided by the total number of DAG edges (0 when there are none).

    For a uniformly random cell assignment this concentrates around
    ``(m-1)/m`` — the observation that motivated block partitioning.
    """
    total_edges = sum(g.num_edges for g in inst.dags)
    if total_edges == 0:
        return 0.0
    return interprocessor_edges(inst, assignment) / total_edges


def _cross_edge_sends(schedule: Schedule, dedup: bool):
    """(step, sender, count) triplets for all cross-processor sends."""
    inst = schedule.instance
    union = inst.union_dag()
    if union.num_edges == 0:
        return (
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
        )
    proc = schedule.task_proc()
    src = union.edges[:, 0]
    dst = union.edges[:, 1]
    cross = proc[src] != proc[dst]
    src = src[cross]
    dst_proc = proc[dst[cross]]
    if dedup:
        # One message per distinct (source task, destination processor).
        key = src * schedule.m + dst_proc
        src = np.unique(key) // schedule.m
    steps = schedule.start[src]
    senders = proc[src]
    # Aggregate per (step, sender).
    key = steps * schedule.m + senders
    uniq, counts = np.unique(key, return_counts=True)
    return uniq // schedule.m, uniq % schedule.m, counts


def per_step_send_counts(schedule: Schedule, dedup: bool = False) -> np.ndarray:
    """``out[t]`` = maximum messages any processor sends after step ``t``."""
    steps, _senders, counts = _cross_edge_sends(schedule, dedup)
    out = np.zeros(schedule.makespan, dtype=np.int64)
    if steps.size:
        np.maximum.at(out, steps, counts)
    return out


def c2_cost(schedule: Schedule, dedup: bool = False) -> int:
    """C2: total communication delay under the per-step max-send model."""
    return int(per_step_send_counts(schedule, dedup=dedup).sum())
