"""Honest 1-port message-round accounting via edge coloring.

C2 charges each step only the maximum *send* count of any processor; in a
1-port model (each processor sends at most one and receives at most one
message per round) the real number of rounds for a step is the number of
colors a proper edge coloring of that step's message multigraph needs.
:func:`rounds_cost` computes that, giving a communication measure
sandwiched between the paper's optimistic C2 and pessimistic C1:

``C2 <= rounds_cost <= C1`` (each message occupies one round slot, and a
round retires at least one message per busy processor).
"""

from __future__ import annotations

import numpy as np

from repro.comm.edge_coloring import greedy_edge_coloring
from repro.core.schedule import Schedule

__all__ = ["per_step_rounds", "rounds_cost", "step_message_graph"]


def step_message_graph(schedule: Schedule, step: int) -> np.ndarray:
    """(sender, receiver) processor pairs for messages emitted at ``step``.

    One entry per cross-processor DAG edge whose source task ran at
    ``step`` (parallel entries kept — every message needs a round slot).
    """
    inst = schedule.instance
    union = inst.union_dag()
    if union.num_edges == 0:
        return np.empty((0, 2), dtype=np.int64)
    proc = schedule.task_proc()
    src, dst = union.edges[:, 0], union.edges[:, 1]
    mask = (schedule.start[src] == step) & (proc[src] != proc[dst])
    return np.stack([proc[src[mask]], proc[dst[mask]]], axis=1)


def per_step_rounds(schedule: Schedule) -> np.ndarray:
    """Colors needed per step under the 1-port model.

    O(makespan) calls to the greedy coloring; total work is linear in the
    number of cross edges plus makespan.
    """
    inst = schedule.instance
    union = inst.union_dag()
    out = np.zeros(schedule.makespan, dtype=np.int64)
    if union.num_edges == 0:
        return out
    proc = schedule.task_proc()
    src, dst = union.edges[:, 0], union.edges[:, 1]
    cross = proc[src] != proc[dst]
    src, dst = src[cross], dst[cross]
    steps = schedule.start[src]
    order = np.argsort(steps, kind="stable")
    src, dst, steps = src[order], dst[order], steps[order]
    bounds = np.searchsorted(steps, np.arange(schedule.makespan + 1))
    for t in range(schedule.makespan):
        lo, hi = bounds[t], bounds[t + 1]
        if lo == hi:
            continue
        pairs = np.stack([proc[src[lo:hi]], proc[dst[lo:hi]]], axis=1)
        colors = greedy_edge_coloring(pairs, schedule.m)
        out[t] = int(colors.max()) + 1
    return out


def rounds_cost(schedule: Schedule) -> int:
    """Total 1-port communication rounds over the whole schedule."""
    return int(per_step_rounds(schedule).sum())
