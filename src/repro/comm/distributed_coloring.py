"""Randomized distributed edge coloring (the paper's reference [11]).

The paper notes that realising the C2 bound "requires some extra
coordination ... one way this can be done in a distributed manner is to
use an edge coloring algorithm" — citing Marathe–Panconesi–Risinger's
experimental study of the simple distributed algorithm.  We implement
that algorithm:

    repeat until every edge is colored:
        every uncolored edge proposes a color uniformly at random from
        its palette minus the colors already fixed at its endpoints;
        an edge keeps its proposal iff no adjacent edge proposed the
        same color this round.

With palette size ``ceil(palette_factor * Δ)`` (default 2Δ, the
classical choice) the algorithm terminates in O(log E) rounds with high
probability; the tests check proper coloring always and measure rounds.
Unlike :func:`repro.comm.edge_coloring.greedy_edge_coloring` this needs
no global order — each round is one synchronous message exchange among
the processors holding the edges, exactly the setting of the paper's
per-step communication rounds.
"""

from __future__ import annotations

import math

import numpy as np

from repro.comm.edge_coloring import max_degree
from repro.util.errors import ReproError
from repro.util.rng import as_rng

__all__ = ["distributed_edge_coloring", "DistributedColoringResult"]


class DistributedColoringResult:
    """Colors plus the synchronous-round count the protocol used."""

    __slots__ = ("colors", "rounds", "palette_size")

    def __init__(self, colors: np.ndarray, rounds: int, palette_size: int):
        self.colors = colors
        self.rounds = rounds
        self.palette_size = palette_size


def distributed_edge_coloring(
    edges: np.ndarray,
    n: int,
    palette_factor: float = 2.0,
    seed=None,
    max_rounds: int = 10_000,
) -> DistributedColoringResult:
    """Color edges by the randomized proposal/conflict protocol.

    Parameters
    ----------
    edges:
        ``(E, 2)`` multigraph edges; self-loops rejected.
    palette_factor:
        Palette size = ``ceil(palette_factor * Δ)``; must be > 1 (below
        Δ+1 a proper coloring may not even exist).
    max_rounds:
        Safety valve; the protocol terminates in O(log E) rounds w.h.p.,
        so hitting this indicates a bug or an adversarial palette.
    """
    edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
    if edges.size and np.any(edges[:, 0] == edges[:, 1]):
        raise ReproError("self-loop edge cannot be colored")
    e_count = edges.shape[0]
    if e_count == 0:
        return DistributedColoringResult(np.empty(0, dtype=np.int64), 0, 0)
    if palette_factor <= 1.0:
        raise ReproError(f"palette_factor must exceed 1, got {palette_factor}")
    rng = as_rng(seed)
    delta = max_degree(edges, n)
    palette = max(1, math.ceil(palette_factor * delta))

    colors = np.full(e_count, -1, dtype=np.int64)
    # used[v] = set of colors fixed at vertex v.
    used: list[set[int]] = [set() for _ in range(n)]
    uncolored = list(range(e_count))
    rounds = 0
    while uncolored:
        rounds += 1
        if rounds > max_rounds:
            raise ReproError(
                f"distributed coloring exceeded {max_rounds} rounds — "
                "palette too small?"
            )
        # Proposal phase.
        proposals: dict[int, int] = {}
        for e in uncolored:
            u, v = edges[e]
            busy = used[u] | used[v]
            # Sample until an available color is drawn; with palette
            # >= 2Δ at least half the palette is free, so this is a
            # couple of draws in expectation.
            available = palette - len(busy)
            if available <= 0:
                raise ReproError(
                    "palette exhausted at an endpoint — palette_factor too small"
                )
            while True:
                c = int(rng.integers(palette))
                if c not in busy:
                    proposals[e] = c
                    break
        # Conflict phase: a proposal survives iff unique at both endpoints.
        claim: dict[tuple[int, int], list[int]] = {}
        for e, c in proposals.items():
            u, v = edges[e]
            claim.setdefault((int(u), c), []).append(e)
            claim.setdefault((int(v), c), []).append(e)
        winners = []
        for e, c in proposals.items():
            u, v = edges[e]
            if len(claim[(int(u), c)]) == 1 and len(claim[(int(v), c)]) == 1:
                winners.append(e)
        for e in winners:
            c = proposals[e]
            colors[e] = c
            u, v = edges[e]
            used[u].add(c)
            used[v].add(c)
        uncolored = [e for e in uncolored if colors[e] < 0]
    return DistributedColoringResult(colors, rounds, palette)
