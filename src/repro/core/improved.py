"""Algorithm 3: "Improved Random Delay" — the O(log m log log log m) one.

The refinement over Algorithm 1 is a *preprocessing* step that reduces
layer width before the random delays are applied:

1. build ``H``, the union of all direction DAGs with every copy distinct,
   and run plain greedy list scheduling on ``m`` identical machines; let
   ``T`` be its makespan.  Define new per-direction levels
   ``L'_{i,j}`` = tasks of direction ``i`` executed at step ``j`` — by
   construction every layer now holds at most ``m`` tasks;
2. draw delays ``X_i ~ Uniform{0..k-1}``;
3. combine: layer ``r`` of ``G''`` is the union of ``L'_{i, r - X_i}``;
4. assign each cell a uniformly random processor;
5. process layers of ``G''`` sequentially (same as Algorithm 1 step 4).

Theorem 3 bounds the expected per-layer time by
``O(mu_t/m + log m * log log log m)``, giving an expected
``O(log m log log log m)``-approximation (Corollary 1).

We also provide the natural compacted variant (``priorities=True``) that
feeds the preprocessed layer numbers to the list scheduler as priorities,
mirroring how Algorithm 2 compacts Algorithm 1.
"""

from __future__ import annotations

import numpy as np

from repro.core.assignment import random_cell_assignment
from repro.core.instance import SweepInstance
from repro.core.layered import schedule_layers_sequentially
from repro.core.list_scheduler import list_schedule, list_schedule_unassigned
from repro.core.random_delay import draw_delays
from repro.core.schedule import Schedule
from repro.util.errors import InvalidScheduleError
from repro.util.rng import as_rng

__all__ = ["improved_random_delay_schedule", "preprocess_levels"]


def preprocess_levels(
    inst: SweepInstance, m: int, engine: str = "auto"
) -> np.ndarray:
    """Step 1 of Algorithm 3: greedy-list levels of width at most ``m``.

    Returns the ``(n_tasks,)`` array of preprocessed per-direction levels
    ``j`` such that task ``(v, i)`` lies in ``L'_{i,j}`` (0-indexed).  The
    greedy schedule respects precedence, so within a direction every edge
    goes to a strictly later step.
    """
    relaxed = list_schedule_unassigned(inst, m, engine=engine)
    return relaxed.start.copy()


def improved_random_delay_schedule(
    inst: SweepInstance,
    m: int,
    seed=None,
    assignment: np.ndarray | None = None,
    delays: np.ndarray | None = None,
    priorities: bool = False,
    preprocessed: np.ndarray | None = None,
    engine: str = "auto",
) -> Schedule:
    """Run Algorithm 3 ("Improved Random Delay").

    Parameters
    ----------
    priorities:
        ``False`` (paper's Algorithm 3): layer-sequential processing.
        ``True``: compact with prioritized list scheduling instead —
        the same idle-time elimination Algorithm 2 applies to Algorithm 1.
    preprocessed:
        Reuse a precomputed :func:`preprocess_levels` result (the
        preprocessing is deterministic, so experiments sweeping seeds can
        share it).
    """
    rng = as_rng(seed)
    if preprocessed is None:
        preprocessed = preprocess_levels(inst, m, engine=engine)
    else:
        preprocessed = np.asarray(preprocessed, dtype=np.int64)
        if preprocessed.shape != (inst.n_tasks,):
            raise InvalidScheduleError(
                f"preprocessed has shape {preprocessed.shape}, "
                f"expected ({inst.n_tasks},)"
            )
    if delays is None:
        delays = draw_delays(inst.k, rng)
    else:
        delays = np.asarray(delays, dtype=np.int64)
    if assignment is None:
        assignment = random_cell_assignment(inst.n_cells, m, rng)

    layers = preprocessed + np.repeat(delays, inst.n_cells)
    meta = {
        "algorithm": "improved_random_delay"
        + ("_priority" if priorities else ""),
        "delays": np.asarray(delays).copy(),
        "preprocess_makespan": int(preprocessed.max()) + 1 if preprocessed.size else 0,
    }
    if priorities:
        return list_schedule(
            inst, m, assignment, priority=layers, meta=meta, engine=engine
        )
    return schedule_layers_sequentially(
        inst, m, layers, assignment, meta=meta, check_layers=False
    )
