"""Prioritized list scheduling (Section 3, "List Scheduling").

Two modes, matching the paper:

* :func:`list_schedule` — tasks are pre-assigned to processors (through a
  cell→processor assignment, which enforces the same-processor
  constraint).  At every step each processor runs its highest-priority
  ready task.  This is the engine behind Algorithm 2 and all the
  prioritized heuristics (level / descendant / DFDS).

* :func:`list_schedule_unassigned` — any processor may run any task
  (classical Graham list scheduling on ``m`` identical machines).  Used as
  the preprocessing step of Algorithm 3 and as the relaxation that yields
  a lower bound on OPT.

Two interchangeable engines implement both modes:

* ``engine="heap"`` — the reference implementation below: one binary heap
  per processor, ``O(N log N + m * makespan)`` for ``N = n*k`` tasks.
* ``engine="bucket"`` — :mod:`repro.core.fast_scheduler`: integer bucket
  keys with a fully-vectorised sorted-pool core on wide instances and
  per-processor monotone bucket queues on narrow ones.  Bit-identical
  output (pinned by ``tests/test_engine_equivalence.py``), 1.5–3x faster
  than the heap on wide wavefronts.
* ``engine="vector"`` — :mod:`repro.core.vector_scheduler`: the
  level-synchronous batch kernel.  Whole ready frontiers are processed as
  sorted packed-code arrays per superstep, with vectorised in-degree
  decrements and an exact endgame drain that batches the final
  promotion-free phase in one shot.  Bit-identical output, fastest on
  very wide shallow instances.
* ``engine="auto"`` (default) — a batched engine when the priorities are
  numeric and NaN-free *and* the instance is wide enough for batching to
  win: vector above an uncapped mean wavefront of
  :data:`repro.core.vector_scheduler._VECTOR_MIN_WIDTH` tasks per level,
  bucket above an effective width of
  :data:`repro.core.fast_scheduler._POOL_MIN_WIDTH` tasks per step, heap
  otherwise.  Narrow instances stay on the heap because C ``heapq`` beats
  any pure-Python batching scheme there; object/tuple keys stay on the
  heap because they need real comparisons.

Priorities are *minimised*; callers wanting "higher is better" negate
their keys.  Ties break deterministically by task id, so results are
reproducible bit-for-bit for a fixed seed — on either engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from heapq import heappush, heappop

import numpy as np

from repro import obs
from repro.core.instance import SweepInstance
from repro.core.schedule import Schedule
from repro.util.errors import InvalidScheduleError

__all__ = [
    "list_schedule",
    "list_schedule_unassigned",
    "UnassignedSchedule",
    "ENGINES",
    "resolve_engine",
]

#: Valid values of the ``engine`` parameter.
ENGINES = ("heap", "bucket", "vector", "auto")


def resolve_engine(engine: str, priority, inst=None, m=None) -> str:
    """Map an ``engine`` request to the engine that will actually run.

    ``"auto"`` picks a batched engine when it can reproduce the heap
    engine exactly (numeric, NaN-free priorities — see
    :func:`repro.core.fast_scheduler.bucket_supports`) *and*, when
    ``inst``/``m`` are given, the instance is wide enough for batching to
    be faster: the vector engine in the very wide shallow regime
    (:func:`repro.core.vector_scheduler.vector_preferred`), the bucket
    engine in the merely wide one
    (:func:`repro.core.fast_scheduler.bucket_preferred`), the heap
    otherwise.  An explicit ``"bucket"`` or ``"vector"`` runs that engine
    on any supported priorities regardless of width, and raises on
    unsupported ones.
    """
    if engine not in ENGINES:
        raise InvalidScheduleError(
            f"unknown engine {engine!r}; choose one of {', '.join(ENGINES)}"
        )
    if engine == "heap":
        return "heap"
    from repro.core.fast_scheduler import bucket_preferred, bucket_supports

    if not bucket_supports(priority):
        if engine in ("bucket", "vector"):
            raise InvalidScheduleError(
                f"{engine} engine requires numeric NaN-free priorities; "
                "use engine='heap' (or 'auto') for non-scalar keys"
            )
        return "heap"
    if engine in ("bucket", "vector"):
        return engine
    if inst is not None and m is not None:
        from repro.core.vector_scheduler import vector_preferred

        if vector_preferred(inst, m, priority):
            return "vector"
        return "bucket" if bucket_preferred(inst, m, priority) else "heap"
    return "bucket"


def list_schedule(
    inst: SweepInstance,
    m: int,
    assignment: np.ndarray,
    priority: np.ndarray | None = None,
    meta: dict | None = None,
    engine: str = "auto",
) -> Schedule:
    """Prioritized list scheduling with a fixed cell→processor assignment.

    Parameters
    ----------
    inst:
        The sweep instance.
    m:
        Number of processors.
    assignment:
        ``(n_cells,)`` array mapping cells to processors in ``[0, m)``.
    priority:
        ``(n_tasks,)`` array of priorities, **smaller runs first**.  When
        ``None`` all tasks share one priority and ties break by task id.
    meta:
        Provenance stored on the returned :class:`Schedule`.
    engine:
        ``"heap"``, ``"bucket"``, or ``"auto"`` (see module docs).  Both
        engines produce bit-identical schedules.

    Notes
    -----
    The produced schedule has no avoidable idle time: a processor is idle
    at a step only if none of its assigned tasks is ready.
    """
    assignment = np.asarray(assignment, dtype=np.int64)
    if assignment.shape != (inst.n_cells,):
        raise InvalidScheduleError(
            f"assignment has shape {assignment.shape}, expected ({inst.n_cells},)"
        )
    if inst.n_cells and (assignment.min() < 0 or assignment.max() >= m):
        raise InvalidScheduleError(
            f"assignment values must lie in [0, {m})"
        )
    n_tasks = inst.n_tasks
    if priority is not None:
        priority = np.asarray(priority)
        if priority.shape != (n_tasks,):
            raise InvalidScheduleError(
                f"priority has shape {priority.shape}, expected ({n_tasks},)"
            )
    resolved = resolve_engine(engine, priority, inst, m)
    if resolved == "bucket":
        from repro.core.fast_scheduler import bucket_list_schedule

        return bucket_list_schedule(inst, m, assignment, priority, meta=meta)
    if resolved == "vector":
        from repro.core.vector_scheduler import vector_list_schedule

        return vector_list_schedule(inst, m, assignment, priority, meta=meta)
    with obs.span(
        "schedule.heap",
        cat="scheduler",
        args_fn=lambda: {"n_tasks": n_tasks, "m": m},
    ):
        union = inst.union_dag()
        off_l, tgt_l = union.successor_lists()
        indeg = union.indegree_list()
        proc_of_task = np.tile(assignment, inst.k).tolist()
        if priority is None:
            prio = [0] * n_tasks
        else:
            prio = priority.tolist()

        heaps: list[list] = [[] for _ in range(m)]
        nonempty: set[int] = set()
        for tid in range(n_tasks):
            if indeg[tid] == 0:
                p = proc_of_task[tid]
                heappush(heaps[p], (prio[tid], tid))
                nonempty.add(p)

        start = np.full(n_tasks, -1, dtype=np.int64)
        remaining = n_tasks
        t = 0
        while remaining:
            if not nonempty:
                raise InvalidScheduleError(
                    "no ready task but tasks remain — instance has a cycle"
                )
            executed = []
            for p in list(nonempty):
                heap = heaps[p]
                _, tid = heappop(heap)
                start[tid] = t
                executed.append(tid)
                if not heap:
                    nonempty.discard(p)
            remaining -= len(executed)
            for tid in executed:
                for s in tgt_l[off_l[tid] : off_l[tid + 1]]:
                    indeg[s] -= 1
                    if indeg[s] == 0:
                        p = proc_of_task[s]
                        heappush(heaps[p], (prio[s], s))
                        nonempty.add(p)
            t += 1
    # Heap-op counts are exact functions of the run (every task is pushed
    # and popped exactly once), so the metrics cost nothing in the loop.
    obs.inc("scheduler.heap.runs")
    obs.inc("scheduler.heap.pushes", n_tasks)
    obs.inc("scheduler.heap.pops", n_tasks)
    obs.inc("scheduler.heap.steps", t)

    return Schedule(
        instance=inst,
        m=m,
        start=start,
        assignment=np.asarray(assignment, dtype=np.int64),
        meta=dict(meta or {}),
    )


@dataclass
class UnassignedSchedule:
    """Result of Graham list scheduling on ``m`` identical machines.

    This relaxes the same-processor constraint, so it is *not* a feasible
    sweep schedule; it is the preprocessing artifact of Algorithm 3 and a
    lower-bound witness (its makespan is at most ``(2 - 1/m) * OPT_relaxed``
    and ``OPT_relaxed <= OPT``).
    """

    m: int
    start: np.ndarray  # (n_tasks,) step each task ran at
    machine: np.ndarray  # (n_tasks,) machine each task ran on

    @property
    def makespan(self) -> int:
        if self.start.size == 0:
            return 0
        return int(self.start.max()) + 1


def list_schedule_unassigned(
    inst: SweepInstance,
    m: int,
    priority: np.ndarray | None = None,
    engine: str = "auto",
) -> UnassignedSchedule:
    """Greedy (Graham) list scheduling of the union DAG, any-task-anywhere.

    At every step the ``m`` machines grab the ``m`` smallest-priority ready
    tasks.  Every layer of the resulting step structure has at most ``m``
    tasks — exactly the width-reduction Algorithm 3's preprocessing needs.
    ``engine`` selects the heap or bucket implementation (bit-identical).
    """
    if m <= 0:
        raise InvalidScheduleError(f"processor count must be positive, got {m}")
    n_tasks = inst.n_tasks
    if priority is not None:
        priority = np.asarray(priority)
        if priority.shape != (n_tasks,):
            raise InvalidScheduleError(
                f"priority has shape {priority.shape}, expected ({n_tasks},)"
            )
    resolved = resolve_engine(engine, priority, inst, m)
    if resolved == "bucket":
        from repro.core.fast_scheduler import bucket_list_schedule_unassigned

        return bucket_list_schedule_unassigned(inst, m, priority)
    if resolved == "vector":
        from repro.core.vector_scheduler import vector_list_schedule_unassigned

        return vector_list_schedule_unassigned(inst, m, priority)
    with obs.span(
        "schedule.heap_unassigned",
        cat="scheduler",
        args_fn=lambda: {"n_tasks": n_tasks, "m": m},
    ):
        union = inst.union_dag()
        off_l, tgt_l = union.successor_lists()
        indeg = union.indegree_list()
        if priority is None:
            prio = [0] * n_tasks
        else:
            prio = priority.tolist()

        heap: list = []
        for tid in range(n_tasks):
            if indeg[tid] == 0:
                heappush(heap, (prio[tid], tid))

        start = np.full(n_tasks, -1, dtype=np.int64)
        machine = np.full(n_tasks, -1, dtype=np.int64)
        remaining = n_tasks
        t = 0
        while remaining:
            if not heap:
                raise InvalidScheduleError(
                    "no ready task but tasks remain — instance has a cycle"
                )
            executed = []
            mach = 0
            while heap and mach < m:
                _, tid = heappop(heap)
                start[tid] = t
                machine[tid] = mach
                executed.append(tid)
                mach += 1
            remaining -= len(executed)
            for tid in executed:
                for s in tgt_l[off_l[tid] : off_l[tid + 1]]:
                    indeg[s] -= 1
                    if indeg[s] == 0:
                        heappush(heap, (prio[s], s))
            t += 1
    obs.inc("scheduler.heap.runs")
    obs.inc("scheduler.heap.pushes", n_tasks)
    obs.inc("scheduler.heap.pops", n_tasks)
    obs.inc("scheduler.heap.steps", t)

    return UnassignedSchedule(m=m, start=start, machine=machine)
