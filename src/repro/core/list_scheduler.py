"""Prioritized list scheduling (Section 3, "List Scheduling").

Two modes, matching the paper:

* :func:`list_schedule` — tasks are pre-assigned to processors (through a
  cell→processor assignment, which enforces the same-processor
  constraint).  At every step each processor runs its highest-priority
  ready task.  This is the engine behind Algorithm 2 and all the
  prioritized heuristics (level / descendant / DFDS).

* :func:`list_schedule_unassigned` — any processor may run any task
  (classical Graham list scheduling on ``m`` identical machines).  Used as
  the preprocessing step of Algorithm 3 and as the relaxation that yields
  a lower bound on OPT.

Both run in ``O(N log N + m * makespan)`` for ``N = n*k`` tasks using one
binary heap per processor.  Priorities are *minimised*; callers wanting
"higher is better" negate their keys.  Ties break deterministically by
task id, so results are reproducible bit-for-bit for a fixed seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from heapq import heappush, heappop

import numpy as np

from repro.core.instance import SweepInstance
from repro.core.schedule import Schedule
from repro.util.errors import InvalidScheduleError

__all__ = ["list_schedule", "list_schedule_unassigned", "UnassignedSchedule"]


def list_schedule(
    inst: SweepInstance,
    m: int,
    assignment: np.ndarray,
    priority: np.ndarray | None = None,
    meta: dict | None = None,
) -> Schedule:
    """Prioritized list scheduling with a fixed cell→processor assignment.

    Parameters
    ----------
    inst:
        The sweep instance.
    m:
        Number of processors.
    assignment:
        ``(n_cells,)`` array mapping cells to processors in ``[0, m)``.
    priority:
        ``(n_tasks,)`` array of priorities, **smaller runs first**.  When
        ``None`` all tasks share one priority and ties break by task id.
    meta:
        Provenance stored on the returned :class:`Schedule`.

    Notes
    -----
    The produced schedule has no avoidable idle time: a processor is idle
    at a step only if none of its assigned tasks is ready.
    """
    assignment = np.asarray(assignment)
    if assignment.shape != (inst.n_cells,):
        raise InvalidScheduleError(
            f"assignment has shape {assignment.shape}, expected ({inst.n_cells},)"
        )
    if inst.n_cells and (assignment.min() < 0 or assignment.max() >= m):
        raise InvalidScheduleError(
            f"assignment values must lie in [0, {m})"
        )
    n_tasks = inst.n_tasks
    union = inst.union_dag()
    off, tgt = union.successor_csr()
    indeg = union.indegree().tolist()
    off_l = off.tolist()
    tgt_l = tgt.tolist()
    proc_of_task = np.tile(assignment, inst.k).tolist()
    if priority is None:
        prio = [0] * n_tasks
    else:
        priority = np.asarray(priority)
        if priority.shape != (n_tasks,):
            raise InvalidScheduleError(
                f"priority has shape {priority.shape}, expected ({n_tasks},)"
            )
        prio = priority.tolist()

    heaps: list[list] = [[] for _ in range(m)]
    nonempty: set[int] = set()
    for tid in range(n_tasks):
        if indeg[tid] == 0:
            p = proc_of_task[tid]
            heappush(heaps[p], (prio[tid], tid))
            nonempty.add(p)

    start = np.full(n_tasks, -1, dtype=np.int64)
    remaining = n_tasks
    t = 0
    while remaining:
        if not nonempty:
            raise InvalidScheduleError(
                "no ready task but tasks remain — instance has a cycle"
            )
        executed = []
        for p in list(nonempty):
            heap = heaps[p]
            _, tid = heappop(heap)
            start[tid] = t
            executed.append(tid)
            if not heap:
                nonempty.discard(p)
        remaining -= len(executed)
        for tid in executed:
            for s in tgt_l[off_l[tid] : off_l[tid + 1]]:
                indeg[s] -= 1
                if indeg[s] == 0:
                    p = proc_of_task[s]
                    heappush(heaps[p], (prio[s], s))
                    nonempty.add(p)
        t += 1

    return Schedule(
        instance=inst,
        m=m,
        start=start,
        assignment=np.asarray(assignment, dtype=np.int64),
        meta=dict(meta or {}),
    )


@dataclass
class UnassignedSchedule:
    """Result of Graham list scheduling on ``m`` identical machines.

    This relaxes the same-processor constraint, so it is *not* a feasible
    sweep schedule; it is the preprocessing artifact of Algorithm 3 and a
    lower-bound witness (its makespan is at most ``(2 - 1/m) * OPT_relaxed``
    and ``OPT_relaxed <= OPT``).
    """

    m: int
    start: np.ndarray  # (n_tasks,) step each task ran at
    machine: np.ndarray  # (n_tasks,) machine each task ran on

    @property
    def makespan(self) -> int:
        if self.start.size == 0:
            return 0
        return int(self.start.max()) + 1


def list_schedule_unassigned(
    inst: SweepInstance,
    m: int,
    priority: np.ndarray | None = None,
) -> UnassignedSchedule:
    """Greedy (Graham) list scheduling of the union DAG, any-task-anywhere.

    At every step the ``m`` machines grab the ``m`` smallest-priority ready
    tasks.  Every layer of the resulting step structure has at most ``m``
    tasks — exactly the width-reduction Algorithm 3's preprocessing needs.
    """
    if m <= 0:
        raise InvalidScheduleError(f"processor count must be positive, got {m}")
    n_tasks = inst.n_tasks
    union = inst.union_dag()
    off, tgt = union.successor_csr()
    indeg = union.indegree().tolist()
    off_l = off.tolist()
    tgt_l = tgt.tolist()
    if priority is None:
        prio = [0] * n_tasks
    else:
        prio = np.asarray(priority).tolist()

    heap: list = []
    for tid in range(n_tasks):
        if indeg[tid] == 0:
            heappush(heap, (prio[tid], tid))

    start = np.full(n_tasks, -1, dtype=np.int64)
    machine = np.full(n_tasks, -1, dtype=np.int64)
    remaining = n_tasks
    t = 0
    while remaining:
        if not heap:
            raise InvalidScheduleError(
                "no ready task but tasks remain — instance has a cycle"
            )
        executed = []
        mach = 0
        while heap and mach < m:
            _, tid = heappop(heap)
            start[tid] = t
            machine[tid] = mach
            executed.append(tid)
            mach += 1
        remaining -= len(executed)
        for tid in executed:
            for s in tgt_l[off_l[tid] : off_l[tid + 1]]:
                indeg[s] -= 1
                if indeg[s] == 0:
                    heappush(heap, (prio[s], s))
        t += 1

    return UnassignedSchedule(m=m, start=start, machine=machine)
