"""Exact optimal sweep schedules for tiny instances (test oracle).

Sweep scheduling is NP-complete, but tiny instances can be solved
exactly, giving the test-suite a ground-truth OPT to verify against:
every lower bound must sit at or below it, every algorithm's makespan at
or above it, and approximation claims can be checked literally.

Method: enumerate cell→processor assignments up to processor renaming
(set partitions of cells into at most ``m`` groups), and for each
assignment run memoized branch-and-bound over schedule prefixes — at
each step every processor runs one of its ready tasks or idles, so a
state is just the set of completed tasks.  Complexity is wildly
exponential; :func:`optimal_makespan` refuses instances beyond a small
budget rather than hanging.
"""

from __future__ import annotations

from functools import lru_cache
from itertools import product
from typing import Iterator

import numpy as np

from repro.core.instance import SweepInstance
from repro.core.lower_bounds import combined_lower_bound
from repro.util.errors import ReproError

__all__ = ["optimal_makespan", "optimal_makespan_for_assignment"]

#: Hard size cap: states are bitmask-of-tasks, so 2^n_tasks must be tiny.
MAX_TASKS = 16
MAX_CELLS = 8


def optimal_makespan_for_assignment(
    inst: SweepInstance, m: int, assignment: np.ndarray
) -> int:
    """Exact minimum makespan for one fixed cell→processor assignment."""
    n_tasks = inst.n_tasks
    if n_tasks > MAX_TASKS:
        raise ReproError(
            f"instance has {n_tasks} tasks; the exact solver caps at {MAX_TASKS}"
        )
    if n_tasks == 0:
        return 0
    union = inst.union_dag()
    # Predecessor masks: task t is ready once all bits of pred_mask[t] done.
    pred_mask = [0] * n_tasks
    for u, v in union.edges.tolist():
        pred_mask[v] |= 1 << u
    proc_of = np.tile(np.asarray(assignment, dtype=np.int64), inst.k).tolist()
    all_done = (1 << n_tasks) - 1
    tasks_by_proc: list[list[int]] = [[] for _ in range(m)]
    for t in range(n_tasks):
        tasks_by_proc[proc_of[t]].append(t)

    @lru_cache(maxsize=None)
    def best(done: int) -> int:
        if done == all_done:
            return 0
        # Ready tasks per processor.  A processor with ready work always
        # runs one of them: for unit tasks and a fixed assignment, an
        # exchange argument shows some work-conserving schedule is
        # optimal (moving a ready task into an idle slot on its own
        # processor never delays anything), so idling branches are
        # never needed.
        choices: list[list[int | None]] = []
        for p in range(m):
            ready = [
                t
                for t in tasks_by_proc[p]
                if not (done >> t) & 1 and (pred_mask[t] & done) == pred_mask[t]
            ]
            choices.append(ready if ready else [None])
        result = None
        for combo in product(*choices):
            step = 0
            new_done = done
            for t in combo:
                if t is not None:
                    new_done |= 1 << t
                    step = 1
            if step == 0:
                continue  # nobody ran: pointless step
            sub = 1 + best(new_done)
            if result is None or sub < result:
                result = sub
        assert result is not None, "live state with no runnable task"
        return result

    return best(0)


def optimal_makespan(inst: SweepInstance, m: int) -> int:
    """Exact OPT over all assignments (up to processor renaming).

    Enumerates set partitions of the cells into at most ``m`` nonempty
    groups via restricted growth strings, then solves each assignment.
    Starts from the combined lower bound and returns as soon as a
    matching schedule is found.
    """
    if inst.n_cells > MAX_CELLS:
        raise ReproError(
            f"instance has {inst.n_cells} cells; the exact solver caps at {MAX_CELLS}"
        )
    if inst.n_cells == 0:
        return 0
    lb = combined_lower_bound(inst, m)
    best_val = None
    for assignment in _set_partitions(inst.n_cells, m):
        val = optimal_makespan_for_assignment(inst, m, assignment)
        if best_val is None or val < best_val:
            best_val = val
            if best_val <= lb:
                break  # cannot do better than a valid lower bound
    return int(best_val)


def _set_partitions(n: int, max_groups: int) -> Iterator[np.ndarray]:
    """Yield all assignments of n items into <= max_groups unlabeled
    groups, as restricted growth strings (item 0 always in group 0)."""
    assignment = np.zeros(n, dtype=np.int64)

    def rec(i: int, used: int) -> Iterator[np.ndarray]:
        if i == n:
            yield assignment.copy()
            return
        for g in range(min(used + 1, max_groups)):
            assignment[i] = g
            yield from rec(i + 1, max(used, g + 1))

    yield from rec(1, 1) if n > 1 else iter([assignment.copy()])
