"""Event-driven scheduling with communication latency and task costs.

The paper's provable results assume unit tasks and zero communication
cost (p=1, c=0); Section 5.1 sketches schedules that trade processing
against communication.  This module supplies the machinery to *measure*
that trade-off: a discrete-event list scheduler where

* a task on processor P becomes *ready* only when every predecessor has
  finished **and its data has arrived** — instantaneous from P itself,
  after ``comm_latency`` steps from another processor;
* tasks may have non-uniform integer costs (the paper's uniform ``p``
  generalised).

With ``comm_latency=0`` and unit costs this reduces exactly to the
standard engine (asserted in tests).  As latency grows, cross-processor
edges hurt, so block assignments (fewer cut edges) overtake per-cell
random assignments — the crossover benchmark E16 quantifies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from heapq import heappush, heappop

import numpy as np

from repro.core.instance import SweepInstance
from repro.util.errors import InvalidScheduleError

__all__ = ["TimedSchedule", "latency_list_schedule", "validate_timed_schedule"]


@dataclass
class TimedSchedule:
    """Schedule with explicit durations and a communication latency.

    ``start[tid]`` and ``duration[tid]`` bound each task's execution
    interval ``[start, start + duration)``; ``comm_latency`` is the extra
    delay a dependency crossing processors incurs.
    """

    instance: SweepInstance
    m: int
    start: np.ndarray
    duration: np.ndarray
    assignment: np.ndarray
    comm_latency: int = 0
    meta: dict = field(default_factory=dict)

    @property
    def makespan(self) -> int:
        if self.start.size == 0:
            return 0
        return int((self.start + self.duration).max())

    def task_proc(self) -> np.ndarray:
        return np.tile(self.assignment, self.instance.k)

    def validate(self) -> None:
        validate_timed_schedule(self)


def validate_timed_schedule(s: TimedSchedule) -> None:
    """Independent feasibility check for latency/duration schedules.

    Verifies shapes, positive durations, per-processor interval
    disjointness, and latency-aware precedence: for an edge ``u -> v``,
    ``start[v] >= finish[u]`` on the same processor and
    ``start[v] >= finish[u] + comm_latency`` across processors.
    """
    inst = s.instance
    n_tasks = inst.n_tasks
    if s.start.shape != (n_tasks,) or s.duration.shape != (n_tasks,):
        raise InvalidScheduleError("start/duration must have one entry per task")
    if s.assignment.shape != (inst.n_cells,):
        raise InvalidScheduleError("assignment must have one entry per cell")
    if n_tasks == 0:
        return
    if s.start.min() < 0:
        raise InvalidScheduleError("unscheduled tasks present")
    if s.duration.min() <= 0:
        raise InvalidScheduleError("durations must be positive")
    if s.comm_latency < 0:
        raise InvalidScheduleError("communication latency must be nonnegative")

    proc = s.task_proc()
    finish = s.start + s.duration

    # Interval disjointness per processor: sort by (proc, start) and
    # compare neighbors.
    order = np.lexsort((s.start, proc))
    p_sorted = proc[order]
    start_sorted = s.start[order]
    finish_sorted = finish[order]
    same_proc = p_sorted[1:] == p_sorted[:-1]
    overlap = same_proc & (start_sorted[1:] < finish_sorted[:-1])
    if overlap.any():
        j = int(np.flatnonzero(overlap)[0])
        raise InvalidScheduleError(
            f"tasks {order[j]} and {order[j + 1]} overlap on processor "
            f"{p_sorted[j]}"
        )

    union = inst.union_dag()
    if union.num_edges:
        src = union.edges[:, 0]
        dst = union.edges[:, 1]
        needed = finish[src] + np.where(
            proc[src] == proc[dst], 0, s.comm_latency
        )
        bad = s.start[dst] < needed
        if bad.any():
            j = int(np.flatnonzero(bad)[0])
            raise InvalidScheduleError(
                f"edge {src[j]} -> {dst[j]}: start {s.start[dst[j]]} < "
                f"required {needed[j]} (latency {s.comm_latency})"
            )


def latency_list_schedule(
    inst: SweepInstance,
    m: int,
    assignment: np.ndarray,
    priority: np.ndarray | None = None,
    task_cost: np.ndarray | None = None,
    comm_latency: int = 0,
    meta: dict | None = None,
) -> TimedSchedule:
    """Discrete-event prioritized list scheduling under latency + costs.

    Work-conserving per processor: whenever a processor is idle and has a
    *released* task (all predecessor data arrived), it runs its best
    priority among them.  Deterministic: ties break by task id, and the
    event queue orders by (time, processor).
    """
    assignment = np.asarray(assignment, dtype=np.int64)
    if assignment.shape != (inst.n_cells,):
        raise InvalidScheduleError("assignment must have one entry per cell")
    if inst.n_cells and (assignment.min() < 0 or assignment.max() >= m):
        raise InvalidScheduleError(f"assignment values must lie in [0, {m})")
    if comm_latency < 0:
        raise InvalidScheduleError("communication latency must be nonnegative")
    n_tasks = inst.n_tasks
    if task_cost is None:
        cost = [1] * n_tasks
    else:
        task_cost = np.asarray(task_cost)
        if task_cost.shape != (n_tasks,):
            raise InvalidScheduleError("task_cost must have one entry per task")
        if n_tasks and task_cost.min() <= 0:
            raise InvalidScheduleError("task costs must be positive")
        cost = task_cost.tolist()
    prio = ([0] * n_tasks if priority is None else np.asarray(priority).tolist())

    union = inst.union_dag()
    off, tgt = union.successor_csr()
    off_l, tgt_l = off.tolist(), tgt.tolist()
    pending = union.indegree().tolist()
    proc_of = np.tile(assignment, inst.k).tolist()
    release = [0] * n_tasks

    # Per-processor structures: a future heap keyed by release time and a
    # ready heap keyed by priority.
    future: list[list] = [[] for _ in range(m)]
    ready: list[list] = [[] for _ in range(m)]
    proc_free = [0] * m
    idle = [True] * m  # processor not currently running a task
    events: list = []  # (time, proc) wake-ups

    for tid in range(n_tasks):
        if pending[tid] == 0:
            p = proc_of[tid]
            heappush(ready[p], (prio[tid], tid))
    for p in range(m):
        if ready[p]:
            heappush(events, (0, p))

    start = np.full(n_tasks, -1, dtype=np.int64)
    done = 0
    guard = 0
    # Every edge pushes at most one release wake, every task one finish
    # wake, plus slack for idle re-arms.
    max_events = 4 * (n_tasks + union.num_edges) + 8 * m + 64
    while done < n_tasks:
        if not events:
            raise InvalidScheduleError(
                "deadlock: tasks remain but no events pending — cyclic instance?"
            )
        guard += 1
        if guard > max_events:
            raise InvalidScheduleError("event budget exceeded — internal error")
        now, p = heappop(events)
        # Move matured future tasks into the ready heap.
        fut = future[p]
        while fut and fut[0][0] <= now:
            _, pr, tid = heappop(fut)
            heappush(ready[p], (pr, tid))
        if not idle[p] and proc_free[p] > now:
            continue  # stale wake-up: still busy
        idle[p] = True
        if not ready[p]:
            if fut:
                heappush(events, (max(fut[0][0], proc_free[p]), p))
            continue
        if proc_free[p] > now:
            heappush(events, (proc_free[p], p))
            continue
        _, tid = heappop(ready[p])
        start[tid] = now
        fin = now + cost[tid]
        proc_free[p] = fin
        idle[p] = False
        done += 1
        # Schedule this processor's next decision point.
        heappush(events, (fin, p))
        # Release successors.
        for s_tid in tgt_l[off_l[tid] : off_l[tid + 1]]:
            sp = proc_of[s_tid]
            arrival = fin if sp == p else fin + comm_latency
            if arrival > release[s_tid]:
                release[s_tid] = arrival
            pending[s_tid] -= 1
            if pending[s_tid] == 0:
                heappush(future[sp], (release[s_tid], prio[s_tid], s_tid))
                heappush(events, (max(release[s_tid], proc_free[sp]), sp))

    duration = np.asarray(cost, dtype=np.int64)
    return TimedSchedule(
        instance=inst,
        m=m,
        start=start,
        duration=duration,
        assignment=np.asarray(assignment, dtype=np.int64),
        comm_latency=comm_latency,
        meta=dict(meta or {}),
    )
