"""Compressed-sparse-row DAG used throughout the scheduler.

Every per-direction dependency graph :math:`G_i` of the sweep-scheduling
problem is stored as a :class:`Dag`: a fixed vertex set ``0..n-1`` plus a
directed edge array.  Adjacency is kept in CSR form (offsets + targets) so
the hot loops of the schedulers — indegree updates, level construction,
longest-path passes — are numpy-vectorised rather than per-edge Python.

Terminology follows the paper:

* *levels* (a.k.a. layers): ``L_j`` is the set of vertices with no
  predecessors once ``L_1 .. L_{j-1}`` are removed (Section 3).  We store
  them 0-indexed.
* a *root* (source) has indegree 0; a *leaf* (sink) has outdegree 0.
* the *b-level* of a vertex is the number of vertices on the longest path
  from it to a leaf (counting both endpoints), as used by DFDS [Pautz 02].
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:  # for annotations only; networkx stays a lazy import
    import networkx as nx

import numpy as np

from repro import obs
from repro.util.errors import InvalidInstanceError

__all__ = ["Dag", "csr_from_edges", "batch_csr_from_edges", "batch_levels"]


def csr_from_edges(
    n: int, src: np.ndarray, dst: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Build a CSR adjacency (offsets, targets) from parallel edge arrays.

    Returns ``(offsets, targets)`` where the successors of ``v`` are
    ``targets[offsets[v]:offsets[v+1]]``.  Runs in O(E log E) (one argsort).
    """
    src = np.asarray(src, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    if src.shape != dst.shape:
        raise InvalidInstanceError(
            f"src and dst must have matching shapes; got {src.shape} and {dst.shape}"
        )
    order = np.argsort(src, kind="stable")
    targets = np.ascontiguousarray(dst[order])
    counts = np.bincount(src, minlength=n)
    offsets = np.empty(n + 1, dtype=np.int64)
    offsets[0] = 0
    np.cumsum(counts, out=offsets[1:])
    return offsets, targets


def batch_csr_from_edges(
    n: int, edges: np.ndarray, counts: np.ndarray
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Successor CSR for ``k`` same-vertex-set DAGs in one stable argsort.

    ``edges`` is the ``(sum(counts), 2)`` concatenation of the per-DAG
    edge arrays (each on vertices ``0..n-1``, in DAG order) and
    ``counts[i]`` is DAG ``i``'s edge count.  One stable argsort over the
    union keys ``i * n + src`` sorts every DAG's edges by source at once;
    within a DAG the relative order of equal sources matches that DAG's
    own stable sort, so each returned ``(offsets, targets)`` pair is
    bit-identical to :func:`csr_from_edges` on that DAG's edges alone —
    while every ``targets`` array is a contiguous slice of one shared
    buffer (the batched construction path's memory layout).
    """
    counts = np.asarray(counts, dtype=np.int64)
    k = counts.shape[0]
    edges = np.asarray(edges, dtype=np.int64).reshape(-1, 2)
    if int(counts.sum()) != edges.shape[0]:
        raise InvalidInstanceError(
            f"counts sum to {int(counts.sum())} but edges has "
            f"{edges.shape[0]} rows"
        )
    dag_of_edge = np.repeat(np.arange(k, dtype=np.int64), counts)
    keys = dag_of_edge * np.int64(n) + edges[:, 0]
    order = np.argsort(keys, kind="stable")
    targets_all = np.ascontiguousarray(edges[:, 1][order])
    per_vertex = np.bincount(keys, minlength=k * n).reshape(k, n)
    edge_starts = np.zeros(k + 1, dtype=np.int64)
    np.cumsum(counts, out=edge_starts[1:])
    out = []
    for i in range(k):
        offsets = np.empty(n + 1, dtype=np.int64)
        offsets[0] = 0
        np.cumsum(per_vertex[i], out=offsets[1:])
        out.append(
            (offsets, targets_all[edge_starts[i] : edge_starts[i + 1]])
        )
    return out


def batch_levels(dags: list["Dag"]) -> np.ndarray:
    """Level structure of ``k`` same-size DAGs in one frontier sweep.

    Runs the level-peeling loop of :meth:`Dag._compute_levels` once over
    the block-diagonal union of all DAGs (task ids ``i * n + v``) instead
    of once per DAG: the union frontier advances every direction's
    wavefront simultaneously, so the Python-loop iteration count drops
    from ``sum_i depth_i`` to ``max_i depth_i``.  Levels are canonical
    (determined by graph structure alone) and each frontier chunk is
    sorted ascending, so the per-DAG ``level_of`` / ``num_levels`` /
    ``topological_order`` caches installed here are bit-identical to what
    each DAG would compute for itself; ``level_of`` views share one flat
    buffer, which is returned (it doubles as
    :meth:`repro.core.instance.SweepInstance.task_levels`).  Cyclic DAGs
    (possible only with ``validate=False`` construction) keep the ``-1``
    sentinel and ``num_levels == -1``, exactly like the per-DAG pass.
    """
    if not dags:
        return np.empty(0, dtype=np.int64)
    n = dags[0].n
    k = len(dags)
    for g in dags:
        if g.n != n:
            raise InvalidInstanceError(
                f"batch_levels needs same-size DAGs; got {g.n} and {n}"
            )
    level = np.full(k * n, -1, dtype=np.int64)
    if n == 0:
        for g in dags:
            g._level_of = level[:0]
            g._num_levels = 0
            g._topo_order = np.empty(0, dtype=np.int64)
        return level
    # Flat union CSR in task-id coordinates, assembled from the per-DAG
    # successor CSRs (already shared-buffer slices on the batched path).
    off_u = np.empty(k * n + 1, dtype=np.int64)
    off_u[0] = 0
    tgt_parts = []
    indeg_parts = []
    base = np.int64(0)
    for i, g in enumerate(dags):
        off, tgt = g.successor_csr()
        off_u[i * n + 1 : (i + 1) * n + 1] = off[1:] + base
        tgt_parts.append(tgt + np.int64(i * n))
        indeg_parts.append(g.indegree())
        base += np.int64(tgt.shape[0])
    tgt_u = (
        np.concatenate(tgt_parts) if tgt_parts else np.empty(0, dtype=np.int64)
    )
    indeg = np.concatenate(indeg_parts)
    frontier = np.flatnonzero(indeg == 0)
    depth = 0
    while frontier.size:
        level[frontier] = depth
        succ = _gather_csr(off_u, tgt_u, frontier)
        if succ.size:
            frontier = _decrement_indegrees(indeg, succ)
        else:
            frontier = np.empty(0, dtype=np.int64)
        depth += 1
    for i, g in enumerate(dags):
        lev = level[i * n : (i + 1) * n]
        g._level_of = lev
        if lev.min(initial=0) < 0:
            g._num_levels = -1
        else:
            g._num_levels = int(lev.max()) + 1
            g._topo_order = np.argsort(lev, kind="stable")
    return level


class Dag:
    """Immutable directed acyclic graph on vertices ``0..n-1``.

    Parameters
    ----------
    n:
        Number of vertices.
    edges:
        ``(E, 2)`` integer array of ``(src, dst)`` pairs.  Parallel edges
        are allowed (they are harmless for scheduling) but self-loops are
        rejected.
    validate:
        When true (default), check vertex ranges and acyclicity eagerly.
        Pass ``False`` only for internally-constructed graphs that are
        already known to be valid.
    """

    __slots__ = (
        "n",
        "edges",
        "_succ_off",
        "_succ_tgt",
        "_pred_off",
        "_pred_tgt",
        "_indegree",
        "_outdegree",
        "_level_of",
        "_num_levels",
        "_topo_order",
        "_b_level",
        "_t_level",
        "_desc_exact",
        "_desc_approx",
        "_succ_lists",
        "_indeg_list",
        "_padded",
        "_adopted",
    )

    def __init__(self, n: int, edges: np.ndarray, validate: bool = True):
        if n < 0:
            raise InvalidInstanceError(f"vertex count must be >= 0, got {n}")
        edges = np.asarray(edges, dtype=np.int64)
        if edges.size == 0:
            edges = edges.reshape(0, 2)
        if edges.ndim != 2 or edges.shape[1] != 2:
            raise InvalidInstanceError(
                f"edges must be an (E, 2) array, got shape {edges.shape}"
            )
        self.n = int(n)
        self.edges = edges
        self._succ_off = None
        self._succ_tgt = None
        self._pred_off = None
        self._pred_tgt = None
        self._indegree = None
        self._outdegree = None
        self._level_of = None
        self._num_levels = None
        self._topo_order = None
        self._b_level = None
        self._t_level = None
        self._desc_exact = None
        self._desc_approx = None
        self._succ_lists = None
        self._indeg_list = None
        self._padded = None
        self._adopted = False
        if validate:
            self._validate()

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_edge_list(cls, n: int, pairs, validate: bool = True) -> "Dag":
        """Build from an iterable of ``(u, v)`` tuples."""
        arr = np.array(list(pairs), dtype=np.int64).reshape(-1, 2)
        return cls(n, arr, validate=validate)

    @classmethod
    def from_networkx(cls, g) -> "Dag":
        """Build from a :class:`networkx.DiGraph` with integer nodes 0..n-1."""
        n = g.number_of_nodes()
        nodes = sorted(g.nodes())
        if nodes != list(range(n)):
            raise InvalidInstanceError(
                "networkx graph must have nodes exactly 0..n-1; "
                f"got {nodes[:5]}..."
            )
        return cls.from_edge_list(n, g.edges())

    def to_networkx(self) -> "nx.DiGraph":
        """Convert to a :class:`networkx.DiGraph` (for tests/visualisation)."""
        import networkx as nx

        g = nx.DiGraph()
        g.add_nodes_from(range(self.n))
        g.add_edges_from(map(tuple, self.edges.tolist()))
        return g

    def _validate(self) -> None:
        if self.edges.size:
            lo = self.edges.min()
            hi = self.edges.max()
            if lo < 0 or hi >= self.n:
                raise InvalidInstanceError(
                    f"edge endpoints must lie in [0, {self.n}); "
                    f"found range [{lo}, {hi}]"
                )
            if np.any(self.edges[:, 0] == self.edges[:, 1]):
                raise InvalidInstanceError("self-loops are not allowed")
        # Acyclicity: level assignment visits every vertex iff acyclic.
        if self.level_of().min(initial=0) < 0:
            raise InvalidInstanceError("graph contains a cycle")

    # ------------------------------------------------------------------
    # adjacency
    # ------------------------------------------------------------------

    @property
    def num_edges(self) -> int:
        return int(self.edges.shape[0])

    def _note_build(self) -> None:
        """Record a cache build on a DAG that adopted a shared snapshot.

        A worker that attached to the shared-memory instance plane should
        find every cache its workload needs already materialised; each
        build it performs anyway is a rebuild the warm-up failed to ship.
        ``tests/test_parallel_rss.py`` pins this counter at zero for the
        vector-engine grid.
        """
        if self._adopted:
            obs.inc("dag.cache.rebuild")

    def _build_succ(self) -> None:
        if self._succ_off is None:
            self._note_build()
            self._succ_off, self._succ_tgt = csr_from_edges(
                self.n, self.edges[:, 0], self.edges[:, 1]
            )

    def _build_pred(self) -> None:
        if self._pred_off is None:
            self._note_build()
            self._pred_off, self._pred_tgt = csr_from_edges(
                self.n, self.edges[:, 1], self.edges[:, 0]
            )

    def successor_csr(self) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(offsets, targets)`` CSR arrays for successors."""
        obs.inc(
            "dag.cache.succ_csr.hit"
            if self._succ_off is not None
            else "dag.cache.succ_csr.miss"
        )
        self._build_succ()
        return self._succ_off, self._succ_tgt

    def predecessor_csr(self) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(offsets, targets)`` CSR arrays for predecessors."""
        self._build_pred()
        return self._pred_off, self._pred_tgt

    def successors(self, v: int) -> np.ndarray:
        self._build_succ()
        return self._succ_tgt[self._succ_off[v] : self._succ_off[v + 1]]

    def predecessors(self, v: int) -> np.ndarray:
        self._build_pred()
        return self._pred_tgt[self._pred_off[v] : self._pred_off[v + 1]]

    def indegree(self) -> np.ndarray:
        """Indegree of every vertex (fresh copy; callers may mutate)."""
        if self._indegree is None:
            self._note_build()
            if self.num_edges:
                self._indegree = np.bincount(
                    self.edges[:, 1], minlength=self.n
                ).astype(np.int64)
            else:
                self._indegree = np.zeros(self.n, dtype=np.int64)
        return self._indegree.copy()

    def outdegree(self) -> np.ndarray:
        """Outdegree of every vertex (fresh copy)."""
        if self._outdegree is None:
            self._note_build()
            if self.num_edges:
                self._outdegree = np.bincount(
                    self.edges[:, 0], minlength=self.n
                ).astype(np.int64)
            else:
                self._outdegree = np.zeros(self.n, dtype=np.int64)
        return self._outdegree.copy()

    def successor_lists(self) -> tuple[list[int], list[int]]:
        """Successor CSR as plain Python lists ``(offsets, targets)``.

        The heap engine and the narrow bucket engine walk edges one at a
        time in Python; indexing lists is ~3x faster than indexing numpy
        scalars, and the conversion is worth caching because schedulers
        run many times per instance (once per seed / per m).
        """
        if self._succ_lists is None:
            obs.inc("dag.cache.succ_lists.miss")
            self._note_build()
            off, tgt = self.successor_csr()
            self._succ_lists = (off.tolist(), tgt.tolist())
        else:
            obs.inc("dag.cache.succ_lists.hit")
        return self._succ_lists

    def indegree_list(self) -> list[int]:
        """Indegree of every vertex as a plain Python list (fresh copy)."""
        if self._indeg_list is None:
            self._note_build()
            self._indeg_list = self.indegree().tolist()
        return self._indeg_list.copy()

    def padded_successors(self) -> tuple[np.ndarray, np.ndarray] | None:
        """Dense successor matrix for vectorised indegree decrements.

        Returns ``(P, indeg0)`` where ``P`` has shape ``(n, maxdeg)`` with
        row ``v`` holding the successors of ``v`` padded with the sentinel
        vertex ``n``, and ``indeg0`` has length ``n + 1`` with a huge
        sentinel count in slot ``n`` that absorbs decrements from padding
        without ever reaching zero.  Callers must copy ``indeg0`` before
        mutating it.

        Returns ``None`` for ragged graphs where the dense matrix would
        blow up memory (``maxdeg * n`` far beyond the edge count) — the
        pool engine then falls back to CSR gathers.
        """
        if self._padded is None:
            obs.inc("dag.cache.padded.miss")
            self._note_build()
            n = self.n
            off, tgt = self.successor_csr()
            deg = np.diff(off)
            maxdeg = int(deg.max()) if n else 0
            if maxdeg * n > max(4 * self.num_edges, 64 * n):
                self._padded = (None,)
            else:
                P = np.full((n, max(maxdeg, 1)), n, dtype=np.int64)
                rows = np.repeat(np.arange(n), deg)
                cols = np.arange(len(tgt)) - np.repeat(off[:-1], deg)
                P[rows, cols] = tgt
                indeg0 = np.empty(n + 1, dtype=np.int64)
                indeg0[:n] = self.indegree()
                indeg0[n] = np.int64(1) << 60
                self._padded = (P, indeg0)
        else:
            obs.inc("dag.cache.padded.hit")
        return None if self._padded[0] is None else self._padded

    # ------------------------------------------------------------------
    # memo-cache export / adoption (the shared-memory instance plane)
    # ------------------------------------------------------------------

    #: Array-valued memo slots that :meth:`export_caches` snapshots.  Keys
    #: are the wire names; values are the backing ``__slots__`` attributes.
    _CACHE_ARRAY_SLOTS = {
        "level_of": "_level_of",
        "topo_order": "_topo_order",
        "indegree": "_indegree",
        "outdegree": "_outdegree",
        "b_level": "_b_level",
        "t_level": "_t_level",
        "desc_exact": "_desc_exact",
        "desc_approx": "_desc_approx",
        "succ_off": "_succ_off",
        "succ_tgt": "_succ_tgt",
        "pred_off": "_pred_off",
        "pred_tgt": "_pred_tgt",
    }

    def export_caches(self) -> tuple[dict[str, object], dict[str, np.ndarray]]:
        """Snapshot every *materialised* memo cache as plain arrays.

        Returns ``(scalars, arrays)``: a JSON-able dict of scalar cache
        values and a dict of numpy arrays.  Only caches that have already
        been computed are included, so the cost of the export is zero —
        callers (the shared-memory instance plane) warm exactly the caches
        their workload needs, then ship the snapshot.  The inverse is
        :meth:`adopt_caches`.
        """
        scalars: dict = {}
        arrays: dict[str, np.ndarray] = {}
        if self._num_levels is not None:
            scalars["num_levels"] = int(self._num_levels)
        for key, slot in self._CACHE_ARRAY_SLOTS.items():
            value = getattr(self, slot)
            if value is not None:
                arrays[key] = value
        if self._padded is not None:
            if self._padded[0] is None:
                scalars["padded_none"] = True
            else:
                arrays["padded_P"] = self._padded[0]
                arrays["padded_indeg0"] = self._padded[1]
        return scalars, arrays

    def adopt_caches(
        self, scalars: dict, arrays: dict, adopted: bool = True
    ) -> None:
        """Install a cache snapshot produced by :meth:`export_caches`.

        Arrays are adopted by reference (zero-copy — the point of the
        shared-memory plane); they may be read-only views.  Unknown keys
        raise so a manifest/version skew fails loudly instead of silently
        dropping caches.  ``adopted=False`` installs the snapshot without
        arming the ``dag.cache.rebuild`` counter — used by the disk build
        cache (:mod:`repro.cache`), where a later lazy build is a normal
        cache-entry gap, not a shared-memory warm-up failure.
        """
        for key in scalars:
            if key not in ("num_levels", "padded_none"):
                raise InvalidInstanceError(f"unknown cache scalar {key!r}")
        for key in arrays:
            if key not in self._CACHE_ARRAY_SLOTS and key not in (
                "padded_P",
                "padded_indeg0",
            ):
                raise InvalidInstanceError(f"unknown cache array {key!r}")
        self._adopted = adopted
        if "num_levels" in scalars:
            self._num_levels = int(scalars["num_levels"])
        for key, slot in self._CACHE_ARRAY_SLOTS.items():
            if key in arrays:
                setattr(self, slot, arrays[key])
        if scalars.get("padded_none"):
            self._padded = (None,)
        elif "padded_P" in arrays:
            if "padded_indeg0" not in arrays:
                raise InvalidInstanceError(
                    "padded_P requires its companion padded_indeg0"
                )
            self._padded = (arrays["padded_P"], arrays["padded_indeg0"])

    def roots(self) -> np.ndarray:
        """Vertices with indegree 0 (sources)."""
        return np.flatnonzero(self.indegree() == 0)

    def leaves(self) -> np.ndarray:
        """Vertices with outdegree 0 (sinks)."""
        return np.flatnonzero(self.outdegree() == 0)

    # ------------------------------------------------------------------
    # levels / topological structure
    # ------------------------------------------------------------------

    def level_of(self) -> np.ndarray:
        """0-indexed level (layer) of every vertex.

        ``level_of()[v] == j`` means ``v`` is in layer ``L_{j+1}`` of the
        paper's 1-indexed notation.  Vertices on a cycle (only possible when
        ``validate=False`` was used) keep the sentinel ``-1``.
        """
        if self._level_of is None:
            self._compute_levels()
        return self._level_of

    def num_levels(self) -> int:
        """Number of levels ``D_i`` of this DAG (0 for an empty graph)."""
        if self._num_levels is None:
            obs.inc("dag.cache.levels.miss")
            self._compute_levels()
        else:
            obs.inc("dag.cache.levels.hit")
        return self._num_levels

    def _compute_levels(self) -> None:
        self._note_build()
        level = np.full(self.n, -1, dtype=np.int64)
        if self.n == 0:
            self._level_of = level
            self._num_levels = 0
            return
        indeg = self.indegree()
        off, tgt = self.successor_csr()
        frontier = np.flatnonzero(indeg == 0)
        depth = 0
        topo_chunks = []
        while frontier.size:
            level[frontier] = depth
            topo_chunks.append(frontier)
            # Gather all successor slices of the frontier in one shot; a
            # vertex enters the next frontier when its indegree first hits
            # zero.  The decrement is exact either way, so test == 0 on
            # the touched vertices only.
            succ = _gather_csr(off, tgt, frontier)
            if succ.size:
                frontier = _decrement_indegrees(indeg, succ)
            else:
                frontier = np.empty(0, dtype=np.int64)
            depth += 1
        self._level_of = level
        self._num_levels = depth if level.min(initial=0) >= 0 else -1
        if self._num_levels >= 0:
            self._topo_order = np.concatenate(topo_chunks) if topo_chunks else np.empty(0, dtype=np.int64)

    def topological_order(self) -> np.ndarray:
        """A topological order (level by level)."""
        if self._topo_order is None:
            self._compute_levels()
            if self._topo_order is None:
                raise InvalidInstanceError("graph contains a cycle")
        return self._topo_order

    def levels(self) -> list[np.ndarray]:
        """List of levels; ``levels()[j]`` is the vertex array of layer j."""
        lev = self.level_of()
        d = self.num_levels()
        order = np.argsort(lev, kind="stable")
        sorted_lev = lev[order]
        bounds = np.searchsorted(sorted_lev, np.arange(d + 1))
        return [order[bounds[j] : bounds[j + 1]] for j in range(d)]

    # ------------------------------------------------------------------
    # longest paths
    # ------------------------------------------------------------------

    def b_levels(self) -> np.ndarray:
        """Longest path (in vertices) from each vertex down to a leaf.

        A leaf has b-level 1; a vertex one hop above a leaf has b-level 2.
        This matches Pautz's definition used by DFDS priorities.
        """
        if self._b_level is None:
            self._note_build()
            b = np.ones(self.n, dtype=np.int64)
            order = self.topological_order()
            off, tgt = self.successor_csr()
            # Reverse topological order: successors already finalised.
            for v in order[::-1]:
                s = tgt[off[v] : off[v + 1]]
                if s.size:
                    b[v] = 1 + b[s].max()
            self._b_level = b
        return self._b_level.copy()

    def t_levels(self) -> np.ndarray:
        """Longest path (in vertices) from a root down to each vertex.

        A root has t-level 1.  ``t_levels()[v] - 1`` equals ``level_of()[v]``
        for graphs whose edges only connect consecutive levels, but can be
        larger in general.
        """
        if self._t_level is None:
            self._note_build()
            t = np.ones(self.n, dtype=np.int64)
            order = self.topological_order()
            off, tgt = self.predecessor_csr()
            for v in order:
                p = tgt[off[v] : off[v + 1]]
                if p.size:
                    t[v] = 1 + t[p].max()
            self._t_level = t
        return self._t_level.copy()

    def critical_path_length(self) -> int:
        """Number of vertices on the longest path in the DAG."""
        if self.n == 0:
            return 0
        return int(self.b_levels().max())

    # ------------------------------------------------------------------
    # reachability
    # ------------------------------------------------------------------

    def descendant_counts(self, exact: bool | None = None) -> np.ndarray:
        """Number of distinct descendants of each vertex (excluding itself).

        ``exact=True`` computes true reachability with packed uint64
        bitsets — O(n^2/64) words, vectorised; fine up to ~30k vertices.
        ``exact=False`` returns the cheap upper bound that sums child
        counts (over-counts shared descendants).  ``None`` (default) picks
        exact for n <= 20000 and the approximation above that.
        """
        if exact is None:
            exact = self.n <= 20_000
        if not exact:
            if self._desc_approx is None:
                self._note_build()
                approx = np.zeros(self.n, dtype=np.int64)
                order = self.topological_order()
                off, tgt = self.successor_csr()
                for v in order[::-1]:
                    s = tgt[off[v] : off[v + 1]]
                    if s.size:
                        approx[v] = s.size + approx[s].sum()
                self._desc_approx = approx
            return self._desc_approx.copy()
        if self._desc_exact is not None:
            return self._desc_exact.copy()
        self._note_build()
        words = (self.n + 63) // 64
        reach = np.zeros((self.n, words), dtype=np.uint64)
        order = self.topological_order()
        off, tgt = self.successor_csr()
        word_idx = np.arange(self.n) >> 6
        bit = (np.uint64(1) << (np.arange(self.n, dtype=np.uint64) & np.uint64(63)))
        for v in order[::-1]:
            s = tgt[off[v] : off[v + 1]]
            if s.size:
                # OR together children's reach sets plus the children bits.
                row = reach[v]
                np.bitwise_or.reduce(reach[s], axis=0, out=row)
                np.bitwise_or.at(row, word_idx[s], bit[s])
        self._desc_exact = _popcount_rows(reach)
        return self._desc_exact.copy()

    def reachable_from(self, v: int) -> np.ndarray:
        """All vertices reachable from ``v`` (excluding ``v``), via BFS."""
        off, tgt = self.successor_csr()
        seen = np.zeros(self.n, dtype=bool)
        frontier = tgt[off[v] : off[v + 1]]
        out = []
        while frontier.size:
            frontier = np.unique(frontier)
            frontier = frontier[~seen[frontier]]
            if not frontier.size:
                break
            seen[frontier] = True
            out.append(frontier)
            frontier = _gather_csr(off, tgt, frontier)
        return np.concatenate(out) if out else np.empty(0, dtype=np.int64)

    # ------------------------------------------------------------------
    # dunder sugar
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return self.n

    def __iter__(self) -> Iterator[int]:
        return iter(range(self.n))

    def __repr__(self) -> str:
        return f"Dag(n={self.n}, edges={self.num_edges})"


def _decrement_indegrees(indeg: np.ndarray, succ: np.ndarray) -> np.ndarray:
    """Subtract each vertex's multiplicity in ``succ`` from ``indeg``.

    Returns the (sorted, unique) vertices whose indegree reached zero.
    Hybrid formulation: a dense ``np.bincount`` histogram when the batch
    rivals the vertex count — O(n), branch-free, ~20x faster than
    ``np.subtract.at`` on multi-million-edge frontiers — and
    ``np.unique(..., return_counts=True)`` when the batch is sparse.
    """
    if succ.size >= indeg.size // 4:
        counts = np.bincount(succ, minlength=indeg.size)
        touched = np.flatnonzero(counts)
        indeg[touched] -= counts[touched]
        return touched[indeg[touched] == 0]
    uniq, counts = np.unique(succ, return_counts=True)
    indeg[uniq] -= counts
    return uniq[indeg[uniq] == 0]


def _gather_csr(off: np.ndarray, tgt: np.ndarray, nodes: np.ndarray) -> np.ndarray:
    """Concatenate CSR slices ``tgt[off[v]:off[v+1]]`` for all ``v`` in nodes.

    Fully vectorised (no per-node Python loop): builds a flat index via
    ``repeat`` + cumulative offsets.
    """
    starts = off[nodes]
    lengths = off[nodes + 1] - starts
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=tgt.dtype)
    # index[i] walks each slice: starts repeated, plus an intra-slice ramp.
    reps = np.repeat(starts, lengths)
    ramp = np.arange(total, dtype=np.int64)
    slice_starts = np.repeat(np.cumsum(lengths) - lengths, lengths)
    return tgt[reps + (ramp - slice_starts)]


def _popcount_rows(bits: np.ndarray) -> np.ndarray:
    """Population count of each row of a uint64 matrix."""
    # numpy >= 2.0 has bitwise_count; keep a fallback for older versions.
    if hasattr(np, "bitwise_count"):
        return np.bitwise_count(bits).sum(axis=1).astype(np.int64)
    v = bits.view(np.uint8)
    table = np.array([bin(i).count("1") for i in range(256)], dtype=np.uint8)
    return table[v].sum(axis=1).astype(np.int64)
