"""Algorithm 1: "Random Delay" — the paper's first provable algorithm.

Steps (verbatim from the paper):

1. choose a delay ``X_i`` uniformly from ``{0, .., k-1}`` per direction;
2. combine all DAGs into one DAG ``G`` whose layer ``L_r`` is the union of
   the per-direction levels shifted by the delays;
3. assign every cell a processor uniformly at random;
4. process layers sequentially; within a layer, each processor runs its
   tasks back-to-back.

Guarantee (Theorem 1): the makespan is ``O(OPT log^2 n)`` with high
probability.  The two randomisations do contention resolution — Lemma 2
bounds the copies of any cell per layer by ``O(log n)``, Lemma 3 the tasks
per processor per layer by ``O(max(|V_r|/m, 1) log^2 n)``.
"""

from __future__ import annotations

import numpy as np

from repro.core.assignment import random_cell_assignment
from repro.core.instance import SweepInstance
from repro.core.layered import schedule_layers_sequentially
from repro.core.schedule import Schedule
from repro.util.errors import InvalidScheduleError
from repro.util.rng import as_rng

__all__ = ["random_delay_schedule", "draw_delays", "delayed_task_layers"]


def draw_delays(k: int, rng) -> np.ndarray:
    """Draw ``X_i ~ Uniform{0..k-1}`` for every direction (paper step 1)."""
    return rng.integers(0, max(k, 1), size=k, dtype=np.int64)


def delayed_task_layers(inst: SweepInstance, delays: np.ndarray) -> np.ndarray:
    """Layer of every task in the combined DAG: level-in-direction + X_i."""
    delays = np.asarray(delays, dtype=np.int64)
    if delays.shape != (inst.k,):
        raise InvalidScheduleError(
            f"delays has shape {delays.shape}, expected ({inst.k},)"
        )
    per_task_delay = np.repeat(delays, inst.n_cells)
    return inst.task_levels() + per_task_delay


def random_delay_schedule(
    inst: SweepInstance,
    m: int,
    seed=None,
    assignment: np.ndarray | None = None,
    delays: np.ndarray | None = None,
    engine: str = "auto",
) -> Schedule:
    """Run Algorithm 1 and return the resulting (validated-shape) schedule.

    Parameters
    ----------
    seed:
        RNG seed; drives both the delays and the random assignment.
    assignment:
        Override the random cell→processor map (e.g. a block assignment
        from :mod:`repro.partition`); when given, only the delays are
        random.
    delays:
        Override the random per-direction delays (mainly for tests).
    engine:
        Accepted for signature uniformity with the other registry
        algorithms; Algorithm 1 processes layers sequentially and never
        runs a list scheduler, so the value is unused.
    """
    del engine
    rng = as_rng(seed)
    if delays is None:
        delays = draw_delays(inst.k, rng)
    if assignment is None:
        assignment = random_cell_assignment(inst.n_cells, m, rng)
    layers = delayed_task_layers(inst, delays)
    return schedule_layers_sequentially(
        inst,
        m,
        layers,
        assignment,
        meta={
            "algorithm": "random_delay",
            "delays": np.asarray(delays).copy(),
        },
        # Levels shifted by a per-direction constant keep every edge going
        # to a strictly higher layer; skip the O(E) re-check.
        check_layers=False,
    )
