"""Level-synchronous vectorised list-scheduling engine (``engine="vector"``).

The third scheduling engine behind
:func:`repro.core.list_scheduler.list_schedule` and
:func:`~repro.core.list_scheduler.list_schedule_unassigned`.  Where the
bucket engine (:mod:`repro.core.fast_scheduler`) pops tasks through bucket
queues or a sorted pool one *step* at a time, this engine treats the whole
ready frontier as one numpy array per superstep — the BSP view of DAG
scheduling: supersteps over entire ready frontiers are exactly the right
granularity to vectorise.

One superstep of the kernel:

1. **pop** — the frontier is a sorted ``int64`` array of packed
   ``(processor, key, tid)`` codes (``(key, tid)`` in unassigned mode), so
   each processor's minimum is the first code of its run: one
   group-boundary mask pops every processor's task at once (unassigned
   mode pops the first ``m`` codes instead).
2. **decrement** — successors of all popped tasks are gathered in one CSR
   slice-concatenation; ``np.unique(..., return_counts=True)`` folds
   duplicate edges and same-step sibling completions into a single
   vectorised in-degree subtraction.  The engine never builds the dense
   padded successor matrix the pool path uses — a deliberate memory/warm
   saving for attached workers.
3. **merge** — newly-ready tasks are packed, sorted, and merged into the
   remaining frontier with one ``np.searchsorted`` + ``np.insert``.

**Endgame drain batching**: once ``frontier.size == remaining`` every
unexecuted task is ready, so no promotion can ever happen again and the
rest of the schedule is a pure drain.  The engine then assigns *all*
remaining start times in one shot — per-processor rank within the sorted
frontier (assigned mode) or ``t + i // m`` with machine ``i % m``
(unassigned mode), i.e. batched machine assignment via cumulative
position arrays.  This is exact, not an approximation: with no promotions
pending, list scheduling degenerates to round-robin over each queue in
``(key, tid)`` order.  On wide shallow instances the drain collapses
thousands of steps into one superstep.

Output is bit-identical to the heap and bucket engines — same start
times, same machine numbers, same tie-breaks, same errors — which
``tests/test_engine_equivalence.py`` pins on every fuzz spec family,
every registry golden, the corpus, and hypothesis-random instances, and
``tests/test_engine_mutations.py`` proves by killing the seeded faults
below.  Callers normally never import this module: they pass
``engine="vector"`` (or let ``engine="auto"`` route very wide shallow
instances here) to the public entry points.
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.core.dag import _gather_csr
from repro.core.fast_scheduler import _pool_codes, bucket_keys, bucket_supports
from repro.core.instance import SweepInstance
from repro.core.schedule import Schedule
from repro.util.errors import InvalidScheduleError

__all__ = [
    "vector_list_schedule",
    "vector_list_schedule_unassigned",
    "vector_preferred",
]

#: ``engine="auto"`` routes to the vector engine only above this mean
#: uncapped wavefront width (``n_tasks / num_levels``, *not* capped at
#: ``m`` — on wide instances both the pool and vector kernels pop ``m``
#: tasks per step, so the capped width cannot separate them; the uncapped
#: width measures how much of the instance the endgame drain can batch).
#: Calibrated on the bench families: the wide_layer family (width 8000)
#: is ~2x faster here than the bucket pool, while mesh_large (width
#: ~1100) still favours the pool's padded-matrix promotion.
_VECTOR_MIN_WIDTH = 4000

#: Test-only fault-injection point for the mutation-kill suite
#: (``tests/test_engine_mutations.py``).  One of ``None`` (production),
#: ``"frontier_off_by_one"`` (the pop cut loses its last task each
#: superstep), ``"stale_indegree"`` (duplicate same-step decrements are
#: folded to one), or ``"unstable_tiebreak"`` (the tid component of the
#: packed code is inverted, flipping equal-priority tie-breaks).  Arming
#: any fault disables the endgame drain so the faults always exercise
#: the superstep loop.  Never set outside tests.
_MUTATION = None


def vector_preferred(inst: SweepInstance, m: int, priority) -> bool:
    """Should ``engine="auto"`` pick the vector engine here?

    True when the priorities are bucketable (the packed-code kernel needs
    the same numeric NaN-free keys the bucket engine does) *and* the mean
    wavefront is at least :data:`_VECTOR_MIN_WIDTH` tasks per level —
    the wide shallow regime where frontier-at-a-time supersteps and the
    endgame drain beat the sorted pool's per-step ``np.insert``.
    """
    if not bucket_supports(priority):
        return False
    union = inst.union_dag()
    d = union.num_levels()
    if d <= 0:
        return False
    return inst.n_tasks // d >= _VECTOR_MIN_WIDTH


def _codes(
    key: np.ndarray, n_tasks: int, m: int | None
) -> tuple[np.ndarray, np.ndarray, int] | None:
    """Packed codes plus decode mask, or ``None`` when 62 bits overflow.

    Returns ``(code_of, tid_of, shift)`` where ``code_of[tid]`` is the
    packed ``(key, tid)`` code (processor bits are added by the caller in
    assigned mode) and ``tid_of`` decodes ``code & ((1 << logn) - 1)``
    back to a task id.  The ``unstable_tiebreak`` fault inverts the tid
    component symmetrically in both directions, so the mutated engine
    still emits a *valid* schedule — just with every equal-priority
    tie-break reversed.
    """
    packed = _pool_codes(key, n_tasks, m)
    if packed is None:
        return None
    key, logn, kb = packed
    tid = np.arange(n_tasks, dtype=np.int64)
    low = n_tasks - 1 - tid if _MUTATION == "unstable_tiebreak" else tid
    code_of = (key << logn) | low
    tid_of = np.empty(1 << logn, dtype=np.int64)
    tid_of[low] = tid
    return code_of, tid_of, logn + kb


def _decrement(
    indeg: np.ndarray, off: np.ndarray, tgt: np.ndarray, done: np.ndarray
) -> np.ndarray:
    """Vectorised in-degree decrement; returns the newly-ready task ids.

    Hybrid of two exact formulations: a dense ``np.bincount`` histogram
    when the gathered successor batch rivals the vertex count (wide
    supersteps — O(n) and branch-free beats sorting the batch), and
    ``np.unique(..., return_counts=True)`` when the batch is sparse.
    Both fold duplicate edges and same-step sibling completions into one
    subtraction per target, so the result is identical either way.
    """
    succ = _gather_csr(off, tgt, done)
    if not succ.size:
        return np.empty(0, dtype=np.int64)
    if succ.size >= indeg.size // 4:
        counts = np.bincount(succ, minlength=indeg.size)
        touched = np.flatnonzero(counts)
        if _MUTATION == "stale_indegree":
            indeg[touched] -= 1
        else:
            indeg[touched] -= counts[touched]
        return touched[indeg[touched] == 0]
    uniq, counts = np.unique(succ, return_counts=True)
    if _MUTATION == "stale_indegree":
        indeg[uniq] -= 1
    else:
        indeg[uniq] -= counts
    return uniq[indeg[uniq] == 0]


def _merge(rest: np.ndarray, new_codes: np.ndarray) -> np.ndarray:
    """Merge sorted new codes into the sorted remaining frontier."""
    if not new_codes.size:
        return rest
    return np.insert(rest, np.searchsorted(rest, new_codes), new_codes)


def _vector_schedule(
    inst: SweepInstance,
    m: int,
    assignment: np.ndarray,
    code_of: np.ndarray,
    tid_of: np.ndarray,
    shift: int,
) -> np.ndarray:
    n_tasks = inst.n_tasks
    union = inst.union_dag()
    off, tgt = union.successor_csr()
    indeg = union.indegree()
    proc_of = np.tile(np.asarray(assignment, dtype=np.int64), inst.k)
    gcode_of = (proc_of << shift) | code_of
    tid_mask = np.int64(tid_of.size - 1)

    frontier = np.sort(gcode_of[np.flatnonzero(indeg == 0)])
    start = np.full(n_tasks, -1, dtype=np.int64)
    remaining = n_tasks
    t = 0
    supersteps = 0
    peak = 0
    first = np.empty(n_tasks, dtype=bool)
    mut = _MUTATION
    while remaining:
        r = frontier.size
        if not r:
            raise InvalidScheduleError(
                "no ready task but tasks remain — instance has a cycle"
            )
        if r > peak:
            peak = r
        supersteps += 1
        pp = frontier >> shift
        if r == remaining and mut is None:
            # Endgame drain: every unexecuted task is ready, so no future
            # promotion exists and each processor just drains its queue in
            # (key, tid) order — batch all remaining starts at once.
            idx = np.arange(r, dtype=np.int64)
            f = first[:r]
            f[0] = True
            np.not_equal(pp[1:], pp[:-1], out=f[1:])
            rank = idx - np.maximum.accumulate(np.where(f, idx, 0))
            start[tid_of[frontier & tid_mask]] = t + rank
            t += int(rank.max()) + 1
            remaining = 0
            break
        f = first[:r]
        f[0] = True
        np.not_equal(pp[1:], pp[:-1], out=f[1:])
        if mut == "frontier_off_by_one":
            hits = np.flatnonzero(f)
            if hits.size > 1:
                f[hits[-1]] = False
        done = tid_of[frontier[f] & tid_mask]
        start[done] = t
        remaining -= done.size
        newly = _decrement(indeg, off, tgt, done)
        frontier = _merge(frontier[~f], np.sort(gcode_of[newly]))
        t += 1
    obs.inc("scheduler.vector.steps", t)
    obs.inc("scheduler.vector.supersteps", supersteps)
    obs.gauge_max("scheduler.vector.peak_frontier", peak)
    return start


def _vector_unassigned(
    inst: SweepInstance,
    m: int,
    code_of: np.ndarray,
    tid_of: np.ndarray,
    shift: int,
) -> tuple[np.ndarray, np.ndarray]:
    n_tasks = inst.n_tasks
    union = inst.union_dag()
    off, tgt = union.successor_csr()
    indeg = union.indegree()
    tid_mask = np.int64(tid_of.size - 1)

    frontier = np.sort(code_of[np.flatnonzero(indeg == 0)])
    start = np.full(n_tasks, -1, dtype=np.int64)
    machine = np.full(n_tasks, -1, dtype=np.int64)
    remaining = n_tasks
    t = 0
    supersteps = 0
    peak = 0
    mut = _MUTATION
    while remaining:
        r = frontier.size
        if not r:
            raise InvalidScheduleError(
                "no ready task but tasks remain — instance has a cycle"
            )
        if r > peak:
            peak = r
        supersteps += 1
        if r == remaining and mut is None:
            # Endgame drain: the m machines round-robin the sorted frontier.
            idx = np.arange(r, dtype=np.int64)
            done = tid_of[frontier & tid_mask]
            start[done] = t + idx // m
            machine[done] = idx % m
            t += (r - 1) // m + 1
            remaining = 0
            break
        n_exec = min(m, r)
        if mut == "frontier_off_by_one" and n_exec > 1:
            n_exec -= 1
        done = tid_of[frontier[:n_exec] & tid_mask]
        start[done] = t
        machine[done] = np.arange(n_exec, dtype=np.int64)
        remaining -= n_exec
        newly = _decrement(indeg, off, tgt, done)
        frontier = _merge(frontier[n_exec:], np.sort(code_of[newly]))
        t += 1
    obs.inc("scheduler.vector.steps", t)
    obs.inc("scheduler.vector.supersteps", supersteps)
    obs.gauge_max("scheduler.vector.peak_frontier", peak)
    return start, machine


# ----------------------------------------------------------------------
# public entry points
# ----------------------------------------------------------------------


def vector_list_schedule(
    inst: SweepInstance,
    m: int,
    assignment: np.ndarray,
    priority: np.ndarray | None = None,
    meta: dict | None = None,
) -> Schedule:
    """Vector-engine twin of :func:`repro.core.list_scheduler.list_schedule`.

    Arguments are identical; output is bit-identical.  Callers should go
    through ``list_schedule(..., engine="vector")``, which validates the
    shapes once and dispatches here.  The (astronomically rare) instance
    whose packed codes exceed 62 bits falls back to the bucket engine,
    which shares the exact-equivalence contract.
    """
    n_tasks = inst.n_tasks
    key = bucket_keys(priority, n_tasks)
    packed = _codes(key, n_tasks, m)
    if packed is None:
        from repro.core.fast_scheduler import bucket_list_schedule

        return bucket_list_schedule(inst, m, assignment, priority, meta=meta)
    with obs.span(
        "schedule.vector",
        cat="scheduler",
        args_fn=lambda: {"n_tasks": n_tasks, "m": m},
    ):
        start = _vector_schedule(inst, m, assignment, *packed)
    return Schedule(
        instance=inst,
        m=m,
        start=start,
        assignment=np.asarray(assignment, dtype=np.int64),
        meta=dict(meta or {}),
    )


def vector_list_schedule_unassigned(
    inst: SweepInstance,
    m: int,
    priority: np.ndarray | None = None,
):
    """Vector-engine twin of ``list_schedule_unassigned`` (Graham mode).

    Pops the ``m`` smallest ``(key, task id)`` codes per superstep in the
    order the heap engine would, so machine numbers match bit-for-bit.
    """
    from repro.core.list_scheduler import UnassignedSchedule

    n_tasks = inst.n_tasks
    key = bucket_keys(priority, n_tasks)
    packed = _codes(key, n_tasks, None)
    if packed is None:
        from repro.core.fast_scheduler import bucket_list_schedule_unassigned

        return bucket_list_schedule_unassigned(inst, m, priority)
    with obs.span(
        "schedule.vector",
        cat="scheduler",
        args_fn=lambda: {"n_tasks": n_tasks, "m": m},
    ):
        start, machine = _vector_unassigned(inst, m, *packed)
    return UnassignedSchedule(m=m, start=start, machine=machine)
