"""Bucket-queue list-scheduling engine (the "fast" engine).

A drop-in second engine behind :func:`repro.core.list_scheduler.list_schedule`
and :func:`~repro.core.list_scheduler.list_schedule_unassigned`.  Every
priority family this repository uses (levels, delayed levels, b-levels,
DFDS keys, descendant counts, the lexicographic combinations) is a small
integer range, so the engine replaces the heap engine's ``(priority, tid)``
tuple comparisons with integer bucket arithmetic.  Two internal paths share
the public entry points:

* **sorted-pool path** (wide regime) — the entire ready set lives in one
  sorted ``int64`` array of packed ``(processor, key, tid)`` codes.  Each
  step's pops are a vectorised group-boundary mask (the first code of every
  processor run is that processor's minimum), promotion is a dense padded
  successor-matrix gather plus ``np.subtract.at``, and re-insertion is one
  ``np.searchsorted`` + ``np.insert``.  No per-task Python at all; on wide
  wavefronts (hundreds of pops per step) this is 1.5–3x the heap engine.
* **bucket-queue path** (narrow regime) — per-processor monotone bucket
  queues: a dict from bucket index to either a single task id (the common
  case) or an int-heap of ids, plus a per-processor min-pointer that only
  moves forward.  Promotion walks successor lists cached as plain Python
  lists on the :class:`~repro.core.dag.Dag`.

Key handling is shared: integer priorities with a small range are used
directly (offset by the minimum); anything else numeric is rank compressed
through ``np.unique``, which preserves order and equality and therefore
the schedule, exactly.

Both paths are *exactly equivalent* to the heap engine — same start times,
same machine numbers, same tie-breaks, same errors — which
``tests/test_engine_equivalence.py`` pins on every fuzz spec family, every
registry golden, and the corpus.  Callers normally never import this
module: they pass ``engine="bucket"`` (or keep the default ``"auto"``) to
the public entry points.
"""

from __future__ import annotations

from heapq import heappop, heappush

import numpy as np

from repro import obs
from repro.core.dag import Dag, _gather_csr
from repro.core.instance import SweepInstance
from repro.core.schedule import Schedule
from repro.util.errors import InvalidScheduleError

__all__ = [
    "bucket_list_schedule",
    "bucket_list_schedule_unassigned",
    "bucket_supports",
    "bucket_keys",
    "bucket_preferred",
]

#: Integer priorities whose value range exceeds ``_DENSE_SLACK * N + 1024``
#: go through rank compression instead of a direct offset, so bucket
#: indices can never blow up on sparse keys like ``level * 10**9``.
_DENSE_SLACK = 4

#: The sorted-pool path needs enough pops per step to amortise numpy call
#: overhead (~2us per ufunc here); below this effective width the heap
#: engine's C heapq is faster and ``engine="auto"`` keeps using it.
#: Calibrated on the tetonly-mesh benchmark family: at effective width 64
#: the pool path breaks even, at 128+ it is 1.5-3x faster.
_POOL_MIN_WIDTH = 64

#: Test-only fault-injection point for the mutation-kill suite
#: (``tests/test_engine_mutations.py``).  One of ``None`` (production),
#: ``"bucket_off_by_one"`` (promoted tasks land one bucket too high),
#: ``"skip_promotion"`` (all but the first newly-ready task of a batch is
#: dropped), or ``"stale_minptr"`` (the min-pointer is not lowered when a
#: smaller key is pushed).  Any non-``None`` value forces the bucket-queue
#: path, where these faults live.  Never set outside tests.
_MUTATION = None

#: Test-only override of the internal path choice: ``None`` (use the width
#: heuristic), ``"pool"``, or ``"bucket"``.  Lets the equivalence suite
#: exercise both paths on every instance regardless of its width.
_FORCE_PATH = None


def bucket_supports(priority) -> bool:
    """Can the bucket engine reproduce the heap engine on this priority?

    ``None`` (uniform) and any real-numeric array without NaN qualify —
    integer keys run through dense buckets directly, floats through exact
    rank compression.  Object arrays (tuple keys) and NaN-bearing floats
    fall back to the heap engine, whose comparison semantics they need.
    """
    if priority is None:
        return True
    arr = np.asarray(priority)
    if arr.dtype == np.bool_ or np.issubdtype(arr.dtype, np.integer):
        return True
    if np.issubdtype(arr.dtype, np.floating):
        return not bool(np.isnan(arr).any())
    return False


def bucket_keys(priority, n_tasks: int) -> np.ndarray:
    """Dense ``int64`` bucket indices equivalent to ``priority`` ordering.

    Preserves both relative order and equality of the original keys, so a
    schedule built on the returned indices is bit-identical to one built
    on the raw priorities.  Raises :class:`InvalidScheduleError` when the
    priorities are not bucketable (see :func:`bucket_supports`).
    """
    if priority is None:
        return np.zeros(n_tasks, dtype=np.int64)
    if not bucket_supports(priority):
        raise InvalidScheduleError(
            "bucket engine requires numeric NaN-free priorities; "
            "use engine='heap' for non-scalar keys"
        )
    arr = np.asarray(priority)
    if arr.size == 0:
        return np.zeros(0, dtype=np.int64)
    if arr.dtype == np.bool_ or np.issubdtype(arr.dtype, np.integer):
        lo = int(arr.min())
        hi = int(arr.max())
        if hi - lo <= _DENSE_SLACK * n_tasks + 1024:
            return arr.astype(np.int64) - lo
    # Sparse integers and floats: exact rank compression.  np.unique sorts
    # and deduplicates, so equal keys share a rank and order is preserved.
    _, inverse = np.unique(arr, return_inverse=True)
    return inverse.astype(np.int64)


def _effective_width(inst: SweepInstance, m: int) -> int:
    """Average pops per step, capped by the processor count."""
    union = inst.union_dag()
    d = union.num_levels()
    if d <= 0:
        return 0
    return min(m, inst.n_tasks // d)


def bucket_preferred(inst: SweepInstance, m: int, priority) -> bool:
    """Should ``engine="auto"`` pick the bucket engine here?

    True when the priorities are bucketable *and* the instance is wide
    enough (average wavefront of at least ``_POOL_MIN_WIDTH`` tasks per
    step) for the sorted-pool path to beat C heapq.  In the narrow regime
    every pure-Python scheme loses to the heap engine, so ``auto`` keeps
    the heap there; an explicit ``engine="bucket"`` still runs this engine
    regardless of width.
    """
    return bucket_supports(priority) and _effective_width(inst, m) >= _POOL_MIN_WIDTH


def _use_pool(inst: SweepInstance, m: int) -> bool:
    """Internal path choice: sorted pool (wide) or bucket queues (narrow)."""
    if _MUTATION is not None:
        return False  # the injected faults live in the bucket-queue path
    if _FORCE_PATH is not None:
        return _FORCE_PATH == "pool"
    return _effective_width(inst, m) >= _POOL_MIN_WIDTH


def _pool_codes(
    key: np.ndarray, n_tasks: int, m: int | None
) -> tuple[np.ndarray, int, int] | None:
    """Packed ``(proc?, key, tid)`` code parameters for the sorted pool.

    Returns ``(key, logn, kb)`` where ``code = (key << logn) | tid`` fits a
    signed int64 together with ``m`` processor values above it (when ``m``
    is given).  Wide keys are rank compressed first; if even the compressed
    key cannot fit, returns ``None`` and the caller falls back to the
    bucket-queue path.
    """
    logn = max(1, (n_tasks - 1).bit_length()) if n_tasks > 1 else 1
    logm = max(1, (m - 1).bit_length()) if m is not None else 0
    kb = max(1, int(key.max()).bit_length()) if key.size else 1
    if logn + kb + logm > 62:
        _, inverse = np.unique(key, return_inverse=True)
        key = inverse.astype(np.int64)
        kb = max(1, int(key.max()).bit_length()) if key.size else 1
        if logn + kb + logm > 62:
            return None
    return key, logn, kb


def _decrement_and_promote(
    indeg: np.ndarray, off: np.ndarray, tgt: np.ndarray, executed: np.ndarray
) -> np.ndarray:
    """Batch-decrement indegrees of all successors; return newly-ready ids.

    One CSR gather plus one ``np.unique`` replace the heap engine's
    per-edge Python loop; duplicate (parallel) edges decrement once per
    occurrence via the returned counts.
    """
    succ = _gather_csr(off, tgt, executed)
    if not succ.size:
        return np.empty(0, dtype=np.int64)
    uniq, counts = np.unique(succ, return_counts=True)
    indeg[uniq] -= counts
    return uniq[indeg[uniq] == 0]


# ----------------------------------------------------------------------
# sorted-pool path (wide regime)
# ----------------------------------------------------------------------


def _pool_promote(union: Dag, indeg: np.ndarray, done: np.ndarray) -> np.ndarray:
    """Newly-ready ids after executing ``done`` (may contain duplicates)."""
    padded = union.padded_successors()
    if padded is not None:
        P = padded[0]
        succ = P[done].ravel()
        np.subtract.at(indeg, succ, 1)
        return succ[indeg[succ] == 0]
    off, tgt = union.successor_csr()
    return _decrement_and_promote(indeg, off, tgt, done)


def _pool_indegree(union: Dag) -> np.ndarray:
    """Working indegree array matching :func:`_pool_promote`'s layout."""
    padded = union.padded_successors()
    if padded is not None:
        return padded[1].copy()
    return union.indegree()


def _pool_schedule(
    inst: SweepInstance,
    m: int,
    assignment: np.ndarray,
    key: np.ndarray,
    logn: int,
    kb: int,
) -> np.ndarray:
    n_tasks = inst.n_tasks
    union = inst.union_dag()
    indeg = _pool_indegree(union)
    proc_of = np.tile(np.asarray(assignment, dtype=np.int64), inst.k)
    proc_shift = logn + kb
    gcode_of = (proc_of << proc_shift) | (key << logn) | np.arange(
        n_tasks, dtype=np.int64
    )
    tid_mask = (1 << logn) - 1

    ready0 = np.flatnonzero(indeg[:n_tasks] == 0)
    pool = np.sort(gcode_of[ready0])
    start = np.full(n_tasks, -1, dtype=np.int64)
    remaining = n_tasks
    t = 0
    peak_ready = 0
    # Reusable group-boundary mask: first[i] is True iff pool[i] is the
    # first (= smallest) code of its processor's run in the sorted pool.
    first = np.empty(n_tasks + 1, dtype=bool)
    first[0] = True
    while remaining:
        r = pool.size
        if not r:
            raise InvalidScheduleError(
                "no ready task but tasks remain — instance has a cycle"
            )
        if r > peak_ready:
            peak_ready = r
        pp = pool >> proc_shift
        f = first[:r]
        np.not_equal(pp[1:], pp[:-1], out=f[1:])
        popped = pool[f]
        done = popped & tid_mask
        start[done] = t
        remaining -= done.size
        rest = pool[~f]
        newly = _pool_promote(union, indeg, done)
        if newly.size:
            # Duplicate tids (several predecessors finished this step) map
            # to identical codes; np.unique both dedups and sorts.
            nc = np.unique(gcode_of[newly])
            pool = np.insert(rest, np.searchsorted(rest, nc), nc)
        else:
            pool = rest
        t += 1
    obs.inc("scheduler.pool.steps", t)
    obs.gauge_max("scheduler.pool.peak_ready", peak_ready)
    return start


def _pool_unassigned(
    inst: SweepInstance, m: int, key: np.ndarray, logn: int, kb: int
) -> tuple[np.ndarray, np.ndarray]:
    n_tasks = inst.n_tasks
    union = inst.union_dag()
    indeg = _pool_indegree(union)
    code_of = (key << logn) | np.arange(n_tasks, dtype=np.int64)
    tid_mask = (1 << logn) - 1

    ready0 = np.flatnonzero(indeg[:n_tasks] == 0)
    pool = np.sort(code_of[ready0])
    start = np.full(n_tasks, -1, dtype=np.int64)
    machine = np.full(n_tasks, -1, dtype=np.int64)
    remaining = n_tasks
    t = 0
    peak_ready = 0
    while remaining:
        if not pool.size:
            raise InvalidScheduleError(
                "no ready task but tasks remain — instance has a cycle"
            )
        if pool.size > peak_ready:
            peak_ready = pool.size
        n_exec = min(m, pool.size)
        popped = pool[:n_exec]
        done = popped & tid_mask
        start[done] = t
        machine[done] = np.arange(n_exec, dtype=np.int64)
        remaining -= n_exec
        rest = pool[n_exec:]
        newly = _pool_promote(union, indeg, done)
        if newly.size:
            nc = np.unique(code_of[newly])
            pool = np.insert(rest, np.searchsorted(rest, nc), nc)
        else:
            pool = rest
        t += 1
    obs.inc("scheduler.pool.steps", t)
    obs.gauge_max("scheduler.pool.peak_ready", peak_ready)
    return start, machine


# ----------------------------------------------------------------------
# bucket-queue path (narrow regime; hosts the mutation hooks)
# ----------------------------------------------------------------------


def _bucket_schedule(
    inst: SweepInstance, m: int, assignment: np.ndarray, key: np.ndarray
) -> np.ndarray:
    n_tasks = inst.n_tasks
    union = inst.union_dag()
    off_l, tgt_l = union.successor_lists()
    indeg = union.indegree_list()
    proc_l = np.tile(np.asarray(assignment, dtype=np.int64), inst.k).tolist()
    key_l = key.tolist()
    n_buckets = (int(key.max()) + 1) if key.size else 1
    mut = _MUTATION

    # buckets[p] maps bucket index -> a single ready task id (the common
    # case) or an int-heap of ids; the dict stays sparse so huge
    # (m x range) tables are never allocated.
    buckets: list[dict[int, int | list[int]]] = [{} for _ in range(m)]
    minptr = [n_buckets] * m
    nonempty: set[int] = set()

    def push_batch(tids: list[int]) -> None:
        if mut == "skip_promotion" and len(tids) > 1:
            tids = tids[:1]
        for tid in tids:
            p = proc_l[tid]
            b = key_l[tid]
            if mut == "bucket_off_by_one":
                b += 1
            bp = buckets[p]
            cur = bp.get(b)
            if cur is None:
                bp[b] = tid
            elif type(cur) is int:
                bp[b] = [cur, tid] if cur < tid else [tid, cur]
            else:
                heappush(cur, tid)
            if b < minptr[p] and mut != "stale_minptr":
                minptr[p] = b
            nonempty.add(p)

    # The initial frontier is not a promotion: the injected faults model
    # promotion-path bugs, so they must not fire here.
    saved_mut, mut = mut, None
    push_batch([tid for tid in range(n_tasks) if indeg[tid] == 0])
    mut = saved_mut

    start = np.full(n_tasks, -1, dtype=np.int64)
    remaining = n_tasks
    t = 0
    rotations = 0
    while remaining:
        if not nonempty:
            raise InvalidScheduleError(
                "no ready task but tasks remain — instance has a cycle"
            )
        step: list[int] = []
        ap = step.append
        for p in list(nonempty):
            bp = buckets[p]
            mp = minptr[p]
            cur = bp.get(mp)
            while cur is None:
                mp += 1
                rotations += 1
                if mp > n_buckets:  # n_buckets absorbs the off-by-one fault
                    raise InvalidScheduleError(
                        "bucket queue bookkeeping error: processor marked "
                        "ready but no bucket holds a task"
                    )
                cur = bp.get(mp)
            if type(cur) is int:
                tid = cur
                del bp[mp]
            else:
                tid = heappop(cur)
                if not cur:
                    del bp[mp]
            minptr[p] = mp
            ap(tid)
            if not bp:
                nonempty.discard(p)
        remaining -= len(step)
        newly: list[int] = []
        nap = newly.append
        for tid in step:
            for s in tgt_l[off_l[tid] : off_l[tid + 1]]:
                d = indeg[s] - 1
                indeg[s] = d
                if not d:
                    nap(s)
        if newly:
            push_batch(newly)
        start[np.array(step, dtype=np.int64)] = t
        t += 1
    obs.inc("scheduler.bucket.steps", t)
    obs.inc("scheduler.bucket.rotations", rotations)
    return start


def _bucket_unassigned(
    inst: SweepInstance, m: int, key: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    n_tasks = inst.n_tasks
    union = inst.union_dag()
    off_l, tgt_l = union.successor_lists()
    indeg = union.indegree_list()
    key_l = key.tolist()
    n_buckets = (int(key.max()) + 1) if key.size else 1

    buckets: dict[int, int | list[int]] = {}
    minptr = n_buckets
    count = 0

    def push_batch(tids: list[int]) -> None:
        nonlocal minptr, count
        for tid in tids:
            b = key_l[tid]
            cur = buckets.get(b)
            if cur is None:
                buckets[b] = tid
            elif type(cur) is int:
                buckets[b] = [cur, tid] if cur < tid else [tid, cur]
            else:
                heappush(cur, tid)
            if b < minptr:
                minptr = b
        count += len(tids)

    push_batch([tid for tid in range(n_tasks) if indeg[tid] == 0])

    start = np.full(n_tasks, -1, dtype=np.int64)
    machine = np.full(n_tasks, -1, dtype=np.int64)
    remaining = n_tasks
    t = 0
    rotations = 0
    while remaining:
        if not count:
            raise InvalidScheduleError(
                "no ready task but tasks remain — instance has a cycle"
            )
        step: list[int] = []
        ap = step.append
        n_exec = 0
        while count and n_exec < m:
            cur = buckets.get(minptr)
            while cur is None:
                minptr += 1
                rotations += 1
                cur = buckets.get(minptr)
            if type(cur) is int:
                tid = cur
                del buckets[minptr]
            else:
                tid = heappop(cur)
                if not cur:
                    del buckets[minptr]
            count -= 1
            machine[tid] = n_exec
            ap(tid)
            n_exec += 1
        remaining -= n_exec
        newly: list[int] = []
        nap = newly.append
        for tid in step:
            for s in tgt_l[off_l[tid] : off_l[tid + 1]]:
                d = indeg[s] - 1
                indeg[s] = d
                if not d:
                    nap(s)
        if newly:
            push_batch(newly)
        start[np.array(step, dtype=np.int64)] = t
        t += 1
    obs.inc("scheduler.bucket.steps", t)
    obs.inc("scheduler.bucket.rotations", rotations)
    return start, machine


# ----------------------------------------------------------------------
# public entry points
# ----------------------------------------------------------------------


def bucket_list_schedule(
    inst: SweepInstance,
    m: int,
    assignment: np.ndarray,
    priority: np.ndarray | None = None,
    meta: dict | None = None,
) -> Schedule:
    """Bucket-engine twin of :func:`repro.core.list_scheduler.list_schedule`.

    Arguments are identical; output is bit-identical.  Callers should go
    through ``list_schedule(..., engine="bucket")``, which validates the
    shapes once and dispatches here.
    """
    n_tasks = inst.n_tasks
    key = bucket_keys(priority, n_tasks)
    start = None
    if _use_pool(inst, m):
        packed = _pool_codes(key, n_tasks, m)
        if packed is not None:
            with obs.span(
                "schedule.pool",
                cat="scheduler",
                args_fn=lambda: {"n_tasks": n_tasks, "m": m},
            ):
                start = _pool_schedule(inst, m, assignment, *packed)
    if start is None:
        with obs.span(
            "schedule.bucket",
            cat="scheduler",
            args_fn=lambda: {"n_tasks": n_tasks, "m": m},
        ):
            start = _bucket_schedule(inst, m, assignment, key)
    return Schedule(
        instance=inst,
        m=m,
        start=start,
        assignment=np.asarray(assignment, dtype=np.int64),
        meta=dict(meta or {}),
    )


def bucket_list_schedule_unassigned(
    inst: SweepInstance,
    m: int,
    priority: np.ndarray | None = None,
):
    """Bucket-engine twin of ``list_schedule_unassigned`` (Graham relaxation).

    Pops the ``m`` smallest ``(key, task id)`` pairs per step in the same
    order the heap engine would, so machine numbers match bit-for-bit too.
    """
    from repro.core.list_scheduler import UnassignedSchedule

    n_tasks = inst.n_tasks
    key = bucket_keys(priority, n_tasks)
    result = None
    if _use_pool(inst, m):
        packed = _pool_codes(key, n_tasks, None)
        if packed is not None:
            with obs.span(
                "schedule.pool",
                cat="scheduler",
                args_fn=lambda: {"n_tasks": n_tasks, "m": m},
            ):
                result = _pool_unassigned(inst, m, *packed)
    if result is None:
        with obs.span(
            "schedule.bucket",
            cat="scheduler",
            args_fn=lambda: {"n_tasks": n_tasks, "m": m},
        ):
            result = _bucket_unassigned(inst, m, key)
    start, machine = result
    return UnassignedSchedule(m=m, start=start, machine=machine)
