"""Schedule representation and the independent feasibility checker.

A feasible sweep schedule (Section 3) must satisfy:

1. precedence within every direction DAG,
2. at most one task per processor per time step (unit tasks, no
   preemption),
3. every copy of a cell runs on the same processor.

:class:`Schedule` stores start times and the cell→processor assignment;
:func:`validate_schedule` re-checks all three constraints from scratch so
algorithm bugs cannot hide behind construction-time guarantees.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.instance import SweepInstance
from repro.util.errors import InvalidScheduleError

__all__ = ["Schedule", "validate_schedule"]


@dataclass
class Schedule:
    """A complete schedule for a :class:`SweepInstance`.

    Attributes
    ----------
    instance:
        The scheduled instance.
    m:
        Number of processors.
    start:
        ``(n_tasks,)`` int array; ``start[tid]`` is the 0-indexed time step
        at which task ``tid`` executes (unit processing time).
    assignment:
        ``(n_cells,)`` int array mapping each cell to its processor.  Tasks
        inherit the processor of their cell, which enforces the
        same-processor constraint by construction.
    meta:
        Free-form provenance (algorithm name, seed, parameters).
    """

    instance: SweepInstance
    m: int
    start: np.ndarray
    assignment: np.ndarray
    meta: dict = field(default_factory=dict)

    @property
    def makespan(self) -> int:
        """Number of time steps used (max start + 1)."""
        if self.start.size == 0:
            return 0
        return int(self.start.max()) + 1

    def task_proc(self) -> np.ndarray:
        """Processor of every task (``assignment`` lifted to task ids)."""
        return np.tile(self.assignment, self.instance.k)

    def proc_loads(self) -> np.ndarray:
        """Number of tasks run by each processor."""
        return np.bincount(self.task_proc(), minlength=self.m)

    def idle_fraction(self) -> float:
        """Fraction of processor-steps spent idle, ``1 - N/(m*makespan)``."""
        ms = self.makespan
        if ms == 0:
            return 0.0
        return 1.0 - self.instance.n_tasks / (self.m * ms)

    def validate(self) -> None:
        """Raise :class:`InvalidScheduleError` on any constraint violation."""
        validate_schedule(self)

    def __repr__(self) -> str:
        return (
            f"Schedule(m={self.m}, makespan={self.makespan}, "
            f"algorithm={self.meta.get('algorithm', '?')})"
        )


def validate_schedule(s: Schedule) -> None:
    """Independently verify feasibility of ``s``.

    Checks vertex-count consistency, that every task has a nonnegative
    start, processor capacity (one task per processor per step), and every
    precedence edge of every direction DAG.
    """
    inst = s.instance
    n, k = inst.n_cells, inst.k
    if s.start.shape != (inst.n_tasks,):
        raise InvalidScheduleError(
            f"start has shape {s.start.shape}, expected ({inst.n_tasks},)"
        )
    if s.assignment.shape != (n,):
        raise InvalidScheduleError(
            f"assignment has shape {s.assignment.shape}, expected ({n},)"
        )
    if s.m <= 0:
        raise InvalidScheduleError(f"processor count must be positive, got {s.m}")
    if n == 0:
        return
    if s.start.min() < 0:
        missing = int((s.start < 0).sum())
        raise InvalidScheduleError(f"{missing} tasks have no start time")
    if s.assignment.min() < 0 or s.assignment.max() >= s.m:
        raise InvalidScheduleError(
            f"assignment values must lie in [0, {s.m}); found "
            f"[{s.assignment.min()}, {s.assignment.max()}]"
        )

    # Capacity: a (processor, step) slot is used at most once.
    proc = s.task_proc()
    slot = proc.astype(np.int64) * (int(s.start.max()) + 1) + s.start
    uniq, counts = np.unique(slot, return_counts=True)
    if counts.size and counts.max() > 1:
        bad = uniq[counts.argmax()]
        raise InvalidScheduleError(
            f"processor-step slot {bad} holds {counts.max()} tasks"
        )

    # Precedence within every direction.
    for i, g in enumerate(inst.dags):
        if not g.num_edges:
            continue
        src = g.edges[:, 0] + i * n
        dst = g.edges[:, 1] + i * n
        violated = s.start[src] >= s.start[dst]
        if violated.any():
            j = int(np.flatnonzero(violated)[0])
            raise InvalidScheduleError(
                f"direction {i}: edge ({g.edges[j, 0]} -> {g.edges[j, 1]}) "
                f"violated: start {s.start[src[j]]} >= {s.start[dst[j]]}"
            )
