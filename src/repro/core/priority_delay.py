"""Algorithm 2: "Random Delays with Priorities" — the compacted variant.

Algorithm 1 processes the combined DAG layer by layer, which leaves
processors idle whenever their share of the current layer is exhausted.
Algorithm 2 removes all idle time: it keeps the same randomisation but
turns the combined-DAG layer number into a *priority*
``Γ(v, i) = level_in_direction + X_i`` and runs prioritized list
scheduling (smallest Γ first, ties arbitrary).

Theorem 2: same ``O(OPT log^2 n)`` guarantee; empirically up to 4x better
than Algorithm 1 at high processor counts (paper Fig. 2(c)).
"""

from __future__ import annotations

import numpy as np

from repro.core.assignment import random_cell_assignment
from repro.core.instance import SweepInstance
from repro.core.list_scheduler import list_schedule
from repro.core.random_delay import delayed_task_layers, draw_delays
from repro.core.schedule import Schedule
from repro.util.rng import as_rng

__all__ = ["random_delay_priority_schedule"]


def random_delay_priority_schedule(
    inst: SweepInstance,
    m: int,
    seed=None,
    assignment: np.ndarray | None = None,
    delays: np.ndarray | None = None,
    engine: str = "auto",
) -> Schedule:
    """Run Algorithm 2 ("Random Delays with Priorities").

    Parameters mirror :func:`repro.core.random_delay.random_delay_schedule`:
    ``assignment`` overrides the random cell→processor map (used for block
    partitioning), ``delays`` pins the per-direction random delays.
    ``engine`` selects the list-scheduling engine (see
    :mod:`repro.core.list_scheduler`).
    """
    rng = as_rng(seed)
    if delays is None:
        delays = draw_delays(inst.k, rng)
    if assignment is None:
        assignment = random_cell_assignment(inst.n_cells, m, rng)
    gamma = delayed_task_layers(inst, delays)
    sched = list_schedule(
        inst,
        m,
        assignment,
        priority=gamma,
        meta={
            "algorithm": "random_delay_priority",
            "delays": np.asarray(delays).copy(),
        },
        engine=engine,
    )
    return sched
