"""Schedule and instance persistence.

A schedule is start times + assignment + the instance's DAG structure;
``.npz`` holds it all, so expensive schedules (or externally produced
ones to be validated/compared) round-trip exactly.  The instance is
rebuilt from its stored edge arrays on load.

Instances alone also round-trip through plain JSON-compatible dicts
(:func:`instance_to_jsonable` / :func:`instance_from_jsonable`).  That
form is deliberately text-based: the fuzzing corpus stores shrunken
failing instances as human-diffable JSON files.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.core.dag import Dag
from repro.core.instance import SweepInstance
from repro.core.schedule import Schedule
from repro.util.errors import ReproError

__all__ = [
    "save_schedule",
    "load_schedule",
    "instance_to_jsonable",
    "instance_from_jsonable",
]

_FORMAT_VERSION = 1


def save_schedule(schedule: Schedule, path) -> None:
    """Write a schedule (with its instance structure) to ``path``."""
    inst = schedule.instance
    payload = {
        "format_version": np.array(_FORMAT_VERSION),
        "n_cells": np.array(inst.n_cells),
        "k": np.array(inst.k),
        "m": np.array(schedule.m),
        "start": schedule.start,
        "assignment": schedule.assignment,
        "cell_graph_edges": inst.cell_graph_edges,
        "name": np.array(inst.name),
        # Meta may hold numpy arrays (delays); normalise to lists.
        "meta": np.array(
            json.dumps(
                {
                    key: value.tolist() if isinstance(value, np.ndarray) else value
                    for key, value in schedule.meta.items()
                }
            )
        ),
    }
    for i, g in enumerate(inst.dags):
        payload[f"dag_edges_{i}"] = g.edges
    np.savez_compressed(Path(path), **payload)


def load_schedule(path) -> Schedule:
    """Read a schedule written by :func:`save_schedule` and validate it."""
    path = Path(path)
    if not path.exists():
        raise ReproError(f"schedule file not found: {path}")
    with np.load(path, allow_pickle=False) as data:
        version = int(data["format_version"])
        if version != _FORMAT_VERSION:
            raise ReproError(
                f"unsupported schedule format version {version} "
                f"(this build reads {_FORMAT_VERSION})"
            )
        n = int(data["n_cells"])
        k = int(data["k"])
        dags = [Dag(n, data[f"dag_edges_{i}"]) for i in range(k)]
        inst = SweepInstance(
            n,
            dags,
            cell_graph_edges=data["cell_graph_edges"],
            name=str(data["name"]),
        )
        schedule = Schedule(
            instance=inst,
            m=int(data["m"]),
            start=data["start"],
            assignment=data["assignment"],
            meta=json.loads(str(data["meta"])),
        )
    schedule.validate()
    return schedule


def instance_to_jsonable(inst: SweepInstance) -> dict:
    """Represent an instance as a JSON-compatible dict (exact round-trip).

    Edge arrays become nested lists; the derived cell graph is stored too
    so instances whose mesh adjacency differs from the DAG-edge union
    (e.g. block-partitioned meshes) survive the trip.
    """
    return {
        "n_cells": int(inst.n_cells),
        "name": str(inst.name),
        "dag_edges": [g.edges.tolist() for g in inst.dags],
        "cell_graph_edges": inst.cell_graph_edges.tolist(),
    }


def instance_from_jsonable(data: dict) -> SweepInstance:
    """Rebuild an instance written by :func:`instance_to_jsonable`."""
    try:
        n = int(data["n_cells"])
        dag_edges = data["dag_edges"]
        cell_edges = data["cell_graph_edges"]
    except (KeyError, TypeError) as exc:
        raise ReproError(f"malformed instance payload: {exc}") from None
    dags = [
        Dag(n, np.asarray(e, dtype=np.int64).reshape(-1, 2)) for e in dag_edges
    ]
    return SweepInstance(
        n,
        dags,
        cell_graph_edges=np.asarray(cell_edges, dtype=np.int64).reshape(-1, 2),
        name=str(data.get("name", "instance")),
    )
