"""Core sweep-scheduling model and the paper's three provable algorithms.

Public surface:

* :class:`~repro.core.dag.Dag` — CSR directed acyclic graph.
* :class:`~repro.core.instance.SweepInstance` — cells + per-direction DAGs.
* :class:`~repro.core.schedule.Schedule` — start times + assignment, with
  an independent feasibility checker.
* :func:`~repro.core.random_delay.random_delay_schedule` — Algorithm 1.
* :func:`~repro.core.priority_delay.random_delay_priority_schedule` —
  Algorithm 2.
* :func:`~repro.core.improved.improved_random_delay_schedule` —
  Algorithm 3.
* :func:`~repro.core.list_scheduler.list_schedule` /
  :func:`~repro.core.list_scheduler.list_schedule_unassigned` — the
  prioritized list-scheduling engines.
* lower bounds in :mod:`repro.core.lower_bounds`.
"""

from repro.core.dag import Dag
from repro.core.instance import SweepInstance
from repro.core.schedule import Schedule, validate_schedule
from repro.core.assignment import (
    random_cell_assignment,
    block_assignment,
    round_robin_assignment,
    balanced_random_assignment,
)
from repro.core.list_scheduler import (
    list_schedule,
    list_schedule_unassigned,
    UnassignedSchedule,
)
from repro.core.layered import schedule_layers_sequentially, layer_makespans
from repro.core.random_delay import (
    random_delay_schedule,
    draw_delays,
    delayed_task_layers,
)
from repro.core.priority_delay import random_delay_priority_schedule
from repro.core.improved import improved_random_delay_schedule, preprocess_levels
from repro.core.lower_bounds import (
    average_load_lb,
    copies_lb,
    critical_path_lb,
    combined_lower_bound,
    graham_relaxation_lb,
)
from repro.core.optimal import optimal_makespan, optimal_makespan_for_assignment
from repro.core.io import save_schedule, load_schedule
from repro.core.timed import (
    TimedSchedule,
    latency_list_schedule,
    validate_timed_schedule,
)

__all__ = [
    "Dag",
    "SweepInstance",
    "Schedule",
    "validate_schedule",
    "random_cell_assignment",
    "block_assignment",
    "round_robin_assignment",
    "balanced_random_assignment",
    "list_schedule",
    "list_schedule_unassigned",
    "UnassignedSchedule",
    "schedule_layers_sequentially",
    "layer_makespans",
    "random_delay_schedule",
    "draw_delays",
    "delayed_task_layers",
    "random_delay_priority_schedule",
    "improved_random_delay_schedule",
    "preprocess_levels",
    "average_load_lb",
    "copies_lb",
    "critical_path_lb",
    "combined_lower_bound",
    "graham_relaxation_lb",
    "optimal_makespan",
    "optimal_makespan_for_assignment",
    "save_schedule",
    "load_schedule",
    "TimedSchedule",
    "latency_list_schedule",
    "validate_timed_schedule",
]
