"""Cell→processor assignment strategies.

The paper's algorithms assign a uniformly random processor to every cell
(Algorithms 1–3, step "choose a processor uniformly at random").  The
experimental section additionally partitions the mesh into blocks with
METIS and assigns a random processor *per block*, which slashes the number
of inter-processor edges (communication cost C1) at a small makespan cost.

This module implements both, plus deterministic balanced variants used in
tests and ablations.
"""

from __future__ import annotations

import numpy as np

from repro.util.errors import InvalidScheduleError
from repro.util.rng import as_rng

__all__ = [
    "random_cell_assignment",
    "block_assignment",
    "round_robin_assignment",
    "balanced_random_assignment",
]


def random_cell_assignment(n_cells: int, m: int, seed=None) -> np.ndarray:
    """Assign every cell a processor chosen uniformly at random.

    This is the assignment step of Algorithms 1–3 and the one covered by
    the paper's probabilistic analysis (Lemma 3).
    """
    _check_m(m)
    rng = as_rng(seed)
    return rng.integers(0, m, size=n_cells, dtype=np.int64)


def block_assignment(blocks: np.ndarray, m: int, seed=None, balanced: bool = False) -> np.ndarray:
    """Lift a cell→block labelling to a cell→processor assignment.

    Parameters
    ----------
    blocks:
        ``(n_cells,)`` array of block ids (any nonnegative labelling; ids
        need not be contiguous).
    m:
        Processor count.
    balanced:
        ``False`` (paper behaviour): each block draws its processor
        uniformly at random.  ``True``: blocks are dealt round-robin in a
        random order, so processors receive nearly equal block counts.
    """
    _check_m(m)
    rng = as_rng(seed)
    blocks = np.asarray(blocks, dtype=np.int64)
    uniq, inverse = np.unique(blocks, return_inverse=True)
    nb = uniq.size
    if balanced:
        perm = rng.permutation(nb)
        proc_of_block = np.empty(nb, dtype=np.int64)
        proc_of_block[perm] = np.arange(nb, dtype=np.int64) % m
    else:
        proc_of_block = rng.integers(0, m, size=nb, dtype=np.int64)
    return proc_of_block[inverse]


def round_robin_assignment(n_cells: int, m: int) -> np.ndarray:
    """Deterministic ``cell % m`` assignment (test baseline)."""
    _check_m(m)
    return np.arange(n_cells, dtype=np.int64) % m


def balanced_random_assignment(n_cells: int, m: int, seed=None) -> np.ndarray:
    """Random assignment with loads differing by at most one cell.

    Shuffles the cells and deals them round-robin; useful as an ablation of
    the "pure uniform" choice (pure uniform concentrates ~sqrt extra load
    on the luckiest processor).
    """
    _check_m(m)
    rng = as_rng(seed)
    out = np.empty(n_cells, dtype=np.int64)
    out[rng.permutation(n_cells)] = np.arange(n_cells, dtype=np.int64) % m
    return out


def _check_m(m: int) -> None:
    if m <= 0:
        raise InvalidScheduleError(f"processor count must be positive, got {m}")
