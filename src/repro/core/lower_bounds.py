"""Lower bounds on the optimal sweep-schedule makespan.

The paper (proof of Lemma 4 and Section 5) uses
``OPT >= max(nk/m, k, D)``:

* ``nk/m`` — average load: ``nk`` unit tasks over ``m`` processors;
* ``k`` — all ``k`` copies of one cell run on a single processor;
* ``D`` — a chain of ``D`` levels must run sequentially (we strengthen
  this to the longest critical path over all direction DAGs).

We add a fourth, stronger bound from the Graham relaxation: dropping the
same-processor constraint can only shrink OPT, and greedy list scheduling
is a ``(2 - 1/m)``-approximation for the relaxed problem, so
``OPT >= ceil(T_greedy / (2 - 1/m))``.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.instance import SweepInstance
from repro.core.list_scheduler import list_schedule_unassigned

__all__ = [
    "average_load_lb",
    "copies_lb",
    "critical_path_lb",
    "combined_lower_bound",
    "graham_relaxation_lb",
]


def average_load_lb(inst: SweepInstance, m: int) -> int:
    """``ceil(n*k / m)`` — the bound every paper plot normalises by."""
    if inst.n_tasks == 0:
        return 0
    return math.ceil(inst.n_tasks / m)


def copies_lb(inst: SweepInstance) -> int:
    """``k``: one processor runs every copy of some cell (if any cell exists)."""
    return inst.k if inst.n_cells else 0


def critical_path_lb(inst: SweepInstance) -> int:
    """Longest chain in any direction DAG (>= the paper's level count D)."""
    if inst.n_cells == 0:
        return 0
    return max(g.critical_path_length() for g in inst.dags)


def combined_lower_bound(inst: SweepInstance, m: int) -> int:
    """``max(ceil(nk/m), k, critical path)`` — cheap, always available."""
    return max(average_load_lb(inst, m), copies_lb(inst), critical_path_lb(inst))


def graham_relaxation_lb(inst: SweepInstance, m: int) -> int:
    """Lower bound from the same-processor relaxation.

    Runs Graham list scheduling on the union DAG (any processor may run
    any task).  Its makespan ``T`` satisfies ``T <= (2 - 1/m) OPT_rel`` and
    ``OPT_rel <= OPT``, hence ``OPT >= ceil(T / (2 - 1/m))``.  Costs one
    full relaxed schedule, so use for analysis rather than hot loops.
    """
    if inst.n_tasks == 0:
        return 0
    t = list_schedule_unassigned(inst, m).makespan
    return math.ceil(t / (2.0 - 1.0 / m))
