"""The sweep-scheduling instance model.

An instance (Section 3 of the paper) is a cell set ``V = {0..n-1}``, ``k``
DAGs :math:`G_i(V_i, E_i)` — one per sweep direction, all over the same
cells — and a processor count ``m`` (which we keep as a *scheduler*
parameter so one instance can be scheduled at many processor counts, as the
paper's experiments do).

A *task* is a (cell, direction) pair ``(v, i)``.  Tasks are flattened to
integer ids ``tid = i * n + v`` so schedules are plain numpy arrays.
"""

from __future__ import annotations

import numpy as np

from repro.core.dag import Dag
from repro.util.errors import InvalidInstanceError

__all__ = ["SweepInstance"]


class SweepInstance:
    """A sweep-scheduling problem: ``n`` cells and ``k`` per-direction DAGs.

    Parameters
    ----------
    n_cells:
        Number of mesh cells ``n``.
    dags:
        One :class:`~repro.core.dag.Dag` per direction, each on exactly
        ``n_cells`` vertices.
    cell_graph_edges:
        Optional ``(E, 2)`` undirected mesh-adjacency edges, used by block
        partitioning and communication-cost accounting.  When omitted it is
        derived as the union of all DAG edges (ignoring orientation).
    name:
        Optional label for reports.
    """

    def __init__(
        self,
        n_cells: int,
        dags: list[Dag],
        cell_graph_edges: np.ndarray | None = None,
        name: str = "instance",
    ):
        if n_cells < 0:
            raise InvalidInstanceError(f"n_cells must be >= 0, got {n_cells}")
        if not dags:
            raise InvalidInstanceError("an instance needs at least one direction DAG")
        for i, g in enumerate(dags):
            if g.n != n_cells:
                raise InvalidInstanceError(
                    f"DAG for direction {i} has {g.n} vertices, expected {n_cells}"
                )
        self.n_cells = int(n_cells)
        self.dags = list(dags)
        self.name = name
        if cell_graph_edges is None:
            cell_graph_edges = self._derive_cell_edges()
        self.cell_graph_edges = np.asarray(cell_graph_edges, dtype=np.int64).reshape(-1, 2)
        self._union_dag: Dag | None = None
        self._task_level: np.ndarray | None = None

    # ------------------------------------------------------------------
    # basic shape
    # ------------------------------------------------------------------

    @property
    def k(self) -> int:
        """Number of sweep directions."""
        return len(self.dags)

    @property
    def n_tasks(self) -> int:
        """Total number of (cell, direction) tasks, ``n * k``."""
        return self.n_cells * self.k

    def task_id(self, cell: int, direction: int) -> int:
        """Flatten task ``(cell, direction)`` to its integer id."""
        return direction * self.n_cells + cell

    def task_cell(self, tid) -> np.ndarray | int:
        """Cell of a task id (vectorised over arrays)."""
        return tid % self.n_cells

    def task_direction(self, tid) -> np.ndarray | int:
        """Direction of a task id (vectorised over arrays)."""
        return tid // self.n_cells

    # ------------------------------------------------------------------
    # derived structure
    # ------------------------------------------------------------------

    def _derive_cell_edges(self) -> np.ndarray:
        chunks = [g.edges for g in self.dags if g.num_edges]
        if not chunks:
            return np.empty((0, 2), dtype=np.int64)
        e = np.concatenate(chunks, axis=0)
        lo = np.minimum(e[:, 0], e[:, 1])
        hi = np.maximum(e[:, 0], e[:, 1])
        return np.unique(np.stack([lo, hi], axis=1), axis=0)

    def union_dag(self) -> Dag:
        """The DAG ``H`` over all ``n*k`` tasks, copies of a cell distinct.

        This is the graph the Improved Random Delay algorithm preprocesses
        (Algorithm 3, step 1) and the graph every list scheduler runs on.
        """
        if self._union_dag is None:
            n = self.n_cells
            chunks = []
            for i, g in enumerate(self.dags):
                if g.num_edges:
                    chunks.append(g.edges + i * n)
            edges = (
                np.concatenate(chunks, axis=0)
                if chunks
                else np.empty((0, 2), dtype=np.int64)
            )
            self._union_dag = Dag(self.n_tasks, edges, validate=False)
        return self._union_dag

    def task_levels(self) -> np.ndarray:
        """Level of every task within its own direction DAG (0-indexed).

        ``task_levels()[i*n + v]`` is the layer of ``(v, i)`` in ``G_i``.
        """
        if self._task_level is None:
            out = np.empty(self.n_tasks, dtype=np.int64)
            n = self.n_cells
            for i, g in enumerate(self.dags):
                out[i * n : (i + 1) * n] = g.level_of()
            self._task_level = out
        return self._task_level

    def warm_levels(self) -> np.ndarray:
        """Materialise all per-direction levels in one batched sweep.

        Runs :func:`repro.core.dag.batch_levels` over the block-diagonal
        union of the direction DAGs — one frontier loop of ``max_i D_i``
        iterations instead of ``k`` separate loops of ``D_i`` each — and
        installs the (bit-identical) ``level_of`` / ``num_levels`` /
        ``topological_order`` caches on every DAG plus the flat
        :meth:`task_levels` array.  Idempotent; returns ``task_levels``.
        The batched construction path
        (:func:`repro.sweeps.dag_builder.build_instance_batched`) calls
        this at build time; call it directly on hand-built instances
        (e.g. the synthetic families) to pre-pay the level structure.
        """
        if self._task_level is None:
            from repro.core.dag import batch_levels

            self._task_level = batch_levels(self.dags)
        return self._task_level

    def depth(self) -> int:
        """``D``: the maximum number of levels over all directions."""
        return max(g.num_levels() for g in self.dags)

    # ------------------------------------------------------------------
    # flat-array export / reconstruction (shared-memory instance plane)
    # ------------------------------------------------------------------

    def export_arrays(self) -> tuple[dict[str, object], dict[str, np.ndarray]]:
        """Flatten the instance (and materialised caches) to plain arrays.

        Returns ``(meta, arrays)``: a JSON-able ``meta`` dict and a dict
        mapping slash-separated keys to numpy arrays — the wire format of
        :class:`repro.parallel.SharedInstanceStore`.  Structural arrays
        (per-direction edges, mesh adjacency) are always included; memo
        caches (levels, CSR adjacency, b/t-levels, descendant counts, the
        padded successor matrix) are included exactly when they are
        already materialised, on the per-direction DAGs and on the union
        DAG alike.  :meth:`from_arrays` is the zero-copy inverse.
        """
        meta: dict = {
            "n_cells": self.n_cells,
            "k": self.k,
            "name": self.name,
            "dag_scalars": [],
        }
        arrays: dict = {"cell_edges": self.cell_graph_edges}
        for i, g in enumerate(self.dags):
            scalars, cache_arrays = g.export_caches()
            meta["dag_scalars"].append(scalars)
            arrays[f"dag{i}/edges"] = g.edges
            for key, arr in cache_arrays.items():
                arrays[f"dag{i}/{key}"] = arr
        if self._union_dag is not None:
            scalars, cache_arrays = self._union_dag.export_caches()
            meta["union_scalars"] = scalars
            arrays["union/edges"] = self._union_dag.edges
            for key, arr in cache_arrays.items():
                arrays[f"union/{key}"] = arr
        if self._task_level is not None:
            arrays["task_level"] = self._task_level
        return meta, arrays

    @classmethod
    def from_arrays(
        cls, meta: dict, arrays: dict, adopted: bool = True
    ) -> "SweepInstance":
        """Rebuild an instance from :meth:`export_arrays` output, zero-copy.

        The returned instance references the given arrays directly (no
        validation pass, no cache recomputation), so attaching a worker to
        a shared-memory manifest costs microseconds regardless of mesh
        size.  Behaviour is bit-identical to the originally exported
        instance: same edges, same adopted memo caches.  ``adopted``
        (default true, the shared-memory plane's contract) arms the
        ``dag.cache.rebuild`` counter on every DAG; the disk build cache
        passes ``False`` — see :meth:`repro.core.dag.Dag.adopt_caches`.
        """
        n_cells = int(meta["n_cells"])
        k = int(meta["k"])
        per_dag: list[dict] = [{} for _ in range(k)]
        union_arrays: dict = {}
        for key, arr in arrays.items():
            head, _, rest = key.partition("/")
            if head == "union":
                union_arrays[rest] = arr
            elif head.startswith("dag"):
                per_dag[int(head[3:])][rest] = arr
        dags = []
        for i in range(k):
            cache = per_dag[i]
            g = Dag(n_cells, cache.pop("edges"), validate=False)
            g.adopt_caches(meta["dag_scalars"][i], cache, adopted=adopted)
            dags.append(g)
        inst = cls(
            n_cells,
            dags,
            cell_graph_edges=arrays["cell_edges"],
            name=meta.get("name", "instance"),
        )
        if union_arrays:
            union = Dag(inst.n_tasks, union_arrays.pop("edges"), validate=False)
            union.adopt_caches(
                meta.get("union_scalars", {}), union_arrays, adopted=adopted
            )
            inst._union_dag = union
        if "task_level" in arrays:
            inst._task_level = arrays["task_level"]
        return inst

    def validate(self) -> None:
        """Re-check all structural invariants (ranges, acyclicity)."""
        for i, g in enumerate(self.dags):
            try:
                g._validate()
            except InvalidInstanceError as exc:
                raise InvalidInstanceError(f"direction {i}: {exc}") from exc

    # ------------------------------------------------------------------

    def __repr__(self) -> str:
        return (
            f"SweepInstance(name={self.name!r}, n_cells={self.n_cells}, "
            f"k={self.k}, n_tasks={self.n_tasks})"
        )
