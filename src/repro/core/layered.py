"""Layer-sequential schedule construction (step 4 of Algorithms 1 and 3).

Given a layer number for every task (the combined-DAG level ``r = level +
X_i``), the schedule processes layers strictly in order: layer ``r+1``
starts only after every task of layer ``r`` finished; within a layer, the
tasks assigned to one processor run back-to-back in arbitrary (here:
task-id) order.

Because every precedence edge of the combined DAG goes from a lower layer
to a strictly higher layer, the result is always feasible.  The whole
construction is vectorised: one ``argsort`` over tasks plus ``bincount``
arithmetic — no per-task Python loop — so Algorithm 1 runs in
near-linear time as the paper advertises.
"""

from __future__ import annotations

import numpy as np

from repro.core.instance import SweepInstance
from repro.core.schedule import Schedule
from repro.util.errors import InvalidScheduleError

__all__ = ["schedule_layers_sequentially", "layer_makespans"]


def layer_makespans(task_layer: np.ndarray, task_proc: np.ndarray, m: int) -> np.ndarray:
    """Per-layer processing time: ``max_P |{tasks of layer r on P}|``.

    Empty layers cost 0 steps (they are skipped).  Returns an array of
    length ``max(task_layer) + 1``.
    """
    if task_layer.size == 0:
        return np.zeros(0, dtype=np.int64)
    n_layers = int(task_layer.max()) + 1
    key = task_layer.astype(np.int64) * m + task_proc
    counts = np.bincount(key, minlength=n_layers * m)
    return counts.reshape(n_layers, m).max(axis=1)


def schedule_layers_sequentially(
    inst: SweepInstance,
    m: int,
    task_layer: np.ndarray,
    assignment: np.ndarray,
    meta: dict | None = None,
    check_layers: bool = True,
) -> Schedule:
    """Build the layer-by-layer schedule of Algorithms 1 / 3.

    Parameters
    ----------
    task_layer:
        ``(n_tasks,)`` layer index of every task in the combined DAG
        (``level-in-direction + X_i``).
    assignment:
        ``(n_cells,)`` cell→processor map.
    check_layers:
        Verify that every precedence edge goes to a strictly higher layer
        (cheap, vectorised).  Disable only for internally-derived layers.
    """
    task_layer = np.asarray(task_layer, dtype=np.int64)
    assignment = np.asarray(assignment, dtype=np.int64)
    n_tasks = inst.n_tasks
    if task_layer.shape != (n_tasks,):
        raise InvalidScheduleError(
            f"task_layer has shape {task_layer.shape}, expected ({n_tasks},)"
        )
    if check_layers and n_tasks:
        union = inst.union_dag()
        if union.num_edges:
            src = union.edges[:, 0]
            dst = union.edges[:, 1]
            bad = task_layer[src] >= task_layer[dst]
            if bad.any():
                j = int(np.flatnonzero(bad)[0])
                raise InvalidScheduleError(
                    f"layer assignment violates precedence on edge "
                    f"{src[j]} -> {dst[j]}: layers "
                    f"{task_layer[src[j]]} >= {task_layer[dst[j]]}"
                )

    task_proc = np.tile(assignment, inst.k)
    per_layer = layer_makespans(task_layer, task_proc, m)
    # Layer r occupies the half-open step interval
    # [layer_offset[r], layer_offset[r] + per_layer[r]).
    layer_offset = np.concatenate([[0], np.cumsum(per_layer)[:-1]]).astype(np.int64)

    # Position of each task inside its (layer, processor) group.
    start = np.empty(n_tasks, dtype=np.int64)
    if n_tasks:
        key = task_layer * m + task_proc
        order = np.argsort(key, kind="stable")
        sorted_key = key[order]
        new_group = np.empty(n_tasks, dtype=bool)
        new_group[0] = True
        np.not_equal(sorted_key[1:], sorted_key[:-1], out=new_group[1:])
        group_id = np.cumsum(new_group) - 1
        group_first = np.flatnonzero(new_group)
        pos_in_group = np.arange(n_tasks, dtype=np.int64) - group_first[group_id]
        start[order] = layer_offset[task_layer[order]] + pos_in_group

    return Schedule(
        instance=inst,
        m=m,
        start=start,
        assignment=assignment,
        meta=dict(meta or {}),
    )
